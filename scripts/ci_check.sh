#!/usr/bin/env bash
# CI gate: full test suite with deprecation warnings as errors, plus
# smoke invocations of the observability CLI surface.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tests (DeprecationWarning -> error) =="
# includes the engine-kernel differential harness
# (tests/sim/test_engine_equivalence.py): fast vs reference event loop,
# byte-identical traces / metrics / analysis / serve reports
python -W error::DeprecationWarning -m pytest -q tests

echo "== coverage gate (when pytest-cov is available) =="
if python -c "import pytest_cov" >/dev/null 2>&1; then
    # floor set at the level the seed suite established; raise it as
    # the suite grows, never lower it to make a change pass
    python -m pytest -q tests --cov=repro --cov-fail-under=80
else
    echo "pytest-cov not installed; skipping coverage gate"
fi

echo "== CLI smoke: profile =="
python -m repro profile stencil >/dev/null

echo "== CLI smoke: trace export is valid chrome-trace JSON =="
tmp="$(mktemp -t repro-trace-XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT
python -m repro trace 3dconv -o "$tmp" >/dev/null
python - "$tmp" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert any(e["ph"] == "X" for e in events), "no span events in trace"
EOF

echo "== CLI smoke: chaos recovery matches reference =="
chaos_out="$(python -m repro chaos stencil --profile transient --seed 7)"
if ! echo "$chaos_out" | grep -q "reference match  yes"; then
    echo "chaos run did not recover to a reference match:" >&2
    echo "$chaos_out" >&2
    exit 1
fi
if echo "$chaos_out" | grep -q "faults injected  0"; then
    echo "chaos smoke injected no faults (seed drift?):" >&2
    echo "$chaos_out" >&2
    exit 1
fi

echo "== CLI smoke: multi-tenant serve on the 3-tenant example =="
serve_out="$(python -m repro serve examples/serve_workload.json)"
if ! echo "$serve_out" | grep -q "requests         3 (3 ok, 0 failed, 0 shed, 0 cancelled)"; then
    echo "serve smoke did not complete all 3 tenants:" >&2
    echo "$serve_out" >&2
    exit 1
fi
# the serial baseline must also drain cleanly
python -m repro serve examples/serve_workload.json --serial >/dev/null

echo "== CLI smoke: serve survives a mid-run device loss =="
chaos_serve="$(python -m repro serve examples/serve_workload.json \
    --chaos failover --devices 2 --seed 1 --json)"
python - <<EOF
import json
report = json.loads('''$chaos_serve''')
assert report["migrated"] >= 1, "chaos serve smoke saw no migration"
assert all(r["status"] == "ok" for r in report["requests"]), (
    "chaos serve smoke lost a request: "
    + str([r["status"] for r in report["requests"]])
)
EOF


echo "== CLI smoke: sharded serve spans two devices =="
sharded_serve="$(python -m repro serve examples/serve_workload.json \
    --devices 2 --json)"
python - <<EOF3
import json
report = json.loads('''$sharded_serve''')
assert all(r["status"] == "ok" for r in report["requests"]), (
    "sharded serve smoke lost a request"
)
alice = [r for r in report["requests"] if r["tenant"] == "alice"][0]
assert alice.get("shards") == 2, f"alice not sharded: {alice}"
assert sorted(alice.get("devices", [])) == [0, 1], (
    f"alice's shards not on both devices: {alice}"
)
EOF3

echo "== CLI smoke: sdc chaos is detected and recovered under checksums =="
sdc_serve="$(python -m repro serve examples/serve_workload.json \
    --chaos sdc --integrity checksum --seed 2 --json)"
python - <<EOF5
import json
report = json.loads('''$sdc_serve''')
assert report["corruptions"] >= 1, "sdc serve smoke detected no corruption"
assert report["verified"] > report["corruptions"], "sdc smoke barely verified"
assert all(r["status"] == "ok" for r in report["requests"]), (
    "sdc serve smoke failed to recover a request: "
    + str([r["status"] for r in report["requests"]])
)
EOF5

echo "== CLI smoke: straggler watchdog re-splits a slow device away =="
straggler_wl="$(mktemp -t repro-straggler-XXXXXX.json)"
trap 'rm -f "$tmp" "$straggler_wl"' EXIT
cat > "$straggler_wl" <<'EOF6'
{
  "device": "k40m",
  "devices": 3,
  "budget_mb": 0.5,
  "requests": [
    {"app": "stencil", "tenant": "s0", "shards": 3,
     "config": {"nz": 194, "ny": 64, "nx": 64}},
    {"app": "stencil", "tenant": "s1", "shards": 3,
     "config": {"nz": 194, "ny": 64, "nx": 64}}
  ]
}
EOF6
straggler_serve="$(python -m repro serve "$straggler_wl" \
    --chaos straggler --watchdog --seed 0 --json)"
python - <<EOF7
import json
report = json.loads('''$straggler_serve''')
assert report["resplits"] >= 1, "straggler smoke never re-split"
assert all(r["status"] == "ok" for r in report["requests"]), (
    "straggler serve smoke lost a request"
)
EOF7

echo "== CLI smoke: sharded analyze invariants hold =="
# --devices 2 runs the region sharded and exits non-zero if the
# aggregate clock or the share partition violates the sharding model
sharded_analyze="$(python -m repro analyze stencil --devices 2 --json)"
python - <<EOF4
import json
snap = json.loads('''$sharded_analyze''')
assert snap["shards"] == 2, f"expected 2 shards, got {snap.get('shards')}"
assert len(snap["shares"]) == 2 and all(s >= 1 for s in snap["shares"]), (
    f"bad shard shares: {snap.get('shares')}"
)
EOF4

echo "== CLI smoke: analyze breakdown sums to wall =="
analyze_out="$(python -m repro analyze stencil --json)"
python - <<EOF2
import json
snap = json.loads('''$analyze_out''')
total = sum(snap["causes"].values())
assert abs(total - snap["wall_s"]) <= 1e-9, (
    f"wait breakdown does not sum to wall: {total} vs {snap['wall_s']}"
)
assert abs(snap["critical_path_length_s"] - snap["makespan_s"]) <= 1e-9, (
    "critical-path length drifted from the simulated makespan"
)
assert snap["what_if"]["perfect_overlap"]["bound_s"] <= snap["wall_s"] + 1e-12, (
    "perfect-overlap bound exceeds measured wall"
)
EOF2

echo "== CLI smoke: analyze --baseline regression gate =="
# the checked-in golden snapshot is the baseline: the current build
# must not regress against it (exit code is the gate)
python -m repro analyze stencil --baseline tests/golden/analyze_stencil.json

echo "== CLI smoke: engine-bench gate exit codes =="
# tiny replay (no serve pair) so the smoke stays fast; the honest
# >= 5x measurement lives in benchmarks/test_engine_throughput.py
eb_dir="$(mktemp -d -t repro-enginebench-XXXXXX)"
trap 'rm -f "$tmp" "$straggler_wl"; rm -rf "$eb_dir"' EXIT
printf '{"schema": "repro/engine-bench/v1", "events_per_sec_ratio": 0.1}\n' \
    > "$eb_dir/ok.json"
printf '{"schema": "repro/engine-bench/v1", "events_per_sec_ratio": 1e9}\n' \
    > "$eb_dir/impossible.json"
printf 'not json\n' > "$eb_dir/broken.json"
# exit 0: bench runs, writes metrics, passes a permissive baseline
python -m repro engine-bench --events 6000 --no-serve \
    -o "$eb_dir/BENCH_engine.json" --baseline "$eb_dir/ok.json" >/dev/null
python - "$eb_dir/BENCH_engine.json" <<'EOF8'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["schema"] == "repro/engine-bench/v1", m
assert m["events_per_sec_ratio"] > 1.0, (
    f"fast kernel not faster in smoke: {m['events_per_sec_ratio']}"
)
EOF8
# exit 1: an impossible baseline must read as a regression
if python -m repro engine-bench --events 6000 --no-serve \
    --baseline "$eb_dir/impossible.json" >/dev/null 2>&1; then
    echo "engine-bench gate passed an impossible baseline" >&2
    exit 1
fi
rc=0
python -m repro engine-bench --events 6000 --no-serve \
    --baseline "$eb_dir/impossible.json" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "engine-bench regression should exit 1, got $rc" >&2
    exit 1
fi
# exit 2: a malformed baseline is an unusable-input error, not a pass
rc=0
python -m repro engine-bench --events 6000 --no-serve \
    --baseline "$eb_dir/broken.json" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "engine-bench malformed baseline should exit 2, got $rc" >&2
    exit 1
fi
echo "== CLI smoke: failing runs exit non-zero =="
# a serve where requests die must not exit 0 (CI must see the failure):
# failover chaos on a single device leaves nowhere to migrate
rc=0
python -m repro serve examples/serve_workload.json \
    --chaos failover --seed 1 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "serve with failed requests should exit 1, got $rc" >&2
    exit 1
fi
# a chaos run that cannot recover a reference match must exit 1 too:
# sdc without integrity checking corrupts the output silently
rc=0
python -m repro chaos stencil --profile sdc --seed 1 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "chaos with corrupted output should exit 1, got $rc" >&2
    exit 1
fi

echo "== CLI smoke: journalled serve crash-resumes exactly-once =="
jr_dir="$(mktemp -d -t repro-journal-XXXXXX)"
trap 'rm -f "$tmp" "$straggler_wl"; rm -rf "$eb_dir" "$jr_dir"' EXIT
# the hostcrash profile kills the control plane after record 12 is
# durable; the injected crash is exit 3 (resumable), not a failure
rc=0
python -m repro serve examples/serve_workload.json \
    --chaos hostcrash --journal "$jr_dir/serve.journal" \
    --snapshot-every 8 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "injected host crash should exit 3, got $rc" >&2
    exit 1
fi
# resume replays the journal, restores completed outputs from the
# sidecar store, and finishes the rest — re-executing nothing
resume_out="$(python -m repro serve examples/serve_workload.json \
    --journal "$jr_dir/serve.journal" --snapshot-every 8 --resume)"
if ! echo "$resume_out" | grep -q "resumed=1"; then
    echo "resumed serve did not report resumed=1:" >&2
    echo "$resume_out" >&2
    exit 1
fi
if ! echo "$resume_out" | grep -q "re-executed=0"; then
    echo "resume re-executed completed work:" >&2
    echo "$resume_out" >&2
    exit 1
fi
if ! echo "$resume_out" | grep -q "requests         3 (3 ok, 0 failed, 0 shed, 0 cancelled)"; then
    echo "resumed serve did not complete all 3 tenants:" >&2
    echo "$resume_out" >&2
    exit 1
fi

echo "== CLI smoke: continuous telemetry + SLO report =="
tele_dir="$(mktemp -d -t repro-telemetry-XXXXXX)"
trap 'rm -f "$tmp" "$straggler_wl"; rm -rf "$eb_dir" "$jr_dir" "$tele_dir"' EXIT
cat > "$tele_dir/mixed.json" <<'EOF9'
{
  "device": "k40m",
  "requests": [
    {"app": "qcd", "tenant": "qcd0", "config": {"n": 6},
     "slo": {"target": 0.99, "latency_s": 0.1}},
    {"app": "stencil", "tenant": "sten0",
     "config": {"nz": 18, "ny": 48, "nx": 48}},
    {"app": "qcd", "tenant": "qcd1", "config": {"n": 6},
     "slo": {"target": 0.99, "latency_s": 0.1}},
    {"app": "stencil", "tenant": "sten1",
     "config": {"nz": 18, "ny": 48, "nx": 48}}
  ]
}
EOF9
tele_out="$(python -m repro serve "$tele_dir/mixed.json" \
    --telemetry "$tele_dir/tele.jsonl" --slo-report)"
# the summary must carry the per-tenant SLO digest …
if ! echo "$tele_out" | grep -q "^slo qcd0"; then
    echo "serve --slo-report printed no slo summary line:" >&2
    echo "$tele_out" >&2
    exit 1
fi
# … and the Prometheus sidecar at least one exposition line
if ! grep -q "^repro_serve_requests_ok 4" "$tele_dir/tele.jsonl.prom"; then
    echo "telemetry prom dump lacks repro_serve_requests_ok:" >&2
    cat "$tele_dir/tele.jsonl.prom" >&2
    exit 1
fi
# the saved stream renders on the dashboard (and is a valid stream)
python -m repro top "$tele_dir/tele.jsonl" | grep -q "slo tenant"

echo "CI checks passed."
