"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable
installs work on minimal/offline environments where the ``wheel``
package (required for PEP 660 editable builds) is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Directive-Based Partitioning and Pipelining for "
        "Graphics Processing Units' (IPDPS 2017) on a simulated GPU substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
