"""Tests for the analysis/report helpers and timeline visualization."""

from __future__ import annotations

import json

import pytest

from repro.analysis.gantt import ascii_gantt, to_chrome_trace, write_chrome_trace
from repro.analysis.report import (
    Expectation,
    ascii_bar_chart,
    check_band,
    format_table,
    ratio_band,
)
from repro.sim.trace import Timeline, TimelineRecord


def rec(kind, start, finish, *, engine="dma0", stream="s0", label="", nbytes=0):
    return TimelineRecord(kind, label, stream, engine, start, start, finish, nbytes)


@pytest.fixture
def pipeline_timeline():
    return Timeline(
        [
            rec("h2d", 0.0, 1.0, label="h2d:A[0:1)"),
            rec("kernel", 1.0, 2.0, engine="compute0", label="k0"),
            rec("h2d", 1.0, 2.0, label="h2d:A[1:2)", stream="s1"),
            rec("d2h", 2.0, 2.5, label="d2h:B[0:1)"),
        ]
    )


class TestExpectations:
    def test_check_band_symmetric(self):
        e = check_band("x", 2.0, 10.0, rel=0.5)
        assert (e.lo, e.hi) == (1.0, 3.0)
        assert e.check(2.9) and not e.check(3.1)

    def test_ratio_band_row_marks_out_of_band(self):
        e = ratio_band("thing", 1.5, 1.0, 2.0)
        assert "ok" in e.row(1.5)
        assert "OUT-OF-BAND" in e.row(2.5)

    def test_expectation_is_frozen(self):
        e = Expectation("x", 1, 0, 2)
        with pytest.raises(AttributeError):
            e.paper = 5


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1.5], ["long-name", 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_format_table_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_bar_chart_scales_to_max(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "a" in out


class TestChromeTrace:
    def test_events_cover_all_commands(self, pipeline_timeline):
        doc = to_chrome_trace(pipeline_timeline)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 4
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"dma0", "compute0"}

    def test_times_scaled_to_microseconds(self, pipeline_timeline):
        doc = to_chrome_trace(pipeline_timeline)
        k = next(e for e in doc["traceEvents"] if e.get("cat") == "kernel")
        assert k["ts"] == pytest.approx(1e6)
        assert k["dur"] == pytest.approx(1e6)

    def test_write_is_valid_json(self, pipeline_timeline, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(pipeline_timeline, str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestAsciiGantt:
    def test_rows_per_engine(self, pipeline_timeline):
        out = ascii_gantt(pipeline_timeline, width=40)
        assert "dma0" in out and "compute0" in out
        assert "legend" in out

    def test_overlap_visible(self, pipeline_timeline):
        out = ascii_gantt(pipeline_timeline, width=40)
        dma = next(l for l in out.splitlines() if l.startswith("dma0"))
        comp = next(l for l in out.splitlines() if l.startswith("compute0"))
        # the second h2d runs while the kernel runs: both rows have
        # glyphs in the middle section
        mid = slice(len("compute0 ") + 15, len("compute0 ") + 25)
        assert "#" in comp[mid]
        assert "<" in dma[mid]

    def test_empty_timeline(self):
        assert "empty" in ascii_gantt(Timeline([]))

    def test_real_run_renders(self, k40m, rng):
        import numpy as np

        a = rng.random(100_000).astype(np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        s = k40m.create_stream()
        k40m.memcpy_h2d_async(d, a, s)
        k40m.launch(1e-4, None, s)
        k40m.synchronize()
        out = ascii_gantt(k40m.timeline(), width=60)
        assert "<" in out and "#" in out
