"""Config plumbing tests for the application drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import conv3d as cv
from repro.apps import matmul as mm
from repro.apps import qcd as qc
from repro.apps import stencil as st


class TestMemLimitPlumbing:
    def test_stencil_mem_limit_shrinks_buffer(self):
        base = st.StencilConfig(nz=32, ny=64, nx=64, iters=1, chunk_size=8,
                                num_streams=4)
        tight = st.StencilConfig(nz=32, ny=64, nx=64, iters=1, chunk_size=8,
                                 num_streams=4, mem_limit="200KB")
        r_base = st.run_model("pipelined-buffer", base, virtual=True)
        r_tight = st.run_model("pipelined-buffer", tight, virtual=True)
        assert r_tight.data_peak <= 200_000
        assert r_tight.data_peak < r_base.data_peak

    def test_conv_mem_limit_correctness_preserved(self):
        cfg = cv.Conv3dConfig(nz=12, ny=10, nx=10, chunk_size=4,
                              num_streams=4, mem_limit="6KB")
        ref = cv.reference(cfg)
        res, out = cv.run_checked("pipelined-buffer", cfg)
        assert res.data_peak <= 6_000 + 512
        assert np.allclose(out, ref, atol=1e-6)

    def test_qcd_mem_limit_string_forms(self):
        cfg = qc.QcdConfig(n=8, mem_limit="MB_16")
        region = qc.make_region(cfg)
        assert region.mem_limit.limit_bytes == 16_000_000

    def test_matmul_mem_limit_in_pragma(self):
        cfg = mm.MatmulConfig(n=64, block=16, mem_limit="1GB")
        region = mm.make_region(cfg)
        assert region.mem_limit.limit_bytes == 10**9


class TestConfigDerivedFields:
    def test_stencil_dataset_label(self):
        assert st.StencilConfig(nz=1, ny=2, nx=3).dataset == "1x2x3"

    def test_conv_dataset_label(self):
        assert cv.Conv3dConfig(nz=4, ny=5, nx=6).dataset == "4x5x6"

    def test_matmul_nblocks_ceil(self):
        assert mm.MatmulConfig(n=100, block=32).nblocks == 4
        assert mm.MatmulConfig(n=96, block=32).nblocks == 3

    def test_qcd_dataset_roundtrip(self):
        for name in qc.DATASETS:
            assert qc.QcdConfig.dataset(name).dataset_name == f"qcd-{name}"

    def test_unknown_qcd_dataset(self):
        with pytest.raises(KeyError):
            qc.QcdConfig.dataset("huge")


class TestHaloAndScheduleOptions:
    @pytest.mark.parametrize("app,cfg", [
        (st, st.StencilConfig(nz=12, ny=8, nx=8, iters=1, halo_mode="duplicate")),
        (cv, cv.Conv3dConfig(nz=12, ny=8, nx=8, halo_mode="duplicate")),
    ])
    def test_duplicate_halo_config_correct(self, app, cfg):
        ref = app.reference(cfg)
        _, out = app.run_checked("pipelined-buffer", cfg)
        assert np.allclose(out, ref, atol=1e-6)

    def test_adaptive_schedule_config(self):
        cfg = cv.Conv3dConfig(nz=20, ny=8, nx=8, schedule="adaptive")
        ref = cv.reference(cfg)
        res, out = cv.run_checked("pipelined-buffer", cfg)
        assert np.allclose(out, ref, atol=1e-6)
        assert res.nchunks < 18  # ramped chunks

    def test_qcd_adaptive_schedule(self):
        cfg = qc.QcdConfig(n=8, schedule="adaptive", num_streams=2)
        ref = qc.reference(cfg)
        _, eta = qc.run_checked("pipelined-buffer", cfg)
        assert np.allclose(eta, ref, atol=1e-5)
