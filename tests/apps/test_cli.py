"""Tests for the experiment CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        p = build_parser()
        assert p.parse_args(["list"]).cmd == "list"
        args = p.parse_args(["run", "fig3", "--device", "hd7970"])
        assert (args.experiment, args.device) == ("fig3", "hd7970")
        assert p.parse_args(["compare", "stencil"]).app == "stencil"
        assert p.parse_args(["trace", "3dconv", "-o", "x.json"]).out == "x.json"

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "time distribution" in out
        assert "Pipelined speedup" in out

    def test_run_fig8_on_amd(self, capsys):
        assert main(["run", "fig8", "--device", "hd7970"]) == 0
        out = capsys.readouterr().out
        assert "chunk count" in out and "hd7970" in out

    def test_compare_each_app(self, capsys):
        for app in ("stencil", "3dconv", "qcd"):
            assert main(["compare", app]) == 0
        out = capsys.readouterr().out
        assert "naive=" in out and "qcd-large" in out

    def test_compare_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["compare", "raytracer"])

    def test_trace_ascii(self, capsys):
        assert main(["trace", "stencil", "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out and "#" in out

    def test_trace_json(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "stencil", "-o", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "wrote" in capsys.readouterr().out

    def test_trace_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["trace", "qcd"])

    def test_run_all_dedupes_shared_generators(self, capsys):
        """fig5/fig6 and fig9/fig10 share generators; 'all' must not
        run them twice."""
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("Speedup and memory by benchmark") == 1
        assert out.count("Matmul speedup/memory") == 1


class TestChaos:
    def test_chaos_parses(self):
        args = build_parser().parse_args(
            ["chaos", "stencil", "--profile", "jitter", "--seed", "5", "--retries", "2"]
        )
        assert (args.app, args.profile, args.seed, args.retries) == (
            "stencil", "jitter", 5, 2,
        )

    def test_chaos_recovers_and_exits_zero(self, capsys):
        assert main(["chaos", "stencil", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "reference match  yes" in out
        assert "faults injected" in out

    def test_chaos_unknown_profile(self, capsys):
        assert main(["chaos", "stencil", "--profile", "nosuch"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_chaos_unknown_app(self, capsys):
        assert main(["chaos", "raytracer"]) == 2
        assert "unknown chaos app" in capsys.readouterr().err

    def test_chaos_exhaustion_reported_cleanly(self, capsys):
        # recovery disabled: exits 1 with the RegionFailure text, no traceback
        rc = main(["chaos", "stencil", "--no-degrade", "--retries", "0",
                   "--profile", "chaos", "--seed", "3"])
        assert rc == 1
        assert "recovery failed" in capsys.readouterr().err


class TestAnalyze:
    def test_analyze_parses(self):
        args = build_parser().parse_args(
            ["analyze", "stencil", "--baseline", "b.json",
             "--tolerance", "0.1", "-o", "out.json"]
        )
        assert (args.app, args.baseline, args.tolerance, args.out) == (
            "stencil", "b.json", 0.1, "out.json",
        )

    def test_analyze_report(self, capsys):
        assert main(["analyze", "stencil"]) == 0
        out = capsys.readouterr().out
        assert "critical-path analysis" in out
        assert "where the wall time went" in out
        assert "what-if bounds" in out

    def test_analyze_json_and_out_are_identical(self, tmp_path, capsys):
        out_file = tmp_path / "a.json"
        assert main(["analyze", "matmul", "--json", "-o", str(out_file)]) == 0
        printed = capsys.readouterr().out
        # stdout JSON begins after the "wrote ..." line
        doc = json.loads(printed[printed.index("{"):])
        assert doc == json.loads(out_file.read_text())
        assert doc["model"] == "pipelined-buffer"
        assert doc["causes"]

    def test_analyze_baseline_gate(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["analyze", "qcd", "-o", str(base)]) == 0
        capsys.readouterr()
        # identical baseline: gate passes
        assert main(["analyze", "qcd", "--baseline", str(base)]) == 0
        assert "no regression" in capsys.readouterr().out
        # doctored faster baseline: gate trips
        doc = json.loads(base.read_text())
        doc["wall_s"] *= 0.5
        base.write_text(json.dumps(doc))
        assert main(["analyze", "qcd", "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_analyze_bad_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["analyze", "stencil", "--baseline", str(bad)]) == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_analyze_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["analyze", "raytracer"])
