"""Application-driver tests: correctness and basic behaviour of the
four evaluation applications in every execution model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import conv3d as cv
from repro.apps import matmul as mm
from repro.apps import qcd as qc
from repro.apps import stencil as st
from repro.apps.common import MODELS, new_runtime, resolve_profile
from repro.gpu.errors import InvalidValueError
from repro.kernels.matmul import init_matrices
from repro.sim import AMD_HD7970, NVIDIA_K40M
from repro.sim.trace import audit


class TestCommon:
    def test_resolve_profile(self):
        assert resolve_profile("k40m") is NVIDIA_K40M
        assert resolve_profile("amd") is AMD_HD7970
        assert resolve_profile(NVIDIA_K40M) is NVIDIA_K40M
        with pytest.raises(InvalidValueError, match="device"):
            resolve_profile("voodoo2")

    def test_new_runtime_isolated(self):
        r1, r2 = new_runtime(), new_runtime()
        assert r1.device is not r2.device

    def test_version_set_helpers(self):
        cfg = st.StencilConfig(nz=10, ny=8, nx=8, iters=1)
        vs = st.run_all(cfg)
        assert set(vs.results) == {"naive", "pipelined", "pipelined-buffer"}
        assert vs.speedup("naive") == pytest.approx(1.0)
        assert -2.0 < vs.memory_saving() < 1.0
        assert "stencil" in vs.summary_row()


class TestStencilApp:
    CFG = st.StencilConfig(nz=12, ny=10, nx=9, iters=3, chunk_size=1, num_streams=2)

    @pytest.mark.parametrize("model", MODELS)
    def test_matches_reference(self, model):
        ref = st.reference(self.CFG)
        res, grid = st.run_checked(model, self.CFG)
        audit(res.timeline)
        assert np.allclose(grid, ref, rtol=1e-5, atol=1e-6)

    def test_iterations_aggregate(self):
        one = st.run_model("naive", st.StencilConfig(nz=10, ny=8, nx=8, iters=1))
        three = st.run_model("naive", st.StencilConfig(nz=10, ny=8, nx=8, iters=3))
        assert three.elapsed == pytest.approx(3 * one.elapsed, rel=0.05)

    def test_virtual_matches_real_timing(self):
        cfg = st.StencilConfig(nz=16, ny=32, nx=32, iters=2)
        real = st.run_model("pipelined-buffer", cfg, virtual=False)
        virt = st.run_model("pipelined-buffer", cfg, virtual=True)
        assert virt.elapsed == pytest.approx(real.elapsed, rel=1e-9)
        assert virt.memory_peak == real.memory_peak

    def test_figure2_pragma_region(self):
        region = st.make_region(self.CFG)
        assert region.pipeline.num_streams == 2
        assert region.pipeline_maps[0].var == "A0"


class TestConv3dApp:
    CFG = cv.Conv3dConfig(nz=10, ny=8, nx=7, chunk_size=2, num_streams=2)

    @pytest.mark.parametrize("model", MODELS)
    def test_matches_reference(self, model):
        ref = cv.reference(self.CFG)
        res, out = cv.run_checked(model, self.CFG)
        audit(res.timeline)
        assert np.allclose(out, ref, atol=1e-6)

    def test_paper_scale_memory_saving(self):
        vs = cv.run_all(cv.Conv3dConfig(), virtual=True)
        assert vs.memory_saving() > 0.9  # paper: 97%
        assert vs.naive.memory_peak > 3e9  # ~3.5 GB full footprint


class TestMatmulApp:
    def test_all_versions_match_reference(self):
        cfg = mm.MatmulConfig(n=48, block=16, num_streams=2)
        a, b, _ = init_matrices(48)
        ref = a @ b
        for model in mm.MATMUL_MODELS:
            res, c = mm.run_checked(model, cfg)
            audit(res.timeline)
            assert np.allclose(c, ref, rtol=1e-12), model

    def test_oom_returns_none_for_full_footprint(self):
        cfg = mm.MatmulConfig(n=24576)
        assert mm.run_model("baseline", cfg, virtual=True) is None
        assert mm.run_model("block_shared", cfg, virtual=True) is None
        assert mm.run_model("pipeline-buffer", cfg, virtual=True) is not None

    def test_oom_when_even_the_buffer_version_cannot_fit(self):
        """On the 3 GB HD 7970, large-n matmul cannot run under *any*
        model: the resident C alone exceeds the card.  All versions
        must report OOM rather than raise."""
        cfg = mm.MatmulConfig(n=24576)
        for model in mm.MATMUL_MODELS:
            assert mm.run_model(model, cfg, device="hd7970", virtual=True) is None
        # a size whose C fits still runs there
        ok = mm.run_model(
            "pipeline-buffer", mm.MatmulConfig(n=8192), device="hd7970", virtual=True
        )
        assert ok is not None

    def test_block_clamped_to_n(self):
        cfg = mm.MatmulConfig(n=8, block=512)
        assert cfg.block == 8 and cfg.nblocks == 1

    def test_sweep_structure(self):
        sweep = mm.run_sweep([64, 128], virtual=True, block=32)
        assert set(sweep) == {64, 128}
        assert set(sweep[64]) == set(mm.MATMUL_MODELS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            mm.run_model("quantum", mm.MatmulConfig(n=16))

    def test_non_contiguous_transfers_present(self):
        """A's column bands must be 2-D (pitched) copies: slower per
        byte than B's contiguous row bands."""
        cfg = mm.MatmulConfig(n=256, block=64, num_streams=2)
        res, _ = mm.run_checked("pipeline-buffer", cfg, virtual=True)
        h2d = res.timeline.by_kind("h2d")
        a_copies = [r for r in h2d if r.label.startswith("h2d:A")]
        b_copies = [r for r in h2d if r.label.startswith("h2d:B")]
        assert a_copies and b_copies
        a_rate = sum(r.nbytes for r in a_copies) / sum(r.duration for r in a_copies)
        b_rate = sum(r.nbytes for r in b_copies) / sum(r.duration for r in b_copies)
        assert a_rate < b_rate


class TestQcdApp:
    CFG = qc.QcdConfig(n=6, chunk_size=1, num_streams=2)

    @pytest.mark.parametrize("model", MODELS)
    def test_matches_reference(self, model):
        ref = qc.reference(self.CFG)
        res, eta = qc.run_checked(model, self.CFG)
        audit(res.timeline)
        assert np.allclose(eta, ref, atol=1e-5)

    def test_dataset_names(self):
        assert qc.QcdConfig.dataset("small").n == 12
        assert qc.QcdConfig.dataset("large").dataset_name == "qcd-large"
        assert qc.QcdConfig(n=7).dataset_name == "qcd-n7"

    def test_memory_saving_grows_with_size(self):
        savings = [
            qc.run_all(qc.QcdConfig.dataset(name), virtual=True).memory_saving()
            for name in ("small", "medium", "large")
        ]
        assert savings == sorted(savings)
        assert savings[-1] > 0.6  # paper: up to 79% for the large case

    def test_space_complexity_reduced_one_dimension(self):
        """The paper: splitting reduces O(C n^4) to O(C n^3)."""
        data = {}
        for n in (8, 16):
            vs = qc.run_all(qc.QcdConfig(n=n), virtual=True)
            data[n] = vs
        naive_growth = data[16].naive.data_peak / data[8].naive.data_peak
        buf_growth = data[16].buffer.data_peak / data[8].buffer.data_peak
        assert naive_growth > 12  # ~n^4 growth (16x)
        assert buf_growth < naive_growth / 1.8  # ~n^3 growth (8x)
