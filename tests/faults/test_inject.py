"""Unit tests for fault plans, the injector, and injection determinism.

The headline guarantees pinned here:

* the same ``(seed, program)`` produces a **bit-identical** fault
  timeline, including the retries the recovery layer performs, and
* an absent or inactive plan leaves results bit-identical to a run
  with no fault machinery at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    PROFILES,
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    PressureEvent,
    fault_profile,
)
from repro.faults.inject import hash_u01
from repro.gpu import Runtime
from repro.gpu.errors import InvalidValueError
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region
from tests.integration.test_determinism import timelines_equal


class TestHashU01:
    def test_range_and_determinism(self):
        for n in range(200):
            u = hash_u01(7, "fault:h2d", n)
            assert 0.0 <= u < 1.0
            assert u == hash_u01(7, "fault:h2d", n)

    def test_seed_and_domain_sensitivity(self):
        assert hash_u01(1, "jitter", 5) != hash_u01(2, "jitter", 5)
        assert hash_u01(1, "jitter", 5) != hash_u01(1, "fault:kernel", 5)
        assert hash_u01(1, "jitter", 5) != hash_u01(1, "jitter", 6)

    def test_roughly_uniform(self):
        us = [hash_u01(0, "u", n) for n in range(2000)]
        assert 0.45 < float(np.mean(us)) < 0.55


class TestFaultPlan:
    @pytest.mark.parametrize(
        "field",
        [
            "h2d_fault_rate", "d2h_fault_rate", "kernel_fault_rate",
            "bitflip_rate", "miscompute_rate",
        ],
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, field, bad):
        with pytest.raises(InvalidValueError, match=field):
            FaultPlan(**{field: bad})

    def test_negative_jitter_rejected(self):
        with pytest.raises(InvalidValueError, match="jitter"):
            FaultPlan(jitter=-0.5)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(InvalidValueError, match="bitflop"):
            FaultPlan(only_kinds=("bitflip", "bitflop"))

    @pytest.mark.parametrize(
        "kw, needle",
        [
            ({"slow_factor": 0.0}, "slow_factor"),
            ({"slow_factor": -2.0}, "slow_factor"),
            ({"slow_after": -1}, "slow_after"),
            ({"device_lost_at": 0}, "device_lost_at"),
            ({"max_transfer_faults": -1}, "max_transfer_faults"),
            ({"max_kernel_faults": -3}, "max_kernel_faults"),
            (
                {"pressure_events": (PressureEvent(at_retirement=1, nbytes=0),)},
                r"pressure_events\[0\].nbytes",
            ),
            (
                {"pressure_events": (
                    PressureEvent(at_retirement=-1, nbytes=64),)},
                r"pressure_events\[0\].at_retirement",
            ),
            (
                {"pressure_events": (
                    PressureEvent(at_retirement=1, nbytes=64, release_at=0),)},
                r"pressure_events\[0\].release_at",
            ),
            (
                {"pressure_events": (
                    PressureEvent(at_retirement=1, nbytes=64, leave_bytes=-5),)},
                r"pressure_events\[0\].leave_bytes",
            ),
        ],
    )
    def test_bad_values_rejected_naming_entry(self, kw, needle):
        with pytest.raises(InvalidValueError, match=needle):
            FaultPlan(**kw)

    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active

    @pytest.mark.parametrize(
        "kw",
        [
            {"h2d_fault_rate": 0.1},
            {"d2h_fault_rate": 0.1},
            {"kernel_fault_rate": 0.1},
            {"sticky_kernels": ("foo",)},
            {"jitter": 0.1},
            {"pressure_events": (PressureEvent(at_retirement=1, nbytes=64),)},
            {"device_lost_at": 5},
            {"bitflip_rate": 0.1},
            {"miscompute_rate": 0.1},
            {"slow_factor": 4.0},
        ],
    )
    def test_any_knob_activates(self, kw):
        assert FaultPlan(**kw).active

    def test_with_seed_copies(self):
        p = FaultPlan(h2d_fault_rate=0.2)
        q = p.with_seed(9)
        assert q.seed == 9 and q.h2d_fault_rate == 0.2
        assert p.seed == 0  # original untouched


class TestFaultProfiles:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profiles_resolve_and_stamp_seed(self, name):
        plan = fault_profile(name, seed=42)
        assert plan.seed == 42
        # every profile does something: device-level injection, or the
        # host-level crash trigger (deliberately not `active` — a pure
        # hostcrash plan must not install device injectors)
        assert plan.active or plan.crash_after_events is not None

    def test_unknown_profile_lists_known_names(self):
        with pytest.raises(KeyError, match="transient"):
            fault_profile("nosuch")


class _FakeMem:
    """Minimal allocator double for pressure-event unit tests."""

    def __init__(self, free: int) -> None:
        self.free = free

    def allocate(self, nbytes: int, tag: str = ""):
        rec = type("Rec", (), {"nbytes": nbytes})()
        self.free -= nbytes
        return rec

    def release(self, rec) -> None:
        self.free += rec.nbytes


class TestPressureEvents:
    def _fire(self, plan: FaultPlan, free: int, retirements: int) -> _FakeMem:
        inj = FaultInjector(plan)
        mem = _FakeMem(free)
        inj.attach_memory(mem)
        for _ in range(retirements):
            inj.after_retirement(None, 0.0)
        return mem

    def test_grab_clamped_to_free_pool(self):
        plan = FaultPlan(pressure_events=(PressureEvent(at_retirement=1, nbytes=1 << 62),))
        mem = self._fire(plan, free=1000, retirements=1)
        assert mem.free == 0

    def test_leave_bytes_floor(self):
        plan = FaultPlan(
            pressure_events=(
                PressureEvent(at_retirement=1, nbytes=1 << 62, leave_bytes=300),
            )
        )
        mem = self._fire(plan, free=1000, retirements=1)
        assert mem.free == 300

    def test_release_at_returns_memory(self):
        plan = FaultPlan(
            pressure_events=(
                PressureEvent(at_retirement=1, nbytes=400, release_at=3),
            )
        )
        inj = FaultInjector(plan)
        mem = _FakeMem(1000)
        inj.attach_memory(mem)
        inj.after_retirement(None, 0.0)
        assert mem.free == 600
        inj.after_retirement(None, 0.0)
        inj.after_retirement(None, 0.0)
        assert mem.free == 1000
        kinds = [ev[0] for ev in inj.events]
        assert kinds == ["pressure", "pressure-release"]


# ----------------------------------------------------------------------
# end-to-end determinism through the executor
# ----------------------------------------------------------------------
_NOISY = FaultPlan(
    h2d_fault_rate=0.15, d2h_fault_rate=0.15, kernel_fault_rate=0.08, jitter=0.1
)


def _run(plan, *, n=32, policy=None):
    """One pipelined-buffer run; returns (result, OUT copy, injector)."""
    rt = Runtime(NVIDIA_K40M)
    inj = rt.install_faults(plan) if plan is not None else None
    arrays = make_arrays(n)
    res = make_region(n, 2, 3).run(
        rt, arrays, ScaleKernel(), fault_policy=policy
    )
    return res, arrays["OUT"].copy(), inj


class TestInjectionDeterminism:
    def test_same_seed_bit_identical_timeline_and_output(self):
        policy = FaultPolicy(max_retries=8)
        a = _run(_NOISY.with_seed(3), policy=policy)
        b = _run(_NOISY.with_seed(3), policy=policy)
        assert a[2].fingerprint() == b[2].fingerprint()
        assert a[2].fault_count > 0  # the run actually exercised faults
        assert np.array_equal(a[1], b[1])
        assert a[0].elapsed == b[0].elapsed
        assert a[0].retries == b[0].retries

    def test_different_seed_different_timeline(self):
        policy = FaultPolicy(max_retries=8)
        a = _run(_NOISY.with_seed(1), policy=policy)
        b = _run(_NOISY.with_seed(2), policy=policy)
        assert a[2].fingerprint() != b[2].fingerprint()

    def test_inactive_plan_bit_identical_to_no_injector(self):
        bare_res, bare_out, _ = _run(None)
        idle_res, idle_out, inj = _run(FaultPlan())
        assert inj.fingerprint() == ()
        assert np.array_equal(bare_out, idle_out)
        assert bare_res.elapsed == idle_res.elapsed
        assert timelines_equal(bare_res.timeline, idle_res.timeline)

    def test_policy_without_faults_changes_nothing(self):
        """A fault policy on a clean run must not perturb results."""
        bare_res, bare_out, _ = _run(None)
        pol_res, pol_out, _ = _run(None, policy=FaultPolicy())
        assert np.array_equal(bare_out, pol_out)
        assert pol_res.elapsed == bare_res.elapsed
        assert pol_res.faults == 0 and pol_res.retries == 0
