"""Self-healing execution: chunk replay, degradation, pressure, loss.

Exercises ``region.run(..., fault_policy=...)`` end to end on the
synthetic :class:`ScaleKernel` region (exactly checkable output) and on
the paper's four applications via the chaos runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    FaultPolicy,
    PressureEvent,
    RegionFailure,
    run_chaos,
)
from repro.faults.policy import CHUNK_EXHAUSTED, CHUNK_OK, CHUNK_RECOVERED
from repro.gpu import Runtime
from repro.gpu.errors import DeviceLostError, InvalidValueError, KernelFaultError
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region

#: chunk 2 of a chunk_size=1 region over Loop("k", 1, n-1) runs [3, 4)
_STICKY_CHUNK2 = ("scale[3:4)",)


def _run(plan, policy, *, n=32, cs=1, ns=2):
    rt = Runtime(NVIDIA_K40M)
    if plan is not None:
        rt.install_faults(plan)
    arrays = make_arrays(n)
    res = make_region(n, cs, ns).run(rt, arrays, ScaleKernel(), fault_policy=policy)
    return rt, arrays, res


class TestChunkReplay:
    def test_transient_faults_recovered_exactly(self):
        plan = FaultPlan(
            h2d_fault_rate=0.15, d2h_fault_rate=0.15, kernel_fault_rate=0.08, seed=3
        )
        _, arrays, res = _run(plan, FaultPolicy(max_retries=8), cs=2, ns=3)
        assert np.array_equal(arrays["OUT"], expected(arrays, 32))
        assert res.model == "pipelined-buffer"
        assert res.faults > 0 and res.retries > 0

    def test_result_surfaces_recovery_effort(self):
        plan = FaultPlan(h2d_fault_rate=0.2, seed=1)
        _, _, res = _run(plan, FaultPolicy(max_retries=8), cs=2, ns=3)
        assert res.faults > 0
        d = res.to_dict()
        assert d["faults"] == res.faults and d["retries"] == res.retries
        assert "fault recovery" in res.summary()

    def test_clean_run_reports_zero_effort(self):
        _, arrays, res = _run(None, FaultPolicy())
        assert np.array_equal(arrays["OUT"], expected(arrays, 32))
        assert res.faults == 0 and res.retries == 0
        assert "fault recovery" not in res.summary()
        assert "faults" not in res.to_dict()


class TestExhaustion:
    def test_sticky_chunk_exhausts_with_per_chunk_status(self):
        plan = FaultPlan(sticky_kernels=_STICKY_CHUNK2)
        policy = FaultPolicy(max_retries=2, degrade=())
        with pytest.raises(RegionFailure) as ei:
            _run(plan, policy)
        exc = ei.value
        assert exc.chunk_status[2] == CHUNK_EXHAUSTED
        assert all(
            s in (CHUNK_OK, CHUNK_RECOVERED)
            for i, s in exc.chunk_status.items()
            if i != 2
        )
        assert exc.retries >= policy.max_retries
        assert any("exhausted" in a for a in exc.attempts)
        assert "failed chunks: [2]" in str(exc)

    def test_runtime_usable_after_region_failure(self):
        plan = FaultPlan(sticky_kernels=_STICKY_CHUNK2)
        rt = Runtime(NVIDIA_K40M)
        rt.install_faults(plan)
        arrays = make_arrays(32)
        region = make_region(32, 1, 2)
        with pytest.raises(RegionFailure):
            region.run(rt, arrays, ScaleKernel(), fault_policy=FaultPolicy(max_retries=1))
        # failure cleanup freed the region's device memory
        assert rt.memory_used == rt.device.profile.context_overhead_bytes
        rt.close()


class TestDegradation:
    def test_sticky_fault_degrades_to_naive(self):
        # the sticky label hits the buffer *and* manual-pipelined models
        # (both launch per-chunk kernels with range labels); naive's
        # single whole-region launch ("scale[naive]") escapes it.
        plan = FaultPlan(sticky_kernels=_STICKY_CHUNK2)
        policy = FaultPolicy(max_retries=1, degrade=("pipelined", "naive"))
        _, arrays, res = _run(plan, policy)
        assert res.model == "naive"
        assert np.array_equal(arrays["OUT"], expected(arrays, 32))
        assert res.retries > 0

    def test_unknown_degrade_model_rejected(self):
        plan = FaultPlan(sticky_kernels=_STICKY_CHUNK2)
        with pytest.raises(InvalidValueError, match="degrade"):
            _run(plan, FaultPolicy(degrade=("warp-speed",)))

    def test_without_policy_faults_raise_at_sync(self):
        plan = FaultPlan(sticky_kernels=_STICKY_CHUNK2)
        with pytest.raises(KernelFaultError):
            _run(plan, None)


class TestMemoryPressure:
    def _squeeze(self, leave: int, policy: FaultPolicy):
        """Run the region on a device squeezed down to ``leave`` free
        bytes (the grab fires on a warm-up copy's retirement)."""
        plan = FaultPlan(
            pressure_events=(
                PressureEvent(at_retirement=1, nbytes=1 << 62, leave_bytes=leave),
            )
        )
        rt = Runtime(NVIDIA_K40M)
        rt.install_faults(plan)
        d = rt.malloc((4,), np.float32)
        rt.memcpy_h2d(d, np.zeros(4, dtype=np.float32))  # retires -> grab fires
        rt.free(d)
        arrays = make_arrays(32)
        region = make_region(32, 4, 3)
        res = region.run(rt, arrays, ScaleKernel(), fault_policy=policy)
        return arrays, res

    def test_squeezed_pool_shrinks_plan_not_crash(self):
        region = make_region(32, 4, 3)
        arrays = make_arrays(32)
        bound = region.bind(arrays)
        requested = bound.device_bytes()
        minimal = bound.with_params(1, 1).device_bytes()
        leave = (minimal + requested) // 2
        arrays, res = self._squeeze(leave, FaultPolicy())
        assert np.array_equal(arrays["OUT"], expected(arrays, 32))
        assert (res.chunk_size, res.num_streams) != (4, 3)  # had to shrink

    def test_unfittable_pool_fails_structured(self):
        region = make_region(32, 4, 3)
        minimal = region.bind(make_arrays(32)).with_params(1, 1).device_bytes()
        policy = FaultPolicy(max_retries=2, degrade=())
        with pytest.raises(RegionFailure) as ei:
            self._squeeze(minimal // 4, policy)
        assert any("cannot fit memory" in a for a in ei.value.attempts)
        assert ei.value.retries == policy.max_retries  # the re-tune loop ran

    def test_retune_disabled_fails_immediately(self):
        region = make_region(32, 4, 3)
        minimal = region.bind(make_arrays(32)).with_params(1, 1).device_bytes()
        policy = FaultPolicy(retune_on_pressure=False, degrade=())
        with pytest.raises(RegionFailure) as ei:
            self._squeeze(minimal // 4, policy)
        assert ei.value.retries == 0


class TestDeviceLoss:
    def test_device_loss_is_terminal_under_policy(self):
        plan = FaultPlan(device_lost_at=10)
        with pytest.raises(RegionFailure, match="device lost"):
            _run(plan, FaultPolicy(max_retries=5, degrade=("naive",)))

    def test_device_loss_without_policy_raises_typed_error(self):
        plan = FaultPlan(device_lost_at=10)
        with pytest.raises(DeviceLostError):
            _run(plan, None)

    def test_close_survives_lost_device(self):
        plan = FaultPlan(device_lost_at=10)
        rt = Runtime(NVIDIA_K40M)
        rt.install_faults(plan)
        arrays = make_arrays(32)
        with pytest.raises(RegionFailure):
            make_region(32, 1, 2).run(
                rt, arrays, ScaleKernel(), fault_policy=FaultPolicy()
            )
        rt.close()  # teardown must not raise on the fault backlog
        assert rt.closed


#: seeds chosen so every app sees at least one injected fault
_CHAOS_SEEDS = {"stencil": 0, "3dconv": 0, "matmul": 1, "qcd": 0}


class TestChaosRunner:
    @pytest.mark.parametrize("app", sorted(_CHAOS_SEEDS))
    def test_apps_recover_to_reference(self, app):
        report = run_chaos(app, "transient", seed=_CHAOS_SEEDS[app])
        assert report.matches_reference
        assert report.faults_injected > 0
        assert report.retries > 0

    def test_report_is_deterministic(self):
        a = run_chaos("3dconv", "transient", seed=0)
        b = run_chaos("3dconv", "transient", seed=0)
        assert (a.faults_injected, a.retries, a.elapsed, a.max_error) == (
            b.faults_injected, b.retries, b.elapsed, b.max_error,
        )

    def test_summary_mentions_recovery(self):
        report = run_chaos("stencil", "transient", seed=0)
        text = report.summary()
        assert "faults injected" in text and "reference match  yes" in text

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="stencil"):
            run_chaos("nosuch")

    @pytest.mark.slow
    @pytest.mark.parametrize("profile", ["transient", "jitter", "chaos"])
    def test_seed_sweep_always_recovers(self, profile):
        for app in sorted(_CHAOS_SEEDS):
            for seed in range(3):
                report = run_chaos(app, profile, seed=seed)
                assert report.matches_reference, (
                    f"{app}/{profile} seed {seed}: {report.summary()}"
                )
