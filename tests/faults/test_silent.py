"""Silent-failure injection: bitflips, miscomputes, slow devices.

Unlike fail-stop faults, silent faults never raise — the command
retires successfully and only the data (or the clock) is wrong.  These
tests pin the injector-side guarantees the integrity layer builds on:

* silent corruption is **seeded and replayable** — the same
  ``(seed, program)`` flips the same bits at the same commands;
* a bitflip visibly corrupts the output when nothing verifies it
  (the whole reason `integrity="checksum"` exists);
* a slow-device plan inflates occupancy persistently once engaged and
  logs the engagement, without ever faulting;
* :func:`pool_fault_plans` confines a slowdown (like a device loss) to
  one deterministic carrier device so a pool keeps healthy peers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, fault_profile, pool_fault_plans
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region


def _run(plan=None, n=32, seed=5, integrity="off"):
    """One real-payload pipelined run; returns (arrays, result, injector)."""
    rng = np.random.default_rng(seed)
    arrays = make_arrays(n, rng)
    region = make_region(n)
    rt = Runtime(NVIDIA_K40M)
    injector = rt.install_faults(plan) if plan is not None else None
    with rt:
        res = region.run(rt, arrays, ScaleKernel(), integrity=integrity)
    return arrays, res, injector


class TestBitflip:
    def test_corrupts_output_silently(self):
        # a high-rate bitflip plan: no exception, wrong answer
        plan = FaultPlan(seed=3, bitflip_rate=0.5)
        arrays, res, inj = _run(plan)
        assert res.faults == 0  # silent: nothing fail-stop
        silent = [e for e in inj.events if e[0] == "silent"]
        assert silent and all(e[1] == "bitflip" for e in silent)
        assert not np.array_equal(arrays["OUT"], expected(arrays, 32))

    def test_timeline_is_seeded_and_replayable(self):
        plan = FaultPlan(seed=11, bitflip_rate=0.3)
        a1, _, i1 = _run(plan)
        a2, _, i2 = _run(plan)
        assert i1.events == i2.events
        assert a1["OUT"].tobytes() == a2["OUT"].tobytes()
        _, _, i3 = _run(FaultPlan(seed=12, bitflip_rate=0.3))
        assert i1.events != i3.events

    def test_only_kinds_gate(self):
        # restricting to miscompute mutes a bitflip-only plan entirely
        plan = FaultPlan(seed=3, bitflip_rate=0.5, only_kinds=("miscompute",))
        arrays, _, inj = _run(plan)
        assert not [e for e in inj.events if e[0] == "silent"]
        assert np.allclose(arrays["OUT"], expected(arrays, 32))


class TestSlowDevice:
    def test_inflates_elapsed_without_faulting(self):
        _, clean, _ = _run()
        plan = FaultPlan(seed=0, slow_factor=10.0, slow_after=4)
        arrays, slow, inj = _run(plan)
        assert slow.faults == 0
        assert slow.elapsed > clean.elapsed
        engaged = [e for e in inj.events if e[0] == "slow-device"]
        assert engaged and engaged[0][1] >= 4  # logs actual retired count
        # slow, not wrong: the data is still exact
        assert np.allclose(arrays["OUT"], expected(arrays, 32))

    def test_engagement_is_logged_once(self):
        plan = FaultPlan(seed=0, slow_factor=4.0, slow_after=2)
        _, _, inj = _run(plan)
        assert sum(1 for e in inj.events if e[0] == "slow-device") == 1


class TestProfiles:
    def test_sdc_profile_is_bitflip_only(self):
        plan = fault_profile("sdc", seed=7)
        assert plan.bitflip_rate > 0
        assert plan.miscompute_rate == 0
        assert plan.h2d_fault_rate == plan.kernel_fault_rate == 0

    def test_straggler_profile_slows_without_faulting(self):
        plan = fault_profile("straggler", seed=7)
        assert plan.slow_factor > 1.0
        assert plan.bitflip_rate == plan.h2d_fault_rate == 0


class TestPoolFaultPlans:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_straggler_confined_to_one_carrier(self, seed):
        plans = pool_fault_plans("straggler", seed=seed, count=3)
        slow = [i for i, p in enumerate(plans) if p.slow_factor != 1.0]
        assert slow == [seed % 3]

    def test_carrier_is_deterministic_and_seeds_distinct(self):
        a = pool_fault_plans("straggler", seed=4, count=3)
        b = pool_fault_plans("straggler", seed=4, count=3)
        assert a == b
        assert len({p.seed for p in a}) == 3

    def test_single_device_pool_keeps_full_plan(self):
        (plan,) = pool_fault_plans("straggler", seed=9, count=1)
        assert plan.slow_factor != 1.0
