"""Golden analysis-snapshot regression test.

``tests/golden/analyze_stencil.json`` is the byte-exact analysis
snapshot of the same small stencil run the ``repro analyze stencil``
CLI performs (floats rounded to 12 digits, keys sorted).  Any change
to the critical-path walk, the wait taxonomy, the what-if formulas, or
the underlying schedule shows up as a diff here.

The same file doubles as the ``--baseline`` input for the CI
regression-gate smoke in ``scripts/ci_check.sh``.

Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden
    git diff tests/golden/
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import analyze_result
from repro.obs.analyze.snapshot import round_floats

GOLDEN = Path(__file__).resolve().parent / "analyze_stencil.json"


def _snapshot() -> str:
    from repro.apps import stencil as st

    res = st.run_model(
        "pipelined-buffer",
        st.StencilConfig(nz=16, ny=64, nx=64, iters=1),
        "k40m", virtual=True,
    )
    analysis = analyze_result(res, meta={"app": "stencil", "device": "k40m"})
    return json.dumps(analysis.to_dict(), indent=2, sort_keys=True) + "\n"


def test_golden_analysis_snapshot(update_golden):
    text = _snapshot()
    if update_golden:
        GOLDEN.write_text(text, encoding="utf-8")
        return
    assert GOLDEN.exists(), (
        f"missing golden file {GOLDEN}; generate with "
        f"pytest tests/golden --update-golden"
    )
    assert text == GOLDEN.read_text(encoding="utf-8"), (
        "analysis snapshot drifted from tests/golden/analyze_stencil.json "
        "— if the analyzer or schedule change is intentional, rerun with "
        "--update-golden and review the diff"
    )


def test_golden_analysis_is_self_consistent():
    """Two fresh runs produce byte-identical snapshots."""
    assert _snapshot() == _snapshot()


def test_snapshot_floats_are_canonical():
    """The serialized snapshot survives round_floats unchanged (no
    hidden precision the 12-digit rounding missed)."""
    snap = json.loads(_snapshot())
    assert round_floats(snap) == snap
