"""Golden Chrome-trace regression tests.

Each of the paper's four applications has a canonical trace under
``tests/golden/<app>.json``: the full Chrome trace-event export of one
small pipelined-buffer run on a virtual K40m, passed through a
normalizing scrub (timestamps/durations rounded to 1e-4 us, keys
sorted).  The simulator is virtual-time deterministic, so the rendered
trace must match the golden file **byte for byte** — any schedule
change (command order, overlap, engine assignment, span attribution)
shows up as a diff here before it shows up as a silent perf shift.

When a schedule change is *intentional*, regenerate the files and
review the diff like source::

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden
    git diff tests/golden/

The scrub keeps the comparison stable across float-repr jitter without
hiding real changes: 1e-4 us is ~6 orders below any modelled duration.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Observability

GOLDEN_DIR = Path(__file__).resolve().parent

#: (config, runner) per app — tiny problems so the traces stay small
#: but still pipeline over several chunks and streams.
def _run_stencil(obs):
    from repro.apps import stencil as st

    return st.run_model(
        "pipelined-buffer",
        st.StencilConfig(nz=10, ny=16, nx=16, iters=1),
        "k40m", virtual=True, obs=obs,
    )


def _run_conv3d(obs):
    from repro.apps import conv3d as cv

    return cv.run_model(
        "pipelined-buffer",
        cv.Conv3dConfig(nz=10, ny=16, nx=16),
        "k40m", virtual=True, obs=obs,
    )


def _run_matmul(obs):
    from repro.apps import matmul as mm

    return mm.run_model(
        "pipeline-buffer",
        mm.MatmulConfig(n=96, block=16),
        "k40m", virtual=True, obs=obs,
    )


def _run_qcd(obs):
    from repro.apps import qcd as qc

    return qc.run_model(
        "pipelined-buffer",
        qc.QcdConfig(n=6),
        "k40m", virtual=True, obs=obs,
    )


CASES = {
    "conv3d": _run_conv3d,
    "matmul": _run_matmul,
    "qcd": _run_qcd,
    "stencil": _run_stencil,
}


def scrub(trace: dict) -> dict:
    """Normalize a Chrome trace for byte-stable comparison.

    Rounds ``ts``/``dur`` (and float args) to 1e-4 us and re-builds
    every event dict so ``json.dumps(..., sort_keys=True)`` yields a
    canonical byte stream.  Non-numeric content passes through intact.
    """
    def _num(v):
        return round(v, 4) if isinstance(v, float) else v

    events = []
    for e in trace["traceEvents"]:
        e = {k: _num(v) for k, v in e.items()}
        if isinstance(e.get("args"), dict):
            e["args"] = {k: _num(v) for k, v in e["args"].items()}
        events.append(e)
    return {"displayTimeUnit": trace["displayTimeUnit"], "traceEvents": events}


def render(trace: dict) -> str:
    """Canonical text form of a scrubbed trace."""
    return json.dumps(scrub(trace), indent=1, sort_keys=True) + "\n"


@pytest.mark.parametrize("app", sorted(CASES))
def test_golden_trace(app, update_golden):
    obs = Observability()
    res = CASES[app](obs)
    assert res is not None
    text = render(obs.chrome_trace())
    path = GOLDEN_DIR / f"{app}.json"
    if update_golden:
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; generate with "
        f"pytest tests/golden --update-golden"
    )
    assert text == path.read_text(encoding="utf-8"), (
        f"{app} trace drifted from tests/golden/{app}.json — if the "
        f"schedule change is intentional, rerun with --update-golden "
        f"and review the diff"
    )


@pytest.mark.parametrize("app", sorted(CASES))
def test_golden_trace_is_self_consistent(app):
    """Two fresh runs render byte-identical text (determinism guard)."""
    first = render(obs_trace(app))
    second = render(obs_trace(app))
    assert first == second


def obs_trace(app: str) -> dict:
    obs = Observability()
    CASES[app](obs)
    return obs.chrome_trace()
