"""Golden serve-journal regression test.

``tests/golden/serve_journal.jsonl`` pins the exact write-ahead journal
of one small stencil serving scenario: two tenants, one virtual K40m,
snapshots every 8 records.  The scheduler is virtual-time deterministic
and the journal encoding is canonical (sorted keys, compact separators,
``journal_path`` excluded from the header), so the file must match
**byte for byte** — any change to the event timeline, record shape, or
header contents shows up as a diff here before it breaks resume
compatibility in the field.

When a journal change is *intentional*, regenerate and review::

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden
    git diff tests/golden/serve_journal.jsonl

Bumping ``JOURNAL_FORMAT`` is part of that review whenever the record
shape changes — an old journal must never silently resume on a build
that encodes records differently.
"""

from __future__ import annotations

from pathlib import Path

from repro.serve import (
    DevicePool,
    RegionScheduler,
    ServeConfig,
    build_request,
)

GOLDEN = Path(__file__).resolve().parent / "serve_journal.jsonl"


def _journal_text(tmp_path) -> str:
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = str(tmp_path / "serve.journal")
    requests = [
        build_request("stencil", tenant="alice", priority=1,
                      config={"nz": 10, "ny": 16, "nx": 16}, virtual=True),
        build_request("stencil", tenant="bob",
                      config={"nz": 12, "ny": 16, "nx": 16}, virtual=True),
    ]
    pool = DevicePool("k40m", virtual=True)
    sched = RegionScheduler(
        pool, ServeConfig(journal_path=path, snapshot_every=8)
    )
    sched.submit_all(requests)
    report = sched.run()
    pool.close()
    assert report.ok
    return Path(path).read_text(encoding="utf-8")


def test_golden_serve_journal(tmp_path, update_golden):
    text = _journal_text(tmp_path)
    if update_golden:
        GOLDEN.write_text(text, encoding="utf-8")
        return
    assert GOLDEN.exists(), (
        f"missing golden file {GOLDEN}; generate with "
        f"pytest tests/golden --update-golden"
    )
    assert text == GOLDEN.read_text(encoding="utf-8"), (
        "serve journal drifted from tests/golden/serve_journal.jsonl — "
        "if the timeline or record-shape change is intentional, rerun "
        "with --update-golden, review the diff, and consider whether "
        "JOURNAL_FORMAT must be bumped"
    )


def test_golden_serve_journal_is_self_consistent(tmp_path):
    """Two fresh runs journal byte-identical text (determinism guard)."""
    a = _journal_text(tmp_path / "a")
    b = _journal_text(tmp_path / "b")
    assert a == b


def test_golden_journal_resumes_on_this_build(tmp_path):
    """The pinned journal is resumable by the current code."""
    import json

    from repro.serve import JournalReader

    if not GOLDEN.exists():
        return  # first generation pass
    path = tmp_path / "serve.journal"
    path.write_text(GOLDEN.read_text(encoding="utf-8"), encoding="utf-8")
    reader = JournalReader(str(path))
    assert reader.complete_run and reader.dropped == 0
    requests = [
        build_request("stencil", tenant="alice", priority=1,
                      config={"nz": 10, "ny": 16, "nx": 16}, virtual=True),
        build_request("stencil", tenant="bob",
                      config={"nz": 12, "ny": 16, "nx": 16}, virtual=True),
    ]
    pool = DevicePool("k40m", virtual=True)
    sched = RegionScheduler.resume(
        str(path), pool, requests, config=ServeConfig(snapshot_every=8)
    )
    report = sched.run()
    pool.close()
    assert report.ok
    j = report.journal
    assert j["resumed"] == 1 and j["replayed"] == len(reader.records)
    assert json.loads(json.dumps(report.to_dict()))  # JSON-safe end to end
