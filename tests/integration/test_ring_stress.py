"""Stress: ring reuse under artificially tight buffer capacities.

The executor's event dependencies must keep results exact even when
the memory limit squeezes the plan down to its minimum — maximal slot
recycling, maximal stall pressure, every wrap path exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion
from repro.core.memlimit import tune_plan
from repro.core.executor import execute_pipeline
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region


class TestTightRings:
    @pytest.mark.parametrize("ns", [1, 2, 3, 5, 8])
    def test_minimum_capacity_still_exact(self, ns):
        """Drive the plan to its smallest ring via a tight limit."""
        n = 96
        arrays = make_arrays(n)
        region = make_region(n, 8, ns)
        plan = region.bind(arrays)
        minimal = plan.with_params(1, 1).device_bytes()
        plan = tune_plan(plan.with_params(8, ns), minimal + 512)
        rt = Runtime(NVIDIA_K40M)
        res = execute_pipeline(rt, plan, arrays, ScaleKernel())
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], expected(arrays, n))

    def test_hundreds_of_laps_around_a_small_ring(self):
        """A long loop over a tiny ring: hundreds of slot reuses."""
        n = 600
        arrays = make_arrays(n)
        region = make_region(n, 1, 2)
        res = region.run(Runtime(NVIDIA_K40M), arrays, ScaleKernel())
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], expected(arrays, n))
        # the input ring holds only a handful of planes
        plan = region.plan_for(Runtime(NVIDIA_K40M), arrays)
        assert plan.ring_capacity("IN") < 12
        laps = (n - 2) / plan.ring_capacity("IN")
        assert laps > 50

    def test_wide_halo_tight_ring(self):
        """Halo 4 each side with a ring barely wider than one chunk."""
        from tests.properties.test_prop_pipeline import HaloSumKernel, reference

        halo, n = 4, 120
        region = TargetRegion.parse(
            f"pipeline(static[2,2]) "
            f"pipeline_map(to: IN[k-{halo}:{2 * halo + 1}][0:4]) "
            f"pipeline_map(from: OUT[k:1][0:4])",
            loop=Loop("k", halo, n - halo),
        )
        rng = np.random.default_rng(21)
        a = rng.integers(0, 9, size=(n, 4)).astype(float)
        arrays = {"IN": a, "OUT": np.zeros_like(a)}
        res = region.run(Runtime(NVIDIA_K40M), arrays, HaloSumKernel(halo))
        audit(res.timeline)
        assert np.array_equal(arrays["OUT"], reference(a, halo))

    def test_adaptive_schedule_with_memory_limit(self):
        """Adaptive ramping bounded by pipeline_mem_limit stays exact
        and inside the budget."""
        n = 300
        arrays = make_arrays(n)
        region = make_region(n, 1, 3, schedule="adaptive", mem="8KB")
        res = region.run(Runtime(NVIDIA_K40M), arrays, ScaleKernel())
        assert res.data_peak <= 8_192 + 512
        assert np.allclose(arrays["OUT"], expected(arrays, n))
