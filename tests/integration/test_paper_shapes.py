"""Integration tests asserting the paper's qualitative findings.

Each test pins one claim from the evaluation section.  These are the
inner assertions behind the benchmark harness; keeping them in the test
suite means a regression in any calibrated behaviour fails fast.
"""

from __future__ import annotations

import pytest

from repro.apps import conv3d as cv
from repro.apps import matmul as mm
from repro.apps import qcd as qc
from repro.apps import stencil as st


class TestK40mSpeedups:
    """Figure 5: 1.41x-1.65x over Naive on the K40m (generous bands)."""

    def test_conv3d_band(self):
        vs = cv.run_all(cv.Conv3dConfig(), virtual=True)
        assert 1.3 <= vs.speedup("pipelined") <= 1.7
        assert 1.3 <= vs.speedup("pipelined-buffer") <= 1.7

    def test_conv3d_buffer_matches_hand_coded(self):
        """The prototype "provides exactly the same performance
        compared to the hand-coded Pipelined version"."""
        vs = cv.run_all(cv.Conv3dConfig(), virtual=True)
        ratio = vs.buffer.elapsed / vs.pipelined.elapsed
        assert 0.95 <= ratio <= 1.10

    def test_qcd_speedup_grows_with_problem_size(self):
        ups = [
            qc.run_all(qc.QcdConfig.dataset(d), virtual=True).speedup("pipelined")
            for d in ("small", "medium", "large")
        ]
        assert ups[0] < ups[1] <= ups[2] + 0.05
        assert ups[-1] < 2.0  # theoretical upper bound

    def test_stencil_band(self):
        vs = st.run_all(st.StencilConfig(), virtual=True)
        assert 1.4 <= vs.speedup("pipelined-buffer") <= 2.0


class TestMemoryFindings:
    """Figure 6/10: memory savings 52%-97%, growing with problem size."""

    def test_conv3d_97_percent(self):
        vs = cv.run_all(cv.Conv3dConfig(), virtual=True)
        assert vs.memory_saving() >= 0.93

    def test_stencil_runtime_memory_dominates_small_case(self):
        """Paper: "the GPU runtime and scheduler, rather than the data
        set, consume a large portion of the memory for this small test
        case" — context overhead > ring buffers."""
        res = st.run_model(
            "pipelined-buffer", st.StencilConfig(iters=1), virtual=True
        )
        context = res.memory_peak - res.data_peak
        assert context > res.data_peak

    def test_stencil_saving_near_half(self):
        vs = st.run_all(st.StencilConfig(iters=1), virtual=True)
        assert 0.3 <= vs.memory_saving() <= 0.7  # "nearly 50%"

    def test_matmul_saving_approaches_two_thirds(self):
        res = mm.run_model(
            "pipeline-buffer", mm.MatmulConfig(n=14336), virtual=True
        )
        full = mm.run_model("block_shared", mm.MatmulConfig(n=14336), virtual=True)
        saving = 1 - res.memory_peak / full.memory_peak
        assert 0.5 <= saving <= 0.75  # paper: "nearly 66%"

    def test_qcd_splitting_cuts_one_dimension(self):
        big = qc.run_all(qc.QcdConfig.dataset("large"), virtual=True)
        assert 0.6 <= big.memory_saving() <= 0.9  # paper: up to 79%


class TestAmdFindings:
    """Figure 8: chunked pipelining loses on the HD 7970 at default
    chunk counts and wins only with a handful of chunks."""

    def amd_conv(self, nchunks):
        nz = 384
        cs = max(1, (nz - 2) // nchunks)
        cfg = cv.Conv3dConfig(nz=nz, ny=384, nx=384, chunk_size=cs, num_streams=2)
        return cv.run_all(cfg, device="hd7970", virtual=True)

    def test_default_chunks_slower_than_naive(self):
        vs = self.amd_conv(382)  # chunk size 1: the paper's default
        assert vs.speedup("pipelined") < 0.85  # paper: 57% slower

    def test_two_chunks_modest_win(self):
        vs = self.amd_conv(2)
        assert 1.05 <= vs.speedup("pipelined") <= 1.45  # paper: ~1.2x

    def test_sweet_spot_beats_two_chunks(self):
        assert (
            self.amd_conv(6).speedup("pipelined")
            > self.amd_conv(2).speedup("pipelined")
        )

    def test_many_chunks_degrade(self):
        assert (
            self.amd_conv(48).speedup("pipelined")
            < self.amd_conv(6).speedup("pipelined")
        )

    def test_nvidia_insensitive_where_amd_degrades(self):
        """Paper: chunk-count overhead "can be ignored on NVIDIA
        GPUs" — at the paper's K40m dataset, chunk size barely moves
        the speedup, while the same variation swings AMD results
        drastically (the sweep tests above)."""
        nv_1 = cv.run_all(cv.Conv3dConfig(chunk_size=1), virtual=True).speedup(
            "pipelined"
        )
        nv_8 = cv.run_all(cv.Conv3dConfig(chunk_size=8), virtual=True).speedup(
            "pipelined"
        )
        assert abs(nv_1 - nv_8) < 0.15


class TestMatmulFindings:
    """Figure 9: tiled kernel ~3x; pipelining hides transfers."""

    def test_block_shared_about_3x(self):
        cfg = mm.MatmulConfig(n=8192)
        base = mm.run_model("baseline", cfg, virtual=True)
        tiled = mm.run_model("block_shared", cfg, virtual=True)
        assert 2.5 <= base.elapsed / tiled.elapsed <= 3.5

    def test_pipeline_buffer_matches_block_shared(self):
        cfg = mm.MatmulConfig(n=8192)
        tiled = mm.run_model("block_shared", cfg, virtual=True)
        buf = mm.run_model("pipeline-buffer", cfg, virtual=True)
        assert abs(buf.elapsed / tiled.elapsed - 1) < 0.08

    def test_transfers_fully_hidden_when_compute_bound(self):
        """The streamed A/B bands hide under the GEMM chunks; only the
        resident C's entry/exit copies and the first A band cannot be
        overlapped, so the overall fraction sits below 1.0."""
        res = mm.run_model("pipeline-buffer", mm.MatmulConfig(n=8192), virtual=True)
        assert res.overlap > 0.7

    def test_out_of_memory_sizes_run_only_with_buffer(self):
        cfg = mm.MatmulConfig(n=20480)
        assert mm.run_model("baseline", cfg, virtual=True) is None
        assert mm.run_model("block_shared", cfg, virtual=True) is None
        res = mm.run_model("pipeline-buffer", cfg, virtual=True)
        assert res is not None
        assert res.memory_peak < 10e9


class TestHeadline:
    """Abstract: 1.41x-1.65x speedup, 52%-97% memory reduction."""

    def test_headline_bands(self):
        sets = [
            cv.run_all(cv.Conv3dConfig(), virtual=True),
            st.run_all(st.StencilConfig(), virtual=True),
            qc.run_all(qc.QcdConfig.dataset("large"), virtual=True),
        ]
        speedups = [vs.speedup("pipelined-buffer") for vs in sets]
        savings = [vs.memory_saving() for vs in sets]
        assert all(1.3 <= s <= 2.0 for s in speedups)
        assert all(0.30 <= m <= 0.99 for m in savings)
        assert max(savings) > 0.9
