"""Integration: tofrom-pipelined arrays and the dual-DMA-engine path."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import RegionKernel, TargetRegion
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import Device, NVIDIA_K40M
from repro.sim.trace import audit


class InPlaceScale(RegionKernel):
    """A[k] = 2 * A[k] + 1 — the array is both input and output."""

    name = "inplace"
    index_penalty = 0.0

    def cost(self, profile, t0, t1):
        return (t1 - t0) * 1e-5

    def run(self, views, t0, t1):
        a = views["A"].take(t0, t1)
        a[...] = 2 * a + 1


def tofrom_region(n, cs=1, ns=2, halo="dedup"):
    return TargetRegion.parse(
        f"pipeline(static[{cs},{ns}]) pipeline_map(tofrom: A[k:1][0:8])",
        loop=Loop("k", 0, n),
        halo_mode=halo,
    )


class TestTofromPipelined:
    @pytest.mark.parametrize("model", ["naive", "pipelined", "pipelined-buffer"])
    @pytest.mark.parametrize("cs,ns", [(1, 2), (3, 3)])
    def test_in_place_update_all_models(self, model, cs, ns):
        n = 24
        rng = np.random.default_rng(2)
        a = rng.random((n, 8))
        expect = 2 * a + 1
        arrays = {"A": a.copy()}
        region = tofrom_region(n, cs, ns)
        res = region.run(Runtime(NVIDIA_K40M), arrays, InPlaceScale(), model=model)
        audit(res.timeline)
        assert np.allclose(arrays["A"], expect)

    def test_tofrom_moves_data_both_ways(self):
        n = 24
        arrays = {"A": np.zeros((n, 8))}
        res = tofrom_region(n).run(Runtime(NVIDIA_K40M), arrays, InPlaceScale())
        nbytes = arrays["A"].nbytes
        assert sum(r.nbytes for r in res.timeline.by_kind("h2d")) == nbytes
        assert sum(r.nbytes for r in res.timeline.by_kind("d2h")) == nbytes

    def test_tofrom_with_halo_reads_previous_output_region(self):
        """A tofrom clause with halo: A[k] = A[k] + A[k-1] (input halo
        reads the *original* values because transfers are deduped and
        each plane is uploaded before any kernel writes it)."""

        class PrefixLike(RegionKernel):
            name = "prefixlike"
            index_penalty = 0.0

            def cost(self, profile, t0, t1):
                return (t1 - t0) * 1e-5

            def run(self, views, t0, t1):
                a = views["A"]
                # A[k-1:2] -> the chunk's window is [t0-1, t1)
                win = a.take(t0 - 1, t1)
                out = a.take(t0, t1)
                # read k-1 (already updated by the previous chunk, as
                # in the sequential in-place loop) and k, write k
                out[...] = win[:-1] + win[1:]

        n = 16
        rng = np.random.default_rng(3)
        a0 = rng.random((n, 4))
        # sequential in-place reference
        ref = a0.copy()
        for k in range(1, n):
            ref[k] = ref[k - 1] + ref[k]
        region = TargetRegion.parse(
            "pipeline(static[1,1]) pipeline_map(tofrom: A[k-1:2][0:4])",
            loop=Loop("k", 1, n),
        )
        arrays = {"A": a0.copy()}
        region.run(Runtime(NVIDIA_K40M), arrays, PrefixLike())
        assert np.allclose(arrays["A"], ref)


class TestDualDmaEngines:
    DUAL = dataclasses.replace(NVIDIA_K40M, dma_engines=2)

    def test_directional_engines(self):
        d = Device(self.DUAL)
        a = d.submit_copy("h2d", 1000)
        b = d.submit_copy("d2h", 1000)
        d.wait_all()
        assert a.engine == "dma0" and b.engine == "dma1"

    def test_h2d_d2h_overlap_with_two_engines(self):
        d = Device(self.DUAL)
        a = d.submit_copy("h2d", 100_000_000)
        b = d.submit_copy("d2h", 100_000_000)
        d.wait_all()
        assert b.start_time < a.finish_time  # concurrent

    def test_pipeline_correct_on_dual_engine_device(self):
        n = 24
        rng = np.random.default_rng(4)
        a = rng.random((n, 8))
        arrays = {"A": a.copy()}
        rt = Runtime(Device(self.DUAL))
        res = tofrom_region(n, 2, 2).run(rt, arrays, InPlaceScale())
        audit(res.timeline)
        assert np.allclose(arrays["A"], 2 * a + 1)
        engines = {r.engine for r in res.timeline.records}
        assert {"dma0", "dma1"} <= engines
