"""Integration: regions composed sequentially on one runtime.

Real applications (the stencil's iterated sweeps, multi-phase solvers)
run many regions back-to-back on one device.  Clocks, memory, and event
bookkeeping must compose cleanly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region


class TestSequentialRegions:
    def test_back_to_back_regions_accumulate_time(self):
        rt = Runtime(NVIDIA_K40M)
        n = 32
        arrays = make_arrays(n)
        region = make_region(n, 2, 2)
        r1 = region.run(rt, arrays, ScaleKernel())
        t_mid = rt.elapsed
        r2 = region.run(rt, arrays, ScaleKernel())
        assert rt.elapsed > t_mid
        assert r2.elapsed == pytest.approx(r1.elapsed, rel=0.2)
        audit(rt.timeline())

    def test_memory_returns_between_regions(self):
        rt = Runtime(NVIDIA_K40M)
        n = 64
        region = make_region(n, 1, 3)
        base = rt.memory_used
        for _ in range(5):
            region.run(rt, make_arrays(n), ScaleKernel())
            assert rt.memory_used == base

    def test_results_stay_correct_across_reuse(self):
        rt = Runtime(NVIDIA_K40M)
        n = 40
        region = make_region(n, 3, 2)
        for trial in range(4):
            arrays = make_arrays(n, rng=np.random.default_rng(trial))
            region.run(rt, arrays, ScaleKernel())
            assert np.allclose(arrays["OUT"], expected(arrays, n)), trial

    def test_mixed_models_on_one_runtime(self):
        rt = Runtime(NVIDIA_K40M)
        n = 32
        region = make_region(n, 2, 2)
        a1, a2, a3 = make_arrays(n), make_arrays(n), make_arrays(n)
        region.run(rt, a1, ScaleKernel(), model="naive")
        region.run(rt, a2, ScaleKernel(), model="pipelined")
        region.run(rt, a3, ScaleKernel())
        assert np.array_equal(a1["OUT"], a2["OUT"])
        assert np.array_equal(a1["OUT"], a3["OUT"])
        audit(rt.timeline())

    def test_per_region_measurement_isolated(self):
        """The second region's RegionResult must not include the
        first's commands or memory peak."""
        rt = Runtime(NVIDIA_K40M)
        n = 64
        big = make_region(n, 8, 8)
        small = make_region(n, 1, 1)
        r_big = big.run(rt, make_arrays(n), ScaleKernel())
        r_small = small.run(rt, make_arrays(n), ScaleKernel())
        # coarse chunks -> few commands, big buffers; fine chunks ->
        # many commands, small buffers; neither sees the other's half
        assert len(r_big.timeline) < len(r_small.timeline)
        assert r_small.data_peak < r_big.data_peak
        assert r_big.nchunks == 8 and r_small.nchunks == 62

    def test_overhead_scales_restored_after_region(self):
        rt = Runtime(NVIDIA_K40M)
        n = 32
        region = make_region(n, 1, 8)
        region.run(rt, make_arrays(n), ScaleKernel())
        assert rt.call_overhead_scale == 1.0
        assert rt.command_overhead == 0.0
        region.run(rt, make_arrays(n), ScaleKernel(), model="pipelined")
        assert rt.call_overhead_scale == 1.0
        assert rt.command_overhead == 0.0


class TestFailureInjection:
    def test_kernel_exception_propagates(self):
        class Boom(ScaleKernel):
            def run(self, views, t0, t1):
                raise RuntimeError("kernel exploded")

        rt = Runtime(NVIDIA_K40M)
        n = 16
        with pytest.raises(RuntimeError, match="kernel exploded"):
            make_region(n).run(rt, make_arrays(n), Boom())

    def test_scales_restored_after_kernel_exception(self):
        class Boom(ScaleKernel):
            def run(self, views, t0, t1):
                raise RuntimeError("boom")

        rt = Runtime(NVIDIA_K40M)
        n = 16
        with pytest.raises(RuntimeError):
            make_region(n, 1, 4).run(rt, make_arrays(n), Boom())
        assert rt.call_overhead_scale == 1.0
        assert rt.command_overhead == 0.0

    def test_negative_kernel_cost_rejected(self):
        class Negative(ScaleKernel):
            def cost(self, profile, t0, t1):
                return -1.0

        rt = Runtime(NVIDIA_K40M)
        n = 16
        with pytest.raises(ValueError):
            make_region(n).run(rt, make_arrays(n), Negative())
