"""Regression tests: every shipped example must run and self-validate.

The examples assert their own numerical correctness internally; here we
execute them as scripts (small sizes where they accept argv) and check
the headline lines they print.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=(), capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "True" in out and "speedup" in out
        assert "legend" in out  # gantt printed

    def test_stencil_pipeline_small(self, capsys):
        out = run_example("stencil_pipeline.py", ["24", "96", "96", "2"], capsys=capsys)
        assert "validated against NumPy" in out
        assert "pipelined-buffer" in out

    def test_out_of_core_matmul(self, capsys):
        out = run_example("out_of_core_matmul.py", capsys=capsys)
        assert "validated against NumPy" in out
        assert out.count("OOM") >= 4
        assert "24576" in out

    def test_qcd_offload(self, capsys):
        out = run_example("qcd_offload.py", capsys=capsys)
        assert "validated against NumPy" in out
        assert "qcd-large" in out

    def test_amd_tuning(self, capsys):
        out = run_example("amd_tuning.py", capsys=capsys)
        assert "HD 7970" in out
        assert "adaptive schedule" in out
        assert "pipeline_mem_limit" in out

    def test_heterogeneous_cluster(self, capsys):
        out = run_example("heterogeneous_cluster.py", capsys=capsys)
        assert "autotuning" in out
        assert "K40m + HD7970" in out

    def test_tiled_image_filter(self, capsys):
        out = run_example("tiled_image_filter.py", capsys=capsys)
        assert "result validated against NumPy" in out
        assert "tiles" in out
