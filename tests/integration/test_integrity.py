"""End-to-end silent-failure defense: the differential proof.

For each of the paper's four applications, single-device and 3-shard:

* **sdc chaos + ``integrity="checksum"``** detects the injected
  bitflips and recovers **byte-identical** output versus a fault-free
  run (``.tobytes()`` equality — ``np.array_equal`` cannot see a
  ``-0.0`` sign flip);
* **sdc chaos + ``integrity="off"``** provably corrupts the output —
  silent corruption is observable, so the checksum layer is doing real
  work, not vacuously passing;
* **vote mode** catches kernel *miscomputes* that checksums cannot
  (a wrong-but-self-consistent output digests equal on both sides of
  its drain);
* verification cost is modeled in virtual time (integrity-on runs are
  slower) and attributed on the critical path as ``exec.verify``.

Seeds are per-(app, shards): inserting verify commands shifts the
global command sequence the injector hashes on, so integrity-on and
integrity-off runs corrupt at different points.  Each mode is compared
against the *clean* baseline, never against the other mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.common import new_runtime
from repro.faults import FaultPlan, fault_profile, pool_fault_plans
from repro.faults.policy import FaultPolicy
from repro.obs.analyze import analyze_result

APPS = ("stencil", "conv3d", "matmul", "qcd")

#: seeds where the sdc profile provably lands >= 1 bitflip on the
#: integrity-on timeline (checksum detects) ...
DETECT_SEED = {
    ("stencil", 1): 4, ("stencil", 3): 0,
    ("conv3d", 1): 4, ("conv3d", 3): 0,
    ("matmul", 1): 2, ("matmul", 3): 3,
    ("qcd", 1): 4, ("qcd", 3): 3,
}
#: ... and where the integrity-off timeline provably corrupts output
CORRUPT_SEED = {
    ("stencil", 1): 4, ("stencil", 3): 0,
    ("conv3d", 1): 4, ("conv3d", 3): 0,
    ("matmul", 1): 2, ("matmul", 3): 3,
    ("qcd", 1): 4, ("qcd", 3): 2,
}


def _setup(app):
    """(arrays, region, kernel, output var) at chaos-test sizes."""
    if app == "stencil":
        from repro.apps import stencil as m
        from repro.kernels.stencil3d import StencilKernel

        cfg = m.StencilConfig(nz=12, ny=24, nx=24, iters=1, num_streams=2)
        return m.make_arrays(cfg), m.make_region(cfg), StencilKernel(cfg.ny, cfg.nx), "Anext"
    if app == "conv3d":
        from repro.apps import conv3d as m
        from repro.kernels.conv3d import Conv3dKernel

        cfg = m.Conv3dConfig(nz=12, ny=24, nx=24, num_streams=2)
        return m.make_arrays(cfg), m.make_region(cfg), Conv3dKernel(cfg.ny, cfg.nx), "B"
    if app == "matmul":
        from repro.apps import matmul as m
        from repro.kernels.matmul import MatmulChunkKernel

        cfg = m.MatmulConfig(n=48, block=8, num_streams=2)
        return m.make_arrays(cfg), m.make_region(cfg), MatmulChunkKernel(cfg.n, cfg.block), "C"
    if app == "qcd":
        from repro.apps import qcd as m
        from repro.kernels.qcd import DslashKernel

        cfg = m.QcdConfig(n=6, num_streams=2)
        return m.make_arrays(cfg), m.make_region(cfg), DslashKernel(cfg.n, cfg.n, cfg.n), "eta"
    raise KeyError(app)


def _run(app, *, plan=None, integrity="off", shards=1):
    """One run; returns (output bytes, result)."""
    arrays, region, kernel, out = _setup(app)
    policy = FaultPolicy(max_retries=4) if plan is not None else None
    if shards == 1:
        rt = new_runtime("k40m")
        if plan is not None:
            rt.install_faults(plan)
        with rt:
            res = region.run(
                rt, arrays, kernel, integrity=integrity, fault_policy=policy
            )
    else:
        rts = [new_runtime("k40m") for _ in range(shards)]
        if plan is not None:
            for rt, p in zip(rts, plan):
                rt.install_faults(p)
        for rt in rts:
            rt.__enter__()
        try:
            res = region.run(
                None, arrays, kernel, devices=rts,
                integrity=integrity, fault_policy=policy,
            )
        finally:
            for rt in rts:
                rt.__exit__(None, None, None)
    return arrays[out].tobytes(), res


def _sdc(app, shards, seed):
    if shards == 1:
        return fault_profile("sdc", seed)
    return pool_fault_plans("sdc", seed=seed, count=shards)


@pytest.mark.parametrize("shards", [1, 3])
@pytest.mark.parametrize("app", APPS)
class TestChecksumDifferential:
    def test_checksum_detects_and_recovers_byte_exact(self, app, shards):
        clean, _ = _run(app, shards=shards)
        seed = DETECT_SEED[app, shards]
        out, res = _run(
            app, plan=_sdc(app, shards, seed),
            integrity="checksum", shards=shards,
        )
        assert res.corruptions >= 1  # the chaos was real and was seen
        assert res.verified > res.corruptions
        assert out == clean  # byte-identical through injected bitflips

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # flipped exponents
    def test_verification_off_provably_corrupts(self, app, shards):
        clean, _ = _run(app, shards=shards)
        seed = CORRUPT_SEED[app, shards]
        out, res = _run(
            app, plan=_sdc(app, shards, seed), integrity="off", shards=shards,
        )
        assert res.corruptions == 0  # nothing watching ...
        assert out != clean  # ... and the output is silently wrong


class TestVoteMode:
    def test_vote_catches_miscompute_checksum_misses(self):
        plan = FaultPlan(seed=0, miscompute_rate=0.15)
        clean, _ = _run("conv3d")
        vout, vres = _run("conv3d", plan=plan, integrity="vote")
        assert vres.corruptions >= 1
        assert vout == clean
        # the same plan under checksum-only: undetected, wrong output
        cout, cres = _run("conv3d", plan=plan, integrity="checksum")
        assert cres.corruptions == 0
        assert cout != clean


class TestVerificationCost:
    def test_modeled_in_virtual_time_and_attributed(self):
        _, off = _run("stencil")
        _, on = _run("stencil", integrity="checksum")
        assert on.elapsed > off.elapsed  # checks cost virtual time
        totals = analyze_result(on).breakdown.totals()
        assert totals.get("exec.verify", 0.0) > 0.0
        assert "exec.verify" not in analyze_result(off).breakdown.totals()

    def test_fault_free_checksum_is_quiet_and_exact(self):
        clean, _ = _run("qcd")
        out, res = _run("qcd", integrity="checksum")
        assert res.corruptions == 0  # no false positives
        assert res.verified > 0
        assert out == clean
