"""Determinism: identical configurations produce identical simulations.

The simulator is documented as fully deterministic (tie-breaks by
enqueue sequence, no wall-clock or RNG in the event loop).  These tests
pin that guarantee — it is what makes calibration stable, benchmarks
reproducible, and the autotuner's dry runs trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import conv3d as cv
from repro.apps import qcd as qc
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, make_arrays, make_region, run


def timelines_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a.records, b.records):
        if (ra.kind, ra.label, ra.engine, ra.stream) != (
            rb.kind, rb.label, rb.engine, rb.stream,
        ):
            return False
        if not (
            ra.start == rb.start and ra.finish == rb.finish and ra.nbytes == rb.nbytes
        ):
            return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("model", ["naive", "pipelined", "pipelined-buffer"])
    def test_identical_runs_identical_timelines(self, model):
        n = 48
        results = []
        for _ in range(2):
            arrays = make_arrays(n)
            results.append(
                run(model, make_region(n, 2, 3), Runtime(NVIDIA_K40M), arrays)
            )
        a, b = results
        assert a.elapsed == b.elapsed
        assert a.memory_peak == b.memory_peak
        assert timelines_equal(a.timeline, b.timeline)

    def test_app_level_determinism(self):
        r1 = cv.run_model("pipelined-buffer", cv.Conv3dConfig(), virtual=True)
        r2 = cv.run_model("pipelined-buffer", cv.Conv3dConfig(), virtual=True)
        assert r1.elapsed == r2.elapsed
        assert timelines_equal(r1.timeline, r2.timeline)

    def test_qcd_speedup_bitwise_stable(self):
        s1 = qc.run_all(qc.QcdConfig.dataset("medium"), virtual=True)
        s2 = qc.run_all(qc.QcdConfig.dataset("medium"), virtual=True)
        assert s1.speedup("pipelined") == s2.speedup("pipelined")

    def test_functional_output_bitwise_stable(self):
        n = 40
        outs = []
        for _ in range(2):
            arrays = make_arrays(n)
            run("pipelined-buffer", make_region(n, 3, 4), Runtime(NVIDIA_K40M), arrays)
            outs.append(arrays["OUT"].copy())
        assert np.array_equal(outs[0], outs[1])
