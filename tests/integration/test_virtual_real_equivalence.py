"""Virtual-mode runs must be *timing-identical* to real-mode runs.

This is the property that justifies running the paper-scale sweeps
(Figures 9/10, the 3.5 GB conv3d) in metadata-only mode: the simulated
timeline, elapsed time, transfer byte counts, and memory peaks depend
only on shapes/dtypes, never on array contents or on whether payloads
execute.
"""

from __future__ import annotations

import pytest

from repro.apps import conv3d as cv
from repro.apps import matmul as mm
from repro.apps import qcd as qc
from repro.apps import stencil as st
from repro.apps.common import MODELS


def assert_equivalent(real, virt):
    assert virt.elapsed == pytest.approx(real.elapsed, rel=1e-12)
    assert virt.memory_peak == real.memory_peak
    assert virt.nchunks == real.nchunks
    rd, vd = real.time_distribution, virt.time_distribution
    for kind in rd:
        assert vd[kind] == pytest.approx(rd[kind], rel=1e-12)
    assert len(virt.timeline) == len(real.timeline)
    for a, b in zip(real.timeline, virt.timeline):
        assert a.kind == b.kind and a.nbytes == b.nbytes
        assert b.start == pytest.approx(a.start, rel=1e-12)
        assert b.finish == pytest.approx(a.finish, rel=1e-12)


@pytest.mark.parametrize("model", MODELS)
def test_stencil_virtual_equivalence(model):
    cfg = st.StencilConfig(nz=12, ny=16, nx=16, iters=2, num_streams=3)
    assert_equivalent(
        st.run_model(model, cfg, virtual=False), st.run_model(model, cfg, virtual=True)
    )


@pytest.mark.parametrize("model", MODELS)
def test_conv3d_virtual_equivalence(model):
    cfg = cv.Conv3dConfig(nz=12, ny=16, nx=16, chunk_size=2, num_streams=2)
    assert_equivalent(
        cv.run_model(model, cfg, virtual=False), cv.run_model(model, cfg, virtual=True)
    )


@pytest.mark.parametrize("model", mm.MATMUL_MODELS)
def test_matmul_virtual_equivalence(model):
    cfg = mm.MatmulConfig(n=64, block=16, num_streams=2)
    assert_equivalent(
        mm.run_model(model, cfg, virtual=False), mm.run_model(model, cfg, virtual=True)
    )


@pytest.mark.parametrize("model", MODELS)
def test_qcd_virtual_equivalence(model):
    cfg = qc.QcdConfig(n=6, num_streams=2)
    assert_equivalent(
        qc.run_model(model, cfg, virtual=False), qc.run_model(model, cfg, virtual=True)
    )


@pytest.mark.parametrize("device", ["k40m", "hd7970"])
def test_equivalence_holds_on_both_devices(device):
    cfg = st.StencilConfig(nz=10, ny=12, nx=12, iters=1)
    assert_equivalent(
        st.run_model("pipelined-buffer", cfg, device, virtual=False),
        st.run_model("pipelined-buffer", cfg, device, virtual=True),
    )
