"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import Runtime
from repro.sim import AMD_HD7970, NVIDIA_K40M, Device


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden Chrome-trace files under tests/golden/ "
        "from the current simulator output instead of comparing to them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden files, not compare."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def k40m() -> Runtime:
    """A fresh runtime on a simulated K40m."""
    return Runtime(Device(NVIDIA_K40M))


@pytest.fixture
def hd7970() -> Runtime:
    """A fresh runtime on a simulated HD 7970."""
    return Runtime(Device(AMD_HD7970))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(0xC0FFEE)
