"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import Runtime
from repro.sim import AMD_HD7970, NVIDIA_K40M, Device


@pytest.fixture
def k40m() -> Runtime:
    """A fresh runtime on a simulated K40m."""
    return Runtime(Device(NVIDIA_K40M))


@pytest.fixture
def hd7970() -> Runtime:
    """A fresh runtime on a simulated HD 7970."""
    return Runtime(Device(AMD_HD7970))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG."""
    return np.random.default_rng(0xC0FFEE)
