"""Unit tests for array-section range math."""

from __future__ import annotations

import pytest

from repro.directives.clauses import Affine, DirectiveError, Loop, PipelineMapClause
from repro.directives.splitspec import SplitSpec, chunk_range, iter_range


def clause(a=1, b=-1, size=3, extent=64, split_dim=0, other=(0, 32), direction="to"):
    dims = [(0, extent), other] if split_dim == 0 else [other, (0, extent)]
    return PipelineMapClause(
        direction=direction,
        var="A",
        split_dim=split_dim,
        split_iter=Affine(a, b),
        size=size,
        dims=tuple(dims),
    )


LOOP = Loop("k", 1, 63)


class TestRanges:
    def test_iter_range_stencil(self):
        # A0[k-1:3]: iteration k touches [k-1, k+2)
        c = clause()
        assert iter_range(c, 5) == (4, 7)

    def test_iter_range_clamped_low(self):
        c = clause()
        assert iter_range(c, 0) == (0, 2)  # k-1 = -1 clamps to 0

    def test_iter_range_clamped_high(self):
        c = clause(extent=10)
        assert iter_range(c, 9) == (8, 10)

    def test_chunk_range_spans_chunk(self):
        c = clause()
        assert chunk_range(c, 1, 5) == (0, 6)  # iters 1..4 touch planes 0..5

    def test_chunk_range_single_iteration(self):
        c = clause()
        assert chunk_range(c, 5, 6) == iter_range(c, 5)

    def test_chunk_range_strided_affine(self):
        # A[kb*512 : 512]: chunk of 2 blocks covers 1024 columns
        c = clause(a=512, b=0, size=512, extent=4096)
        assert chunk_range(c, 0, 2) == (0, 1024)
        assert chunk_range(c, 3, 4) == (1536, 2048)

    def test_empty_chunk_rejected(self):
        with pytest.raises(DirectiveError):
            chunk_range(clause(), 5, 5)


class TestSplitSpec:
    def test_derive_unit_elems(self):
        spec = SplitSpec.derive(clause(), LOOP)
        assert spec.unit_elems == 32
        assert spec.split_extent == 64
        assert spec.split_dim == 0

    def test_derive_inner_dim(self):
        spec = SplitSpec.derive(clause(split_dim=1, extent=64, other=(0, 8)), LOOP)
        assert spec.split_dim == 1
        assert spec.unit_elems == 8

    def test_chunk_extent(self):
        spec = SplitSpec.derive(clause(), LOOP)
        # a=1, size=3: chunk of cs iterations needs cs + 2 planes
        assert spec.chunk_extent(1) == 3
        assert spec.chunk_extent(4) == 6

    def test_window_extent(self):
        spec = SplitSpec.derive(clause(), LOOP)
        # S chunks of cs iterations: S*cs + size - 1 planes
        assert spec.window_extent(1, 3) == 5
        assert spec.window_extent(2, 2) == 6

    def test_bytes(self):
        spec = SplitSpec.derive(clause(), LOOP)
        assert spec.bytes_per_unit(4) == 128
        assert spec.full_bytes(4) == 64 * 32 * 4

    def test_total_range(self):
        spec = SplitSpec.derive(clause(), LOOP)
        assert spec.total_range() == (0, 64)

    def test_validate_shape_accepts_match(self):
        spec = SplitSpec.derive(clause(), LOOP)
        spec.validate_shape((64, 32))

    def test_validate_shape_rejects_rank(self):
        spec = SplitSpec.derive(clause(), LOOP)
        with pytest.raises(DirectiveError):
            spec.validate_shape((64, 32, 2))

    def test_validate_shape_rejects_overrun(self):
        spec = SplitSpec.derive(clause(), LOOP)
        with pytest.raises(DirectiveError):
            spec.validate_shape((63, 32))

    def test_zero_length_dim_rejected(self):
        with pytest.raises(DirectiveError):
            SplitSpec.derive(clause(other=(0, 0)), LOOP)

    def test_empty_dependency_range_rejected(self):
        # loop far outside the mapped extent
        with pytest.raises(DirectiveError):
            SplitSpec.derive(clause(extent=4), Loop("k", 100, 110))
