"""Unit tests for pragma formatting."""

from __future__ import annotations

import pytest

from repro.directives.clauses import (
    Affine,
    DirectiveError,
    Loop,
    MapClause,
    MemLimitClause,
    PipelineClause,
    PipelineMapClause,
)
from repro.directives.format import format_clause, format_pragma
from repro.directives.parser import ParsedPragma, parse_pragma


class TestFormatClause:
    def test_pipeline(self):
        assert format_clause(PipelineClause("static", 2, 4)) == "pipeline(static[2,4])"

    def test_pipeline_map_outer_split(self):
        c = PipelineMapClause(
            "to", "A0", 0, Affine(1, -1), 3, ((0, -1), (0, 512), (0, 512))
        )
        assert (
            format_clause(c)
            == "pipeline_map(to: A0[k-1:3][0:512][0:512])"
        )

    def test_pipeline_map_inner_split_custom_var(self):
        c = PipelineMapClause("to", "A", 1, Affine(512, 0), 512, ((0, 4096), (0, -1)))
        assert (
            format_clause(c, loop_var="kb")
            == "pipeline_map(to: A[0:4096][512*kb:512])"
        )

    def test_map_and_limit(self):
        assert format_clause(MapClause("tofrom", "C")) == "map(tofrom: C)"
        assert format_clause(MemLimitClause(12345)) == "pipeline_mem_limit(12345)"

    def test_affine_format_variants(self):
        assert Affine(1, 0).format("k") == "k"
        assert Affine(1, -1).format("i") == "i-1"
        assert Affine(3, 2).format("k") == "3*k+2"


class TestFormatPragma:
    def test_figure2_reconstruction(self):
        loop = Loop("k", 1, 63)
        text = (
            "pipeline(static[1,3]) "
            "pipeline_map(to: A0[k-1:3][0:512][0:512]) "
            "pipeline_map(from: Anext[k:1][0:512][0:512]) "
            "pipeline_mem_limit(256MB)"
        )
        parsed = parse_pragma(text, loop)
        out = format_pragma(parsed)
        assert out.startswith("#pragma omp target ")
        reparsed = parse_pragma(out, loop)
        assert reparsed.pipeline == parsed.pipeline
        assert reparsed.pipeline_maps == parsed.pipeline_maps
        assert reparsed.mem_limit.limit_bytes == 256_000_000

    def test_no_prefix(self):
        parsed = ParsedPragma(
            pipeline=PipelineClause(),
            pipeline_maps=[
                PipelineMapClause("to", "A", 0, Affine(1, 0), 1, ((0, -1),))
            ],
        )
        out = format_pragma(parsed, prefix=None)
        assert not out.startswith("#")
        assert out.startswith("pipeline(")

    def test_rejects_random_objects(self):
        with pytest.raises(DirectiveError):
            format_clause(object())
