"""Tests for the pass-through target clauses (device / private).

The paper: "The other target clauses, for example, ``device`` or
``private``, work as previously."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion
from repro.directives.clauses import DirectiveError, Loop
from repro.directives.parser import parse_pragma
from repro.gpu import Runtime
from repro.sim import AMD_HD7970, NVIDIA_K40M

LOOP = Loop("k", 0, 16)
BASE = "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:4])"


class TestParsing:
    def test_device_clause(self):
        p = parse_pragma(BASE + " device(1)", LOOP)
        assert p.device_num == 1

    def test_no_device_clause(self):
        assert parse_pragma(BASE, LOOP).device_num is None

    def test_duplicate_device_rejected(self):
        with pytest.raises(DirectiveError):
            parse_pragma(BASE + " device(0) device(1)", LOOP)

    def test_negative_device_rejected(self):
        with pytest.raises(DirectiveError):
            parse_pragma(BASE + " device(-1)", LOOP)

    def test_private_clause(self):
        p = parse_pragma(BASE + " private(tmp, acc)", LOOP)
        assert p.privates == ("tmp", "acc")

    def test_multiple_private_clauses_accumulate(self):
        p = parse_pragma(BASE + " private(x) private(y)", LOOP)
        assert p.privates == ("x", "y")

    def test_bad_private_name_rejected(self):
        with pytest.raises(DirectiveError):
            parse_pragma(BASE + " private(2fast)", LOOP)


class TestRegionIntegration:
    def test_region_carries_clauses(self):
        region = TargetRegion.parse(BASE + " device(1) private(tmp)", LOOP)
        assert region.device_num == 1
        assert region.privates == ("tmp",)

    def test_select_runtime_by_device_number(self):
        region = TargetRegion.parse(BASE + " device(1)", LOOP)
        r0, r1 = Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)
        assert region.select_runtime([r0, r1]) is r1

    def test_select_runtime_default_is_zero(self):
        region = TargetRegion.parse(BASE, LOOP)
        r0, r1 = Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)
        assert region.select_runtime([r0, r1]) is r0
        assert region.select_runtime(r0) is r0

    def test_select_runtime_out_of_range(self):
        region = TargetRegion.parse(BASE + " device(3)", LOOP)
        with pytest.raises(DirectiveError):
            region.select_runtime([Runtime(NVIDIA_K40M)])

    def test_single_runtime_with_nonzero_device_rejected(self):
        region = TargetRegion.parse(BASE + " device(2)", LOOP)
        with pytest.raises(DirectiveError):
            region.select_runtime(Runtime(NVIDIA_K40M))

    def test_execution_unaffected_by_pass_through_clauses(self):
        from repro.core import make_kernel

        region = TargetRegion.parse(
            "pipeline(static[1,2]) pipeline_map(tofrom: A[k:1][0:4]) "
            "device(0) private(scratch)",
            LOOP,
        )
        a = np.ones((16, 4))
        kernel = make_kernel(
            lambda p, t0, t1: (t1 - t0) * 1e-6,
            lambda v, t0, t1: v["A"].take(t0, t1).__imul__(5.0),
            name="x5",
        )
        region.run(Runtime(NVIDIA_K40M), {"A": a}, kernel)
        assert np.all(a == 5.0)
