"""Unit tests for clause objects and affine split_iter expressions."""

from __future__ import annotations

import pytest

from repro.directives.clauses import (
    Affine,
    DirectiveError,
    Loop,
    MapClause,
    MemLimitClause,
    PipelineClause,
    PipelineMapClause,
)


class TestAffine:
    @pytest.mark.parametrize(
        "text,a,b",
        [
            ("k", 1, 0),
            ("k-1", 1, -1),
            ("k+1", 1, 1),
            ("k + 2", 1, 2),
            ("2*k", 2, 0),
            ("k*3", 3, 0),
            ("2*k-1", 2, -1),
            ("512*k+7", 512, 7),
            ("1+k", 1, 1),
        ],
    )
    def test_parse_valid(self, text, a, b):
        f = Affine.parse(text, "k")
        assert (f.a, f.b) == (a, b)

    @pytest.mark.parametrize("k", [-3, 0, 1, 7, 100])
    def test_evaluation(self, k):
        assert Affine.parse("3*k-2", "k")(k) == 3 * k - 2

    @pytest.mark.parametrize("text", ["", "5", "j-1", "k*k", "k-", "+"])
    def test_parse_invalid(self, text):
        with pytest.raises(DirectiveError):
            Affine.parse(text, "k")

    def test_wrong_variable_rejected(self):
        with pytest.raises(DirectiveError):
            Affine.parse("i+1", "k")

    def test_non_positive_slope_rejected(self):
        with pytest.raises(DirectiveError):
            Affine(a=0, b=1)
        with pytest.raises(DirectiveError):
            Affine(a=-1)

    def test_str_roundtrip(self):
        for text in ("k", "k-1", "2*k+3"):
            f = Affine.parse(text, "k")
            g = Affine.parse(str(f), "k")
            assert (f.a, f.b) == (g.a, g.b)


class TestLoop:
    def test_trip_count_and_iterations(self):
        loop = Loop("k", 1, 7)
        assert loop.trip_count == 6
        assert list(loop.iterations()) == [1, 2, 3, 4, 5, 6]

    def test_empty_loop_rejected(self):
        with pytest.raises(DirectiveError):
            Loop("k", 5, 3)

    def test_non_unit_stride_rejected(self):
        with pytest.raises(DirectiveError):
            Loop("k", 0, 10, step=2)


class TestPipelineClause:
    def test_defaults(self):
        c = PipelineClause()
        assert c.schedule == "static" and c.chunk_size == 1 and c.num_streams == 2

    def test_adaptive_allowed(self):
        PipelineClause(schedule="adaptive", chunk_size=2, num_streams=4)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(schedule="dynamic"),
            dict(chunk_size=0),
            dict(num_streams=0),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(DirectiveError):
            PipelineClause(**kw)


class TestPipelineMapClause:
    def make(self, **over):
        kw = dict(
            direction="to",
            var="A",
            split_dim=0,
            split_iter=Affine(1, -1),
            size=3,
            dims=((0, 64), (0, 32)),
        )
        kw.update(over)
        return PipelineMapClause(**kw)

    def test_direction_flags(self):
        assert self.make(direction="to").is_input
        assert not self.make(direction="to").is_output
        assert self.make(direction="from").is_output
        assert self.make(direction="tofrom").is_input
        assert self.make(direction="tofrom").is_output

    def test_bad_direction(self):
        with pytest.raises(DirectiveError):
            self.make(direction="sideways")

    def test_bad_size(self):
        with pytest.raises(DirectiveError):
            self.make(size=0)

    def test_split_dim_bounds(self):
        with pytest.raises(DirectiveError):
            self.make(split_dim=2)

    def test_ndim(self):
        assert self.make().ndim == 2


class TestOtherClauses:
    def test_map_clause_directions(self):
        for d in ("to", "from", "tofrom", "alloc"):
            MapClause(direction=d, var="C")
        with pytest.raises(DirectiveError):
            MapClause(direction="x", var="C")

    def test_mem_limit_positive(self):
        MemLimitClause(1)
        with pytest.raises(DirectiveError):
            MemLimitClause(0)
