"""Unit tests for the pragma text parser."""

from __future__ import annotations

import pytest

from repro.directives.clauses import DirectiveError, Loop
from repro.directives.parser import parse_mem_size, parse_pragma

LOOP = Loop("k", 1, 63)


class TestMemSize:
    @pytest.mark.parametrize(
        "text,expect",
        [
            ("1024", 1024),
            ("256MB", 256_000_000),
            ("1.5GB", 1_500_000_000),
            ("64KiB", 65536),
            ("2GiB", 2 << 30),
            ("MB_256", 256_000_000),  # the paper's macro spelling
            ("GB_2", 2_000_000_000),
            ("512 kb", 512_000),
        ],
    )
    def test_valid(self, text, expect):
        assert parse_mem_size(text) == expect

    @pytest.mark.parametrize("text", ["", "MB", "12XB", "lots"])
    def test_invalid(self, text):
        with pytest.raises(DirectiveError):
            parse_mem_size(text)


class TestFigure2Pragma:
    """The paper's Figure 2 stencil pragma must parse verbatim."""

    PRAGMA = """
        #pragma omp target \\
            pipeline(static[1,3]) \\
            pipeline_map(to: A0[k-1:3][0:512][0:512]) \\
            pipeline_map(from: Anext[k:1][0:512][0:512]) \\
            pipeline_mem_limit(MB_256)
    """

    def test_parses(self):
        p = parse_pragma(self.PRAGMA, LOOP)
        assert p.pipeline.schedule == "static"
        assert p.pipeline.chunk_size == 1
        assert p.pipeline.num_streams == 3
        assert p.mem_limit.limit_bytes == 256_000_000
        assert len(p.pipeline_maps) == 2

    def test_input_clause_geometry(self):
        p = parse_pragma(self.PRAGMA, LOOP)
        a0 = p.map_for("A0")
        assert a0.direction == "to"
        assert a0.split_dim == 0
        assert (a0.split_iter.a, a0.split_iter.b) == (1, -1)
        assert a0.size == 3
        assert a0.dims[1] == (0, 512) and a0.dims[2] == (0, 512)
        assert a0.dims[0] == (0, -1)  # split extent bound later

    def test_output_clause_geometry(self):
        p = parse_pragma(self.PRAGMA, LOOP)
        an = p.map_for("Anext")
        assert an.direction == "from"
        assert an.size == 1
        assert (an.split_iter.a, an.split_iter.b) == (1, 0)

    def test_map_for_unknown_raises(self):
        p = parse_pragma(self.PRAGMA, LOOP)
        with pytest.raises(KeyError):
            p.map_for("nope")


class TestGrammar:
    def test_minimal_pragma(self):
        p = parse_pragma(
            "pipeline(static[2,4]) pipeline_map(to: A[k:1][0:8])", LOOP
        )
        assert p.pipeline.chunk_size == 2 and p.pipeline.num_streams == 4
        assert p.mem_limit is None and p.maps == []

    def test_adaptive_schedule(self):
        p = parse_pragma(
            "pipeline(adaptive[1,2]) pipeline_map(to: A[k:1][0:8])", LOOP
        )
        assert p.pipeline.schedule == "adaptive"

    def test_resident_map_clause(self):
        p = parse_pragma(
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) map(tofrom: C)",
            LOOP,
        )
        assert p.maps[0].var == "C" and p.maps[0].direction == "tofrom"

    def test_inner_dim_split(self):
        """Matmul's A splits its second dimension via bracket position."""
        p = parse_pragma(
            "pipeline(static[1,2]) pipeline_map(to: A[0:4096][kb*512:512])",
            Loop("kb", 0, 8),
        )
        a = p.map_for("A")
        assert a.split_dim == 1
        assert a.split_iter.a == 512
        assert a.dims[0] == (0, 4096)

    def test_acc_prefix_tolerated(self):
        p = parse_pragma(
            "#pragma acc target pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8])",
            LOOP,
        )
        assert p.pipeline.num_streams == 2

    @pytest.mark.parametrize(
        "text",
        [
            "pipeline_map(to: A[k:1][0:8])",  # missing pipeline()
            "pipeline(static[1,2])",  # missing pipeline_map
            "pipeline(static[1]) pipeline_map(to: A[k:1][0:8])",  # one param
            "pipeline(static[1,2]) pipeline_map(A[k:1][0:8])",  # no map_type
            "pipeline(static[1,2]) pipeline_map(to: A[0:8][1:2])",  # no loop var
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][k:1][0:8])",  # 2 splits... same bracket twice
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) bogus(1)",
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) pipeline(static[1,2])",
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) pipeline_map(to: A[k:1][0:8])",
            "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) stray words",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(DirectiveError):
            parse_pragma(text, LOOP)

    def test_duplicate_variable_across_map_kinds_rejected(self):
        with pytest.raises(DirectiveError):
            parse_pragma(
                "pipeline(static[1,2]) pipeline_map(to: A[k:1][0:8]) map(to: A)",
                LOOP,
            )

    def test_whitespace_insensitive(self):
        p1 = parse_pragma(
            "pipeline(static[1,3]) pipeline_map(to: A[k-1:3][0:16])", LOOP
        )
        p2 = parse_pragma(
            "pipeline( static[ 1 , 3 ] )   pipeline_map( to :A[ k-1 : 3 ][ 0 : 16 ])",
            LOOP,
        )
        assert p1.pipeline == p2.pipeline
        assert p1.pipeline_maps[0].size == p2.pipeline_maps[0].size
