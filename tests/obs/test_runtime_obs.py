"""Observability wired through the runtime and the pipelined executor:
hand-computed metrics on a tiny run, span structure, and the
zero-cost-when-disabled guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.obs import Observability
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, make_arrays, make_region


def observed_runtime():
    obs = Observability()
    return Runtime(NVIDIA_K40M, obs=obs), obs


class TestHandComputedTinyRun:
    """One stream, one 256 B buffer, one copy each way, one kernel —
    every metric is checkable by hand."""

    def run_tiny(self):
        rt, obs = observed_runtime()
        st = rt.create_stream("s0")
        dev = rt.malloc((4, 8), np.float64, tag="buf")  # 4*8*8 = 256 B
        host = np.ones((4, 8))
        rt.memcpy_h2d_async(dev, host, st)
        rt.launch(1e-4, None, st)
        out = np.zeros((4, 8))
        rt.memcpy_d2h_async(out, dev, st)
        rt.synchronize()
        return rt, obs

    def test_counters_match_hand_count(self):
        _, obs = self.run_tiny()
        snap = obs.metrics.snapshot()
        c = snap["counters"]
        assert c["bytes.h2d"] == 256
        assert c["bytes.d2h"] == 256
        assert c["commands.kernel"] == 1
        assert c["alloc.count"] == 1
        assert c["alloc.bytes"] == 256
        # stream_create, malloc, h2d, launch, d2h, synchronize
        assert c["api.calls"] == 6
        assert c["api.calls.memcpy_h2d_async"] == 1
        assert c["api.calls.launch"] == 1

    def test_histograms_and_gauges(self):
        rt, obs = self.run_tiny()
        snap = obs.metrics.snapshot()
        assert snap["histograms"]["kernel.seconds"]["count"] == 1
        assert snap["histograms"]["kernel.seconds"]["total"] >= 1e-4
        assert snap["histograms"]["transfer.seconds.h2d"]["count"] == 1
        assert snap["gauges"]["mem.used"]["high"] >= 256
        assert any(n.startswith("queue.depth.") for n in snap["gauges"])

    def test_engine_spans_carry_exact_device_times(self):
        rt, obs = self.run_tiny()
        tl = rt.timeline()
        for kind in ("h2d", "kernel", "d2h"):
            (span,) = obs.tracer.by_category(kind)
            (rec,) = tl.by_kind(kind)
            assert span.start == rec.start and span.end == rec.finish
            assert span.track == f"engine:{rec.engine}"

    def test_api_spans_cover_host_time(self):
        rt, obs = self.run_tiny()
        api = obs.tracer.by_category("api")
        assert len(api) == 6
        assert all(s.track == "host" for s in api)
        assert all(s.end >= s.start for s in api)
        assert all("op" in s.attrs for s in api)


class TestDisabledByDefault:
    def test_default_runtime_records_nothing(self):
        rt = Runtime(NVIDIA_K40M)
        assert rt.tracer.enabled is False
        assert rt.metrics.enabled is False
        assert rt.device.sim.observer is None
        st = rt.create_stream()
        rt.launch(1e-5, None, st)
        rt.synchronize()
        assert rt.tracer.spans == []
        assert rt.metrics.snapshot() == {}

    def test_observation_does_not_change_elapsed(self):
        def run(obs):
            rt = Runtime(NVIDIA_K40M, obs=obs)
            arrays = make_arrays(16)
            res = make_region(16, 2, 2).run(rt, arrays, ScaleKernel())
            return res.elapsed

        assert run(None) == run(Observability())


class TestExecutorSpans:
    def test_region_chunk_phase_structure(self):
        rt, obs = observed_runtime()
        res = make_region(16, 2, 2).run(rt, make_arrays(16), ScaleKernel())
        (region,) = obs.tracer.by_category("region")
        assert region.attrs["model"] == "pipelined-buffer"
        assert region.attrs["nchunks"] == res.nchunks
        chunks = obs.tracer.by_category("chunk")
        assert len(chunks) == res.nchunks
        assert all(c.parent is region for c in chunks)
        phases = obs.tracer.by_category("phase")
        names = {p.name for p in phases}
        assert {"plan", "h2d", "kernel", "d2h", "slot-release"} <= names
        plan_spans = [p for p in phases if p.name == "plan"]
        assert all("slots" in p.attrs for p in plan_spans)

    def test_result_metrics_snapshot(self):
        rt, obs = observed_runtime()
        res = make_region(16, 2, 2).run(rt, make_arrays(16), ScaleKernel())
        assert res.metrics
        assert any(n.startswith("engine.util.") for n in res.metrics["gauges"])
        assert res.metrics["gauges"]["mem.peak"]["value"] == res.memory_peak
        assert "stall.slot_reuse.total_seconds" in res.metrics["counters"]
        assert "metrics" in res.to_dict()

    def test_result_metrics_empty_without_obs(self):
        res = make_region(16, 2, 2).run(
            Runtime(NVIDIA_K40M), make_arrays(16), ScaleKernel()
        )
        assert res.metrics == {}
        assert "metrics" not in res.to_dict()


class TestRuntimeLifecycle:
    def test_context_manager_closes_and_releases(self):
        with Runtime(NVIDIA_K40M) as rt:
            base = rt.memory_used
            rt.malloc((8,), np.float64)
            assert rt.memory_used > base
        assert rt.closed
        assert rt.memory_used == base

    def test_calls_after_close_raise(self):
        from repro.gpu.errors import InvalidValueError

        rt = Runtime(NVIDIA_K40M)
        rt.close()
        rt.close()  # idempotent
        with pytest.raises(InvalidValueError):
            rt.malloc((8,), np.float64)
        with pytest.raises(InvalidValueError):
            rt.create_stream()
