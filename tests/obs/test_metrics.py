"""Metrics registry: instrument semantics and snapshot shape."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        m = MetricsRegistry()
        c = m.counter("bytes")
        c.inc(10)
        c.inc(5)
        assert c.value == 15
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_is_get_or_create(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.counter("x") is not m.counter("y")

    def test_gauge_tracks_high_water(self):
        m = MetricsRegistry()
        g = m.gauge("mem")
        g.set(10)
        g.set(50)
        g.set(20)
        assert g.value == 20 and g.high == 50

    def test_histogram_stats(self):
        m = MetricsRegistry()
        h = m.histogram("dur")
        for v in (3.0, 1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0 and s["p95"] == 4.0

    def test_empty_histogram_summary(self):
        h = MetricsRegistry().histogram("empty")
        assert h.summary()["count"] == 0
        assert h.percentile(95) == 0.0


class TestSnapshot:
    def test_snapshot_is_json_safe_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b").inc(2)
        m.counter("a").inc(1)
        m.gauge("g").set(7)
        m.histogram("h").observe(0.5)
        snap = m.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"]["g"] == {"value": 7, "high": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_clear_drops_instruments(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.clear()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(5)
        assert NULL_METRICS.counter("c").value == 0
        assert NULL_METRICS.histogram("h").count == 0
        assert NULL_METRICS.snapshot() == {}


class TestGaugeTimeWeighted:
    """Opt-in time-weighted averaging: ``set(v, t)`` vs plain ``set(v)``."""

    def test_plain_mode_stays_plain(self):
        m = MetricsRegistry()
        g = m.gauge("g")
        g.set(10)
        g.set(20)
        assert g.timed is False
        assert g.twa == 20  # falls back to the current value
        assert m.snapshot()["gauges"]["g"] == {"value": 20, "high": 20}

    def test_twa_integrates_value_over_time(self):
        g = MetricsRegistry().gauge("g")
        # 10 held over [0, 2), then 40 over [2, 3):
        # area = 10*2 + 40*1 = 60 over 3 s -> twa 20
        g.set(10, t=0.0)
        g.set(40, t=2.0)
        g.set(0, t=3.0)
        assert g.timed is True
        assert g.twa == pytest.approx(20.0)
        assert g.high == 40

    def test_single_timed_sample_returns_current_value(self):
        g = MetricsRegistry().gauge("g")
        g.set(7, t=1.0)
        assert g.timed is True and g.twa == 7

    def test_timed_snapshot_adds_twa_key(self):
        m = MetricsRegistry()
        g = m.gauge("g")
        g.set(4, t=0.0)
        g.set(8, t=2.0)
        snap = m.snapshot()["gauges"]["g"]
        assert snap == {"value": 8, "high": 8, "twa": pytest.approx(4.0)}

    def test_null_gauge_accepts_timestamp(self):
        NULL_METRICS.gauge("g").set(5, t=1.0)  # must not raise


class TestPercentileEdges:
    """The pinned nearest-rank rule: ``ceil(q/100 * n)``-th sample."""

    def test_empty_histogram_is_zero_for_any_q(self):
        h = MetricsRegistry().histogram("h")
        for q in (0, 50, 100):
            assert h.percentile(q) == 0.0

    def test_single_sample_for_any_q(self):
        h = MetricsRegistry().histogram("h")
        h.observe(3.5)
        for q in (0, 1, 50, 99, 100):
            assert h.percentile(q) == 3.5

    def test_q0_is_min_and_q100_is_max(self):
        h = MetricsRegistry().histogram("h")
        for v in (5.0, 1.0, 9.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 9.0

    def test_nearest_rank_no_interpolation(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 5):  # 1, 2, 3, 4
            h.observe(float(v))
        # ceil(0.5 * 4) = 2nd sample -> 2.0, never the midpoint 2.5
        assert h.percentile(50) == 2.0
        # ceil(0.51 * 4) = ceil(2.04) = 3rd sample
        assert h.percentile(51) == 3.0

    def test_float_jitter_on_exact_rank_boundary(self):
        # 0.7 * 10 == 7.000000000000001 in binary floats; the rule
        # must still pick the 7th sample, not spill into the 8th
        h = MetricsRegistry().histogram("h")
        for v in range(1, 11):
            h.observe(float(v))
        assert h.percentile(70) == 7.0
        assert h.percentile(30) == 3.0
