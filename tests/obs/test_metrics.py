"""Metrics registry: instrument semantics and snapshot shape."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        m = MetricsRegistry()
        c = m.counter("bytes")
        c.inc(10)
        c.inc(5)
        assert c.value == 15
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_is_get_or_create(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.counter("x") is not m.counter("y")

    def test_gauge_tracks_high_water(self):
        m = MetricsRegistry()
        g = m.gauge("mem")
        g.set(10)
        g.set(50)
        g.set(20)
        assert g.value == 20 and g.high == 50

    def test_histogram_stats(self):
        m = MetricsRegistry()
        h = m.histogram("dur")
        for v in (3.0, 1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0 and s["p95"] == 4.0

    def test_empty_histogram_summary(self):
        h = MetricsRegistry().histogram("empty")
        assert h.summary()["count"] == 0
        assert h.percentile(95) == 0.0


class TestSnapshot:
    def test_snapshot_is_json_safe_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b").inc(2)
        m.counter("a").inc(1)
        m.gauge("g").set(7)
        m.histogram("h").observe(0.5)
        snap = m.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"]["g"] == {"value": 7, "high": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_clear_drops_instruments(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.clear()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(5)
        assert NULL_METRICS.counter("c").value == 0
        assert NULL_METRICS.histogram("h").count == 0
        assert NULL_METRICS.snapshot() == {}
