"""Telemetry sampler: window bucketing, SLO math, exporters, dashboard.

The SLO cases are closed-form: windows are laid out by hand and the
expected compliance / burn / budget values are computed on paper in the
comments, so a regression here is a math bug, not a fixture drift.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.telemetry import (
    BURN_SATURATED,
    SLO,
    SLOTracker,
    TELEMETRY_SCHEMA,
    TelemetrySampler,
    encode_frame,
    prometheus_text,
    read_telemetry_jsonl,
    render_top,
    telemetry_lines,
    write_telemetry_jsonl,
)


class TestWindowing:
    def test_event_at_t_lands_in_window_floor_t_over_w(self):
        s = TelemetrySampler(1.0)
        s.inc("n", 0.0)
        s.inc("n", 0.999999)
        s.inc("n", 1.0)  # boundary: [1, 2)
        s.inc("n", 2.5)
        frames = s.finish(2.5)
        assert [f.get("counters", {}).get("n") for f in frames] == [2, 1, 1]

    def test_frame_count_covers_t_end_and_all_data(self):
        s = TelemetrySampler(1.0)
        assert len(s.finish(0.0)) == 1  # empty run still has one frame
        s = TelemetrySampler(1.0)
        s.observe("lat", 4.2, 0.5)  # data past t_end is never dropped
        assert len(s.finish(0.3)) == 5

    def test_fixed_boundaries_and_final_partial_window(self):
        s = TelemetrySampler(0.5)
        frames = s.finish(1.2)
        assert [(f["t0_s"], f["t1_s"]) for f in frames] == [
            (0.0, 0.5), (0.5, 1.0), (1.0, 1.5),
        ]

    def test_advance_is_monotone_and_order_independent(self):
        # frames must not depend on when advance() happened to run
        a = TelemetrySampler(1.0)
        b = TelemetrySampler(1.0)
        for s in (a, b):
            s.inc("n", 0.5)
            s.inc("n", 2.5)
        a.advance(1.7)
        a.advance(0.2)  # stale clock from another device: no-op
        a.advance(2.6)
        assert a.windows_closed == 2
        assert a.finish(2.6) == b.finish(2.6)

    def test_gauges_sampled_once_per_window_at_close(self):
        s = TelemetrySampler(1.0)
        state = {"v": 1.0}
        s.register_gauge("g", lambda: state["v"])
        s.advance(1.2)  # closes window 0 while v == 1
        state["v"] = 7.0
        frames = s.finish(2.0)
        assert frames[0]["gauges"]["g"] == 1.0
        assert frames[1]["gauges"]["g"] == 7.0

    def test_intervals_clip_union_and_cap_at_one(self):
        s = TelemetrySampler(1.0)
        s.add_interval("dma", 0.25, 1.5)  # spans two windows
        s.add_interval("dma", 0.5, 0.75)  # nested: unioned, not summed
        s.add_interval("dma", 1.0, 2.0)  # overlapping second interval
        frames = s.finish(2.0)
        assert frames[0]["util"]["dma"] == 0.75
        assert frames[1]["util"]["dma"] == 1.0
        s2 = TelemetrySampler(1.0)
        s2.add_interval("dma", 0.5, 0.5)  # zero-length: dropped
        assert "util" not in s2.finish(1.0)[0]

    def test_histogram_channel_summarised_per_window(self):
        s = TelemetrySampler(1.0)
        for v in (1.0, 2.0, 3.0):
            s.observe("lat", 0.5, v)
        frame = s.finish(1.0)[0]
        h = frame["hist"]["lat"]
        assert h["count"] == 3 and h["min"] == 1.0 and h["max"] == 3.0

    def test_finish_is_idempotent_and_frames_requires_it(self):
        s = TelemetrySampler(1.0)
        with pytest.raises(RuntimeError):
            s.frames()
        first = s.finish(0.5)
        assert s.finish(99.0) is first  # later t_end ignored after finish
        assert s.frames() is first

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetrySampler(0.0)

    def test_on_window_hook_fires_per_close(self):
        fired = []
        s = TelemetrySampler(1.0, on_window=lambda i, t, g: fired.append((i, t)))
        s.advance(2.5)
        assert fired == [(0, 1.0), (1, 2.0)]


class TestSLO:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(target=0.0)
        with pytest.raises(ValueError):
            SLO(target=1.5)
        with pytest.raises(ValueError):
            SLO(latency_s=0.0)
        with pytest.raises(ValueError):
            SLO.from_dict({"target": 0.9, "latencysec": 1})
        with pytest.raises(ValueError):
            SLO.from_dict([0.9])

    def test_slo_dict_round_trip(self):
        for slo in (SLO(), SLO(target=0.9, latency_s=0.25)):
            assert SLO.from_dict(slo.to_dict()) == slo

    def test_closed_form_windows(self):
        # target 0.9, 10 submissions => allowed bad = (1-0.9)*10 = 1.0
        # window 0: 3 good           -> compliance 1,   burn 0
        # window 1: 1 good, 1 bad    -> compliance 0.5, burn (1/2)/0.1 = 5
        #           cum_bad 1        -> budget 1 - 1/1 = 0
        # window 2: idle             -> compliance 1,   budget stays 0
        # window 3: 4 good, 1 bad    -> compliance 0.8, burn (1/5)/0.1 = 2
        #           cum_bad 2        -> budget max(0, 1 - 2/1) = 0
        tr = SLOTracker({"a": SLO(target=0.9)}, window=1.0)
        for _ in range(10):
            tr.submit("a", 0.0)
        for _ in range(3):
            tr.observe("a", 0.5, ok=True, latency_s=0.1)
        tr.observe("a", 1.5, ok=True, latency_s=0.1)
        tr.observe("a", 1.5, ok=False, latency_s=0.1)
        for _ in range(4):
            tr.observe("a", 3.5, ok=True, latency_s=0.1)
        tr.observe("a", 3.5, ok=False, latency_s=0.1)
        w = tr.windows(4)["a"]
        assert [x["compliance"] for x in w] == [1.0, 0.5, 1.0, 0.8]
        assert [x["burn"] for x in w] == pytest.approx([0.0, 5.0, 0.0, 2.0])
        assert [x["budget"] for x in w] == [1.0, 0.0, 0.0, 0.0]
        rep = tr.report(4)["a"]
        assert rep["good"] == 8 and rep["bad"] == 2 and rep["submitted"] == 10
        assert rep["compliance"] == 0.8
        assert rep["max_burn"] == pytest.approx(5.0)
        assert rep["breaches"] == 2  # windows 1 and 3 miss the 0.9 target

    def test_latency_threshold_makes_slow_ok_bad(self):
        tr = SLOTracker({"a": SLO(target=0.5, latency_s=0.01)}, window=1.0)
        tr.submit("a", 0.0)
        tr.submit("a", 0.0)
        tr.observe("a", 0.5, ok=True, latency_s=0.005)  # good
        tr.observe("a", 0.5, ok=True, latency_s=0.5)  # ok but slow: bad
        w = tr.windows(1)["a"][0]
        assert w["good"] == 1 and w["bad"] == 1 and w["compliance"] == 0.5

    def test_target_one_has_no_budget(self):
        tr = SLOTracker({"a": SLO(target=1.0)}, window=1.0)
        tr.submit("a", 0.0)
        tr.observe("a", 0.5, ok=False, latency_s=0.0)
        w = tr.windows(1)["a"][0]
        assert w["burn"] == BURN_SATURATED
        assert w["budget"] == 0.0
        # ...but stays intact while everything is good
        tr2 = SLOTracker({"a": SLO(target=1.0)}, window=1.0)
        tr2.submit("a", 0.0)
        tr2.observe("a", 0.5, ok=True, latency_s=0.0)
        assert tr2.windows(1)["a"][0]["budget"] == 1.0

    def test_undeclared_tenant_is_ignored(self):
        tr = SLOTracker({"a": SLO()}, window=1.0)
        tr.submit("ghost", 0.0)
        tr.observe("ghost", 0.5, ok=False, latency_s=0.0)
        assert tr.max_index == -1
        assert tr.report(1).keys() == {"a"}


class TestExporters:
    def _frames(self):
        s = TelemetrySampler(1.0, slos={"a": SLO(target=0.9)})
        s.register_gauge("depth", lambda: 2.0)
        s.slo.submit("a", 0.0)
        s.slo.observe("a", 0.5, ok=True, latency_s=0.1)
        s.inc("reqs", 0.5)
        s.inc("reqs", 1.5, 2)
        s.add_interval("dma", 0.0, 0.5)
        return s.finish(2.0), s

    def test_jsonl_round_trip(self, tmp_path):
        frames, s = self._frames()
        path = str(tmp_path / "t.jsonl")
        write_telemetry_jsonl(frames, path, window=s.window)
        header, back = read_telemetry_jsonl(path)
        assert header["schema"] == TELEMETRY_SCHEMA
        assert header["window_s"] == 1.0 and header["frames"] == len(frames)
        assert back == frames

    def test_read_rejects_foreign_files(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text("")
        with pytest.raises(ValueError):
            read_telemetry_jsonl(str(p))
        p.write_text('{"schema":"other/v9"}\n')
        with pytest.raises(ValueError):
            read_telemetry_jsonl(str(p))

    def test_lines_are_canonical_json(self):
        frames, s = self._frames()
        for line in telemetry_lines(frames, window=s.window):
            assert line == encode_frame(json.loads(line))

    def test_prometheus_totals_and_labels(self):
        frames, _ = self._frames()
        text = prometheus_text(frames)
        assert "# TYPE repro_reqs counter\nrepro_reqs 3" in text
        assert "repro_depth 2.0" in text
        assert 'repro_util{channel="dma"} 0' in text
        assert 'repro_slo_compliance{tenant="a"} 1.0' in text
        assert 'repro_slo_budget{tenant="a"} 1.0' in text
        assert text.endswith("\n")

    def test_prometheus_sanitises_metric_names(self):
        s = TelemetrySampler(1.0)
        s.inc("dev0.mem-used", 0.0)
        text = prometheus_text(s.finish(1.0))
        assert "repro_dev0_mem_used 1" in text

    def test_render_top_lists_every_channel(self):
        frames, _ = self._frames()
        out = render_top(frames)
        assert "util dma" in out
        assert "gauge depth" in out
        assert "rate reqs" in out
        assert "slo tenant" in out and "\na " in "\n" + out
        assert render_top([]) == "telemetry: no frames"

    def test_render_top_downsamples_to_width(self):
        s = TelemetrySampler(1.0)
        for i in range(100):
            s.inc("n", i + 0.5, i)
        out = render_top(s.finish(100.0), width=10)
        row = next(ln for ln in out.splitlines() if "rate n" in ln)
        # max-downsampled bucket peaks are 9, 19, ..., 99: one bucket
        # per ramp level, so the trend is exactly the full ramp
        assert row.endswith(" .:-=+*#%@")
