"""Span tracer: nesting, attributes, explicit-timestamp emission,
and the null tracer's no-op guarantees."""

from __future__ import annotations

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer


class FakeClock:
    """Manually advanced virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestNesting:
    def test_begin_end_records_interval(self):
        clk = FakeClock()
        tr = Tracer(clk)
        sp = tr.begin("outer", "region")
        clk.now = 2.5
        tr.end(sp)
        assert sp.start == 0.0 and sp.end == 2.5 and sp.duration == 2.5
        assert tr.spans == [sp]

    def test_children_get_parent_and_depth(self):
        clk = FakeClock()
        tr = Tracer(clk)
        with tr.span("region", "region"):
            with tr.span("chunk", "chunk") as chunk:
                with tr.span("h2d", "phase") as phase:
                    assert phase.parent is chunk
                    assert phase.depth == 2
                    assert chunk.depth == 1
        assert [s.name for s in tr.spans] == ["h2d", "chunk", "region"]

    def test_end_closes_open_children(self):
        clk = FakeClock()
        tr = Tracer(clk)
        outer = tr.begin("outer")
        tr.begin("inner")  # never ended explicitly
        clk.now = 1.0
        tr.end(outer)
        assert all(s.end == 1.0 for s in tr.spans)
        assert {s.name for s in tr.spans} == {"outer", "inner"}
        assert tr.current is None

    def test_double_end_is_tolerated(self):
        tr = Tracer(FakeClock())
        sp = tr.begin("x")
        tr.end(sp)
        tr.end(sp)
        assert tr.spans.count(sp) == 1

    def test_attrs_at_begin_end_and_set(self):
        tr = Tracer(FakeClock())
        sp = tr.begin("chunk:0", "chunk", chunk=0)
        sp.set(slot=3)
        tr.end(sp, nbytes=64)
        assert sp.attrs == {"chunk": 0, "slot": 3, "nbytes": 64}


class TestEmission:
    def test_emit_complete_span(self):
        tr = Tracer(FakeClock())
        sp = tr.emit("h2d:A", "h2d", "engine:dma0", start=1.0, end=3.0, nbytes=8)
        assert sp.duration == 2.0
        assert tr.by_track("engine:dma0") == [sp]
        assert tr.by_category("h2d") == [sp]

    def test_instant_has_zero_duration(self):
        clk = FakeClock()
        clk.now = 4.0
        tr = Tracer(clk)
        sp = tr.instant("slot-release", "phase")
        assert sp.start == sp.end == 4.0

    def test_clear_keeps_open_spans(self):
        tr = Tracer(FakeClock())
        open_span = tr.begin("open")
        tr.emit("done", start=0, end=1)
        tr.clear()
        assert tr.spans == []
        assert tr.current is open_span


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        sp = NULL_TRACER.begin("x", "y", chunk=1)
        assert isinstance(sp, Span)
        assert sp.set(a=1) is sp and sp.attrs == {}
        NULL_TRACER.end(sp)
        NULL_TRACER.emit("e", start=0, end=1)
        NULL_TRACER.instant("i")
        with NULL_TRACER.span("ctx") as inner:
            inner.set(b=2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.current is None

    def test_null_is_shared_singletons(self):
        t = NullTracer()
        assert t.begin("a") is t.begin("b")
        assert t.span("a") is t.span("b")
