"""Critical-path analyzer: exactness, attribution, bounds, snapshots.

The acceptance invariants of the analysis engine, checked on all four
paper applications under the pipelined-buffer model:

* the per-chunk wait breakdown **sums exactly to wall time** (1e-9),
* the critical-path length equals the simulated makespan,
* the perfect-overlap bound never exceeds the measured wall,
* segments partition the window: contiguous, non-overlapping, gapless,
* analysis snapshots are byte-stable across runs and survive a
  round-trip through the regression-gate diff.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import analyze_result
from repro.obs.analyze import diff_analyses, round_floats, write_analysis
from repro.obs.analyze.critpath import extract_critical_path
from repro.obs.intervals import union_length


def _run(app):
    if app == "stencil":
        from repro.apps import stencil as st

        return st.run_model(
            "pipelined-buffer",
            st.StencilConfig(nz=16, ny=64, nx=64, iters=2),
            virtual=True,
        )
    if app == "3dconv":
        from repro.apps import conv3d as cv

        return cv.run_model(
            "pipelined-buffer", cv.Conv3dConfig(nz=16, ny=64, nx=64),
            virtual=True,
        )
    if app == "qcd":
        from repro.apps import qcd as qc

        return qc.run_model("pipelined-buffer", qc.QcdConfig(), virtual=True)
    from repro.apps import matmul as mm

    return mm.run_model(
        "pipeline-buffer", mm.MatmulConfig(n=48, block=8), virtual=True
    )


APPS = ("stencil", "3dconv", "qcd", "matmul")


@pytest.fixture(scope="module", params=APPS)
def analysis(request):
    return analyze_result(_run(request.param))


class TestInvariants:
    def test_breakdown_sums_to_wall(self, analysis):
        assert sum(analysis.causes.values()) == pytest.approx(
            analysis.wall, abs=1e-9
        )
        assert analysis.breakdown.total == pytest.approx(
            analysis.wall, abs=1e-9
        )

    def test_critical_path_length_equals_makespan(self, analysis):
        assert analysis.path.length == pytest.approx(
            analysis.makespan, abs=1e-9
        )

    def test_perfect_overlap_bound_below_wall(self, analysis):
        bound = analysis.what_if["perfect_overlap"]["bound_s"]
        assert 0.0 < bound <= analysis.wall + 1e-12

    def test_segments_partition_window(self, analysis):
        segs = analysis.path.segments
        assert segs[0].start == pytest.approx(analysis.t0, abs=1e-12)
        assert segs[-1].end == pytest.approx(analysis.t_end, abs=1e-12)
        for a, b in zip(segs, segs[1:]):
            assert b.start == pytest.approx(a.end, abs=1e-12)
            assert a.duration >= 0.0

    def test_chunk_totals_sum_to_wall_too(self, analysis):
        # grouping by chunk is the same partition grouped differently
        assert sum(analysis.breakdown.chunk_totals().values()) == pytest.approx(
            analysis.wall, abs=1e-9
        )

    def test_every_exec_segment_carries_a_chunk_or_region(self, analysis):
        for seg in analysis.path.segments:
            if seg.cmd is not None and seg.cmd.kind in ("h2d", "d2h", "kernel"):
                # chunked commands are tagged; resident staging is None
                assert seg.cmd.chunk is None or seg.cmd.chunk >= 0


class TestSnapshot:
    def test_to_dict_is_json_safe_and_stable(self, analysis):
        a = json.dumps(analysis.to_dict(), sort_keys=True)
        b = json.dumps(analysis.to_dict(), sort_keys=True)
        assert a == b

    def test_two_runs_snapshot_identically(self):
        a = analyze_result(_run("stencil")).to_dict()
        b = analyze_result(_run("stencil")).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_write_analysis_round_trips(self, analysis, tmp_path):
        p = tmp_path / "snap.json"
        snap = analysis.to_dict()
        write_analysis(snap, str(p))
        assert json.loads(p.read_text()) == snap

    def test_round_floats_kills_negative_zero(self):
        out = round_floats({"x": -0.0, "y": [1e-13, 2.5], "z": "s"})
        assert repr(out["x"]) == "0.0"
        assert out["y"] == [0.0, 2.5]
        assert out["z"] == "s"


class TestDiff:
    def test_identical_snapshots_pass(self, analysis):
        snap = analysis.to_dict()
        d = diff_analyses(snap, snap)
        assert d.ok
        assert "no regression" in d.report()

    def test_wall_growth_beyond_tolerance_regresses(self, analysis):
        base = analysis.to_dict()
        slow = json.loads(json.dumps(base))
        slow["wall_s"] = base["wall_s"] * 1.5
        d = diff_analyses(base, slow, tolerance=0.05)
        assert not d.ok
        assert any("wall" in r for r in d.regressions)
        assert "REGRESSION" in d.report()

    def test_growth_within_tolerance_passes(self, analysis):
        base = analysis.to_dict()
        near = json.loads(json.dumps(base))
        near["wall_s"] = base["wall_s"] * 1.01
        assert diff_analyses(base, near, tolerance=0.05).ok

    def test_tiny_category_doubling_does_not_trip(self, analysis):
        # the budget is a fraction of *wall*, not of the category
        base = analysis.to_dict()
        new = json.loads(json.dumps(base))
        new["causes"] = dict(new["causes"])
        new["causes"]["exec.other"] = base["wall_s"] * 1e-6
        assert diff_analyses(base, new, tolerance=0.05).ok


class TestEmptyAndReport:
    def test_no_commands_raises(self):
        from types import SimpleNamespace

        res = SimpleNamespace(commands=[])
        with pytest.raises(ValueError, match="no retired commands"):
            analyze_result(res)

    def test_empty_window_path(self):
        path = extract_critical_path([], 0.0, 0.0)
        assert path.segments == [] and path.length == 0.0

    def test_empty_commands_nonzero_window_is_all_host(self):
        path = extract_critical_path([], 0.0, 1.0)
        assert len(path.segments) == 1
        seg = path.segments[0]
        assert (seg.start, seg.end, seg.edge) == (0.0, 1.0, "api")

    def test_report_mentions_key_sections(self, analysis):
        text = analysis.report()
        assert "critical-path analysis" in text
        assert "where the wall time went" in text
        assert "what-if bounds" in text
        assert "(= wall)" in text


class TestIntervalUnion:
    def test_matches_sweep_line_reference(self):
        import random

        rnd = random.Random(7)
        for _ in range(200):
            ivs = []
            for _ in range(rnd.randrange(0, 12)):
                lo = rnd.uniform(0, 10)
                ivs.append((lo, lo + rnd.uniform(-0.5, 3)))
            # independent exact reference: endpoint sweep with a
            # coverage counter
            events = []
            for lo, hi in ivs:
                if hi > lo:
                    events += [(lo, 1), (hi, -1)]
            events.sort()
            depth, prev, ref = 0, 0.0, 0.0
            for t, d in events:
                if depth > 0:
                    ref += t - prev
                depth += d
                prev = t
            assert union_length(list(ivs)) == pytest.approx(ref, abs=1e-12)

    def test_equivalent_to_timeline_overlap(self):
        # the shared helper must reproduce overlap_fraction exactly —
        # it replaced two private copies of the same merge
        from repro.sim.trace import overlap_fraction

        res = _run("stencil")
        assert overlap_fraction(res.timeline) == pytest.approx(
            analyze_result(res).overlap, abs=1e-15
        )

    def test_degenerate_inputs(self):
        assert union_length([]) == 0.0
        assert union_length([(1.0, 1.0)]) == 0.0
        assert union_length([(2.0, 1.0)]) == 0.0
        assert union_length([(0, 1), (1, 2)]) == pytest.approx(2.0)
        assert union_length([(0, 2), (1, 3)]) == pytest.approx(3.0)


class TestFlightRecorderUnit:
    def test_ring_bounds_and_drop_count(self):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("e", t=float(i), i=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e["i"] for e in rec.events] == [2, 3, 4]
        assert [e["seq"] for e in rec.events] == [2, 3, 4]

    def test_clock_and_none_field_skipping(self):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=4, clock=lambda: 1.5)
        rec.record("e", a=None, b=2)
        (ev,) = rec.events
        assert ev["t"] == 1.5 and "a" not in ev and ev["b"] == 2

    def test_dump_snapshot_and_file(self, tmp_path):
        from repro.obs import FlightRecorder

        rec = FlightRecorder(capacity=2)
        rec.record("x", t=0.0)
        p = tmp_path / "dump.json"
        snap = rec.dump("why", path=str(p), device=1, skipme=None)
        assert snap["reason"] == "why"
        assert snap["context"] == {"device": 1}
        assert snap["recorded"] == 1 and snap["dropped"] == 0
        assert json.loads(p.read_text()) == snap
        assert rec.dumps == [snap]

    def test_capacity_validation(self):
        from repro.obs import FlightRecorder

        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestAtomicWrites:
    def test_atomic_write_replaces_not_truncates(self, tmp_path):
        from repro.obs.io import atomic_write_text

        p = tmp_path / "out.txt"
        p.write_text("old")
        atomic_write_text(str(p), "new contents")
        assert p.read_text() == "new contents"
        # no stray temp files left behind
        assert [f.name for f in tmp_path.iterdir()] == ["out.txt"]

    def test_chrome_trace_writers_leave_no_temps(self, tmp_path):
        from repro.analysis.gantt import write_chrome_trace
        from repro.obs import Observability

        obs = Observability()
        from repro.apps import stencil as st

        res = st.run_model(
            "pipelined-buffer",
            st.StencilConfig(nz=8, ny=16, nx=16, iters=1),
            virtual=True, obs=obs,
        )
        p1 = tmp_path / "spans.json"
        p2 = tmp_path / "timeline.json"
        obs.write_chrome_trace(str(p1))
        write_chrome_trace(res.timeline, str(p2))
        assert json.loads(p1.read_text())["traceEvents"]
        assert json.loads(p2.read_text())["traceEvents"]
        assert sorted(f.name for f in tmp_path.iterdir()) == [
            "spans.json", "timeline.json",
        ]
