"""Exporters: Chrome trace round-trip, the overlap acceptance check
against ``RegionResult.overlap``, and the profile report."""

from __future__ import annotations

import json

from repro.apps import conv3d as cv
from repro.gpu import Runtime
from repro.obs import (
    Observability,
    overlap_from_events,
    profile_report,
    spans_to_chrome,
    write_span_trace,
)
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, make_arrays, make_region


def observed_region_run(n=16, cs=2, ns=2):
    obs = Observability()
    rt = Runtime(NVIDIA_K40M, obs=obs)
    res = make_region(n, cs, ns).run(rt, make_arrays(n), ScaleKernel())
    return res, obs


class TestChromeTrace:
    def test_round_trip_is_valid_json(self, tmp_path):
        _, obs = observed_region_run()
        path = tmp_path / "trace.json"
        write_span_trace(obs.tracer.spans, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == spans_to_chrome(obs.tracer.spans)
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]

    def test_event_structure_and_monotone_ts(self):
        _, obs = observed_region_run()
        trace = spans_to_chrome(obs.tracer.spans)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert meta and slices
        assert not (set(e["ph"] for e in trace["traceEvents"]) - {"M", "X"})
        # one thread_name row per track, host first
        names = [e["args"]["name"] for e in meta]
        assert names[0] == "host" and len(names) == len(set(names))
        tids = {e["tid"] for e in meta}
        assert all(e["tid"] in tids for e in slices)
        ts = [e["ts"] for e in slices]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in slices)
        assert all(e["ts"] >= 0 for e in slices)

    def test_attrs_become_args(self):
        _, obs = observed_region_run()
        trace = spans_to_chrome(obs.tracer.spans)
        kernels = [e for e in trace["traceEvents"]
                   if e.get("cat") == "kernel" and e["ph"] == "X"]
        assert kernels
        assert all("queue_depth" in e["args"] for e in kernels)

    def test_open_spans_are_skipped(self):
        from repro.obs import Tracer

        tr = Tracer()
        tr.begin("open")
        tr.emit("closed", "api", start=0.0, end=1.0)
        trace = spans_to_chrome(tr.spans)
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names == ["closed"]


class TestOverlapAcceptance:
    def test_conv3d_trace_overlap_matches_result(self):
        """A pipelined-buffer conv3d run exported to Chrome trace JSON
        must reproduce ``RegionResult.overlap`` from its span events."""
        obs = Observability()
        res = cv.run_model(
            "pipelined-buffer", cv.Conv3dConfig(nz=16, ny=32, nx=32), obs=obs
        )
        trace = json.loads(json.dumps(spans_to_chrome(obs.tracer.spans)))
        assert abs(overlap_from_events(trace) - res.overlap) < 1e-9

    def test_synthetic_region_overlap_matches_result(self):
        res, obs = observed_region_run(n=24, cs=2, ns=3)
        trace = spans_to_chrome(obs.tracer.spans)
        assert abs(overlap_from_events(trace) - res.overlap) < 1e-9

    def test_no_transfers_means_zero_overlap(self):
        assert overlap_from_events({"traceEvents": []}) == 0.0


class TestProfileReport:
    def test_report_sections_present(self):
        _, obs = observed_region_run()
        text = profile_report(obs, top=3)
        assert "== span profile ==" in text
        assert "== engines ==" in text
        assert "== longest spans (top 3) ==" in text
        assert "== metrics ==" in text
        assert "engine:" in text

    def test_report_on_empty_observability(self):
        text = profile_report(Observability())
        assert "no spans recorded" in text
        assert "no device spans" in text
