"""Unit tests for the application kernels (references + cost models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import ChunkView
from repro.kernels.conv3d import COEFFS, Conv3dKernel, init_volume, reference_conv3d
from repro.kernels.cost import effective_time, roofline_time
from repro.kernels.matmul import (
    MatmulChunkKernel,
    MatmulWholeKernel,
    init_matrices,
    reference_matmul,
)
from repro.kernels.qcd import DslashKernel, init_lattice, reference_dslash
from repro.kernels.stencil3d import C0, C1, StencilKernel, init_grid, reference_sweep
from repro.sim.profiles import AMD_HD7970, NVIDIA_K40M


class TestCostModels:
    def test_roofline_compute_bound(self):
        t = roofline_time(NVIDIA_K40M, flops=1e12, bytes_moved=1, itemsize=8)
        assert t == pytest.approx(1e12 / NVIDIA_K40M.flops_f64)

    def test_roofline_memory_bound(self):
        t = roofline_time(NVIDIA_K40M, flops=1, bytes_moved=1e9, itemsize=8)
        assert t == pytest.approx(1e9 / NVIDIA_K40M.mem_bw)

    def test_roofline_precision_selects_rate(self):
        f32 = roofline_time(NVIDIA_K40M, 1e12, 0, itemsize=4)
        f64 = roofline_time(NVIDIA_K40M, 1e12, 0, itemsize=8)
        assert f32 < f64

    def test_roofline_validation(self):
        with pytest.raises(ValueError):
            roofline_time(NVIDIA_K40M, -1, 0, 8)
        with pytest.raises(ValueError):
            roofline_time(NVIDIA_K40M, 1, 0, 8, flop_efficiency=0)

    def test_effective_time(self):
        assert effective_time(100, 10) == pytest.approx(10)
        with pytest.raises(ValueError):
            effective_time(-1, 10)
        with pytest.raises(ValueError):
            effective_time(1, 0)


def full_views(split_arrays, resident=None):
    """Whole-array views like the naive executor provides."""
    views = {}
    for name, (arr, sd) in split_arrays.items():
        views[name] = ChunkView(arr, sd, 0, arr.shape[sd])
    for name, arr in (resident or {}).items():
        views[name] = ChunkView(arr, None, 0, arr.shape[0])
    return views


class TestStencilKernel:
    def test_reference_boundary_untouched(self):
        a = init_grid(8, 8, 8)
        b = np.full_like(a, -1.0)
        reference_sweep(a, b)
        assert np.all(b[0] == -1) and np.all(b[-1] == -1)
        assert np.all(b[:, 0, :] == -1) and np.all(b[:, :, -1] == -1)

    def test_reference_known_value(self):
        a = np.ones((3, 3, 3), dtype=np.float32)
        b = np.zeros_like(a)
        reference_sweep(a, b)
        assert b[1, 1, 1] == pytest.approx(6 * C1 - C0)

    def test_kernel_matches_reference_on_full_views(self):
        a = init_grid(10, 6, 7)
        b_ref = np.zeros_like(a)
        reference_sweep(a, b_ref)
        b = np.zeros_like(a)
        k = StencilKernel(6, 7)
        k.run(full_views({"A0": (a, 0), "Anext": (b, 0)}), 1, 9)
        assert np.allclose(b, b_ref)

    def test_cost_linear_in_planes(self):
        k = StencilKernel(512, 512)
        assert k.cost(NVIDIA_K40M, 0, 4) == pytest.approx(4 * k.cost(NVIDIA_K40M, 0, 1))

    def test_chunked_equals_whole(self):
        a = init_grid(12, 5, 5)
        whole = np.zeros_like(a)
        k = StencilKernel(5, 5)
        k.run(full_views({"A0": (a, 0), "Anext": (whole, 0)}), 1, 11)
        parts = np.zeros_like(a)
        for t0 in range(1, 11, 2):
            k.run(full_views({"A0": (a, 0), "Anext": (parts, 0)}), t0, t0 + 2)
        assert np.array_equal(whole, parts)


class TestConv3dKernel:
    def test_coeffs_frozen(self):
        with pytest.raises(ValueError):
            COEFFS[0, 0, 0] = 1.0

    def test_kernel_matches_reference(self):
        a = init_volume(9, 6, 5)
        ref = np.zeros_like(a)
        reference_conv3d(a, ref)
        out = np.zeros_like(a)
        Conv3dKernel(6, 5).run(full_views({"A": (a, 0), "B": (out, 0)}), 1, 8)
        assert np.allclose(out, ref, atol=1e-6)

    def test_identity_coefficients_behaviour(self):
        """With random coeffs the centre voxel result is the weighted sum."""
        a = np.zeros((3, 3, 3), dtype=np.float32)
        a[1, 1, 1] = 1.0
        out = np.zeros_like(a)
        Conv3dKernel(3, 3).run(full_views({"A": (a, 0), "B": (out, 0)}), 1, 2)
        assert out[1, 1, 1] == pytest.approx(COEFFS[1, 1, 1])


class TestMatmulKernels:
    def test_whole_kernel_runs_gemm(self):
        a, b, c = init_matrices(24)
        k = MatmulWholeKernel(24, "baseline", trips=3)
        k.run(full_views({"A": (a, 1), "B": (b, 0)}, resident={"C": c}), 0, 3)
        assert np.allclose(c, reference_matmul(a, b))

    def test_block_shared_3x_faster_than_baseline(self):
        base = MatmulWholeKernel(4096, "baseline", trips=8)
        tiled = MatmulWholeKernel(4096, "block_shared", trips=8)
        ratio = base.cost(NVIDIA_K40M, 0, 8) / tiled.cost(NVIDIA_K40M, 0, 8)
        assert 2.5 < ratio < 3.5

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            MatmulWholeKernel(16, "fancy")

    def test_chunk_kernel_accumulates_blocks(self):
        n, blk = 32, 8
        a, b, c = init_matrices(n)
        k = MatmulChunkKernel(n, blk)
        for kb in range(n // blk):
            views = full_views({"A": (a, 1), "B": (b, 0)}, resident={"C": c})
            k.run(views, kb, kb + 1)
        assert np.allclose(c, reference_matmul(a, b))

    def test_chunk_kernel_ragged_final_block(self):
        n, blk = 30, 8  # 4 blocks, last covers 6 columns
        a, b, c = init_matrices(n)
        k = MatmulChunkKernel(n, blk)
        for kb in range(-(-n // blk)):
            k.run(full_views({"A": (a, 1), "B": (b, 0)}, resident={"C": c}), kb, kb + 1)
        assert np.allclose(c, reference_matmul(a, b))

    def test_chunk_cost_scales_with_depth(self):
        k = MatmulChunkKernel(2048, 256)
        assert k.cost(NVIDIA_K40M, 0, 2) == pytest.approx(
            2 * k.cost(NVIDIA_K40M, 0, 1), rel=0.2
        )


class TestDslashKernel:
    def test_kernel_matches_reference(self):
        g, psi, eta_ref = init_lattice(6, 4, 3, 5)
        reference_dslash(g, psi, eta_ref)
        g2, psi2, eta = init_lattice(6, 4, 3, 5)
        DslashKernel(4, 3, 5).run(
            full_views({"G": (g2, 0), "psi": (psi2, 0), "eta": (eta, 0)}), 1, 5
        )
        assert np.allclose(eta, eta_ref, atol=1e-5)

    def test_chunked_equals_whole(self):
        g, psi, _ = init_lattice(8, 3, 3, 3)
        whole = np.zeros_like(psi)
        k = DslashKernel(3, 3, 3)
        k.run(full_views({"G": (g, 0), "psi": (psi, 0), "eta": (whole, 0)}), 1, 7)
        parts = np.zeros_like(psi)
        for t0 in range(1, 7, 3):
            k.run(
                full_views({"G": (g, 0), "psi": (psi, 0), "eta": (parts, 0)}),
                t0,
                min(t0 + 3, 7),
            )
        assert np.allclose(whole, parts)

    def test_boundary_slices_untouched(self):
        g, psi, eta = init_lattice(6, 3, 3, 3)
        reference_dslash(g, psi, eta)
        assert np.all(eta[0] == 0) and np.all(eta[-1] == 0)

    def test_index_penalty_visible(self):
        k = DslashKernel(8, 8, 8)
        assert k.index_penalty > StencilKernel(8, 8).index_penalty

    def test_cost_scales_with_volume(self):
        small = DslashKernel(4, 4, 4).cost(AMD_HD7970, 1, 3)
        big = DslashKernel(8, 8, 8).cost(AMD_HD7970, 1, 3)
        assert big == pytest.approx(8 * small)
