"""Tests for the auto-tuning scheduler (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.autotune import AutotuneReport, autotune, candidate_grid
from repro.core.memlimit import MemLimitError
from repro.gpu import Runtime
from repro.sim import AMD_HD7970, NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, make_arrays, make_region, run


class TestCandidateGrid:
    def test_grid_shape(self):
        grid = candidate_grid(64)
        sizes = {cs for cs, _ in grid}
        streams = {ns for _, ns in grid}
        assert sizes == {1, 2, 4, 8, 16, 32}
        assert streams == {1, 2, 3, 4, 8}

    def test_streams_clamped(self):
        grid = candidate_grid(64, max_streams=2)
        assert {ns for _, ns in grid} == {1, 2}

    def test_tiny_loop(self):
        grid = candidate_grid(2)
        assert {cs for cs, _ in grid} == {1}

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            candidate_grid(0)


class TestAutotune:
    def heavy_arrays(self, n=128):
        rng = np.random.default_rng(3)
        a = rng.random((n, 32768))
        return {"IN": a, "OUT": np.zeros_like(a)}

    def test_report_structure(self):
        n = 64
        region = make_region(n)
        rep = autotune(
            region, Runtime(NVIDIA_K40M), make_arrays(n), ScaleKernel(), max_streams=4
        )
        assert isinstance(rep, AutotuneReport)
        assert rep.best.feasible
        assert rep.dry_runs == len([c for c in rep.candidates if c.feasible])
        assert rep.best.elapsed == min(
            c.elapsed for c in rep.candidates if c.feasible
        )
        assert "best" in rep.table()

    def test_best_beats_worst_static_choice(self):
        n = 128
        kernel = ScaleKernel(cost_per_iter=25e-6)
        arrays = self.heavy_arrays(n)
        rep = autotune(make_region(n), Runtime(NVIDIA_K40M), arrays, kernel)
        # run the tuned configuration for real and compare with a bad one
        tuned = run(
            "pipelined-buffer",
            make_region(n, rep.best.chunk_size, rep.best.num_streams),
            Runtime(NVIDIA_K40M),
            arrays,
            kernel,
        )
        bad = run(
            "pipelined-buffer", make_region(n, 1, 1), Runtime(NVIDIA_K40M),
            arrays, kernel,
        )
        assert tuned.elapsed < bad.elapsed

    def test_dry_run_predicts_real_run(self):
        """The virtual dry-run elapsed equals the real execution's."""
        n = 96
        kernel = ScaleKernel(cost_per_iter=25e-6)
        arrays = self.heavy_arrays(n)
        rep = autotune(make_region(n), Runtime(NVIDIA_K40M), arrays, kernel)
        real = run(
            "pipelined-buffer",
            make_region(n, rep.best.chunk_size, rep.best.num_streams),
            Runtime(NVIDIA_K40M),
            arrays,
            kernel,
        )
        assert real.elapsed == pytest.approx(rep.best.elapsed, rel=1e-9)

    def test_mem_limit_respected(self):
        n = 128
        region = make_region(n, mem="64KB")
        rep = autotune(region, Runtime(NVIDIA_K40M), make_arrays(n), ScaleKernel())
        assert rep.best.buffer_bytes <= 64_000

    def test_impossible_limit_raises(self):
        n = 128
        region = make_region(n, mem="100B")  # below even the (1,1) ring
        with pytest.raises(MemLimitError):
            autotune(region, Runtime(NVIDIA_K40M), make_arrays(n), ScaleKernel())

    def test_amd_prefers_coarser_chunks_than_nvidia(self):
        """On the HD 7970 fine chunks collapse bandwidth, so the tuner
        must pick a larger chunk size than it needs on the K40m."""
        n = 256
        kernel = ScaleKernel(cost_per_iter=25e-6)
        arrays = self.heavy_arrays(n)
        amd = autotune(make_region(n), Runtime(AMD_HD7970), arrays, kernel)
        nv = autotune(make_region(n), Runtime(NVIDIA_K40M), arrays, kernel)
        assert amd.best.chunk_size >= nv.best.chunk_size
        assert amd.best.chunk_size >= 4
