"""Unit tests for chunk planning and buffer sizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import Chunk, RegionPlan, make_chunks
from repro.directives.clauses import Affine, DirectiveError, Loop, MapClause, PipelineMapClause
from repro.directives.splitspec import SplitSpec


def stencil_plan(nz=64, ny=16, nx=16, cs=1, ns=3, schedule="static", halo="dedup"):
    loop = Loop("k", 1, nz - 1)
    a0 = PipelineMapClause(
        direction="to", var="A0", split_dim=0, split_iter=Affine(1, -1), size=3,
        dims=((0, nz), (0, ny), (0, nx)),
    )
    an = PipelineMapClause(
        direction="from", var="Anext", split_dim=0, split_iter=Affine(1, 0), size=1,
        dims=((0, nz), (0, ny), (0, nx)),
    )
    return RegionPlan(
        loop=loop,
        chunk_size=cs,
        num_streams=ns,
        schedule=schedule,
        specs={"A0": SplitSpec.derive(a0, loop), "Anext": SplitSpec.derive(an, loop)},
        residents={},
        dtypes={"A0": np.dtype(np.float32), "Anext": np.dtype(np.float32)},
        shapes={"A0": (nz, ny, nx), "Anext": (nz, ny, nx)},
        halo_mode=halo,
    )


class TestMakeChunks:
    def test_exact_tiling(self):
        chunks = make_chunks(Loop("k", 0, 12), 4)
        assert [(c.t0, c.t1) for c in chunks] == [(0, 4), (4, 8), (8, 12)]

    def test_ragged_last_chunk(self):
        chunks = make_chunks(Loop("k", 1, 10), 4)
        assert [(c.t0, c.t1) for c in chunks] == [(1, 5), (5, 9), (9, 10)]
        assert chunks[-1].trip == 1

    def test_indices_sequential(self):
        chunks = make_chunks(Loop("k", 0, 7), 2)
        assert [c.index for c in chunks] == [0, 1, 2, 3]

    def test_chunk_larger_than_loop(self):
        chunks = make_chunks(Loop("k", 0, 3), 100)
        assert len(chunks) == 1 and chunks[0].trip == 3

    def test_invalid_chunk_size(self):
        with pytest.raises(DirectiveError):
            make_chunks(Loop("k", 0, 3), 0)


class TestChunksCoverLoop:
    @pytest.mark.parametrize("cs", [1, 2, 3, 5, 7, 62, 100])
    def test_every_iteration_exactly_once(self, cs):
        plan = stencil_plan(cs=cs)
        seen = []
        for c in plan.chunks():
            seen.extend(range(c.t0, c.t1))
        assert seen == list(plan.loop.iterations())


class TestBufferSizing:
    def test_input_ring_smaller_than_full_array(self):
        plan = stencil_plan(nz=256, cs=1, ns=3)
        assert plan.ring_capacity("A0") < 256
        assert plan.buffer_bytes("A0") < plan.specs["A0"].full_bytes(4)

    def test_ring_capacity_holds_live_window(self):
        plan = stencil_plan(cs=2, ns=3)
        # 3 in-flight chunks of 2 iterations with halo 1 each side
        assert plan.ring_capacity("A0") >= plan.specs["A0"].window_extent(2, 3)

    def test_output_uses_slot_capacity(self):
        plan = stencil_plan(cs=2, ns=3)
        assert plan.ring_capacity("Anext") == 3 * plan.slot_extent("Anext")

    def test_capacity_capped_at_extent(self):
        plan = stencil_plan(nz=8, cs=4, ns=4)
        assert plan.ring_capacity("A0") <= 8

    def test_duplicate_mode_slots(self):
        plan = stencil_plan(cs=1, ns=4, halo="duplicate")
        # slot extent = chunk dep extent = 3 planes
        assert plan.slot_extent("A0") == 3
        assert plan.ring_capacity("A0") == 12

    def test_device_bytes_sums_buffers_and_residents(self):
        plan = stencil_plan(ny=8, nx=8)
        plan.residents["C"] = MapClause("tofrom", "C")
        plan.dtypes["C"] = np.dtype(np.float64)
        plan.shapes["C"] = (10, 10)
        assert plan.device_bytes() == (
            plan.buffer_bytes("A0") + plan.buffer_bytes("Anext") + 800
        )

    def test_more_streams_need_more_memory(self):
        b2 = stencil_plan(nz=512, ns=2).device_bytes()
        b8 = stencil_plan(nz=512, ns=8).device_bytes()
        assert b8 > b2

    def test_with_params_copies(self):
        plan = stencil_plan(cs=1, ns=2)
        p2 = plan.with_params(4, 8)
        assert (p2.chunk_size, p2.num_streams) == (4, 8)
        assert (plan.chunk_size, plan.num_streams) == (1, 2)

    def test_streams_clamped_to_chunk_count(self):
        plan = stencil_plan(nz=4, cs=2, ns=16)  # only 1 chunk
        assert plan.num_streams <= len(plan.chunks())


class TestAdaptivePlan:
    def test_adaptive_chunks_cover_loop(self):
        plan = stencil_plan(nz=256, cs=1, ns=2, schedule="adaptive")
        seen = []
        for c in plan.chunks():
            seen.extend(range(c.t0, c.t1))
        assert seen == list(plan.loop.iterations())

    def test_adaptive_ramps_up(self):
        plan = stencil_plan(nz=256, cs=1, ns=2, schedule="adaptive")
        sizes = [c.trip for c in plan.chunks()]
        assert sizes[0] == 1
        assert max(sizes) > 1
        assert max(sizes) <= plan.max_chunk_size

    def test_adaptive_fewer_chunks_than_static(self):
        static = stencil_plan(nz=256, cs=1, ns=2, schedule="static")
        adaptive = stencil_plan(nz=256, cs=1, ns=2, schedule="adaptive")
        assert len(adaptive.chunks()) < len(static.chunks())

    def test_max_chunk_size_bounds(self):
        plan = stencil_plan(nz=256, cs=2, ns=2, schedule="adaptive")
        from repro.core.scheduler import ADAPTIVE_MAX_FACTOR

        assert plan.max_chunk_size == 2 * ADAPTIVE_MAX_FACTOR


class TestDescribe:
    def test_describe_mentions_key_facts(self):
        desc = stencil_plan().describe()
        assert "streams=3" in desc and "halo=dedup" in desc

    def test_bad_halo_mode_rejected(self):
        with pytest.raises(DirectiveError):
            stencil_plan(halo="mystery")

    def test_chunk_dep_range(self):
        plan = stencil_plan()
        c = Chunk(0, 1, 2)
        assert plan.chunk_dep_range("A0", c) == (0, 3)
        assert plan.chunk_dep_range("Anext", c) == (1, 2)


class TestParameterValidation:
    """Pipeline parameters are validated at plan construction."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_nonpositive_chunk_size_rejected(self, bad):
        from repro.gpu.errors import InvalidValueError

        with pytest.raises(InvalidValueError, match="chunk_size"):
            stencil_plan(cs=bad)

    @pytest.mark.parametrize("bad", [0, -1, -3])
    def test_nonpositive_num_streams_rejected(self, bad):
        from repro.gpu.errors import InvalidValueError

        with pytest.raises(InvalidValueError, match="num_streams"):
            stencil_plan(ns=bad)

    @pytest.mark.parametrize("bad", [1.5, "2", 2.0, True, None])
    def test_non_integer_parameters_rejected(self, bad):
        from repro.gpu.errors import InvalidValueError

        with pytest.raises(InvalidValueError):
            stencil_plan(cs=bad)
        with pytest.raises(InvalidValueError):
            stencil_plan(ns=bad)

    def test_numpy_integers_accepted(self):
        plan = stencil_plan(cs=np.int64(2), ns=np.int32(2))
        assert plan.chunk_size == 2 and plan.num_streams == 2
