"""Tests for function-based dependencies (paper future work).

``pipeline_map`` clauses may carry a ``dep_fn`` callable instead of an
affine ``split_iter``: iteration ``k`` depends on whatever half-open
range the function returns, as long as both endpoints are non-
decreasing.  This covers irregular patterns the affine form cannot
express — e.g. a prefix-sum-style kernel whose window grows, or
variable-width bands from a CSR-like row partition.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.core import RegionKernel, TargetRegion
from repro.core.kernel import ChunkView
from repro.directives.clauses import (
    Affine,
    DirectiveError,
    Loop,
    PipelineClause,
    PipelineMapClause,
)
from repro.directives.splitspec import SplitSpec, chunk_range, iter_range
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit

N_ROWS = 64
COLS = 6

# iteration k reads rows [offsets[k], offsets[k+1]) — variable widths
WIDTHS = [1 + (3 * k) % 5 for k in range(32)]
OFFSETS = np.concatenate([[0], np.cumsum(WIDTHS)]).tolist()


def dep(k: int):
    return OFFSETS[k], OFFSETS[k + 1]


def in_clause():
    return PipelineMapClause(
        direction="to",
        var="IN",
        split_dim=0,
        split_iter=Affine(1, 0),  # ignored when dep_fn is set
        size=1,
        dims=((0, OFFSETS[-1]), (0, COLS)),
        dep_fn=dep,
    )


def out_clause(n_iters):
    return PipelineMapClause(
        direction="from",
        var="OUT",
        split_dim=0,
        split_iter=Affine(1, 0),
        size=1,
        dims=((0, n_iters), (0, COLS)),
    )


class RowSumKernel(RegionKernel):
    """OUT[k] = sum of IN rows [offsets[k], offsets[k+1])."""

    name = "rowsum"
    index_penalty = 0.0

    def cost(self, profile, t0, t1):
        return (t1 - t0) * 1e-5

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        src = views["IN"]
        dst = views["OUT"].take(t0, t1)
        for i, k in enumerate(range(t0, t1)):
            lo, hi = dep(k)
            dst[i] = src.take(lo, hi).sum(axis=0)


def reference(a):
    n = len(WIDTHS)
    out = np.zeros((n, COLS))
    for k in range(n):
        lo, hi = dep(k)
        out[k] = a[lo:hi].sum(axis=0)
    return out


def build_region(cs=1, ns=2):
    loop = Loop("k", 0, len(WIDTHS))
    return TargetRegion(
        pipeline=PipelineClause("static", cs, ns),
        pipeline_maps=[in_clause(), out_clause(len(WIDTHS))],
        loop=loop,
    )


class TestDepFnGeometry:
    LOOP = Loop("k", 0, len(WIDTHS))

    def test_iter_range_uses_function(self):
        c = in_clause()
        assert iter_range(c, 3) == dep(3)

    def test_chunk_range_spans_endpoints(self):
        c = in_clause()
        assert chunk_range(c, 2, 5) == (dep(2)[0], dep(4)[1])

    def test_derive_caches_and_validates(self):
        spec = SplitSpec.derive(in_clause(), self.LOOP)
        assert spec.iter_ranges is not None
        assert len(spec.iter_ranges) == len(WIDTHS)

    def test_chunk_extent_is_worst_window(self):
        spec = SplitSpec.derive(in_clause(), self.LOOP)
        worst = max(dep(k + 1)[1] - dep(k)[0] for k in range(len(WIDTHS) - 1))
        assert spec.chunk_extent(2) == worst

    def test_non_monotone_function_rejected(self):
        c = PipelineMapClause(
            direction="to", var="IN", split_dim=0, split_iter=Affine(1, 0),
            size=1, dims=((0, 100), (0, 4)),
            dep_fn=lambda k: (10 - k, 12 - k),
        )
        with pytest.raises(DirectiveError):
            SplitSpec.derive(c, Loop("k", 0, 5))

    def test_empty_function_range_rejected(self):
        c = PipelineMapClause(
            direction="to", var="IN", split_dim=0, split_iter=Affine(1, 0),
            size=1, dims=((0, 100), (0, 4)),
            dep_fn=lambda k: (k, k),
        )
        with pytest.raises(DirectiveError):
            SplitSpec.derive(c, Loop("k", 0, 5))

    def test_non_callable_rejected(self):
        with pytest.raises(DirectiveError):
            PipelineMapClause(
                direction="to", var="IN", split_dim=0,
                split_iter=Affine(1, 0), size=1, dims=((0, 8),),
                dep_fn="not callable",
            )


class TestDepFnExecution:
    @pytest.mark.parametrize("model", ["naive", "pipelined", "pipelined-buffer"])
    @pytest.mark.parametrize("cs,ns", [(1, 2), (3, 2), (4, 3)])
    def test_variable_width_bands_match_reference(self, model, cs, ns):
        rng = np.random.default_rng(11)
        a = rng.random((OFFSETS[-1], COLS))
        arrays = {"IN": a, "OUT": np.zeros((len(WIDTHS), COLS))}
        region = build_region(cs, ns)
        res = region.run(Runtime(NVIDIA_K40M), arrays, RowSumKernel(), model=model)
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], reference(a))

    def test_dedup_still_exact_with_disjoint_bands(self):
        """Disjoint variable-width bands: every row moved exactly once."""
        rng = np.random.default_rng(12)
        a = rng.random((OFFSETS[-1], COLS))
        arrays = {"IN": a, "OUT": np.zeros((len(WIDTHS), COLS))}
        res = build_region(2, 2).run(Runtime(NVIDIA_K40M), arrays, RowSumKernel())
        h2d = sum(r.nbytes for r in res.timeline.by_kind("h2d"))
        assert h2d == a.nbytes

    def test_buffer_memory_below_full_footprint(self):
        rng = np.random.default_rng(13)
        a = rng.random((OFFSETS[-1], 4096))
        arrays = {"IN": a, "OUT": np.zeros((len(WIDTHS), 4096))}
        region = build_region(1, 2)
        res = region.run(Runtime(NVIDIA_K40M), arrays, RowSumKernel())
        assert res.data_peak < (a.nbytes + arrays["OUT"].nbytes) / 2
