"""Unit tests for TargetRegion binding and dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion
from repro.core.kernel import ChunkView, RegionKernel
from repro.directives.clauses import DirectiveError, Loop, PipelineClause
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M

PRAGMA = (
    "pipeline(static[2,3]) "
    "pipeline_map(to: IN[k-1:3][0:8]) "
    "pipeline_map(from: OUT[k:1][0:8]) "
    "map(tofrom: ACC)"
)


class NullKernel(RegionKernel):
    name = "null"
    index_penalty = 0.0

    def cost(self, profile, t0, t1):
        return (t1 - t0) * 1e-6

    def run(self, views, t0, t1):
        pass


def arrays(n=32):
    return {
        "IN": np.zeros((n, 8)),
        "OUT": np.zeros((n, 8)),
        "ACC": np.zeros((4, 4)),
    }


class TestConstruction:
    def test_parse_builds_region(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        assert r.pipeline.chunk_size == 2
        assert len(r.pipeline_maps) == 2
        assert r.maps[0].var == "ACC"

    def test_needs_pipeline_map(self):
        with pytest.raises(DirectiveError):
            TargetRegion(PipelineClause(), [], Loop("k", 0, 4))


class TestBinding:
    def test_bind_fills_split_extent(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        plan = r.bind(arrays())
        assert plan.specs["IN"].split_extent == 32
        assert plan.shapes["ACC"] == (4, 4)
        assert plan.dtypes["OUT"] == np.dtype(np.float64)

    def test_bind_missing_array_rejected(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        del a["OUT"]
        with pytest.raises(DirectiveError):
            r.bind(a)

    def test_bind_missing_resident_rejected(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        del a["ACC"]
        with pytest.raises(DirectiveError):
            r.bind(a)

    def test_bind_wrong_rank_rejected(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        a["IN"] = np.zeros((32, 8, 2))
        with pytest.raises(DirectiveError):
            r.bind(a)

    def test_bind_section_overrun_rejected(self):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        a["IN"] = np.zeros((32, 4))  # section says [0:8]
        with pytest.raises(DirectiveError):
            r.bind(a)

    def test_plan_for_applies_device_free_memory(self, k40m):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        plan = r.plan_for(k40m, arrays())
        assert plan.device_bytes() <= k40m.device.memory.free


class TestDispatch:
    def test_all_models_run_and_report_their_name(self, k40m):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        assert (
            r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="naive").model
            == "naive"
        )
        assert (
            r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="pipelined").model
            == "pipelined"
        )
        assert r.run(Runtime(NVIDIA_K40M), a, NullKernel()).model == "pipelined-buffer"

    def test_model_aliases_and_rejection(self, k40m):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        res = r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="pipelined-buffer")
        assert res.model == "pipelined-buffer"
        with pytest.raises(DirectiveError):
            r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="bogus")

    def test_deprecated_aliases_warn_and_match(self, k40m):
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        with pytest.warns(DeprecationWarning, match="run_naive"):
            old = r.run_naive(Runtime(NVIDIA_K40M), a, NullKernel())
        new = r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="naive")
        assert old.model == new.model and old.elapsed == new.elapsed
        with pytest.warns(DeprecationWarning, match="run_pipelined"):
            old = r.run_pipelined(Runtime(NVIDIA_K40M), a, NullKernel())
        new = r.run(Runtime(NVIDIA_K40M), a, NullKernel(), model="pipelined")
        assert old.model == new.model and old.elapsed == new.elapsed

    def test_resident_tofrom_roundtrips(self):
        """A tofrom map must copy host->device and back even if the
        kernel never touches it."""
        rt = Runtime(NVIDIA_K40M)
        r = TargetRegion.parse(PRAGMA, Loop("k", 1, 31))
        a = arrays()
        a["ACC"][...] = 7.0
        r.run(rt, a, NullKernel())
        assert np.all(a["ACC"] == 7.0)


class TestChunkView:
    def test_local_translation(self):
        v = ChunkView(np.zeros((5, 4)), 0, 10, 15)
        assert v.local(12) == 2
        assert v.local_slice(11, 14) == slice(1, 4)

    def test_local_slice_bounds_checked(self):
        v = ChunkView(np.zeros((5, 4)), 0, 10, 15)
        with pytest.raises(IndexError):
            v.local_slice(9, 12)
        with pytest.raises(IndexError):
            v.local_slice(12, 16)

    def test_take_along_split_dim(self):
        data = np.arange(20).reshape(5, 4)
        v = ChunkView(data, 0, 10, 15)
        assert np.array_equal(v.take(11, 13), data[1:3])

    def test_take_inner_split_dim(self):
        data = np.arange(20).reshape(4, 5)
        v = ChunkView(data, 1, 10, 15)
        assert np.array_equal(v.take(11, 13), data[:, 1:3])

    def test_take_on_resident_rejected(self):
        v = ChunkView(np.zeros((5, 4)), None, 0, 5)
        with pytest.raises(ValueError):
            v.take(0, 2)

    def test_chunk_cost_penalty(self):
        class K(NullKernel):
            index_penalty = 0.10

        k = K()
        base = k.chunk_cost(NVIDIA_K40M, 0, 10, translated=False)
        trans = k.chunk_cost(NVIDIA_K40M, 0, 10, translated=True)
        assert trans == pytest.approx(base * 1.10)
