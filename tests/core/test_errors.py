"""The unified exception hierarchy rooted at ``ReproError``."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    DirectiveError,
    GpuError,
    InvalidValueError,
    MemLimitError,
    OutOfDeviceMemory,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc,stdlib",
        [
            (DirectiveError, ValueError),
            (SimulationError, RuntimeError),
            (OutOfDeviceMemory, MemoryError),
            (GpuError, RuntimeError),
            (InvalidValueError, RuntimeError),
            (MemLimitError, MemoryError),
        ],
    )
    def test_subclasses_root_and_keeps_stdlib_base(self, exc, stdlib):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, stdlib)

    def test_lazy_reexports_are_canonical_classes(self):
        from repro.directives.clauses import DirectiveError as home
        assert DirectiveError is home

    def test_exported_from_top_level(self):
        for name in ("ReproError", "DirectiveError", "SimulationError",
                     "OutOfDeviceMemory", "GpuError", "MemLimitError"):
            assert getattr(repro, name) is getattr(
                __import__("repro.errors", fromlist=[name]), name
            )

    def test_errors_module_dir_lists_lazy_names(self):
        import repro.errors as errors
        assert "SimulationError" in dir(errors)

    def test_unknown_attribute_raises(self):
        import repro.errors as errors
        with pytest.raises(AttributeError):
            errors.NoSuchError

    def test_except_reproerror_catches_layer_errors(self):
        from repro.core.memlimit import MemLimitError as mle
        with pytest.raises(ReproError):
            raise mle(100, 10)
