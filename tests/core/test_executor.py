"""Integration-grade tests of the three execution models on a synthetic
kernel whose behaviour is easy to reason about."""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.core import RegionKernel, TargetRegion
from repro.core.kernel import ChunkView
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit


class ScaleKernel(RegionKernel):
    """out[k] = 2 * in[k] + in[k-1] + in[k+1] over rows of a 2-D array.

    Same dependency shape as the stencil (halo 1) but trivially
    checkable.
    """

    name = "scale"
    index_penalty = 0.0

    def __init__(self, cost_per_iter: float = 1e-4) -> None:
        self.cost_per_iter = cost_per_iter

    def cost(self, profile, t0, t1):
        return (t1 - t0) * self.cost_per_iter

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        src = views["IN"].take(t0 - 1, t1 + 1)
        dst = views["OUT"].take(t0, t1)
        dst[...] = 2 * src[1:-1] + src[:-2] + src[2:]


def make_region(n=32, cs=1, ns=2, schedule="static", halo="dedup", mem=""):
    mem_clause = f"pipeline_mem_limit({mem})" if mem else ""
    return TargetRegion.parse(
        f"pipeline({schedule}[{cs},{ns}]) "
        f"pipeline_map(to: IN[k-1:3][0:8]) "
        f"pipeline_map(from: OUT[k:1][0:8]) " + mem_clause,
        loop=Loop("k", 1, n - 1),
        halo_mode=halo,
    )


def make_arrays(n=32, rng=None):
    rng = rng or np.random.default_rng(5)
    a = rng.random((n, 8))
    return {"IN": a, "OUT": np.zeros_like(a)}


def expected(arrays, n):
    src = arrays["IN"]
    out = np.zeros_like(src)
    out[1 : n - 1] = 2 * src[1 : n - 1] + src[: n - 2] + src[2:n]
    return out


@pytest.fixture
def rt():
    return Runtime(NVIDIA_K40M)


MODELS = ["naive", "pipelined", "pipelined-buffer"]


def run(model, region, rt, arrays, kernel=None):
    kernel = kernel or ScaleKernel()
    return region.run(rt, arrays, kernel, model=model)


class TestCorrectnessMatrix:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("cs,ns", [(1, 1), (1, 2), (2, 3), (5, 2), (64, 4)])
    def test_all_param_combinations_match_reference(self, model, cs, ns):
        n = 32
        arrays = make_arrays(n)
        res = run(model, make_region(n, cs, ns), Runtime(NVIDIA_K40M), arrays)
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], expected(arrays, n))

    @pytest.mark.parametrize("model", ["pipelined", "pipelined-buffer"])
    @pytest.mark.parametrize("halo", ["dedup", "duplicate"])
    @pytest.mark.parametrize("profile_name", ["k40m", "hd7970"])
    def test_halo_modes_match_reference(self, model, halo, profile_name):
        from repro.sim import profile_by_name

        n = 24
        arrays = make_arrays(n)
        res = run(
            model,
            make_region(n, 2, 3, halo=halo),
            Runtime(profile_by_name(profile_name)),
            arrays,
        )
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], expected(arrays, n))

    def test_adaptive_schedule_matches_reference(self):
        n = 64
        arrays = make_arrays(n)
        res = run(
            "pipelined-buffer",
            make_region(n, 1, 2, schedule="adaptive"),
            Runtime(NVIDIA_K40M),
            arrays,
        )
        audit(res.timeline)
        assert np.allclose(arrays["OUT"], expected(arrays, n))
        # adaptive must have produced fewer chunks than static would
        assert res.nchunks < n - 2

    def test_ragged_last_chunk(self):
        n = 33  # 31 iterations, chunk 4 -> last chunk of 3
        arrays = make_arrays(n)
        res = run("pipelined-buffer", make_region(n, 4, 2), Runtime(NVIDIA_K40M), arrays)
        assert res.nchunks == 8
        assert np.allclose(arrays["OUT"], expected(arrays, n))


class TestTransferBehaviour:
    def test_dedup_moves_each_plane_once(self, rt):
        n = 32
        arrays = make_arrays(n)
        res = run("pipelined-buffer", make_region(n, 1, 3), rt, arrays)
        h2d_bytes = sum(r.nbytes for r in res.timeline.by_kind("h2d"))
        assert h2d_bytes == arrays["IN"].nbytes  # every plane exactly once

    def test_duplicate_mode_moves_halo_repeatedly(self, rt):
        n = 32
        arrays = make_arrays(n)
        res = run(
            "pipelined-buffer", make_region(n, 1, 3, halo="duplicate"), rt, arrays
        )
        h2d_bytes = sum(r.nbytes for r in res.timeline.by_kind("h2d"))
        # chunk size 1, halo 3 planes per chunk: ~3x traffic
        assert h2d_bytes > 2.5 * arrays["IN"].nbytes

    def test_output_planes_written_once(self, rt):
        n = 32
        arrays = make_arrays(n)
        res = run("pipelined-buffer", make_region(n, 1, 3), rt, arrays)
        d2h_bytes = sum(r.nbytes for r in res.timeline.by_kind("d2h"))
        assert d2h_bytes == (n - 2) * 8 * 8  # interior planes once

    def test_manual_pipelined_also_dedups(self, rt):
        """The hand-coded Pipelined baseline copies new planes only
        (its full-size device arrays keep earlier planes resident)."""
        n = 32
        arrays = make_arrays(n)
        res = run("pipelined", make_region(n, 1, 3), rt, arrays)
        h2d_bytes = sum(r.nbytes for r in res.timeline.by_kind("h2d"))
        assert h2d_bytes == arrays["IN"].nbytes

    def test_naive_moves_whole_arrays(self, rt):
        n = 32
        arrays = make_arrays(n)
        res = run("naive", make_region(n), rt, arrays)
        assert sum(r.nbytes for r in res.timeline.by_kind("h2d")) == arrays["IN"].nbytes
        assert sum(r.nbytes for r in res.timeline.by_kind("d2h")) == arrays["OUT"].nbytes
        assert len(res.timeline.by_kind("kernel")) == 1


class TestMemoryBehaviour:
    def test_buffer_version_uses_less_memory(self):
        n = 512
        arrays = make_arrays(n)
        r_naive = run("naive", make_region(n), Runtime(NVIDIA_K40M), dict(arrays))
        r_buf = run(
            "pipelined-buffer", make_region(n, 1, 2), Runtime(NVIDIA_K40M), dict(arrays)
        )
        assert r_buf.data_peak < r_naive.data_peak / 10

    def test_pipelined_full_footprint(self):
        n = 512
        arrays = make_arrays(n)
        r_pipe = run("pipelined", make_region(n, 1, 2), Runtime(NVIDIA_K40M), arrays)
        assert r_pipe.data_peak >= arrays["IN"].nbytes + arrays["OUT"].nbytes

    def test_mem_limit_shrinks_pipeline(self):
        n = 512
        arrays = make_arrays(n)
        big = make_region(n, 64, 8)
        small = make_region(n, 64, 8, mem="40KB")
        rt1, rt2 = Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)
        r_big = run("pipelined-buffer", big, rt1, dict(arrays))
        r_small = run("pipelined-buffer", small, rt2, dict(arrays))
        assert r_small.data_peak <= 40_000
        assert r_small.chunk_size < r_big.chunk_size
        assert np.allclose(arrays["OUT"], expected(arrays, n))

    def test_memory_freed_after_region(self, rt):
        n = 64
        base = rt.memory_used
        run("pipelined-buffer", make_region(n), rt, make_arrays(n))
        assert rt.memory_used == base

    def test_more_streams_more_buffer_memory(self):
        n = 512
        m2 = run(
            "pipelined-buffer", make_region(n, 1, 2), Runtime(NVIDIA_K40M), make_arrays(n)
        ).data_peak
        m8 = run(
            "pipelined-buffer", make_region(n, 1, 8), Runtime(NVIDIA_K40M), make_arrays(n)
        ).data_peak
        assert m8 > m2


class TestOverlapBehaviour:
    def make_heavy(self, n=128):
        """A configuration where transfers and kernels both matter.

        Planes are 256 KB so per-transfer latency/saturation overhead
        stays small relative to the moved bytes (tiny chunks genuinely
        lose to the Naive model — the paper's AMD observation).
        """
        rng = np.random.default_rng(1)
        a = rng.random((n, 32768))  # 256 KB/plane
        return {"IN": a, "OUT": np.zeros_like(a)}

    def test_pipelining_overlaps_and_wins(self):
        n = 128
        kernel = ScaleKernel(cost_per_iter=25e-6)
        arrays = self.make_heavy(n)
        r_naive = run("naive", make_region(n), Runtime(NVIDIA_K40M), dict(arrays), kernel)
        region = make_region(n, 4, 3)  # chunk 4: amortize per-transfer latency
        r_buf = run("pipelined-buffer", region, Runtime(NVIDIA_K40M), arrays, kernel)
        assert r_naive.overlap == pytest.approx(0.0, abs=1e-6)
        # kernels total ~half the transfer time, so ~0.5 is the ceiling
        assert r_buf.overlap > 0.35
        assert r_buf.elapsed < r_naive.elapsed

    def test_two_streams_beat_one(self):
        n = 128
        kernel = ScaleKernel(cost_per_iter=25e-6)
        r1 = run(
            "pipelined-buffer", make_region(n, 1, 1), Runtime(NVIDIA_K40M),
            self.make_heavy(n), kernel,
        )
        r2 = run(
            "pipelined-buffer", make_region(n, 1, 2), Runtime(NVIDIA_K40M),
            self.make_heavy(n), kernel,
        )
        assert r2.elapsed < r1.elapsed

    def test_speedup_below_theoretical_bound(self):
        """The paper: perfect overlap would give 2x; reality is below."""
        n = 128
        kernel = ScaleKernel(cost_per_iter=25e-6)
        r_naive = run("naive", make_region(n), Runtime(NVIDIA_K40M), self.make_heavy(n), kernel)
        r_buf = run(
            "pipelined-buffer", make_region(n, 4, 3), Runtime(NVIDIA_K40M),
            self.make_heavy(n), kernel,
        )
        assert 1.0 < r_naive.elapsed / r_buf.elapsed < 2.0


class TestResultMetadata:
    def test_result_fields(self, rt):
        n = 32
        res = run("pipelined-buffer", make_region(n, 2, 2), rt, make_arrays(n))
        assert res.model == "pipelined-buffer"
        assert res.nchunks == 15
        assert res.chunk_size == 2
        assert res.num_streams == 2
        assert res.elapsed > 0
        assert set(res.time_distribution) == {"h2d", "d2h", "kernel"}

    def test_speedup_and_saving_helpers(self, rt):
        n = 64
        arrays = make_arrays(n)
        a = run("naive", make_region(n), Runtime(NVIDIA_K40M), dict(arrays))
        b = run("pipelined-buffer", make_region(n), Runtime(NVIDIA_K40M), dict(arrays))
        assert b.speedup_over(a) == pytest.approx(a.elapsed / b.elapsed)
        assert -1.0 < b.memory_saving_over(a) < 1.0
