"""Unit tests for the device ring buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ringbuffer import DeviceRing
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M


@pytest.fixture
def rt():
    return Runtime(NVIDIA_K40M)


def ring(rt, shape=(64, 8), split_dim=0, capacity=6, dtype=np.float32):
    return DeviceRing(rt, shape, split_dim, capacity, dtype, tag="test")


class TestGeometry:
    def test_buffer_shape_replaces_split_dim(self, rt):
        r = ring(rt, shape=(64, 8, 4), capacity=5)
        assert r.darr.shape == (5, 8, 4)

    def test_unit_elems_and_nbytes(self, rt):
        r = ring(rt, shape=(64, 8, 4), capacity=5)
        assert r.unit_elems == 32
        assert r.nbytes == 5 * 32 * 4

    def test_invalid_args(self, rt):
        with pytest.raises(ValueError):
            ring(rt, capacity=0)
        with pytest.raises(ValueError):
            ring(rt, split_dim=5)

    def test_pieces_no_wrap(self, rt):
        r = ring(rt, capacity=6)
        ps = r.pieces(0, 4)
        assert len(ps) == 1
        assert (ps[0].g_lo, ps[0].g_hi, ps[0].pos) == (0, 4, 0)

    def test_pieces_wrap(self, rt):
        r = ring(rt, capacity=6)
        ps = r.pieces(4, 9)  # positions 4,5,0,1,2
        assert [(p.g_lo, p.g_hi, p.pos) for p in ps] == [(4, 6, 4), (6, 9, 0)]

    def test_pieces_modular_positions(self, rt):
        r = ring(rt, capacity=6)
        ps = r.pieces(13, 15)
        assert ps[0].pos == 13 % 6

    def test_pieces_empty_range(self, rt):
        assert ring(rt).pieces(5, 5) == []

    def test_range_wider_than_capacity_rejected(self, rt):
        with pytest.raises(ValueError):
            ring(rt, capacity=4).pieces(0, 5)

    def test_pieces_cover_range_disjointly(self, rt):
        r = ring(rt, capacity=7)
        for lo in range(0, 40):
            for width in range(1, 8):
                ps = r.pieces(lo, lo + width)
                covered = [g for p in ps for g in range(p.g_lo, p.g_hi)]
                assert covered == list(range(lo, lo + width))


class TestDataMovement:
    def test_scatter_gather_roundtrip(self, rt, rng):
        r = ring(rt, shape=(64, 8), capacity=6)
        block = rng.random((5, 8)).astype(np.float32)
        r.scatter(block, 10, 15)
        out = r.gather(10, 15)
        assert np.array_equal(out, block)

    def test_gather_wrapped_range(self, rt, rng):
        r = ring(rt, shape=(64, 8), capacity=6)
        block = rng.random((4, 8)).astype(np.float32)
        r.scatter(block, 4, 8)  # wraps: positions 4,5,0,1
        assert np.array_equal(r.gather(4, 8), block)

    def test_overwrite_previous_lap(self, rt, rng):
        r = ring(rt, shape=(64, 8), capacity=4)
        first = rng.random((4, 8)).astype(np.float32)
        second = rng.random((4, 8)).astype(np.float32)
        r.scatter(first, 0, 4)
        r.scatter(second, 4, 8)  # same positions, one lap later
        assert np.array_equal(r.gather(4, 8), second)

    def test_host_section_matches_global_coordinates(self, rt, rng):
        r = ring(rt, shape=(64, 8), capacity=6)
        host = rng.random((64, 8)).astype(np.float32)
        p = r.pieces(10, 13)[0]
        assert np.array_equal(r.host_section(host, p), host[p.g_lo : p.g_hi])

    def test_device_view_shape(self, rt):
        r = ring(rt, shape=(64, 8), capacity=6)
        p = r.pieces(2, 5)[0]
        assert r.device_view(p).shape == (3, 8)

    def test_inner_dim_ring(self, rt, rng):
        r = ring(rt, shape=(8, 64), split_dim=1, capacity=6)
        block = rng.random((8, 3)).astype(np.float32)
        r.scatter(block, 9, 12)
        assert np.array_equal(r.gather(9, 12), block)

    def test_virtual_mode_gather_returns_none(self):
        rt = Runtime(NVIDIA_K40M, virtual=True)
        r = ring(rt)
        assert r.gather(0, 3) is None
        r.scatter(None, 0, 3)  # no-op, must not raise


class TestTransferGeometry:
    def test_outer_split_contiguous(self, rt):
        r = ring(rt, shape=(64, 8), split_dim=0)
        p = r.pieces(0, 3)[0]
        assert r.transfer_geometry(p) == (None, None)

    def test_inner_split_is_2d(self, rt):
        r = ring(rt, shape=(128, 64, 4), split_dim=1, capacity=8)
        p = r.pieces(0, 2)[0]
        rows, row_bytes = r.transfer_geometry(p)
        assert rows == 128
        assert row_bytes == 2 * 4 * 4  # extent * inner * itemsize
