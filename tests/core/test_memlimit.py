"""Unit tests for pipeline_mem_limit tuning."""

from __future__ import annotations

import pytest

from repro.core.memlimit import MemLimitError, tune_plan
from tests.core.test_plan import stencil_plan


class TestTunePlan:
    def test_fitting_plan_unchanged(self):
        plan = stencil_plan(nz=64, ny=16, nx=16, cs=4, ns=4)
        tuned = tune_plan(plan, plan.device_bytes() + 1)
        assert tuned is plan

    def test_none_limit_means_unbounded(self):
        plan = stencil_plan()
        assert tune_plan(plan, None) is plan

    def test_chunk_size_shrinks_first(self):
        plan = stencil_plan(nz=512, ny=64, nx=64, cs=16, ns=4)
        limit = stencil_plan(nz=512, ny=64, nx=64, cs=4, ns=4).device_bytes()
        tuned = tune_plan(plan, limit)
        assert tuned.chunk_size < 16
        assert tuned.num_streams == 4
        assert tuned.device_bytes() <= limit

    def test_streams_shrink_when_chunks_exhausted(self):
        plan = stencil_plan(nz=512, ny=64, nx=64, cs=1, ns=8)
        limit = stencil_plan(nz=512, ny=64, nx=64, cs=1, ns=2).device_bytes()
        tuned = tune_plan(plan, limit)
        assert tuned.chunk_size == 1
        assert tuned.num_streams <= 2
        assert tuned.device_bytes() <= limit

    def test_impossible_limit_raises(self):
        plan = stencil_plan(nz=64, ny=64, nx=64)
        with pytest.raises(MemLimitError) as ei:
            tune_plan(plan, 1)
        assert ei.value.limit == 1
        assert ei.value.needed > 1

    def test_result_always_within_limit(self):
        plan = stencil_plan(nz=512, ny=32, nx=32, cs=32, ns=8)
        minimal = stencil_plan(nz=512, ny=32, nx=32, cs=1, ns=1).device_bytes()
        for limit in [minimal, 2 * minimal, 4 * minimal, plan.device_bytes()]:
            tuned = tune_plan(plan, limit)
            assert tuned.device_bytes() <= limit

    def test_monotone_limits_monotone_params(self):
        """A looser budget never yields a smaller pipeline."""
        plan = stencil_plan(nz=512, ny=32, nx=32, cs=32, ns=8)
        lim_lo = stencil_plan(nz=512, ny=32, nx=32, cs=2, ns=8).device_bytes()
        lim_hi = stencil_plan(nz=512, ny=32, nx=32, cs=16, ns=8).device_bytes()
        t_lo = tune_plan(plan, lim_lo)
        t_hi = tune_plan(plan, lim_hi)
        assert t_hi.chunk_size >= t_lo.chunk_size
        assert t_hi.num_streams >= t_lo.num_streams


class TestBoundaries:
    """Exact-fit and degenerate budgets."""

    def test_limit_exactly_device_bytes_passes_untouched(self):
        plan = stencil_plan(nz=64, ny=16, nx=16, cs=4, ns=4)
        assert tune_plan(plan, plan.device_bytes()) is plan

    def test_one_byte_under_exact_fit_shrinks(self):
        plan = stencil_plan(nz=64, ny=16, nx=16, cs=4, ns=4)
        tuned = tune_plan(plan, plan.device_bytes() - 1)
        assert tuned is not plan
        assert tuned.device_bytes() < plan.device_bytes()

    def test_zero_limit_raises_with_candidate_walk(self):
        plan = stencil_plan(nz=64, ny=16, nx=16, cs=4, ns=4)
        with pytest.raises(MemLimitError) as ei:
            tune_plan(plan, 0)
        exc = ei.value
        assert exc.limit == 0
        assert exc.tried, "the candidate walk must be recorded"
        assert exc.tried[0][:2] == (4, 4)          # started from the request
        assert exc.tried[-1][:2] == (1, 1)         # ended at the floor
        sizes = [b for _, _, b in exc.tried]
        assert sizes == sorted(sizes, reverse=True)  # monotone shrink
        assert "candidates tried" in str(exc)

    def test_single_unit_split_dimension(self):
        # nz=3 -> loop trip count 1: one chunk, everything degenerate
        plan = stencil_plan(nz=3, ny=1, nx=1, cs=1, ns=1)
        assert tune_plan(plan, plan.device_bytes()) is plan
        with pytest.raises(MemLimitError) as ei:
            tune_plan(plan, plan.device_bytes() - 1)
        assert ei.value.needed == plan.device_bytes()

    def test_error_attributes_survive_roundtrip(self):
        err = MemLimitError(1000, 10, tried=[(4, 2, 1000)])
        assert err.needed == 1000 and err.limit == 10
        assert err.tried == ((4, 2, 1000),)
