"""Tests for RegionResult.summary and engine utilization reporting."""

from __future__ import annotations

import pytest

from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import Timeline, TimelineRecord

from tests.core.test_executor import ScaleKernel, make_arrays, make_region, run


def rec(kind, start, finish, engine):
    return TimelineRecord(kind, "", "s", engine, start, start, finish, 0)


class TestEngineUtilization:
    def test_values(self):
        tl = Timeline(
            [rec("h2d", 0, 1, "dma0"), rec("kernel", 0, 4, "compute0")]
        )
        util = tl.engine_utilization()
        assert util["compute0"] == pytest.approx(1.0)
        assert util["dma0"] == pytest.approx(0.25)

    def test_empty_timeline(self):
        assert Timeline([]).engine_utilization() == {}


class TestSummary:
    def test_summary_mentions_everything(self):
        n = 32
        res = run(
            "pipelined-buffer", make_region(n, 2, 3), Runtime(NVIDIA_K40M),
            make_arrays(n),
        )
        text = res.summary()
        assert "pipelined-buffer" in text
        assert "chunk_size=2" in text and "streams=3" in text
        assert "transfer overlap" in text
        assert "dma0" in text and "compute0" in text
        assert "MB" in text

    def test_summary_numbers_consistent(self):
        n = 32
        res = run("naive", make_region(n), Runtime(NVIDIA_K40M), make_arrays(n))
        text = res.summary()
        assert f"{res.elapsed * 1e3:.3f} ms" in text
        assert "naive" in text


class TestToDict:
    def test_json_safe_and_complete(self):
        import json

        n = 32
        res = run(
            "pipelined-buffer", make_region(n, 2, 3), Runtime(NVIDIA_K40M),
            make_arrays(n),
        )
        d = res.to_dict()
        json.dumps(d)  # must not raise
        assert d["model"] == "pipelined-buffer"
        assert d["elapsed_s"] == res.elapsed
        assert d["nchunks"] == res.nchunks
        assert set(d["busy_s"]) == {"h2d", "d2h", "kernel"}
        assert d["commands"] == len(res.timeline)
        assert 0.0 <= d["overlap"] <= 1.0
