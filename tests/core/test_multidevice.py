"""Tests for multi-device co-scheduling (paper future work).

``execute_multi_device`` is the deprecated serial-per-device entry
point — every call here goes through :func:`legacy_multi_device`,
which asserts the :class:`DeprecationWarning` the shim must emit.
The honest shared-clock model (``execute_sharded``) is covered by
``tests/serve/test_sharding.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multidevice import (
    MultiDeviceResult,
    execute_multi_device,
    probe_rates,
    split_loop,
)
from repro.directives.clauses import DirectiveError, Loop
from repro.gpu import Runtime
from repro.sim import AMD_HD7970, NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region


def legacy_multi_device(*args, **kwargs):
    """The deprecated entry point, asserting it still warns."""
    with pytest.warns(DeprecationWarning, match="execute_sharded"):
        return execute_multi_device(*args, **kwargs)


class TestSplitLoop:
    def test_even_split(self):
        parts = split_loop(Loop("k", 0, 100), [1, 1])
        assert parts == [(0, 50), (50, 100)]

    def test_proportional_split(self):
        parts = split_loop(Loop("k", 0, 100), [3, 1])
        assert parts == [(0, 75), (75, 100)]

    def test_split_covers_loop_exactly(self):
        for weights in ([1], [2, 1], [1, 2, 3], [5, 1, 1, 1]):
            parts = split_loop(Loop("k", 7, 64), weights)
            assert parts[0][0] == 7 and parts[-1][1] == 64
            for (a, b), (c, d) in zip(parts, parts[1:]):
                assert b == c
            assert all(b > a for a, b in parts)

    def test_extreme_weights_still_give_everyone_work(self):
        parts = split_loop(Loop("k", 0, 10), [1000, 1, 1])
        assert all(b > a for a, b in parts)
        assert parts[-1][1] == 10

    def test_bad_weights_rejected(self):
        with pytest.raises(DirectiveError):
            split_loop(Loop("k", 0, 10), [])
        with pytest.raises(DirectiveError):
            split_loop(Loop("k", 0, 10), [1, -1])

    def test_nonfinite_weights_rejected(self):
        """NaN/inf slipped through the old ``w <= 0`` guard and blew up
        deep inside ``round``; now they fail fast with a clear error."""
        for bad in (
            [float("nan"), 1.0],
            [float("inf"), 1.0],
            [1.0, float("-inf")],
        ):
            with pytest.raises(DirectiveError, match="positive finite"):
                split_loop(Loop("k", 0, 10), bad)

    def test_non_numeric_weights_rejected(self):
        with pytest.raises(DirectiveError, match="positive finite"):
            split_loop(Loop("k", 0, 10), ["2", 1])
        with pytest.raises(DirectiveError, match="positive finite"):
            split_loop(Loop("k", 0, 10), [True, 1])

    def test_more_devices_than_iterations_rejected(self):
        with pytest.raises(DirectiveError):
            split_loop(Loop("k", 0, 2), [1, 1, 1])

    def test_inconsistent_loop_metadata_rejected(self):
        """A loop whose trip count disagrees with its bounds can force
        the one-iteration-minimum fixup to produce non-monotonic
        bounds; the post-fixup validation must catch it."""

        class BadLoop:
            var = "k"
            start = 0
            stop = 2
            trip_count = 40

        with pytest.raises(DirectiveError, match="monotonic"):
            split_loop(BadLoop(), [1, 1, 1, 1])


class TestExecution:
    def heavy(self, n=128):
        rng = np.random.default_rng(4)
        a = rng.random((n, 32768))
        return {"IN": a, "OUT": np.zeros_like(a)}

    def test_two_homogeneous_devices_match_reference(self):
        n = 64
        arrays = make_arrays(n)
        region = make_region(n, 2, 2)
        rts = [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)]
        res = legacy_multi_device(rts, region, arrays, ScaleKernel(), weights=[1, 1])
        assert isinstance(res, MultiDeviceResult)
        assert np.allclose(arrays["OUT"], expected(arrays, n))
        assert sum(res.shares) == n - 2

    def test_heterogeneous_pair_matches_reference(self):
        n = 64
        arrays = make_arrays(n)
        region = make_region(n, 2, 2)
        rts = [Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)]
        legacy_multi_device(rts, region, arrays, ScaleKernel())
        assert np.allclose(arrays["OUT"], expected(arrays, n))

    def test_two_devices_faster_than_one(self):
        n = 128
        kernel = ScaleKernel(cost_per_iter=25e-6)
        arrays = self.heavy(n)
        region = make_region(n, 4, 2)
        single = region.run(Runtime(NVIDIA_K40M), dict(arrays), kernel)
        dual = legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)],
            region, arrays, kernel, weights=[1, 1],
        )
        assert dual.elapsed < 0.65 * single.elapsed  # near-2x scaling

    def test_probe_weights_balance_heterogeneous_pair(self):
        """Throughput-probed shares beat a naive 50/50 split when one
        device is much slower."""
        n = 256
        kernel = ScaleKernel(cost_per_iter=25e-6)
        region = make_region(n, 4, 2)
        arrays = self.heavy(n)
        even = legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)],
            region, dict(arrays) | {"OUT": np.zeros_like(arrays["OUT"])},
            kernel, weights=[1, 1],
        )
        probed = legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)],
            region, arrays, kernel,
        )
        assert probed.shares[0] > probed.shares[1]  # K40m takes more
        assert probed.elapsed < even.elapsed
        assert probed.imbalance() < even.imbalance()

    def test_probe_rates_orders_devices(self):
        n = 128
        region = make_region(n, 4, 2)
        plan = region.bind(self.heavy(n))
        rates = probe_rates(
            [Runtime(NVIDIA_K40M), Runtime(AMD_HD7970)],
            plan, self.heavy(n), ScaleKernel(cost_per_iter=25e-6),
        )
        assert rates[0] > rates[1]

    def test_per_device_memory_stays_small(self):
        n = 128
        arrays = self.heavy(n)
        region = make_region(n, 2, 2)
        res = legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)],
            region, arrays, ScaleKernel(), weights=[1, 1],
        )
        full = arrays["IN"].nbytes + arrays["OUT"].nbytes
        for r in res.per_device:
            assert r.data_peak < full / 4

    def test_no_devices_rejected(self):
        with pytest.raises(DirectiveError):
            legacy_multi_device(
                [], make_region(16), make_arrays(16), ScaleKernel()
            )

    def test_summary_text(self):
        n = 32
        res = legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)],
            make_region(n), make_arrays(n), ScaleKernel(), weights=[1, 1],
        )
        text = res.summary()
        assert "device 0" in text and "device 1" in text
        assert "wall (max)" in text and "imbalance" in text

    def test_shim_matches_sharded_numerics(self):
        """Deprecated serial path and the sharded path agree on the
        output arrays (timing models differ by design)."""
        from repro.core.multidevice import execute_sharded

        n = 64
        region = make_region(n, 2, 2)
        a1, a2 = make_arrays(n), make_arrays(n)
        legacy_multi_device(
            [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)],
            region, a1, ScaleKernel(), weights=[1, 1],
        )
        execute_sharded(
            [Runtime(NVIDIA_K40M), Runtime(NVIDIA_K40M)],
            region, a2, ScaleKernel(), weights=[1, 1],
        )
        assert np.array_equal(a1["OUT"], a2["OUT"])
