"""Tests for 2-D block data regions (tile streaming)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.block2d import Block2DRegion, TileKernel, TileView
from repro.directives.clauses import DirectiveError
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit


class ScaleTile(TileKernel):
    """OUT = 2 * IN + (global row index), exercising the offsets."""

    name = "scaletile"

    def cost(self, profile, rows, cols):
        return rows * cols * 8 * 2 / 50e9

    def run(self, ins, outs):
        a = ins["IN"]
        o = outs["OUT"]
        rows = np.arange(a.data.shape[0])[:, None] + a.row_offset
        o.data[...] = 2 * a.data + rows


def reference(a):
    return 2 * a + np.arange(a.shape[0])[:, None]


@pytest.fixture
def rt():
    return Runtime(NVIDIA_K40M)


class TestGeometry:
    def test_grid_exact(self):
        assert Block2DRegion((64, 64), (16, 32)).grid == (4, 2)

    def test_grid_ragged(self):
        assert Block2DRegion((65, 70), (16, 32)).grid == (5, 3)

    def test_tiles_cover_matrix_disjointly(self):
        region = Block2DRegion((37, 53), (8, 16))
        seen = np.zeros((37, 53), dtype=int)
        for _, r0, r1, c0, c1 in region.tiles():
            seen[r0:r1, c0:c1] += 1
        assert (seen == 1).all()

    def test_indices_sequential(self):
        region = Block2DRegion((32, 32), (16, 16))
        assert [t[0] for t in region.tiles()] == [0, 1, 2, 3]

    @pytest.mark.parametrize(
        "shape,tile,streams",
        [((0, 4), (1, 1), 1), ((4, 4), (8, 1), 1), ((4, 4), (1, 1), 0)],
    )
    def test_invalid_args(self, shape, tile, streams):
        with pytest.raises(DirectiveError):
            Block2DRegion(shape, tile, streams)

    def test_buffer_bytes(self):
        region = Block2DRegion((64, 64), (16, 16), num_streams=3)
        assert region.buffer_bytes({"A": np.dtype(np.float64)}) == 3 * 256 * 8


class TestExecution:
    @pytest.mark.parametrize("shape,tile,streams", [
        ((64, 64), (16, 16), 2),
        ((65, 70), (16, 32), 3),
        ((8, 8), (8, 8), 1),
        ((100, 40), (7, 13), 4),
    ])
    def test_matches_reference(self, rt, shape, tile, streams):
        rng = np.random.default_rng(1)
        a = rng.random(shape)
        out = np.zeros_like(a)
        region = Block2DRegion(shape, tile, streams)
        res = region.run(rt, {"IN": a}, {"OUT": out}, ScaleTile())
        audit(res.timeline)
        assert np.allclose(out, reference(a))
        assert res.nchunks == region.grid[0] * region.grid[1]

    def test_memory_bounded_by_slots(self, rt):
        shape = (512, 512)
        a = np.zeros(shape)
        out = np.zeros_like(a)
        region = Block2DRegion(shape, (32, 32), num_streams=2)
        res = region.run(rt, {"IN": a}, {"OUT": out}, ScaleTile())
        full = a.nbytes + out.nbytes
        assert res.data_peak <= region.buffer_bytes(
            {"IN": a.dtype, "OUT": a.dtype}
        ) + 512  # alignment slack
        assert res.data_peak < full / 50

    def test_transfers_are_pitched_2d(self, rt):
        shape = (64, 64)
        a = np.zeros(shape)
        region = Block2DRegion(shape, (16, 16), 2)
        res = region.run(rt, {"IN": a}, {"OUT": np.zeros_like(a)}, ScaleTile())
        # a contiguous copy of the same bytes would be faster: check one
        h2d = res.timeline.by_kind("h2d")[0]
        from repro.sim.bandwidth import transfer_time_1d

        assert h2d.duration > transfer_time_1d(NVIDIA_K40M.h2d, h2d.nbytes)

    def test_tile_pipelining_overlaps(self, rt):
        class HeavyTile(ScaleTile):
            def cost(self, profile, rows, cols):
                return rows * cols * 8 * 2 / 1.5e9  # compute-heavy tiles

        shape = (1024, 1024)
        a = np.zeros(shape)
        region = Block2DRegion(shape, (128, 1024), num_streams=3)
        res = region.run(rt, {"IN": a}, {"OUT": np.zeros_like(a)}, HeavyTile())
        assert res.overlap > 0.6

    def test_shape_mismatch_rejected(self, rt):
        region = Block2DRegion((64, 64), (16, 16))
        with pytest.raises(DirectiveError):
            region.run(
                rt, {"IN": np.zeros((64, 32))}, {"OUT": np.zeros((64, 64))},
                ScaleTile(),
            )

    def test_virtual_mode(self):
        rt = Runtime(NVIDIA_K40M, virtual=True)
        from repro.sim.varray import VirtualArray

        shape = (4096, 4096)
        region = Block2DRegion(shape, (256, 256), 2)
        res = region.run(
            rt,
            {"IN": VirtualArray(shape, np.float64)},
            {"OUT": VirtualArray(shape, np.float64)},
            ScaleTile(),
        )
        assert res.nchunks == 256
        assert res.data_peak < 10e6

    def test_offsets_visible_to_kernel(self, rt):
        """TileView carries the paper's x_offset/y_offset."""
        seen = []

        class Probe(TileKernel):
            def cost(self, profile, rows, cols):
                return 1e-6

            def run(self, ins, outs):
                v = ins["IN"]
                seen.append((v.row_offset, v.col_offset))

        shape = (32, 32)
        region = Block2DRegion(shape, (16, 16), 2)
        region.run(rt, {"IN": np.zeros(shape)}, {"OUT": np.zeros(shape)}, Probe())
        assert sorted(seen) == [(0, 0), (0, 16), (16, 0), (16, 16)]
