"""Tests for the make_kernel convenience factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TargetRegion, make_kernel
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M


class TestFactory:
    def test_attributes(self):
        k = make_kernel(
            cost=lambda p, a, b: 1.0,
            body=lambda v, a, b: None,
            name="custom",
            index_penalty=0.2,
        )
        assert k.name == "custom"
        assert k.index_penalty == 0.2

    def test_cost_delegation(self):
        k = make_kernel(lambda p, a, b: (b - a) * 2.0, lambda v, a, b: None)
        assert k.cost(NVIDIA_K40M, 1, 4) == pytest.approx(6.0)
        assert k.chunk_cost(NVIDIA_K40M, 1, 4, translated=True) == pytest.approx(
            6.0 * 1.01
        )

    def test_non_callables_rejected(self):
        with pytest.raises(TypeError):
            make_kernel(1.0, lambda v, a, b: None)
        with pytest.raises(TypeError):
            make_kernel(lambda p, a, b: 1.0, "body")

    def test_independent_instances(self):
        k1 = make_kernel(lambda p, a, b: 1.0, lambda v, a, b: None, name="a")
        k2 = make_kernel(lambda p, a, b: 2.0, lambda v, a, b: None, name="b")
        assert k1.name == "a" and k2.name == "b"
        assert k1.cost(NVIDIA_K40M, 0, 1) != k2.cost(NVIDIA_K40M, 0, 1)


class TestEndToEnd:
    def test_full_region_with_factory_kernel(self):
        n = 32
        rng = np.random.default_rng(8)
        a = rng.random((n, 4))
        arrays = {"IN": a, "OUT": np.zeros_like(a)}

        def body(views, t0, t1):
            src = views["IN"].take(t0, t1)
            views["OUT"].take(t0, t1)[...] = src * 3.0

        kernel = make_kernel(lambda p, a0, a1: (a1 - a0) * 1e-6, body, name="x3")
        region = TargetRegion.parse(
            "pipeline(static[2,2]) "
            "pipeline_map(to: IN[k:1][0:4]) "
            "pipeline_map(from: OUT[k:1][0:4])",
            loop=Loop("k", 0, n),
        )
        region.run(Runtime(NVIDIA_K40M), arrays, kernel)
        assert np.allclose(arrays["OUT"], 3.0 * a)
