"""Unit tests for the discrete-event core."""

from __future__ import annotations

import pytest

from repro.sim.engine import Command, EventToken, SimulationError, Simulator
from repro.sim.stream import SimStream


def make_sim(*engines):
    sim = Simulator()
    for e in engines or ("eng",):
        sim.add_engine(e)
    return sim


class TestBasics:
    def test_single_command_runs_for_its_duration(self):
        sim = make_sim()
        c = sim.enqueue(Command("kernel", "eng", 1.5))
        sim.run_all()
        assert c.done
        assert c.start_time == 0.0
        assert c.finish_time == pytest.approx(1.5)
        assert sim.now == pytest.approx(1.5)

    def test_zero_duration_command(self):
        sim = make_sim()
        c = sim.enqueue(Command("marker", "eng", 0.0))
        sim.run_all()
        assert c.done and c.finish_time == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Command("kernel", "eng", -1.0)

    def test_unknown_engine_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.enqueue(Command("kernel", "nope", 1.0))

    def test_double_enqueue_rejected(self):
        sim = make_sim()
        c = Command("kernel", "eng", 1.0)
        sim.enqueue(c)
        with pytest.raises(SimulationError):
            sim.enqueue(c)

    def test_duplicate_engine_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.add_engine("eng")

    def test_idle_property(self):
        sim = make_sim()
        assert sim.idle
        sim.enqueue(Command("kernel", "eng", 1.0))
        assert not sim.idle
        sim.run_all()
        assert sim.idle


class TestEngineExclusivity:
    def test_same_engine_serializes(self):
        sim = make_sim()
        a = sim.enqueue(Command("kernel", "eng", 1.0))
        b = sim.enqueue(Command("kernel", "eng", 1.0))
        sim.run_all()
        assert a.finish_time == pytest.approx(1.0)
        assert b.start_time == pytest.approx(1.0)
        assert b.finish_time == pytest.approx(2.0)

    def test_different_engines_overlap(self):
        sim = make_sim("a", "b")
        x = sim.enqueue(Command("kernel", "a", 1.0))
        y = sim.enqueue(Command("kernel", "b", 1.0))
        sim.run_all()
        assert x.start_time == 0.0 and y.start_time == 0.0
        assert sim.now == pytest.approx(1.0)

    def test_fifo_tie_break_is_enqueue_order(self):
        sim = make_sim()
        cmds = [sim.enqueue(Command("kernel", "eng", 0.25)) for _ in range(8)]
        sim.run_all()
        starts = [c.start_time for c in cmds]
        assert starts == sorted(starts)
        assert sim.completed == cmds

    def test_busy_time_accumulates(self):
        sim = make_sim()
        for d in (0.5, 0.25, 0.125):
            sim.enqueue(Command("kernel", "eng", d))
        sim.run_all()
        assert sim.engine("eng").busy_time == pytest.approx(0.875)


class TestStreams:
    def test_stream_enforces_order_across_engines(self):
        sim = make_sim("a", "b")
        s = SimStream("s")
        first = sim.enqueue(Command("h2d", "a", 1.0, stream=s))
        second = sim.enqueue(Command("kernel", "b", 0.5, stream=s))
        sim.run_all()
        assert second.start_time >= first.finish_time

    def test_independent_streams_do_not_order(self):
        sim = make_sim("a", "b")
        s1, s2 = SimStream(), SimStream()
        x = sim.enqueue(Command("h2d", "a", 1.0, stream=s1))
        y = sim.enqueue(Command("kernel", "b", 1.0, stream=s2))
        sim.run_all()
        assert x.start_time == 0.0 and y.start_time == 0.0

    def test_stream_tail_tracking(self):
        sim = make_sim()
        s = SimStream()
        assert sim.stream_tail(s) is None
        c1 = sim.enqueue(Command("kernel", "eng", 1.0, stream=s))
        assert sim.stream_tail(s) is c1
        c2 = sim.enqueue(Command("kernel", "eng", 1.0, stream=s))
        assert sim.stream_tail(s) is c2

    def test_streamless_commands_unordered(self):
        sim = make_sim("a", "b")
        x = sim.enqueue(Command("h2d", "a", 2.0))
        y = sim.enqueue(Command("kernel", "b", 1.0))
        sim.run_all()
        assert y.finish_time < x.finish_time


class TestEnqueueTime:
    def test_command_cannot_start_before_enqueue_time(self):
        sim = make_sim()
        c = sim.enqueue(Command("kernel", "eng", 1.0), enqueue_time=5.0)
        sim.run_all()
        assert c.start_time == pytest.approx(5.0)

    def test_late_enqueue_interleaves_with_earlier(self):
        sim = make_sim()
        a = sim.enqueue(Command("kernel", "eng", 1.0), enqueue_time=0.0)
        b = sim.enqueue(Command("kernel", "eng", 1.0), enqueue_time=0.2)
        sim.run_all()
        assert a.start_time == 0.0
        assert b.start_time == pytest.approx(1.0)

    def test_host_starvation_delays_device(self):
        """If the host enqueues slowly, the engine idles between
        commands."""
        sim = make_sim()
        cmds = [
            sim.enqueue(Command("kernel", "eng", 0.1), enqueue_time=i * 1.0)
            for i in range(3)
        ]
        sim.run_all()
        assert [c.start_time for c in cmds] == pytest.approx([0.0, 1.0, 2.0])


class TestEvents:
    def test_event_orders_across_streams(self):
        sim = make_sim("a", "b")
        s1, s2 = SimStream(), SimStream()
        tok = EventToken("t")
        prod = sim.enqueue(Command("h2d", "a", 1.0, stream=s1), records=[tok])
        cons = sim.enqueue(Command("kernel", "b", 0.5, stream=s2), waits=[tok])
        sim.run_all()
        assert cons.start_time >= prod.finish_time
        assert tok.done and tok.time == pytest.approx(1.0)

    def test_wait_on_completed_event_is_immediate(self):
        sim = make_sim()
        tok = EventToken()
        sim.enqueue(Command("h2d", "eng", 1.0), records=[tok])
        sim.run_all()
        c = sim.enqueue(Command("kernel", "eng", 0.5), waits=[tok])
        sim.run_all()
        assert c.start_time == pytest.approx(1.0)

    def test_wait_on_unrecorded_event_rejected(self):
        sim = make_sim()
        tok = EventToken("never")
        with pytest.raises(SimulationError):
            sim.enqueue(Command("kernel", "eng", 1.0), waits=[tok])

    def test_double_record_rejected(self):
        sim = make_sim()
        tok = EventToken()
        sim.enqueue(Command("h2d", "eng", 1.0), records=[tok])
        with pytest.raises(SimulationError):
            sim.enqueue(Command("h2d", "eng", 1.0), records=[tok])

    def test_multiple_waiters_released_together(self):
        sim = make_sim("a", "b", "c")
        tok = EventToken()
        prod = sim.enqueue(Command("h2d", "a", 2.0), records=[tok])
        w1 = sim.enqueue(Command("kernel", "b", 0.1), waits=[tok])
        w2 = sim.enqueue(Command("kernel", "c", 0.1), waits=[tok])
        sim.run_all()
        assert w1.start_time == pytest.approx(2.0)
        assert w2.start_time == pytest.approx(2.0)
        assert prod.finish_time == pytest.approx(2.0)


class TestPayloads:
    def test_payload_runs_once_at_finish(self):
        sim = make_sim()
        hits = []
        sim.enqueue(Command("kernel", "eng", 1.0, payload=lambda: hits.append(sim.now)))
        sim.run_all()
        assert hits == [1.0]

    def test_payloads_run_in_dependency_order(self):
        sim = make_sim("a", "b")
        order = []
        s = SimStream()
        sim.enqueue(Command("h2d", "a", 1.0, stream=s, payload=lambda: order.append("copy")))
        sim.enqueue(Command("kernel", "b", 0.1, stream=s, payload=lambda: order.append("kernel")))
        sim.run_all()
        assert order == ["copy", "kernel"]


class TestRunUntil:
    def test_wait_command_is_incremental(self):
        sim = make_sim()
        a = sim.enqueue(Command("kernel", "eng", 1.0))
        b = sim.enqueue(Command("kernel", "eng", 1.0))
        t = sim.wait_command(a)
        assert t == pytest.approx(1.0)
        assert not b.done
        sim.run_all()
        assert b.done

    def test_wait_event(self):
        sim = make_sim()
        tok = EventToken()
        sim.enqueue(Command("kernel", "eng", 2.0), records=[tok])
        assert sim.wait_event(tok) == pytest.approx(2.0)

    def test_wait_never_recorded_event_raises(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.wait_event(EventToken("ghost"))

    def test_run_until_unreachable_condition_raises(self):
        sim = make_sim()
        sim.enqueue(Command("kernel", "eng", 1.0))
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False)

    def test_clock_never_goes_backwards(self):
        sim = make_sim()
        sim.enqueue(Command("kernel", "eng", 1.0))
        sim.run_all()
        before = sim.now
        sim.enqueue(Command("kernel", "eng", 0.5))
        sim.run_all()
        assert sim.now >= before
