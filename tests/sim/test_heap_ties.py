"""Heap-tie regression tests: equal-``(time, seq)`` is impossible.

The event heap orders entries ``(time, seq, tag, cmd)``.  ``seq`` comes
from one per-simulator monotone counter assigned at enqueue, so two
entries can never tie on ``(time, seq)`` — which matters because
``Command`` is deliberately unorderable: if a duplicate seq ever
appeared, heapq would fall through to comparing commands and crash
loudly instead of silently reordering the schedule.  These tests pin
that construction:

* seq is strictly monotone in enqueue order and never reused, including
  the fault-replay path (replays acquire *fresh* commands/tokens and
  re-enqueue, so they draw new seqs);
* an equal-time storm of identical commands carries pairwise-distinct
  ``(time, seq)`` heap keys and retires in enqueue order;
* the int event tags sort finish-before-ready exactly like the legacy
  string tags did.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.serve import DevicePool, RegionScheduler, ServeConfig, build_request
from repro.sim.engine import _EV_FINISH, _EV_READY, Command, Simulator


def _sim(engines=("e0", "e1")):
    sim = Simulator()
    for name in engines:
        sim.add_engine(name)
    return sim


def test_seq_strictly_monotone_in_enqueue_order():
    sim = _sim()
    cmds = []
    # same enqueue times, same (zero) durations, alternating engines:
    # nothing but seq can break these ties
    for i in range(64):
        cmd = Command("kernel", f"e{i % 2}", 0.0, label=f"c{i}")
        sim.enqueue(cmd, enqueue_time=1e-6)
        cmds.append(cmd)
    seqs = [c.seq for c in cmds]
    assert all(b > a for a, b in zip(seqs, seqs[1:]))
    assert len(set(seqs)) == len(seqs)


def test_equal_time_storm_has_distinct_heap_keys_and_fifo_order():
    sim = _sim(engines=("e0",))
    order = []
    for i in range(50):
        sim.enqueue(
            Command("kernel", "e0", 0.0, payload=(lambda i=i: order.append(i))),
            enqueue_time=1e-6,
        )
    # every queued event shares time 1e-6; the (time, seq) prefix must
    # still be pairwise distinct so heapq never reaches the commands
    keys = [(t, seq) for t, seq, _tag, _cmd in sim._heap]
    assert len(set(keys)) == len(keys)
    sim.run_all()
    assert order == list(range(50))


def test_commands_are_unorderable():
    """A duplicate ``(time, seq)`` would crash, not reorder silently."""
    a = Command("kernel", "e0", 0.0)
    b = Command("kernel", "e0", 0.0)
    with pytest.raises(TypeError):
        a < b  # noqa: B015 - the comparison itself is the assertion


def test_event_tags_sort_like_legacy_strings():
    """Finish events pop before ready events at equal ``(time, seq)``
    prefixes, exactly as the old ``("finish" < "ready")`` string tags
    sorted; the int tags must preserve that tuple ordering."""
    assert _EV_FINISH < _EV_READY
    assert ("finish" < "ready") == (_EV_FINISH < _EV_READY)


def test_replay_reenqueue_path_never_reuses_a_seq():
    """Chunk replays under chaos acquire fresh commands — every retired
    command across the whole faulted run carries a distinct seq."""
    pool = DevicePool("k40m")
    # mild enough that replay absorbs every fault without tripping the
    # circuit breaker (a quarantine would fail the run, not the test's
    # point)
    pool.install_faults(
        [FaultPlan(seed=1, kernel_fault_rate=0.06, h2d_fault_rate=0.05)]
    )
    sched = RegionScheduler(pool, ServeConfig(autotune=False))
    sched.submit_all([
        build_request("stencil", tenant="t0",
                      config={"nz": 12, "ny": 24, "nx": 24, "iters": 1}),
        build_request("qcd", tenant="t1", config={"n": 6}),
    ])
    report = sched.run()
    assert report.ok
    assert report.retries > 0, "chaos plan produced no replays"
    sim = pool.runtimes[0].device.sim
    seqs = [c.seq for c in sim.completed]
    assert len(set(seqs)) == len(seqs)
    assert all(s >= 0 for s in seqs)
    pool.close()
