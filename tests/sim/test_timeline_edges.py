"""Edge cases for Timeline queries, audit, and the ASCII Gantt chart.

The observability layer leans on these helpers for every report; they
must behave on degenerate input — empty timelines, single records,
zero-duration commands, and records arriving out of order — not just
on healthy pipelined runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.gantt import ascii_gantt, to_chrome_trace
from repro.sim.trace import Timeline, TimelineRecord, audit, overlap_fraction


def _rec(kind="kernel", label="k", stream="s0", engine="compute0",
         enqueue=0.0, start=0.0, finish=1.0, nbytes=0):
    return TimelineRecord(
        kind=kind, label=label, stream=stream, engine=engine,
        enqueue=enqueue, start=start, finish=finish, nbytes=nbytes,
    )


class TestEmptyTimeline:
    def test_queries(self):
        tl = Timeline([])
        assert len(tl) == 0
        assert tl.makespan == 0.0
        assert tl.end == 0.0
        assert tl.busy_time() == 0.0
        assert tl.engine_utilization() == {}
        assert overlap_fraction(tl) == 0.0

    def test_audit_accepts_empty(self):
        audit(Timeline([]))

    def test_gantt_placeholder(self):
        assert ascii_gantt(Timeline([])) == "(empty timeline)"

    def test_chrome_trace_has_no_events(self):
        trace = to_chrome_trace(Timeline([]))
        assert trace["traceEvents"] == []


class TestSingleRecord:
    def test_queries(self):
        tl = Timeline([_rec(start=2.0, finish=5.0)])
        assert tl.makespan == pytest.approx(3.0)
        assert tl.end == 5.0
        assert tl.engine_utilization() == {"compute0": pytest.approx(1.0)}

    def test_audit_passes(self):
        audit(Timeline([_rec()]))

    def test_gantt_renders_one_row(self):
        text = ascii_gantt(Timeline([_rec()]), width=40)
        assert "compute0" in text
        assert "#" in text  # kernel glyph
        assert "legend" in text


class TestZeroDuration:
    def test_marker_like_record_survives_everything(self):
        # zero-duration marker touching a kernel's finish on the same
        # engine: exclusivity allows touching, rejects overlap
        tl = Timeline([
            _rec(kind="marker", label="m", start=2.0, finish=2.0),
            _rec(start=0.0, finish=2.0),
        ])
        audit(tl)
        assert tl.makespan == pytest.approx(2.0)
        text = ascii_gantt(tl, width=30)
        assert "|" in text  # zero-width command still gets >= 1 cell
        # chrome export clamps dur to a positive minimum
        durs = [e["dur"] for e in to_chrome_trace(tl)["traceEvents"]
                if e.get("ph") == "X"]
        assert all(d > 0 for d in durs)

    def test_all_zero_span_gantt_does_not_divide_by_zero(self):
        tl = Timeline([_rec(start=1.0, finish=1.0)])
        assert "compute0" in ascii_gantt(tl, width=20)


class TestOutOfOrderInput:
    def test_records_are_sorted_on_construction(self):
        r_late = _rec(label="late", start=5.0, finish=6.0)
        r_early = _rec(label="early", start=0.0, finish=1.0)
        tl = Timeline([r_late, r_early])
        assert [r.label for r in tl.records] == ["early", "late"]
        audit(tl)

    def test_audit_catches_engine_overlap(self):
        tl = Timeline([
            _rec(label="a", start=0.0, finish=2.0),
            _rec(label="b", start=1.0, finish=3.0),
        ])
        with pytest.raises(AssertionError, match="overlap"):
            audit(tl)

    def test_audit_catches_start_before_enqueue(self):
        tl = Timeline([_rec(enqueue=1.0, start=0.5, finish=2.0)])
        with pytest.raises(AssertionError, match="before enqueue"):
            audit(tl)

    def test_audit_catches_finish_before_start(self):
        tl = Timeline([_rec(start=2.0, finish=1.0)])
        with pytest.raises(AssertionError, match="finished before start"):
            audit(tl)

    def test_audit_allows_disjoint_engines(self):
        tl = Timeline([
            _rec(label="a", engine="compute0", start=0.0, finish=2.0),
            _rec(label="b", engine="dma0", kind="h2d", stream="s1",
                 start=1.0, finish=3.0),
        ])
        audit(tl)
