"""Unit tests for the virtual (metadata-only) array backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.varray import (
    VirtualArray,
    as_backing,
    empty_like_backing,
    is_virtual,
    nbytes_of,
)


class TestMetadata:
    def test_shape_dtype_size_nbytes(self):
        v = VirtualArray((4, 5, 6), np.float32)
        assert v.shape == (4, 5, 6)
        assert v.dtype == np.float32
        assert v.ndim == 3
        assert v.size == 120
        assert v.nbytes == 480

    def test_huge_array_costs_no_memory(self):
        v = VirtualArray((100_000, 100_000), np.float64)  # 80 GB logical
        assert v.nbytes == 80_000_000_000

    def test_len(self):
        assert len(VirtualArray((7, 2), np.int32)) == 7
        with pytest.raises(TypeError):
            len(VirtualArray((), np.int32))


class TestSlicing:
    @pytest.mark.parametrize(
        "key",
        [
            np.s_[1:3],
            np.s_[:, 2:, 1],
            np.s_[..., ::2],
            np.s_[0],
            np.s_[-2:, :, :],
        ],
    )
    def test_slicing_matches_numpy_shapes(self, key):
        real = np.zeros((6, 7, 8), dtype=np.float32)
        virt = VirtualArray((6, 7, 8), np.float32)
        assert virt[key].shape == real[key].shape

    def test_setitem_validates_key(self):
        v = VirtualArray((4, 4), np.float32)
        v[1:3, :] = 0  # fine, no-op
        with pytest.raises(IndexError):
            v[10]

    def test_views_are_virtual(self):
        v = VirtualArray((4, 4), np.float32)
        assert is_virtual(v[1:])


class TestReshape:
    def test_reshape_exact(self):
        v = VirtualArray((4, 6), np.float64).reshape(3, 8)
        assert v.shape == (3, 8)

    def test_reshape_wildcard(self):
        assert VirtualArray((4, 6), np.float64).reshape(2, -1).shape == (2, 12)

    def test_reshape_tuple_form(self):
        assert VirtualArray((4, 6), np.int8).reshape((24,)).shape == (24,)

    def test_reshape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VirtualArray((4, 6), np.int8).reshape(5, 5)

    def test_reshape_two_wildcards_rejected(self):
        with pytest.raises(ValueError):
            VirtualArray((4, 6), np.int8).reshape(-1, -1)

    def test_ravel(self):
        assert VirtualArray((3, 4), np.int16).ravel().shape == (12,)


class TestOps:
    def test_copy_and_astype(self):
        v = VirtualArray((3,), np.float32)
        assert v.copy().shape == (3,)
        assert v.astype(np.float64).nbytes == 24

    def test_fill_is_noop(self):
        VirtualArray((3,), np.float32).fill(1.0)


class TestHelpers:
    def test_as_backing_modes(self):
        r = as_backing((2, 2), np.float32, virtual=False)
        v = as_backing((2, 2), np.float32, virtual=True)
        assert isinstance(r, np.ndarray) and (r == 0).all()
        assert is_virtual(v)

    def test_nbytes_of_both_modes(self):
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
        assert nbytes_of(VirtualArray((10,), np.float64)) == 80

    def test_empty_like_backing(self):
        assert is_virtual(empty_like_backing(VirtualArray((2,), np.int8)))
        out = empty_like_backing(np.ones((2,), dtype=np.int8))
        assert isinstance(out, np.ndarray) and (out == 0).all()
