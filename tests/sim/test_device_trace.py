"""Unit tests for the Device facade and timeline analysis."""

from __future__ import annotations

import pytest

from repro.sim import Device, NVIDIA_K40M, AMD_HD7970
from repro.sim.engine import EventToken
from repro.sim.stream import SimStream
from repro.sim.trace import (
    Timeline,
    TimelineRecord,
    audit,
    overlap_fraction,
    time_distribution,
)


class TestDevice:
    def test_engines_created_from_profile(self):
        d = Device(NVIDIA_K40M)
        names = {e.name for e in d.sim.engines}
        assert names == {"dma0", "compute0"}

    def test_copy_duration_from_link_model(self):
        d = Device(NVIDIA_K40M)
        c = d.submit_copy("h2d", 10_000_000)
        d.wait(c)
        expect = NVIDIA_K40M.h2d.latency + (10_000_000 + NVIDIA_K40M.h2d.n_half) / NVIDIA_K40M.h2d.bw_peak
        assert c.finish_time == pytest.approx(expect)

    def test_kernel_includes_launch_overhead(self):
        d = Device(NVIDIA_K40M)
        k = d.submit_kernel(1e-3)
        d.wait(k)
        assert k.duration == pytest.approx(1e-3 + NVIDIA_K40M.kernel_launch_overhead)

    def test_bad_direction_rejected(self):
        d = Device(NVIDIA_K40M)
        with pytest.raises(ValueError):
            d.submit_copy("sideways", 100)

    def test_2d_copy_geometry_checked(self):
        d = Device(NVIDIA_K40M)
        with pytest.raises(ValueError):
            d.submit_copy("h2d", 100, rows=3, row_bytes=50)

    def test_h2d_d2h_share_single_dma_engine(self):
        """PCIe contention: both directions serialize on dma0."""
        d = Device(NVIDIA_K40M)
        a = d.submit_copy("h2d", 50_000_000)
        b = d.submit_copy("d2h", 50_000_000)
        d.wait_all()
        assert a.engine == b.engine == "dma0"
        assert b.start_time >= a.finish_time

    def test_copy_overlaps_kernel(self):
        d = Device(NVIDIA_K40M)
        s1, s2 = SimStream(), SimStream()
        c = d.submit_copy("h2d", 100_000_000, stream=s1)
        k = d.submit_kernel(8e-3, stream=s2)
        d.wait_all()
        assert k.start_time < c.finish_time  # concurrent

    def test_marker_is_zero_duration(self):
        d = Device(NVIDIA_K40M)
        tok = EventToken()
        m = d.submit_marker(records=[tok])
        d.wait_all()
        assert m.duration == 0.0 and tok.done

    def test_alloc_free_roundtrip(self):
        d = Device(AMD_HD7970)
        base = d.memory.used
        rec = d.alloc(1 << 20, tag="t")
        assert d.memory.used > base
        d.free(rec)
        assert d.memory.used == base

    def test_timeline_records_everything(self):
        d = Device(NVIDIA_K40M)
        s = SimStream("s0")
        d.submit_copy("h2d", 1000, stream=s, label="in")
        d.submit_kernel(1e-4, stream=s, label="k")
        d.submit_copy("d2h", 1000, stream=s, label="out")
        d.wait_all()
        tl = d.timeline()
        assert [r.kind for r in tl] == ["h2d", "kernel", "d2h"]
        assert all(r.stream == "s0" for r in tl)
        audit(tl)


def rec(kind, start, finish, *, engine="e", stream="s", enqueue=0.0, nbytes=0):
    return TimelineRecord(kind, "", stream, engine, enqueue, start, finish, nbytes)


class TestTimelineAnalysis:
    def test_makespan_and_busy_time(self):
        tl = Timeline([rec("h2d", 0, 1), rec("kernel", 1, 3, engine="c")])
        assert tl.makespan == pytest.approx(3.0)
        assert tl.busy_time("kernel") == pytest.approx(2.0)
        assert tl.busy_time() == pytest.approx(3.0)
        assert tl.end == pytest.approx(3.0)

    def test_time_distribution(self):
        tl = Timeline(
            [rec("h2d", 0, 1), rec("kernel", 1, 2, engine="c"), rec("d2h", 2, 2.5)]
        )
        dist = time_distribution(tl)
        assert dist == {"h2d": 1.0, "kernel": 1.0, "d2h": 0.5}

    def test_overlap_fraction_zero_when_sequential(self):
        tl = Timeline([rec("h2d", 0, 1), rec("kernel", 1, 2, engine="c")])
        assert overlap_fraction(tl) == 0.0

    def test_overlap_fraction_one_when_fully_hidden(self):
        tl = Timeline(
            [rec("kernel", 0, 4, engine="c"), rec("h2d", 1, 2), rec("d2h", 2, 3)]
        )
        assert overlap_fraction(tl) == pytest.approx(1.0)

    def test_overlap_fraction_partial(self):
        tl = Timeline([rec("kernel", 0, 1, engine="c"), rec("h2d", 0.5, 1.5)])
        assert overlap_fraction(tl) == pytest.approx(0.5)

    def test_overlap_no_transfers(self):
        assert overlap_fraction(Timeline([rec("kernel", 0, 1)])) == 0.0

    def test_by_kind(self):
        tl = Timeline([rec("h2d", 0, 1), rec("h2d", 1, 2), rec("d2h", 2, 3)])
        assert len(tl.by_kind("h2d")) == 2


class TestAudit:
    def test_engine_overlap_detected(self):
        tl = Timeline([rec("h2d", 0, 2), rec("h2d", 1, 3)])
        with pytest.raises(AssertionError):
            audit(tl)

    def test_stream_overlap_detected(self):
        tl = Timeline(
            [rec("h2d", 0, 2, engine="a"), rec("kernel", 1, 3, engine="b")]
        )
        with pytest.raises(AssertionError):
            audit(tl)

    def test_start_before_enqueue_detected(self):
        tl = Timeline([rec("h2d", 0, 1, enqueue=0.5)])
        with pytest.raises(AssertionError):
            audit(tl)

    def test_clean_timeline_passes(self):
        tl = Timeline(
            [
                rec("h2d", 0, 1, engine="a", stream="s1"),
                rec("kernel", 1, 2, engine="b", stream="s1"),
                rec("h2d", 1, 2, engine="a", stream="s2"),
            ]
        )
        audit(tl)
