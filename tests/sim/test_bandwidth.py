"""Unit tests for the transfer cost model."""

from __future__ import annotations

import pytest

from repro.sim.bandwidth import LinkModel, transfer_time_1d, transfer_time_2d
from repro.sim.profiles import AMD_HD7970, NVIDIA_K40M

LINK = LinkModel(latency=10e-6, bw_peak=10e9, n_half=1_000_000, row_latency=1e-6)


class TestEffectiveBandwidth:
    def test_half_saturation_point(self):
        assert LINK.effective_bandwidth(1_000_000) == pytest.approx(5e9)

    def test_asymptote(self):
        assert LINK.effective_bandwidth(10**12) == pytest.approx(10e9, rel=1e-3)

    def test_monotone_in_size(self):
        sizes = [10**k for k in range(2, 10)]
        bws = [LINK.effective_bandwidth(s) for s in sizes]
        assert bws == sorted(bws)

    def test_zero_bytes(self):
        assert LINK.effective_bandwidth(0) == 0.0


class TestTransfer1D:
    def test_closed_form(self):
        # t = lat + (n + n_half) / bw
        assert transfer_time_1d(LINK, 1_000_000) == pytest.approx(
            10e-6 + 2_000_000 / 10e9
        )

    def test_zero_bytes_still_pays_latency(self):
        assert transfer_time_1d(LINK, 0) >= LINK.latency

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            transfer_time_1d(LINK, -1)

    def test_pageable_slower_than_pinned(self):
        n = 10_000_000
        assert transfer_time_1d(LINK, n, pinned=False) > transfer_time_1d(LINK, n)

    def test_splitting_never_faster(self):
        """Chunking a transfer adds latency + per-chunk saturation loss."""
        n = 64_000_000
        whole = transfer_time_1d(LINK, n)
        for parts in (2, 8, 64):
            split = parts * transfer_time_1d(LINK, n // parts)
            assert split > whole


class TestTransfer2D:
    def test_rows_pay_per_row_cost(self):
        one_row = transfer_time_2d(LINK, 1, 4096)
        many = transfer_time_2d(LINK, 100, 4096)
        assert many > 50 * one_row * 0.5  # roughly linear in rows

    def test_2d_slower_than_contiguous_same_bytes(self):
        rows, rb = 1024, 4096
        assert transfer_time_2d(LINK, rows, rb) > transfer_time_1d(LINK, rows * rb)

    def test_degenerate_extents(self):
        assert transfer_time_2d(LINK, 0, 4096) == LINK.latency
        assert transfer_time_2d(LINK, 4096, 0) == LINK.latency
        with pytest.raises(ValueError):
            transfer_time_2d(LINK, -1, 10)


class TestProfileCalibration:
    """The paper's measured transfer rates must fall out of the models."""

    def test_amd_whole_array_rate_near_6gbs(self):
        # Naive 3dconv on the HD 7970 moves whole arrays (~226 MB)
        n = 226_000_000
        t = transfer_time_1d(AMD_HD7970.h2d, n)
        assert 6.0e9 <= n / t <= 6.8e9

    def test_amd_plane_chunk_rate_near_2gbs(self):
        # The Pipelined version moves ~590 KB planes: paper profiles ~2 GB/s
        n = 590_000
        t = transfer_time_1d(AMD_HD7970.h2d, n)
        assert 1.5e9 <= n / t <= 2.6e9

    def test_nvidia_insensitive_to_plane_chunking(self):
        # K40m plane-size transfers retain most of peak bandwidth
        n = 2_359_296  # 768*768*4
        t = transfer_time_1d(NVIDIA_K40M.h2d, n)
        assert n / t >= 0.9 * NVIDIA_K40M.h2d.bw_peak

    def test_nvidia_overheads_are_microseconds(self):
        assert NVIDIA_K40M.api_overhead < 1e-5
        assert AMD_HD7970.api_overhead > NVIDIA_K40M.api_overhead
