"""Sanity tests for the device-profile calibrations.

These pin the facts the calibration *derives from the paper*, so a
future re-tuning that breaks an evidence-backed relationship fails
loudly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.profiles import AMD_HD7970, NVIDIA_K40M, profile_by_name


class TestLookup:
    @pytest.mark.parametrize(
        "name,profile",
        [
            ("k40m", NVIDIA_K40M),
            ("K40M", NVIDIA_K40M),
            ("nvidia", NVIDIA_K40M),
            ("hd7970", AMD_HD7970),
            ("amd", AMD_HD7970),
            ("HD 7970", AMD_HD7970),
        ],
    )
    def test_names_resolve(self, name, profile):
        assert profile_by_name(name) is profile

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            profile_by_name("voodoo")

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            NVIDIA_K40M.api_overhead = 0.0


class TestK40mCalibration:
    def test_memory_reproduces_matmul_oom_boundary(self):
        """float64 3n^2 at n=20480 must exceed usable memory while
        n=14336 fits — the Figure 9/10 boundary."""
        usable = NVIDIA_K40M.usable_memory_bytes
        assert 3 * 14336**2 * 8 + NVIDIA_K40M.context_overhead_bytes < usable
        assert 3 * 20480**2 * 8 > usable
        assert usable < NVIDIA_K40M.memory_bytes

    def test_flop_rates_match_datasheet_order(self):
        assert NVIDIA_K40M.flops_f32 == pytest.approx(4.29e12)
        assert NVIDIA_K40M.flops_f64 == pytest.approx(1.43e12)
        assert NVIDIA_K40M.flops(4) > NVIDIA_K40M.flops(8)

    def test_single_shared_dma_engine(self):
        assert NVIDIA_K40M.dma_engines == 1
        assert AMD_HD7970.dma_engines == 1


class TestAmdCalibration:
    def test_memory_is_3gb_card(self):
        assert AMD_HD7970.memory_bytes == 3_000_000_000
        assert AMD_HD7970.usable_memory_bytes < AMD_HD7970.memory_bytes

    def test_overheads_dwarf_nvidia(self):
        """Figure 8's premise: AMD per-call costs are an order of
        magnitude above NVIDIA's."""
        assert AMD_HD7970.api_overhead >= 5 * NVIDIA_K40M.api_overhead
        assert AMD_HD7970.kernel_launch_overhead >= 3 * NVIDIA_K40M.kernel_launch_overhead
        assert AMD_HD7970.h2d.n_half >= 20 * NVIDIA_K40M.h2d.n_half

    def test_vendor_runtime_contention_ordering(self):
        """Both vendors' OpenACC runtimes cost more per stream than the
        proposed runtime (Figure 7's asymmetry)."""
        for p in (NVIDIA_K40M, AMD_HD7970):
            assert p.acc_stream_factor > p.runtime_stream_factor
            assert p.acc_stream_contention > p.runtime_stream_contention
