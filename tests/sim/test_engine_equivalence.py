"""Differential proof that the fast engine kernel is invisible.

PR-8 rebuilt :class:`repro.sim.engine.Simulator` into a fast kernel —
free-listed ``__slots__`` objects, batched heap traffic, lazy span
materialization, a vectorized virtual-kernel cost path — while the
pre-refactor event loop was preserved verbatim as
:class:`repro.sim.engine_ref.ReferenceSimulator`.  Every test here runs
the same workload once per kernel (``engine_kernel("fast")`` vs
``engine_kernel("reference")``, the reference paired with an *eager*
tracer so spans and instruments update at retirement exactly as the old
loop did) and asserts the observable surfaces are **byte-identical**:

* the scrubbed golden-style Chrome trace (same normalization as
  ``tests/golden/test_golden_traces.py``);
* the metrics snapshot consumed by ``repro.obs.analyze``;
* the ``analyze_result`` analysis snapshot (critical path, waits,
  what-ifs);
* the serve report dict — single-device and sharded 3-ways, under a
  named chaos profile, and with ``integrity="checksum"``.

Coverage: the paper's four applications, single-device and 3-shard
pools, observability on and off, >= 1 chaos fault profile, and the
checksum integrity policy — the surfaces the refactor was required to
leave bit-for-bit unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import pool_fault_plans
from repro.obs import Observability, analyze_result
from repro.obs.tracer import Tracer
from repro.serve import DevicePool, RegionScheduler, ServeConfig, build_request
from repro.sim.engine import engine_kernel
from repro.sim.stream import reset_stream_ids

from tests.golden.test_golden_traces import render

KERNELS = ("fast", "reference")

#: tiny pipelined runs per app — the golden-trace sizes, so each case
#: still spans several chunks, streams, and engine handoffs
APP_CONFIGS = {
    "conv3d": {"nz": 10, "ny": 16, "nx": 16},
    "matmul": {"n": 96, "block": 16},
    "qcd": {"n": 6},
    "stencil": {"nz": 10, "ny": 16, "nx": 16, "iters": 1},
}

#: chaos-test sizes with real payloads, for the integrity cases
SERVE_CONFIGS = {
    "conv3d": {"nz": 12, "ny": 24, "nx": 24, "num_streams": 2},
    "matmul": {"n": 48, "block": 8, "num_streams": 2},
    "qcd": {"n": 6, "num_streams": 2},
    "stencil": {"nz": 12, "ny": 24, "nx": 24, "iters": 1, "num_streams": 2},
}


def _run_app(app, obs):
    if app == "stencil":
        from repro.apps import stencil as mod

        return mod.run_model(
            "pipelined-buffer", mod.StencilConfig(**APP_CONFIGS[app]),
            "k40m", virtual=True, obs=obs,
        )
    if app == "conv3d":
        from repro.apps import conv3d as mod

        return mod.run_model(
            "pipelined-buffer", mod.Conv3dConfig(**APP_CONFIGS[app]),
            "k40m", virtual=True, obs=obs,
        )
    if app == "matmul":
        from repro.apps import matmul as mod

        return mod.run_model(
            "pipeline-buffer", mod.MatmulConfig(**APP_CONFIGS[app]),
            "k40m", virtual=True, obs=obs,
        )
    from repro.apps import qcd as mod

    return mod.run_model(
        "pipelined-buffer", mod.QcdConfig(**APP_CONFIGS[app]),
        "k40m", virtual=True, obs=obs,
    )


def _obs(kernel: str) -> Observability:
    """The per-kernel observability pair.

    The reference kernel pairs with an eager tracer — every retirement
    builds its :class:`Span` on the spot, the pre-refactor cost model —
    while the fast kernel keeps the shipped lazy path.  Byte equality
    of the rendered traces is therefore also the proof that lazy
    materialization reconstructs the eager output exactly.
    """
    return Observability(Tracer(eager=(kernel == "reference")))


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


# ----------------------------------------------------------------------
# single-device app runs: trace + metrics + analysis snapshot
# ----------------------------------------------------------------------
def _app_surfaces(app: str, kernel: str, obs_on: bool):
    reset_stream_ids()
    with engine_kernel(kernel):
        obs = _obs(kernel) if obs_on else None
        res = _run_app(app, obs)
        assert res is not None
        analysis = analyze_result(res, meta={"app": app, "device": "k40m"})
        out = {"analysis": _canon(analysis.to_dict())}
        if obs_on:
            out["trace"] = render(obs.chrome_trace())
            out["metrics"] = _canon(obs.metrics.snapshot())
        return out


@pytest.mark.parametrize("obs_on", (True, False), ids=("obs", "noobs"))
@pytest.mark.parametrize("app", sorted(APP_CONFIGS))
def test_app_surfaces_identical(app, obs_on):
    fast = _app_surfaces(app, "fast", obs_on)
    ref = _app_surfaces(app, "reference", obs_on)
    for surface in sorted(fast):
        assert fast[surface] == ref[surface], (
            f"{app} {surface} differs between engine kernels"
        )


@pytest.mark.parametrize("app", sorted(APP_CONFIGS))
def test_app_golden_trace_matches_reference_kernel(app, update_golden):
    """The checked-in golden file *is* the reference kernel's output.

    Redundant with ``tests/golden`` for the fast kernel; this pins the
    reference kernel to the same bytes, so the two suites can never
    drift apart silently.
    """
    if update_golden:
        pytest.skip("golden files are owned by tests/golden")
    from tests.golden.test_golden_traces import GOLDEN_DIR

    reset_stream_ids()
    with engine_kernel("reference"):
        obs = _obs("reference")
        _run_app(app, obs)
    golden = (GOLDEN_DIR / f"{app}.json").read_text(encoding="utf-8")
    assert render(obs.chrome_trace()) == golden


# ----------------------------------------------------------------------
# serve runs: report dict + trace + metrics, sharded / chaos / checksum
# ----------------------------------------------------------------------
def _serve_surfaces(
    kernel: str, *, count=1, shards=1, chaos=None, integrity=None,
    virtual=True, obs_on=True,
):
    reset_stream_ids()
    with engine_kernel(kernel):
        obs = _obs(kernel) if obs_on else None
        reqs = [
            build_request(
                app, tenant=f"t{i}", config=dict(cfg), virtual=virtual,
                shards=shards, integrity=integrity,
            )
            for i, (app, cfg) in enumerate(sorted(SERVE_CONFIGS.items()))
        ]
        with DevicePool("k40m", count=count, virtual=virtual, obs=obs) as pool:
            if chaos is not None:
                pool.install_faults(
                    pool_fault_plans(chaos, seed=1, count=count)
                )
            sched = RegionScheduler(pool, ServeConfig(autotune=False))
            sched.submit_all(reqs)
            report = sched.run()
        assert report.ok
        out = {"report": _canon(report.to_dict())}
        if obs_on:
            out["trace"] = render(obs.chrome_trace())
            out["metrics"] = _canon(obs.metrics.snapshot())
        return out


SERVE_CASES = {
    # the four apps back-to-back on one device, checksum verification on
    "single-checksum": dict(count=1, shards=1, integrity="checksum",
                            virtual=False),
    # every request split 3 ways across a 3-device pool
    "sharded3-checksum": dict(count=3, shards=3, integrity="checksum",
                              virtual=False),
    # a named chaos profile: transient DMA/kernel faults absorbed by
    # chunk replay — the recovery re-enqueue path runs on both kernels
    "chaos-transient": dict(count=1, shards=1, chaos="transient"),
    # sharded with observability fully off (OBS_NULL on the pool)
    "sharded3-noobs": dict(count=3, shards=3, obs_on=False),
}


@pytest.mark.parametrize("case", sorted(SERVE_CASES))
def test_serve_surfaces_identical(case):
    kw = SERVE_CASES[case]
    fast = _serve_surfaces("fast", **kw)
    ref = _serve_surfaces("reference", **kw)
    for surface in sorted(fast):
        assert fast[surface] == ref[surface], (
            f"serve[{case}] {surface} differs between engine kernels"
        )
