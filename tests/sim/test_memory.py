"""Unit tests for the device memory allocator."""

from __future__ import annotations

import pytest

from repro.sim.memory import MemoryAllocator, OutOfDeviceMemory


def make(capacity=1 << 20, context=0, alignment=256):
    return MemoryAllocator(capacity=capacity, context_overhead=context, alignment=alignment)


class TestAllocate:
    def test_simple_allocation(self):
        m = make()
        rec = m.allocate(1000, tag="x")
        assert rec.nbytes == 1024  # aligned up
        assert m.used == 1024
        assert m.peak == 1024

    def test_context_overhead_charged_up_front(self):
        m = make(context=10_000)
        assert m.used == 10_000
        assert m.peak == 10_000

    def test_context_overhead_over_capacity_rejected(self):
        with pytest.raises(ValueError):
            make(capacity=100, context=200)

    def test_zero_and_negative_sizes_rejected(self):
        m = make()
        with pytest.raises(ValueError):
            m.allocate(0)
        with pytest.raises(ValueError):
            m.allocate(-5)

    def test_oom_raises_with_details(self):
        m = make(capacity=4096)
        m.allocate(2048)
        with pytest.raises(OutOfDeviceMemory) as ei:
            m.allocate(4096)
        assert ei.value.requested == 4096
        assert ei.value.capacity == 4096

    def test_exact_fill(self):
        m = make(capacity=4096)
        m.allocate(4096)
        assert m.free == 0
        with pytest.raises(OutOfDeviceMemory):
            m.allocate(1)

    def test_alignment(self):
        m = make(alignment=512)
        r1 = m.allocate(1)
        r2 = m.allocate(1)
        assert r1.nbytes == 512 and r2.nbytes == 512
        assert r2.address == r1.address + 512


class TestFree:
    def test_free_returns_memory(self):
        m = make()
        rec = m.allocate(4096)
        m.release(rec)
        assert m.used == 0
        assert m.free == m.capacity

    def test_double_free_rejected(self):
        m = make()
        rec = m.allocate(4096)
        m.release(rec)
        with pytest.raises(ValueError):
            m.release(rec)

    def test_coalescing_allows_reallocation(self):
        m = make(capacity=3 * 4096)
        recs = [m.allocate(4096) for _ in range(3)]
        for r in recs:
            m.release(r)
        # after coalescing the full arena must be allocatable again
        big = m.allocate(3 * 4096)
        assert big.nbytes == 3 * 4096

    def test_free_middle_block_reused_first_fit(self):
        m = make(capacity=10 * 4096)
        a = m.allocate(4096)
        b = m.allocate(4096)
        c = m.allocate(4096)
        m.release(b)
        d = m.allocate(2048)
        assert d.address == b.address  # first fit lands in the hole
        del a, c

    def test_peak_tracks_high_water_mark(self):
        m = make()
        a = m.allocate(8192)
        m.release(a)
        m.allocate(1024)
        assert m.peak == 8192
        m.reset_peak()
        assert m.peak == m.used


class TestIntrospection:
    def test_live_allocations_sorted(self):
        m = make()
        m.allocate(256, tag="a")
        m.allocate(256, tag="b")
        tags = [r.tag for r in m.live_allocations]
        assert tags == ["a", "b"]

    def test_alloc_count(self):
        m = make()
        for _ in range(5):
            m.allocate(128)
        assert m.alloc_count == 5

    def test_invariants_hold_through_mixed_workload(self):
        m = make(capacity=1 << 16, context=1024)
        live = []
        import random

        rnd = random.Random(7)
        for step in range(200):
            m.check_invariants()
            if live and rnd.random() < 0.45:
                m.release(live.pop(rnd.randrange(len(live))))
            else:
                try:
                    live.append(m.allocate(rnd.randrange(1, 5000)))
                except OutOfDeviceMemory:
                    if live:
                        m.release(live.pop())
        m.check_invariants()
