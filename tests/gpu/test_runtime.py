"""Unit tests for the CUDA-like host runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import OutOfMemoryError, Runtime
from repro.gpu.errors import InvalidValueError
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit
from repro.sim.varray import VirtualArray, is_virtual


class TestMalloc:
    def test_malloc_charges_memory(self, k40m):
        before = k40m.memory_used
        d = k40m.malloc((1000,), np.float64)
        assert k40m.memory_used - before >= 8000
        assert d.shape == (1000,) and d.dtype == np.float64

    def test_free_returns_memory(self, k40m):
        d = k40m.malloc((1000,), np.float32)
        used = k40m.memory_used
        k40m.free(d)
        assert k40m.memory_used < used

    def test_oom_propagates(self, k40m):
        with pytest.raises(OutOfMemoryError):
            k40m.malloc((100_000, 100_000), np.float64)  # 80 GB

    def test_free_view_rejected(self, k40m):
        d = k40m.malloc((10, 10), np.float32)
        with pytest.raises(InvalidValueError):
            k40m.free(d[2:])

    def test_double_free_rejected(self, k40m):
        d = k40m.malloc((10,), np.float32)
        k40m.free(d)
        with pytest.raises(InvalidValueError):
            k40m.free(d)

    def test_use_after_free_rejected(self, k40m):
        d = k40m.malloc((10,), np.float32)
        k40m.free(d)
        with pytest.raises(InvalidValueError):
            _ = d[2:]

    def test_virtual_mode_backing(self):
        rt = Runtime(NVIDIA_K40M, virtual=True)
        d = rt.malloc((10, 10), np.float32)
        assert d.is_virtual
        h = rt.hostalloc((10, 10), np.float32)
        assert is_virtual(h)

    def test_memory_peak_includes_context(self, k40m):
        assert k40m.memory_peak >= NVIDIA_K40M.context_overhead_bytes


class TestCopies:
    def test_sync_roundtrip(self, k40m, rng):
        a = rng.random(257).astype(np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        out = np.zeros_like(a)
        k40m.memcpy_h2d(d, a)
        k40m.memcpy_d2h(out, d)
        assert np.array_equal(out, a)

    def test_async_roundtrip_with_stream_order(self, k40m, rng):
        a = rng.random((32, 16)).astype(np.float64)
        d = k40m.malloc(a.shape, a.dtype)
        out = np.zeros_like(a)
        s = k40m.create_stream()
        k40m.memcpy_h2d_async(d, a, s)
        k40m.memcpy_d2h_async(out, d, s)
        k40m.synchronize()
        assert np.array_equal(out, a)

    def test_shape_mismatch_rejected(self, k40m):
        d = k40m.malloc((4, 4), np.float32)
        s = k40m.create_stream()
        with pytest.raises(InvalidValueError):
            k40m.memcpy_h2d_async(d, np.zeros((4, 5), np.float32), s)

    def test_view_copy_lands_in_parent(self, k40m, rng):
        a = rng.random((8, 4)).astype(np.float32)
        d = k40m.malloc((16, 4), np.float32)
        s = k40m.create_stream()
        k40m.memcpy_h2d_async(d[8:], a, s)
        k40m.synchronize()
        assert np.array_equal(d.backing[8:], a)
        assert (d.backing[:8] == 0).all()

    def test_sync_copy_blocks_host_clock(self, k40m):
        a = np.zeros(50_000_000, np.float32)  # 200 MB -> ~20 ms
        d = k40m.malloc(a.shape, a.dtype)
        t0 = k40m.host_now
        k40m.memcpy_h2d(d, a)
        assert k40m.host_now - t0 > 0.015

    def test_async_copy_does_not_block_host(self, k40m):
        a = np.zeros(50_000_000, np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        s = k40m.create_stream()
        t0 = k40m.host_now
        k40m.memcpy_h2d_async(d, a, s)
        assert k40m.host_now - t0 < 1e-3  # just the API call
        k40m.synchronize()

    def test_2d_copy_slower_than_1d(self, k40m):
        a = np.zeros((1024, 256), np.float32)
        d1 = k40m.malloc(a.shape, a.dtype)
        d2 = k40m.malloc(a.shape, a.dtype)
        s = k40m.create_stream()
        c1 = k40m.memcpy_h2d_async(d1, a, s)
        c2 = k40m.memcpy_h2d_async(d2, a, s, rows=1024, row_bytes=1024)
        k40m.synchronize()
        assert c2.duration > c1.duration

    def test_call_overhead_scale_applies(self, k40m):
        a = np.zeros(10, np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        s = k40m.create_stream()
        t0 = k40m.host_now
        k40m.memcpy_h2d_async(d, a, s)
        base = k40m.host_now - t0
        k40m.call_overhead_scale = 5.0
        t1 = k40m.host_now
        k40m.memcpy_h2d_async(d, a, s)
        assert (k40m.host_now - t1) == pytest.approx(5 * base)


class TestEventsAndSync:
    def test_record_event_and_cross_stream_wait(self, k40m):
        s1, s2 = k40m.create_stream(), k40m.create_stream()
        a = np.zeros(25_000_000, np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        c = k40m.memcpy_h2d_async(d, a, s1)
        tok = k40m.record_event(s1)
        k = k40m.launch(1e-4, None, s2, waits=[tok])
        k40m.synchronize()
        assert k.start_time >= c.finish_time

    def test_stream_synchronize_only_blocks_that_stream(self, k40m):
        s1, s2 = k40m.create_stream(), k40m.create_stream()
        a = np.zeros(25_000_000, np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        k40m.memcpy_h2d_async(d, a, s1)
        slow = k40m.launch(1.0, None, s2)
        k40m.stream_synchronize(s1)
        assert not slow.done
        k40m.synchronize()
        assert slow.done

    def test_event_synchronize(self, k40m):
        s = k40m.create_stream()
        k40m.launch(5e-3, None, s)
        tok = k40m.record_event(s)
        k40m.event_synchronize(tok)
        assert tok.done
        assert k40m.host_now >= 5e-3

    def test_synchronize_idle_device(self, k40m):
        k40m.synchronize()  # must not raise

    def test_elapsed_tracks_both_clocks(self, k40m):
        s = k40m.create_stream()
        k40m.launch(0.25, None, s)
        k40m.synchronize()
        assert k40m.elapsed >= 0.25


class TestKernels:
    def test_launch_payload_runs(self, k40m):
        s = k40m.create_stream()
        hits = []
        k40m.launch(1e-5, lambda: hits.append(1), s)
        k40m.synchronize()
        assert hits == [1]

    def test_virtual_mode_skips_payload(self):
        rt = Runtime(NVIDIA_K40M, virtual=True)
        s = rt.create_stream()
        hits = []
        rt.launch(1e-5, lambda: hits.append(1), s)
        rt.synchronize()
        assert hits == []

    def test_pipeline_pattern_produces_clean_timeline(self, k40m, rng):
        """A hand-built 3-stage pipeline is audited end to end."""
        n, chunks = 4096, 8
        a = rng.random(n).astype(np.float64)
        out = np.zeros_like(a)
        d = k40m.malloc((n,), np.float64)
        streams = [k40m.create_stream() for _ in range(2)]
        w = n // chunks
        for i in range(chunks):
            st = streams[i % 2]
            sl = slice(i * w, (i + 1) * w)
            k40m.memcpy_h2d_async(d[sl], a[sl], st)
            # double each chunk on device
            k40m.launch(
                1e-4,
                (lambda s=sl: d.backing.__setitem__(s, d.backing[s] * 2)),
                st,
            )
            k40m.memcpy_d2h_async(out[sl], d[sl], st)
        k40m.synchronize()
        audit(k40m.timeline())
        assert np.allclose(out, 2 * a)


class TestPinning:
    def test_hostalloc_registers_pinned(self, k40m):
        h = k40m.hostalloc((16,), np.float32)
        assert k40m.is_pinned(h)

    def test_default_pinned_flag(self, k40m):
        arr = np.zeros(4, np.float32)
        assert k40m.is_pinned(arr)
        k40m.default_pinned = False
        assert not k40m.is_pinned(arr)
        k40m.pin(arr)
        assert k40m.is_pinned(arr)

    def test_pageable_transfers_slower(self, k40m):
        k40m.default_pinned = False
        a = np.zeros(10_000_000, np.float32)
        d = k40m.malloc(a.shape, a.dtype)
        s = k40m.create_stream()
        slow = k40m.memcpy_h2d_async(d, a, s)
        fast = k40m.memcpy_h2d_async(d, a, s, pinned=True)
        k40m.synchronize()
        assert slow.duration > fast.duration
