"""Unit tests for DeviceArray handles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.darray import DeviceArray
from repro.gpu.errors import InvalidValueError
from repro.sim.memory import AllocationRecord
from repro.sim.varray import VirtualArray


def alloc(shape=(8, 4), dtype=np.float32, virtual=False):
    backing = VirtualArray(shape, dtype) if virtual else np.zeros(shape, dtype)
    rec = AllocationRecord(0, int(np.prod(shape)) * np.dtype(dtype).itemsize)
    return DeviceArray(backing, rec)


class TestMetadata:
    def test_shape_dtype_size(self):
        d = alloc((8, 4))
        assert d.shape == (8, 4)
        assert d.dtype == np.float32
        assert d.ndim == 2
        assert d.size == 32
        assert d.nbytes == 128

    def test_virtual_flag(self):
        assert alloc(virtual=True).is_virtual
        assert not alloc().is_virtual

    def test_repr_mentions_mode(self):
        assert "virtual" in repr(alloc(virtual=True))
        assert "alloc" in repr(alloc())


class TestViews:
    def test_view_shares_base(self):
        d = alloc()
        v = d[2:5]
        assert v.is_view and v.base is d
        assert v.allocation is None
        assert v.shape == (3, 4)

    def test_nested_views_share_root(self):
        d = alloc()
        v = d[2:6][1:]
        assert v.base is d

    def test_view_writes_reach_parent(self):
        d = alloc()
        d[3:4].backing[...] = 7.0
        assert (d.backing[3] == 7.0).all()

    def test_reshape_view(self):
        d = alloc((8, 4))
        assert d.reshape(32).shape == (32,)
        assert d.reshape(32).base is d

    def test_virtual_views(self):
        d = alloc(virtual=True)
        assert d[1:3].shape == (2, 4)
        assert d[1:3].is_virtual


class TestLifetime:
    def test_free_view_rejected(self):
        d = alloc()
        with pytest.raises(InvalidValueError):
            d[1:].mark_freed()

    def test_double_free_rejected(self):
        d = alloc()
        d.mark_freed()
        with pytest.raises(InvalidValueError):
            d.mark_freed()

    def test_views_die_with_base(self):
        d = alloc()
        v = d[2:]
        d.mark_freed()
        with pytest.raises(InvalidValueError):
            _ = v[0:1]
