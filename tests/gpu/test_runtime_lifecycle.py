"""Runtime lifecycle: use-after-close, idempotency, context manager.

Every public :class:`~repro.gpu.runtime.Runtime` method that touches
the device must raise :class:`~repro.gpu.errors.InvalidValueError`
once the runtime is closed — the CUDA analogue of calling into a
destroyed context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import Runtime
from repro.gpu.errors import InvalidValueError
from repro.sim import NVIDIA_K40M


def _closed_runtime():
    """A closed runtime plus live handles created while it was open."""
    rt = Runtime(NVIDIA_K40M)
    ctx = {
        "stream": rt.create_stream("s"),
        "darr": rt.malloc((8,), np.float32),
        "host": np.zeros(8, dtype=np.float32),
        "token": rt.record_event(rt.create_stream("s2")),
    }
    rt.synchronize()
    rt.close()
    return rt, ctx


#: (method name, call using pre-close handles) — every public API that
#: must reject a closed runtime
_API_CALLS = [
    ("malloc", lambda rt, c: rt.malloc((4,), np.float32)),
    ("free", lambda rt, c: rt.free(c["darr"])),
    ("hostalloc", lambda rt, c: rt.hostalloc((4,), np.float32)),
    ("create_stream", lambda rt, c: rt.create_stream()),
    ("record_event", lambda rt, c: rt.record_event(c["stream"])),
    ("stream_wait_event", lambda rt, c: rt.stream_wait_event(c["stream"], c["token"])),
    ("memcpy_h2d_async", lambda rt, c: rt.memcpy_h2d_async(c["darr"], c["host"], c["stream"])),
    ("memcpy_d2h_async", lambda rt, c: rt.memcpy_d2h_async(c["host"], c["darr"], c["stream"])),
    ("memcpy_h2d", lambda rt, c: rt.memcpy_h2d(c["darr"], c["host"])),
    ("memcpy_d2h", lambda rt, c: rt.memcpy_d2h(c["host"], c["darr"])),
    ("launch", lambda rt, c: rt.launch(1e-6, None, c["stream"])),
    ("synchronize", lambda rt, c: rt.synchronize()),
    ("stream_synchronize", lambda rt, c: rt.stream_synchronize(c["stream"])),
    ("event_synchronize", lambda rt, c: rt.event_synchronize(c["token"])),
]


class TestUseAfterClose:
    @pytest.mark.parametrize("name,call", _API_CALLS, ids=[n for n, _ in _API_CALLS])
    def test_api_rejects_closed_runtime(self, name, call):
        rt, ctx = _closed_runtime()
        with pytest.raises(InvalidValueError):
            call(rt, ctx)

    def test_closed_property(self):
        rt, _ = _closed_runtime()
        assert rt.closed

    def test_reading_clocks_still_allowed(self):
        # introspection of a closed runtime is harmless and allowed
        rt, _ = _closed_runtime()
        assert rt.elapsed >= 0.0
        assert rt.memory_peak > 0
        assert len(rt.timeline()) > 0


class TestCloseSemantics:
    def test_close_is_idempotent(self):
        rt = Runtime(NVIDIA_K40M)
        rt.close()
        rt.close()  # second close is a no-op, not an error
        assert rt.closed

    def test_close_releases_all_memory(self):
        rt = Runtime(NVIDIA_K40M)
        rt.malloc((1024,), np.float64)
        rt.malloc((2048,), np.float32)
        rt.close()
        assert rt.device.memory.used == rt.profile.context_overhead_bytes

    def test_close_drains_pending_work(self):
        rt = Runtime(NVIDIA_K40M)
        d = rt.malloc((256,), np.float32)
        src = np.ones(256, dtype=np.float32)
        s = rt.create_stream()
        cmd = rt.memcpy_h2d_async(d, src, s)
        rt.close()
        assert cmd.done  # teardown waited for in-flight commands

    def test_context_manager_closes_on_success(self):
        with Runtime(NVIDIA_K40M) as rt:
            rt.malloc((16,), np.float32)
        assert rt.closed

    def test_context_manager_closes_after_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with Runtime(NVIDIA_K40M) as rt:
                rt.malloc((16,), np.float32)
                raise RuntimeError("boom")
        assert rt.closed
        assert rt.device.memory.used == rt.profile.context_overhead_bytes

    def test_entering_closed_runtime_rejected(self):
        rt = Runtime(NVIDIA_K40M)
        rt.close()
        with pytest.raises(InvalidValueError):
            with rt:
                pass  # pragma: no cover
