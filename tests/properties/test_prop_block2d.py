"""Property tests: 2-D block regions under random geometry."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.core.block2d import Block2DRegion, TileKernel
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit


class OffsetStamp(TileKernel):
    """OUT[r, c] = IN[r, c] + r * 1000 + c, via the tile offsets.

    The only way to compute this correctly from a tile view is to use
    the carried (row_offset, col_offset), so any slot-mapping mistake
    shows up as a wrong answer.
    """

    name = "stamp"

    def cost(self, profile, rows, cols):
        return rows * cols * 1e-9

    def run(self, ins, outs):
        v = ins["IN"]
        o = outs["OUT"]
        rr = np.arange(v.data.shape[0])[:, None] + v.row_offset
        cc = np.arange(v.data.shape[1])[None, :] + v.col_offset
        o.data[...] = v.data + rr * 1000 + cc


@stn.composite
def geometries(draw):
    rows = draw(stn.integers(1, 60))
    cols = draw(stn.integers(1, 60))
    trows = draw(stn.integers(1, rows))
    tcols = draw(stn.integers(1, cols))
    streams = draw(stn.integers(1, 4))
    return rows, cols, trows, tcols, streams


@given(geometries())
@settings(max_examples=60, deadline=None)
def test_any_geometry_matches_reference(geom):
    rows, cols, trows, tcols, streams = geom
    rng = np.random.default_rng(rows * 100 + cols)
    a = rng.random((rows, cols))
    out = np.zeros_like(a)
    region = Block2DRegion((rows, cols), (trows, tcols), streams)
    res = region.run(Runtime(NVIDIA_K40M), {"IN": a}, {"OUT": out}, OffsetStamp())
    audit(res.timeline)
    expect = a + np.arange(rows)[:, None] * 1000 + np.arange(cols)[None, :]
    assert np.allclose(out, expect)
    gr, gc = region.grid
    assert res.nchunks == gr * gc


@given(geometries())
@settings(max_examples=40, deadline=None)
def test_transfer_volume_is_exact(geom):
    """Every element moves exactly once in and once out."""
    rows, cols, trows, tcols, streams = geom
    a = np.zeros((rows, cols))
    region = Block2DRegion((rows, cols), (trows, tcols), streams)
    res = region.run(
        Runtime(NVIDIA_K40M), {"IN": a}, {"OUT": np.zeros_like(a)}, OffsetStamp()
    )
    assert sum(r.nbytes for r in res.timeline.by_kind("h2d")) == a.nbytes
    assert sum(r.nbytes for r in res.timeline.by_kind("d2h")) == a.nbytes


@given(geometries())
@settings(max_examples=40, deadline=None)
def test_memory_bounded_by_slot_buffers(geom):
    rows, cols, trows, tcols, streams = geom
    a = np.zeros((rows, cols))
    region = Block2DRegion((rows, cols), (trows, tcols), streams)
    res = region.run(
        Runtime(NVIDIA_K40M), {"IN": a}, {"OUT": np.zeros_like(a)}, OffsetStamp()
    )
    budget = region.buffer_bytes({"IN": a.dtype, "OUT": a.dtype})
    assert res.data_peak <= budget + 2 * 256  # alignment slack
