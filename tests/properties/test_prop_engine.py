"""Property tests: the discrete-event core under random workloads.

For arbitrary command DAGs (random engines, streams, durations, host
enqueue times, and cross-stream event edges) the simulator must:

* retire every command (no lost work, no spurious deadlock),
* produce a timeline that passes the structural audit (exclusive
  engines, in-order streams, no start-before-enqueue),
* execute payloads in an order consistent with every declared edge,
* replay the exact same payload order when the same DAG is driven
  twice (virtual-time determinism, with or without object recycling),
* and — for the PR-8 free lists — never hand a pooled ``Command`` or
  ``EventToken`` back out while any live simulator still holds it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.sim import Device, NVIDIA_K40M
from repro.sim.engine import (
    _COMMAND_POOL,
    _TOKEN_POOL,
    Command,
    EventToken,
    Simulator,
)
from repro.sim.stream import SimStream
from repro.sim.trace import audit


@stn.composite
def workloads(draw):
    n_engines = draw(stn.integers(1, 3))
    n_streams = draw(stn.integers(1, 4))
    n_cmds = draw(stn.integers(1, 30))
    cmds = []
    for i in range(n_cmds):
        cmds.append(
            dict(
                engine=draw(stn.integers(0, n_engines - 1)),
                stream=draw(stn.one_of(stn.none(), stn.integers(0, n_streams - 1))),
                duration=draw(
                    stn.floats(0, 1e-3, allow_nan=False, allow_infinity=False)
                ),
                enqueue=draw(stn.floats(0, 1e-3, allow_nan=False, allow_infinity=False)),
                waits=sorted(
                    draw(
                        stn.sets(stn.integers(0, i - 1), max_size=min(3, i))
                    )
                )
                if i
                else [],
            )
        )
    return n_engines, n_streams, cmds


@given(workloads())
@settings(max_examples=120, deadline=None)
def test_random_dags_complete_and_audit(wl):
    n_engines, n_streams, specs = wl
    sim = Simulator()
    for e in range(n_engines):
        sim.add_engine(f"e{e}")
    streams = [SimStream(f"s{i}") for i in range(n_streams)]
    order = []
    tokens = {}
    cmds = []
    for i, spec in enumerate(specs):
        tok = EventToken(f"t{i}")
        cmd = Command(
            "kernel",
            f"e{spec['engine']}",
            spec["duration"],
            stream=streams[spec["stream"]] if spec["stream"] is not None else None,
            payload=(lambda i=i: order.append(i)),
            label=f"c{i}",
        )
        sim.enqueue(
            cmd,
            enqueue_time=spec["enqueue"],
            waits=[tokens[j] for j in spec["waits"]],
            records=[tok],
        )
        tokens[i] = tok
        cmds.append(cmd)
    sim.run_all()

    # 1. everything retired, payloads ran exactly once
    assert all(c.done for c in cmds)
    assert sorted(order) == list(range(len(specs)))

    # 2. payload order respects every event edge
    pos = {i: p for p, i in enumerate(order)}
    for i, spec in enumerate(specs):
        for j in spec["waits"]:
            assert pos[j] < pos[i], f"edge {j}->{i} violated"

    # 3. structural audit on the resulting timeline
    recs = []
    from repro.sim.trace import Timeline, TimelineRecord

    for c in sim.completed:
        recs.append(
            TimelineRecord(
                c.kind,
                c.label,
                c.stream.name if c.stream is not None else "",
                c.engine,
                c.enqueue_time,
                c.start_time,
                c.finish_time,
                c.nbytes,
            )
        )
    audit(Timeline(recs))

    # 4. event completion times match their recording command
    for i, c in enumerate(cmds):
        assert tokens[i].time == c.finish_time


@given(
    durations=stn.lists(
        stn.floats(1e-6, 1e-3, allow_nan=False), min_size=1, max_size=20
    )
)
@settings(max_examples=60, deadline=None)
def test_single_engine_makespan_is_sum(durations):
    """With one engine and no gaps, makespan equals total work."""
    sim = Simulator()
    sim.add_engine("e")
    for d in durations:
        sim.enqueue(Command("kernel", "e", d))
    t = sim.run_all()
    assert abs(t - sum(durations)) < 1e-9


@given(
    durations=stn.lists(stn.floats(1e-6, 1e-3, allow_nan=False), min_size=2, max_size=16),
    n_engines=stn.integers(2, 4),
)
@settings(max_examples=60, deadline=None)
def test_more_engines_never_slower(durations, n_engines):
    def makespan(k):
        sim = Simulator()
        for e in range(k):
            sim.add_engine(f"e{e}")
        for i, d in enumerate(durations):
            sim.enqueue(Command("kernel", f"e{i % k}", d))
        return sim.run_all()

    assert makespan(n_engines) <= makespan(1) + 1e-12


def _drive(specs, n_engines, n_streams, *, acquire=False):
    """Run one spec list; returns (sim, cmds, tokens, payload order)."""
    sim = Simulator()
    for e in range(n_engines):
        sim.add_engine(f"e{e}")
    streams = [SimStream(f"s{i}") for i in range(n_streams)]
    new_cmd = Command.acquire if acquire else Command
    new_tok = EventToken.acquire if acquire else EventToken
    order = []
    tokens = {}
    cmds = []
    for i, spec in enumerate(specs):
        tok = new_tok(f"t{i}")
        cmd = new_cmd(
            "kernel",
            f"e{spec['engine']}",
            spec["duration"],
            stream=streams[spec["stream"]] if spec["stream"] is not None else None,
            payload=(lambda i=i: order.append(i)),
            label=f"c{i}",
        )
        sim.enqueue(
            cmd,
            enqueue_time=spec["enqueue"],
            waits=[tokens[j] for j in spec["waits"]],
            records=[tok],
        )
        tokens[i] = tok
        cmds.append(cmd)
    sim.run_all()
    return sim, cmds, tokens, order


@given(workloads(), stn.booleans())
@settings(max_examples=60, deadline=None)
def test_payload_order_deterministic_across_runs(wl, recycle):
    """The same DAG driven twice retires payloads in the same order.

    With ``recycle=True`` the second run is built entirely from objects
    the first run released to the free lists — reuse must be invisible
    to the schedule.
    """
    n_engines, n_streams, specs = wl
    sim1, _, _, first = _drive(specs, n_engines, n_streams, acquire=recycle)
    if recycle:
        sim1.recycle_completed()
    _, _, _, second = _drive(specs, n_engines, n_streams, acquire=recycle)
    assert first == second


@given(workloads(), workloads())
@settings(max_examples=40, deadline=None)
def test_recycling_never_aliases_live_objects(wl_live, wl_freed):
    """A recycled object is never one a live simulator still holds.

    Workload A runs and keeps its retired commands/tokens alive (no
    recycle — the serve path's steady state while a trace is pending).
    Workload B runs pool-allocated and recycles.  Nothing B released
    may be identical to anything A still references, the free lists
    must hold no duplicates, and a fresh acquire burst must hand out
    pairwise-distinct objects that are none of A's.
    """
    sim_a, cmds_a, toks_a, _ = _drive(*_split(wl_live))
    live = {id(c) for c in cmds_a} | {id(t) for t in toks_a.values()}
    live |= {id(c) for c in sim_a.completed}

    sim_b, _, _, _ = _drive(*_split(wl_freed), acquire=True)
    sim_b.recycle_completed()

    pool_cmd_ids = [id(c) for c in _COMMAND_POOL]
    pool_tok_ids = [id(t) for t in _TOKEN_POOL]
    assert len(set(pool_cmd_ids)) == len(pool_cmd_ids)
    assert len(set(pool_tok_ids)) == len(pool_tok_ids)
    assert not (set(pool_cmd_ids) | set(pool_tok_ids)) & live

    burst = [Command.acquire("kernel", "e0", 0.0) for _ in range(8)]
    burst += [EventToken.acquire("t") for _ in range(8)]
    burst_ids = [id(x) for x in burst]
    assert len(set(burst_ids)) == len(burst_ids)
    assert not set(burst_ids) & live
    for x in burst:
        x.release()


def _split(wl):
    n_engines, n_streams, specs = wl
    return specs, n_engines, n_streams


@given(nbytes=stn.integers(0, 10**9))
@settings(max_examples=50, deadline=None)
def test_device_copy_duration_monotone_in_size(nbytes):
    d1 = Device(NVIDIA_K40M)
    a = d1.submit_copy("h2d", nbytes)
    b = d1.submit_copy("h2d", nbytes + 4096)
    d1.wait_all()
    assert b.duration >= a.duration
