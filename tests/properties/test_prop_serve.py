"""Property tests of the multi-tenant scheduler's invariants.

Three guarantees the serving layer makes, fuzzed over workload mixes,
budgets, and fairness knobs:

* **Admission**: a device's peak *data* bytes never exceed its budget,
  no matter which requests fail or in what order regions retire.
* **Starvation bound**: a request is overtaken at most
  ``aging_every * (max_priority + 1)`` times — once aging lifts its
  effective priority to the cap, younger fitting requests can no
  longer be picked ahead of it.
* **Cache-key safety**: the structural plan key is stable for equal
  requests and distinct whenever the pipeline geometry, shapes, or
  limits differ — a cache hit can never smuggle one region's tuned
  parameters into an incompatible region.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.serve import (
    DevicePool,
    PlanCache,
    RegionScheduler,
    ServeConfig,
    build_request,
    random_workload,
)

MB = 1_000_000


def _serve(requests, *, budget, config=None):
    pool = DevicePool("k40m", budget_bytes=budget)
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    return sched.run(), pool


# ----------------------------------------------------------------------
# admission: data peak <= budget
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    seed=stn.integers(0, 10_000),
    n=stn.integers(1, 5),
    budget_mb=stn.sampled_from([1, 2, 4, 64]),
    serial=stn.booleans(),
)
def test_device_data_peak_never_exceeds_budget(seed, n, budget_mb, serial):
    config = ServeConfig(max_active=1) if serial else None
    report, pool = _serve(
        random_workload(seed=seed, n=n),
        budget=budget_mb * MB,
        config=config,
    )
    for peak, budget in zip(report.device_peaks, report.budgets):
        assert peak <= budget
    # reservations fully released at the end
    assert pool.reserved == [0]
    # every request is accounted for exactly once
    assert sorted(r.request_id for r in report.results) == list(range(n))
    for r in report.results:
        assert r.status in ("ok", "failed")
        if r.status == "failed":
            assert r.error


# ----------------------------------------------------------------------
# fairness: the aging bound
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=stn.integers(0, 10_000),
    n=stn.integers(2, 6),
    aging_every=stn.integers(1, 3),
    max_priority=stn.integers(1, 4),
)
def test_no_request_overtaken_beyond_aging_bound(seed, n, aging_every, max_priority):
    config = ServeConfig(
        max_active=1, aging_every=aging_every, max_priority=max_priority
    )
    report, _ = _serve(
        random_workload(seed=seed, n=n), budget=64 * MB, config=config
    )
    bound = aging_every * (max_priority + 1)
    for r in report.results:
        assert r.overtaken <= bound, (
            f"request {r.request_id} (priority {r.priority}) overtaken "
            f"{r.overtaken} times; aging bound is {bound}"
        )


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=stn.integers(0, 10_000), n=stn.integers(1, 4))
def test_same_seed_same_report(seed, n):
    import json

    a, _ = _serve(random_workload(seed=seed, n=n), budget=64 * MB)
    b, _ = _serve(random_workload(seed=seed, n=n), budget=64 * MB)
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------
# fault tolerance: reservations always return to zero; chaos is replayable
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    profile=stn.sampled_from(["transient", "jitter", "chaos", "failover"]),
    seed=stn.integers(0, 100),
    devices=stn.integers(1, 2),
)
def test_chaos_reservations_zero_and_report_deterministic(profile, seed, devices):
    import json

    from repro.faults import pool_fault_plans

    def once():
        pool = DevicePool("k40m", count=devices, budget_bytes=64 * MB)
        pool.install_faults(pool_fault_plans(profile, seed=seed, count=devices))
        sched = RegionScheduler(pool)
        sched.submit_all(random_workload(seed=seed, n=3))
        report = sched.run()
        # every reservation handed back no matter how the run ended
        assert pool.reserved == [0] * devices
        pool.close()
        return report

    a, b = once(), once()
    # every request accounted for exactly once, with a legal status
    assert sorted(r.request_id for r in a.results) == [0, 1, 2]
    for r in a.results:
        assert r.status in ("ok", "failed", "shed", "cancelled")
    # same seed, same chaos -> byte-identical report
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------
# durability: a host crash at any journal index is survivable
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    seed=stn.integers(0, 10_000),
    n=stn.integers(1, 3),
    devices=stn.integers(1, 2),
    frac=stn.floats(0.0, 1.0),
)
def test_crash_resume_is_byte_identical_and_leak_free(seed, n, devices, frac):
    """Crash after record k, resume ⇒ the uninterrupted run, exactly.

    ``frac`` sweeps k over the whole journal (k=1 crashes during
    scheduler construction, k=total during run-end bookkeeping); the
    resumed report must be byte-identical and the pool fully drained.
    """
    import json
    import os
    import shutil
    import tempfile

    from repro.faults import HostCrashError

    tmp = tempfile.mkdtemp(prefix="repro-journal-")
    try:
        path = os.path.join(tmp, "serve.journal")

        def once(crash):
            pool = DevicePool("k40m", count=devices, virtual=True)
            config = ServeConfig(
                journal_path=path, snapshot_every=8, crash_after_events=crash
            )
            try:
                sched = RegionScheduler(pool, config)
                sched.submit_all(random_workload(seed=seed, n=n))
                return sched.run()
            finally:
                pool.close()

        base = once(None)
        total = base.journal["records"]
        k = min(total, 1 + int(frac * (total - 1)))
        try:
            once(k)
            raise AssertionError(f"crash at k={k} never fired")
        except HostCrashError:
            pass
        pool = DevicePool("k40m", count=devices, virtual=True)
        sched = RegionScheduler.resume(
            path, pool, random_workload(seed=seed, n=n),
            config=ServeConfig(snapshot_every=8),
        )
        report = sched.run()
        # zero reservation leaks across the crash/resume boundary
        assert pool.reserved == [0] * devices
        pool.close()
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            base.to_dict(), sort_keys=True
        )
        assert report.journal["replayed"] == k
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# cache-key safety
# ----------------------------------------------------------------------
_GEOM = stn.fixed_dictionaries({
    "nz": stn.sampled_from([10, 14, 18]),
    "ny": stn.sampled_from([16, 32]),
    "nx": stn.sampled_from([16, 32]),
    "chunk_size": stn.sampled_from([1, 2]),
    "num_streams": stn.sampled_from([2, 3]),
})


@settings(max_examples=20, deadline=None)
@given(a=_GEOM, b=_GEOM, limit=stn.sampled_from([MB, 2 * MB]))
def test_cache_key_equal_iff_geometry_equal(a, b, limit):
    ra = build_request("stencil", config=a)
    rb = build_request("stencil", config=b)
    ka = PlanCache.key_for(ra.region.bind(ra.arrays), ra.kernel, "k40m", limit)
    kb = PlanCache.key_for(rb.region.bind(rb.arrays), rb.kernel, "k40m", limit)
    if a == b:
        assert ka == kb
    else:
        assert ka != kb


@settings(max_examples=20, deadline=None)
@given(
    geom=_GEOM,
    limit_a=stn.sampled_from([MB, 2 * MB, 4 * MB]),
    limit_b=stn.sampled_from([MB, 2 * MB, 4 * MB]),
)
def test_cache_never_serves_across_limits(geom, limit_a, limit_b):
    req = build_request("stencil", config=geom)
    plan = req.region.bind(req.arrays)
    cache = PlanCache()
    ka = PlanCache.key_for(plan, req.kernel, "k40m", limit_a)
    kb = PlanCache.key_for(plan, req.kernel, "k40m", limit_b)
    cache.put(ka, 7, 3)
    if limit_a == limit_b:
        assert cache.get(kb) == (7, 3)
    else:
        assert cache.get(kb) is None
