"""Property tests: the device memory allocator never corrupts its arena."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as stn
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sim.memory import MemoryAllocator, OutOfDeviceMemory

CAP = 1 << 18


class AllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free interleavings with invariant checks."""

    def __init__(self):
        super().__init__()
        self.m = MemoryAllocator(capacity=CAP, context_overhead=4096)
        self.live = []

    @rule(size=stn.integers(min_value=1, max_value=CAP // 4))
    def allocate(self, size):
        try:
            self.live.append(self.m.allocate(size))
        except OutOfDeviceMemory:
            pass

    @precondition(lambda self: self.live)
    @rule(data=stn.data())
    def free(self, data):
        idx = data.draw(stn.integers(0, len(self.live) - 1))
        self.m.release(self.live.pop(idx))

    @invariant()
    def arena_consistent(self):
        self.m.check_invariants()

    @invariant()
    def peak_dominates_used(self):
        assert self.m.peak >= self.m.used

    @invariant()
    def used_within_capacity(self):
        assert self.m.used <= self.m.capacity


TestAllocatorMachine = AllocatorMachine.TestCase


@given(
    sizes=stn.lists(stn.integers(min_value=1, max_value=CAP // 8), min_size=1, max_size=30)
)
@settings(max_examples=60)
def test_alloc_all_free_all_restores_arena(sizes):
    m = MemoryAllocator(capacity=CAP)
    recs = []
    for s in sizes:
        try:
            recs.append(m.allocate(s))
        except OutOfDeviceMemory:
            break
    for r in recs:
        m.release(r)
    assert m.used == 0
    assert m.free == CAP
    # the whole arena is allocatable again (perfect coalescing)
    m.allocate(CAP)


@given(
    sizes=stn.lists(stn.integers(min_value=1, max_value=CAP // 4), min_size=2, max_size=20),
    seed=stn.integers(0, 2**31),
)
@settings(max_examples=60)
def test_allocations_never_overlap(sizes, seed):
    m = MemoryAllocator(capacity=CAP)
    spans = []
    for s in sizes:
        try:
            r = m.allocate(s)
        except OutOfDeviceMemory:
            continue
        for a, b in spans:
            assert r.address + r.nbytes <= a or r.address >= b
        spans.append((r.address, r.address + r.nbytes))
