"""Property tests: ring-buffer geometry and data movement."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.core.ringbuffer import DeviceRing
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M


def make_ring(capacity, split_dim=0, shape=(256, 4)):
    rt = Runtime(NVIDIA_K40M)
    return DeviceRing(rt, shape, split_dim, capacity, np.float32)


@given(cap=stn.integers(1, 40), lo=stn.integers(0, 500), width=stn.integers(0, 40))
def test_pieces_partition_the_range(cap, lo, width):
    width = min(width, cap)
    r = make_ring(cap)
    ps = r.pieces(lo, lo + width)
    covered = [g for p in ps for g in range(p.g_lo, p.g_hi)]
    assert covered == list(range(lo, lo + width))
    # each piece must be contiguous inside the buffer
    for p in ps:
        assert p.pos == p.g_lo % cap
        assert p.pos + p.extent <= cap
    # at most one wrap
    assert len(ps) <= 2


@given(
    cap=stn.integers(2, 24),
    writes=stn.lists(
        stn.tuples(stn.integers(0, 200), stn.integers(1, 12)), min_size=1, max_size=12
    ),
)
@settings(max_examples=80)
def test_scatter_then_gather_returns_last_write(cap, writes):
    """Gathering a range immediately after scattering it returns the
    written block regardless of wrap position and history."""
    r = make_ring(cap, shape=(1024, 3))
    rng = np.random.default_rng(0)
    for lo, width in writes:
        width = min(width, cap)
        block = rng.random((width, 3)).astype(np.float32)
        r.scatter(block, lo, lo + width)
        assert np.array_equal(r.gather(lo, lo + width), block)


@given(cap=stn.integers(2, 16), lo=stn.integers(0, 100), width=stn.integers(1, 16))
def test_disjoint_mod_ranges_do_not_clobber(cap, lo, width):
    """Two ranges whose ring images are disjoint coexist."""
    width = min(width, cap // 2) or 1
    r = make_ring(cap, shape=(1024, 2))
    rng = np.random.default_rng(1)
    a = rng.random((width, 2)).astype(np.float32)
    # second range exactly `width` positions later in ring space
    b_lo = lo + width
    b_width = min(width, cap - width)
    if b_width < 1:
        return
    b = rng.random((b_width, 2)).astype(np.float32)
    r.scatter(a, lo, lo + width)
    r.scatter(b, b_lo, b_lo + b_width)
    assert np.array_equal(r.gather(lo, lo + width), a)
    assert np.array_equal(r.gather(b_lo, b_lo + b_width), b)


@given(split_dim=stn.integers(0, 2), cap=stn.integers(2, 10))
def test_inner_dim_rings_roundtrip(split_dim, cap):
    shape = [6, 7, 8]
    shape[split_dim] = 64
    r = make_ring(cap, split_dim=split_dim, shape=tuple(shape))
    rng = np.random.default_rng(2)
    width = min(3, cap)
    block_shape = list(shape)
    block_shape[split_dim] = width
    block = rng.random(block_shape).astype(np.float32)
    r.scatter(block, 10, 10 + width)
    assert np.array_equal(r.gather(10, 10 + width), block)


@given(cap=stn.integers(1, 32))
def test_nbytes_matches_allocation(cap):
    r = make_ring(cap, shape=(128, 6))
    assert r.nbytes == cap * 6 * 4
    assert r.darr.shape == (cap, 6)
