"""Property tests of the SLO/error-budget engine's invariants.

Fuzzed over arbitrary outcome streams (timestamps, good/bad mixes,
targets, latency thresholds):

* **Bounds**: every window's compliance is in ``[0, 1]`` and its burn
  rate is non-negative (finite — saturation is capped, never inf/nan).
* **Budget monotonicity**: the cumulative error budget never goes back
  up — spent budget stays spent, whatever the traffic pattern.
* **Conservation**: window good/bad cells sum exactly to the outcomes
  fed in, and the whole-run digest agrees with the window series.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.obs.telemetry import BURN_SATURATED, SLO, SLOTracker

#: one fuzzed outcome: (window-ish timestamp, completed ok, latency)
_outcomes = stn.lists(
    stn.tuples(
        stn.floats(min_value=0.0, max_value=20.0,
                   allow_nan=False, allow_infinity=False),
        stn.booleans(),
        stn.floats(min_value=0.0, max_value=2.0,
                   allow_nan=False, allow_infinity=False),
    ),
    max_size=40,
)

_slo = stn.builds(
    SLO,
    target=stn.one_of(
        stn.just(1.0),
        stn.floats(min_value=0.5, max_value=0.9999),
    ),
    latency_s=stn.one_of(
        stn.none(), stn.floats(min_value=0.01, max_value=1.0)
    ),
)


def _track(slo, outcomes, extra_submits):
    tr = SLOTracker({"t": slo}, window=1.0)
    for _ in range(len(outcomes) + extra_submits):
        tr.submit("t", 0.0)
    for t, ok, lat in outcomes:
        tr.observe("t", t, ok=ok, latency_s=lat)
    return tr


@settings(max_examples=60, deadline=None)
@given(slo=_slo, outcomes=_outcomes, extra=stn.integers(0, 5))
def test_compliance_and_burn_stay_bounded(slo, outcomes, extra):
    tr = _track(slo, outcomes, extra)
    for w in tr.windows(tr.max_index + 2)["t"]:
        assert 0.0 <= w["compliance"] <= 1.0
        assert 0.0 <= w["burn"] <= BURN_SATURATED
        assert math.isfinite(w["burn"])
        assert 0.0 <= w["budget"] <= 1.0


@settings(max_examples=60, deadline=None)
@given(slo=_slo, outcomes=_outcomes, extra=stn.integers(0, 5))
def test_budget_is_monotone_non_increasing(slo, outcomes, extra):
    tr = _track(slo, outcomes, extra)
    series = tr.windows(tr.max_index + 2)["t"]
    budgets = [w["budget"] for w in series]
    assert all(a >= b for a, b in zip(budgets, budgets[1:]))
    # idle tail windows never move the budget
    longer = tr.windows(tr.max_index + 6)["t"]
    assert longer[-1]["budget"] == budgets[-1]


@settings(max_examples=60, deadline=None)
@given(slo=_slo, outcomes=_outcomes, extra=stn.integers(0, 5))
def test_windows_conserve_outcomes_and_digest_agrees(slo, outcomes, extra):
    tr = _track(slo, outcomes, extra)
    n = tr.max_index + 1 if tr.max_index >= 0 else 1
    series = tr.windows(n)["t"]
    assert sum(w["total"] for w in series) == len(outcomes)
    rep = tr.report(n)["t"]
    assert rep["good"] == sum(w["good"] for w in series)
    assert rep["bad"] == sum(w["bad"] for w in series)
    assert rep["submitted"] == len(outcomes) + extra
    assert rep["budget"] == series[-1]["budget"]
    assert rep["breaches"] <= sum(1 for w in series if w["total"])
