"""End-to-end property tests of the pipeline runtime.

For random loop sizes, chunk sizes, stream counts, halo widths,
schedules, and halo modes, every execution model must produce the exact
reference output, move exactly the right number of bytes, and leave a
structurally valid timeline with memory inside the plan's own estimate.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.core import RegionKernel, TargetRegion
from repro.core.kernel import ChunkView
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M
from repro.sim.trace import audit


class HaloSumKernel(RegionKernel):
    """out[k] = sum of in[k-h .. k+h] rows — halo width is a parameter."""

    name = "halosum"
    index_penalty = 0.0

    def __init__(self, halo: int) -> None:
        self.halo = halo

    def cost(self, profile, t0, t1):
        return (t1 - t0) * 1e-6

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        h = self.halo
        src = views["IN"].take(t0 - h, t1 + h)
        dst = views["OUT"].take(t0, t1)
        width = 2 * h + 1
        acc = np.zeros_like(dst)
        for off in range(width):
            acc += src[off : off + dst.shape[0]]
        dst[...] = acc


def reference(a: np.ndarray, halo: int) -> np.ndarray:
    n = a.shape[0]
    out = np.zeros_like(a)
    for k in range(halo, n - halo):
        out[k] = a[k - halo : k + halo + 1].sum(axis=0)
    return out


@stn.composite
def pipeline_cases(draw):
    halo = draw(stn.integers(0, 3))
    n = draw(stn.integers(2 * halo + 2, 60))
    cs = draw(stn.integers(1, 12))
    ns = draw(stn.integers(1, 6))
    model = draw(stn.sampled_from(["naive", "pipelined", "pipelined-buffer"]))
    halo_mode = draw(stn.sampled_from(["dedup", "duplicate"]))
    schedule = draw(stn.sampled_from(["static", "adaptive"]))
    return halo, n, cs, ns, model, halo_mode, schedule


@given(pipeline_cases())
@settings(max_examples=100, deadline=None)
def test_every_configuration_matches_reference(case):
    halo, n, cs, ns, model, halo_mode, schedule = case
    region = TargetRegion.parse(
        f"pipeline({schedule}[{cs},{ns}]) "
        f"pipeline_map(to: IN[k-{halo}:{2 * halo + 1}][0:4]) "
        f"pipeline_map(from: OUT[k:1][0:4])",
        loop=Loop("k", halo, n - halo),
        halo_mode=halo_mode,
    )
    rng = np.random.default_rng(n * 31 + cs)
    a = rng.integers(0, 100, size=(n, 4)).astype(np.float64)
    arrays = {"IN": a, "OUT": np.zeros_like(a)}
    kernel = HaloSumKernel(halo)
    rt = Runtime(NVIDIA_K40M)
    res = region.run(rt, arrays, kernel, model=model)

    audit(res.timeline)
    assert np.array_equal(arrays["OUT"], reference(a, halo))
    # memory accounting: the device saw no more than plan + context
    if model == "pipelined-buffer":
        plan = region.plan_for(Runtime(NVIDIA_K40M), arrays)
        # allocator rounds each allocation up to its 256 B alignment
        slack = 256 * (len(plan.specs) + len(plan.residents))
        assert res.data_peak <= plan.device_bytes() + slack
    # every command retired inside the measured window
    assert res.elapsed > 0


@given(pipeline_cases())
@settings(max_examples=60, deadline=None)
def test_dedup_transfer_volume_is_exact(case):
    """In dedup mode the runtime moves each needed input plane exactly
    once and each output plane exactly once."""
    halo, n, cs, ns, _, _, schedule = case
    region = TargetRegion.parse(
        f"pipeline({schedule}[{cs},{ns}]) "
        f"pipeline_map(to: IN[k-{halo}:{2 * halo + 1}][0:4]) "
        f"pipeline_map(from: OUT[k:1][0:4])",
        loop=Loop("k", halo, n - halo),
        halo_mode="dedup",
    )
    a = np.zeros((n, 4))
    arrays = {"IN": a, "OUT": np.zeros_like(a)}
    rt = Runtime(NVIDIA_K40M)
    res = region.run(rt, arrays, HaloSumKernel(halo))
    row = 4 * 8
    h2d = sum(r.nbytes for r in res.timeline.by_kind("h2d"))
    d2h = sum(r.nbytes for r in res.timeline.by_kind("d2h"))
    # inputs: the loop's full dependency range, once
    assert h2d == n * row
    # outputs: one plane per iteration
    assert d2h == (n - 2 * halo) * row


@given(
    n=stn.integers(8, 48),
    cs=stn.integers(1, 8),
    ns=stn.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_models_agree_with_each_other(n, cs, ns):
    """All three models are interchangeable in observable output."""
    outs = {}
    rng = np.random.default_rng(99)
    a = rng.random((n, 4))
    for model in ("naive", "pipelined", "pipelined-buffer"):
        region = TargetRegion.parse(
            f"pipeline(static[{cs},{ns}]) "
            "pipeline_map(to: IN[k-1:3][0:4]) "
            "pipeline_map(from: OUT[k:1][0:4])",
            loop=Loop("k", 1, n - 1),
        )
        arrays = {"IN": a.copy(), "OUT": np.zeros_like(a)}
        region.run(Runtime(NVIDIA_K40M), arrays, HaloSumKernel(1), model=model)
        outs[model] = arrays["OUT"]
    assert np.array_equal(outs["naive"], outs["pipelined"])
    assert np.array_equal(outs["naive"], outs["pipelined-buffer"])
