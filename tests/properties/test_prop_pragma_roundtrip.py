"""Property tests: pragma text <-> clause objects round-trip.

For random (valid) clause objects, ``format_pragma`` must produce text
that ``parse_pragma`` turns back into equal clauses; and for parsed
text, formatting and re-parsing must be a fixed point.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.directives.clauses import (
    Affine,
    DirectiveError,
    Loop,
    MapClause,
    MemLimitClause,
    PipelineClause,
    PipelineMapClause,
)
from repro.directives.format import format_clause, format_pragma
from repro.directives.parser import ParsedPragma, parse_pragma

import pytest

LOOP = Loop("k", 0, 64)

names = stn.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s != LOOP.var
)


@stn.composite
def pipeline_clauses(draw):
    return PipelineClause(
        schedule=draw(stn.sampled_from(["static", "adaptive"])),
        chunk_size=draw(stn.integers(1, 64)),
        num_streams=draw(stn.integers(1, 16)),
    )


@stn.composite
def map_clauses(draw, used):
    var = draw(names.filter(lambda v: v not in used))
    used.add(var)
    ndim = draw(stn.integers(1, 4))
    split_dim = draw(stn.integers(0, ndim - 1))
    dims = []
    for i in range(ndim):
        if i == split_dim:
            dims.append((0, -1))
        else:
            dims.append(
                (draw(stn.integers(0, 8)), draw(stn.integers(1, 512)))
            )
    return PipelineMapClause(
        direction=draw(stn.sampled_from(["to", "from", "tofrom"])),
        var=var,
        split_dim=split_dim,
        split_iter=Affine(draw(stn.integers(1, 64)), draw(stn.integers(-32, 32))),
        size=draw(stn.integers(1, 64)),
        dims=tuple(dims),
    )


@stn.composite
def pragmas(draw):
    used: set = set()
    pmaps = [draw(map_clauses(used)) for _ in range(draw(stn.integers(1, 4)))]
    maps = [
        MapClause(draw(stn.sampled_from(["to", "from", "tofrom", "alloc"])),
                  draw(names.filter(lambda v: v not in used or used.add(v))))
        for _ in range(draw(stn.integers(0, 2)))
    ]
    # ensure resident vars unique vs pipelined vars
    maps = [m for m in maps if m.var not in {p.var for p in pmaps}]
    seen = set()
    maps = [m for m in maps if not (m.var in seen or seen.add(m.var))]
    limit = draw(stn.one_of(stn.none(), stn.integers(1, 10**12)))
    return ParsedPragma(
        pipeline=draw(pipeline_clauses()),
        pipeline_maps=pmaps,
        maps=maps,
        mem_limit=MemLimitClause(limit) if limit else None,
    )


@given(pragmas())
@settings(max_examples=150)
def test_format_parse_roundtrip(parsed):
    text = format_pragma(parsed, loop_var=LOOP.var)
    back = parse_pragma(text, LOOP)
    assert back.pipeline == parsed.pipeline
    assert back.maps == parsed.maps
    assert (back.mem_limit is None) == (parsed.mem_limit is None)
    if parsed.mem_limit:
        assert back.mem_limit.limit_bytes == parsed.mem_limit.limit_bytes
    assert len(back.pipeline_maps) == len(parsed.pipeline_maps)
    for a, b in zip(parsed.pipeline_maps, back.pipeline_maps):
        assert (a.var, a.direction, a.split_dim) == (b.var, b.direction, b.split_dim)
        assert a.split_iter == b.split_iter
        assert a.size == b.size
        assert a.dims == b.dims


@given(pragmas())
@settings(max_examples=60)
def test_format_is_fixed_point(parsed):
    text1 = format_pragma(parsed, loop_var=LOOP.var)
    text2 = format_pragma(parse_pragma(text1, LOOP), loop_var=LOOP.var)
    assert text1 == text2


def test_dep_fn_clause_has_no_text_form():
    c = PipelineMapClause(
        direction="to", var="A", split_dim=0, split_iter=Affine(1, 0),
        size=1, dims=((0, 8),), dep_fn=lambda k: (k, k + 1),
    )
    with pytest.raises(DirectiveError):
        format_clause(c)


def test_format_clause_rejects_non_clause():
    with pytest.raises(DirectiveError):
        format_clause(42)
