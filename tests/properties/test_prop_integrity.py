"""Property test: verification-on serving is byte-exact under silent chaos.

For *any* silent-chaos profile (sdc / straggler) x seed x pool size x
sharding, a served run with verification on (checksum + straggler
watchdog) must deliver outputs **byte-identical** to a fault-free run
of the same topology and leak zero reservations.  The companion
deterministic sweep proves the differential direction: with
verification off, the same injection machinery observably corrupts
outputs across a seed range — so the property is not vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.faults import FaultPolicy, pool_fault_plans
from repro.serve import DevicePool, RegionScheduler, ServeConfig, build_request

CONFIG = {"n": 6, "num_streams": 2}  # qcd: small, all engines exercised

#: replay budget sized for sustained 6% SDC: a replay redraws silent
#: faults for each of its commands, so a chunk can be re-corrupted on
#: the replay itself (~30% per round at chaos rates); ten rounds make
#: a run-killing streak astronomically unlikely while each individual
#: re-corruption is still detected and logged
POLICY = FaultPolicy(max_retries=10)


def _serve(*, count, shards, profile=None, seed=0, integrity="off", watchdog=False):
    req = build_request("qcd", config=dict(CONFIG), virtual=False, shards=shards)
    with DevicePool("k40m", count=count, virtual=False) as pool:
        if profile is not None:
            pool.install_faults(pool_fault_plans(profile, seed=seed, count=count))
        sched = RegionScheduler(
            pool,
            ServeConfig(
                integrity=integrity, straggler_watchdog=watchdog,
                fault_policy=POLICY,
            ),
        )
        sched.submit(req)
        report = sched.run()
        leaked = list(pool.reserved)
    return report, req.arrays["eta"].tobytes(), leaked


#: fault-free baselines per topology, built lazily (hypothesis reruns
#: examples; the clean run is deterministic so caching is sound)
_CLEAN = {}


def _clean(count, shards):
    key = (count, shards)
    if key not in _CLEAN:
        report, out, leaked = _serve(count=count, shards=shards)
        assert report.ok and leaked == [0] * count
        _CLEAN[key] = out
    return _CLEAN[key]


@stn.composite
def chaos_cases(draw):
    profile = draw(stn.sampled_from(["sdc", "straggler"]))
    seed = draw(stn.integers(0, 19))
    count = draw(stn.integers(1, 3))
    shards = draw(stn.sampled_from([1, count]))
    return profile, seed, count, shards


@given(chaos_cases())
@settings(max_examples=20, deadline=None)
def test_verification_on_is_byte_exact_and_leak_free(case):
    profile, seed, count, shards = case
    report, out, leaked = _serve(
        count=count, shards=shards, profile=profile, seed=seed,
        integrity="checksum", watchdog=True,
    )
    assert report.ok, report.summary()
    assert out == _clean(count, shards)
    assert leaked == [0] * count  # zero reservation leaks


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # flipped exponents
def test_verification_off_corruption_is_observable():
    # the differential direction: over a seed sweep, unverified sdc
    # chaos must corrupt at least one output (injection isn't a no-op)
    clean = _clean(1, 1)
    corrupted = 0
    for seed in range(8):
        report, out, leaked = _serve(
            count=1, shards=1, profile="sdc", seed=seed, integrity="off",
        )
        assert report.corruptions == 0  # silent means silent
        assert leaked == [0]
        corrupted += out != clean
    assert corrupted >= 1
