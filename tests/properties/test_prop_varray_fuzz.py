"""Property tests: VirtualArray slicing fuzzed against NumPy.

Virtual mode is only sound if virtual shape algebra is *exactly*
NumPy's — these tests fuzz random basic-indexing expressions over both
and compare shapes (and error behaviour).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as stn

from repro.sim.varray import VirtualArray


@stn.composite
def shapes(draw):
    ndim = draw(stn.integers(1, 4))
    return tuple(draw(stn.integers(1, 9)) for _ in range(ndim))


@stn.composite
def index_for(draw, shape):
    """A random basic-indexing tuple valid for `shape`."""
    parts = []
    for extent in shape:
        kind = draw(stn.sampled_from(["int", "slice", "full", "step"]))
        if kind == "int":
            parts.append(draw(stn.integers(-extent, extent - 1)))
        elif kind == "full":
            parts.append(slice(None))
        elif kind == "step":
            step = draw(stn.sampled_from([1, 2, 3, -1, -2]))
            parts.append(slice(None, None, step))
        else:
            lo = draw(stn.integers(-extent - 1, extent + 1))
            hi = draw(stn.integers(-extent - 1, extent + 1))
            parts.append(slice(lo, hi))
    # sometimes truncate (implicit trailing full slices)
    cut = draw(stn.integers(1, len(parts)))
    return tuple(parts[:cut])


@given(data=stn.data())
@settings(max_examples=200)
def test_getitem_shapes_match_numpy(data):
    shape = data.draw(shapes())
    idx = data.draw(index_for(shape))
    real = np.zeros(shape, dtype=np.float32)
    virt = VirtualArray(shape, np.float32)
    assert virt[idx].shape == real[idx].shape


@given(data=stn.data())
@settings(max_examples=100)
def test_nbytes_matches_numpy(data):
    shape = data.draw(shapes())
    idx = data.draw(index_for(shape))
    real = np.zeros(shape, dtype=np.float64)
    virt = VirtualArray(shape, np.float64)
    assert virt[idx].nbytes == real[idx].nbytes


@given(shape=shapes())
def test_out_of_range_int_index_raises_like_numpy(shape):
    real = np.zeros(shape, dtype=np.int8)
    virt = VirtualArray(shape, np.int8)
    bad = (shape[0],)  # one past the end
    with pytest.raises(IndexError):
        real[bad]
    with pytest.raises(IndexError):
        virt[bad]


@given(shape=shapes(), data=stn.data())
@settings(max_examples=60)
def test_reshape_matches_numpy(shape, data):
    import math

    size = math.prod(shape)
    # pick a random factorization of size
    divisors = [d for d in range(1, size + 1) if size % d == 0]
    a = data.draw(stn.sampled_from(divisors))
    target = (a, size // a)
    real = np.zeros(shape).reshape(target)
    virt = VirtualArray(shape, np.float64).reshape(target)
    assert virt.shape == real.shape
    wild = VirtualArray(shape, np.float64).reshape(a, -1)
    assert wild.shape == real.shape
