"""Property tests for the future-work extensions."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as stn

from repro.core.autotune import candidate_grid
from repro.core.multidevice import execute_sharded, split_loop
from repro.directives.clauses import Loop
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region


@given(
    start=stn.integers(-50, 50),
    trip=stn.integers(1, 400),
    weights=stn.lists(stn.floats(0.01, 100, allow_nan=False), min_size=1, max_size=6),
)
def test_split_loop_partitions_exactly(start, trip, weights):
    assume(trip >= len(weights))
    loop = Loop("k", start, start + trip)
    parts = split_loop(loop, weights)
    assert parts[0][0] == loop.start
    assert parts[-1][1] == loop.stop
    covered = [k for a, b in parts for k in range(a, b)]
    assert covered == list(loop.iterations())
    assert all(b > a for a, b in parts)


@given(
    trip=stn.integers(8, 400),
    w=stn.floats(0.1, 10, allow_nan=False),
)
def test_split_loop_proportionality(trip, w):
    """Two devices with weights (w, 1): shares track the ratio."""
    loop = Loop("k", 0, trip)
    (a0, b0), (a1, b1) = split_loop(loop, [w, 1.0])
    share0 = (b0 - a0) / trip
    ideal = w / (w + 1.0)
    assert abs(share0 - ideal) <= 1.0 / trip + 1e-9


@given(trip=stn.integers(1, 10_000), ms=stn.integers(1, 16))
def test_candidate_grid_valid(trip, ms):
    grid = candidate_grid(trip, max_streams=ms)
    assert grid
    for cs, ns in grid:
        assert 1 <= cs <= max(1, trip // 2) or cs == 1
        assert 1 <= ns <= ms


@stn.composite
def multi_cases(draw):
    n = draw(stn.integers(12, 48))
    n_dev = draw(stn.integers(1, 3))
    assume(n - 2 >= n_dev)
    weights = [draw(stn.floats(0.2, 5.0, allow_nan=False)) for _ in range(n_dev)]
    cs = draw(stn.integers(1, 4))
    ns = draw(stn.integers(1, 3))
    return n, weights, cs, ns


@given(multi_cases())
@settings(max_examples=40, deadline=None)
def test_sharded_always_matches_reference(case):
    """Any device count / weighting / pipeline shape computes the same
    answer: halo'd sub-loops must stitch together seamlessly, with
    halo exchange and shared-PCIe contention charged on top."""
    n, weights, cs, ns = case
    arrays = make_arrays(n)
    region = make_region(n, cs, ns)
    rts = [Runtime(NVIDIA_K40M) for _ in weights]
    res = execute_sharded(rts, region, arrays, ScaleKernel(), weights=weights)
    assert np.array_equal(arrays["OUT"], expected(arrays, n))
    assert sum(res.shares) == n - 2
    assert res.elapsed == max(r.elapsed for r in res.per_device)
    assert not res.migrated and res.resplits == 0
