"""Property tests: affine expressions, chunking, and range math."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as stn

from repro.core.plan import make_chunks
from repro.core.scheduler import adaptive_chunks
from repro.directives.clauses import Affine, Loop, PipelineMapClause
from repro.directives.parser import parse_mem_size
from repro.directives.splitspec import SplitSpec, chunk_range, iter_range


@given(a=stn.integers(1, 1000), b=stn.integers(-1000, 1000), k=stn.integers(-50, 50))
def test_affine_parse_eval_roundtrip(a, b, k):
    text = f"{a}*k{'+' if b >= 0 else ''}{b}" if b else f"{a}*k"
    f = Affine.parse(text, "k")
    assert f(k) == a * k + b


@given(a=stn.integers(1, 100), b=stn.integers(-100, 100))
def test_affine_str_roundtrip(a, b):
    f = Affine(a, b)
    g = Affine.parse(str(f), "k")
    assert (g.a, g.b) == (a, b)


@given(
    start=stn.integers(-100, 100),
    trip=stn.integers(1, 500),
    cs=stn.integers(1, 64),
)
def test_static_chunks_tile_loop_exactly(start, trip, cs):
    loop = Loop("k", start, start + trip)
    chunks = make_chunks(loop, cs)
    seen = [k for c in chunks for k in range(c.t0, c.t1)]
    assert seen == list(loop.iterations())
    assert all(c.trip <= cs for c in chunks)
    assert [c.index for c in chunks] == list(range(len(chunks)))


@given(
    start=stn.integers(-100, 100),
    trip=stn.integers(1, 500),
    cs=stn.integers(1, 16),
    ns=stn.integers(1, 8),
)
def test_adaptive_chunks_tile_loop_exactly(start, trip, cs, ns):
    loop = Loop("k", start, start + trip)
    chunks = adaptive_chunks(loop, cs, ns)
    seen = [k for c in chunks for k in range(c.t0, c.t1)]
    assert seen == list(loop.iterations())
    from repro.core.scheduler import ADAPTIVE_MAX_FACTOR

    assert all(c.trip <= cs * ADAPTIVE_MAX_FACTOR for c in chunks)


@stn.composite
def split_clauses(draw):
    a = draw(stn.integers(1, 8))
    b = draw(stn.integers(-8, 8))
    size = draw(stn.integers(1, 8))
    start = draw(stn.integers(0, 8))
    trip = draw(stn.integers(1, 40))
    loop = Loop("k", start, start + trip)
    # extent large enough that the loop's dependency range is non-empty
    extent = max(a * (start + trip) + b + size, 1) + draw(stn.integers(0, 16))
    clause = PipelineMapClause(
        direction="to",
        var="A",
        split_dim=0,
        split_iter=Affine(a, b),
        size=size,
        dims=((0, extent), (0, 4)),
    )
    # the whole-loop dependency range must be non-empty after clamping
    # (SplitSpec.derive rejects degenerate clauses by design)
    assume(a * (start + trip - 1) + b + size > 0)
    return clause, loop


@given(args=split_clauses(), cs=stn.integers(1, 10))
def test_chunk_ranges_cover_iteration_ranges(args, cs):
    """Every iteration's dependency slice lies inside its chunk's."""
    clause, loop = args
    for c in make_chunks(loop, cs):
        c_lo, c_hi = chunk_range(clause, c.t0, c.t1)
        for k in range(c.t0, c.t1):
            i_lo, i_hi = iter_range(clause, k)
            if i_lo < i_hi:  # non-degenerate after clamping
                assert c_lo <= i_lo and i_hi <= c_hi


@given(split_clauses())
def test_consecutive_chunk_ranges_monotone(args):
    clause, loop = args
    prev = None
    for c in make_chunks(loop, 2):
        lo, hi = chunk_range(clause, c.t0, c.t1)
        if prev is not None:
            assert lo >= prev[0] and hi >= prev[1]
        prev = (lo, hi)


@given(args=split_clauses(), cs=stn.integers(1, 6), ns=stn.integers(1, 6))
def test_window_extent_bounds_union_of_in_flight_chunks(args, cs, ns):
    clause, loop = args
    spec = SplitSpec.derive(clause, loop)
    chunks = make_chunks(loop, cs)
    for i in range(len(chunks)):
        window = chunks[i : i + ns]
        lo = min(chunk_range(clause, c.t0, c.t1)[0] for c in window)
        hi = max(chunk_range(clause, c.t0, c.t1)[1] for c in window)
        assert hi - lo <= spec.window_extent(cs, ns)


@given(
    n=stn.integers(0, 10**7),
    unit=stn.sampled_from(["B", "KB", "MB", "KiB", "MiB"]),
)
def test_mem_size_parse_scales(n, unit):
    scale = {"B": 1, "KB": 10**3, "MB": 10**6, "KiB": 2**10, "MiB": 2**20}[unit]
    assert parse_mem_size(f"{n}{unit}") == n * scale
