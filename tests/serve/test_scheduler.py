"""Unit tests of the multi-tenant scheduler, pool, and workloads."""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    DevicePool,
    RegionRequest,
    RegionScheduler,
    ServeConfig,
    build_request,
    load_workload,
    random_workload,
)


def _sched(requests, *, budget=None, devices=1, config=None, cache=None):
    pool = DevicePool("k40m", count=devices, budget_bytes=budget)
    s = RegionScheduler(pool, config, cache=cache)
    s.submit_all(requests)
    return s


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_serves_mixed_workload_ok():
    report = _sched(random_workload(seed=3, n=5)).run()
    assert report.ok
    assert len(report.results) == 5
    assert [r.request_id for r in report.results] == list(range(5))
    for r in report.results:
        assert r.status == "ok"
        assert r.device == 0
        assert r.nchunks >= 1
        assert r.service > 0
        assert r.commands > 0
        assert r.busy["kernel"] > 0


def test_serial_mode_never_overlaps_regions():
    reqs = random_workload(seed=5, n=4)
    report = _sched(reqs, config=ServeConfig(max_active=1)).run()
    assert report.ok
    # in serial mode each region fully drains before the next starts
    spans = sorted((r.admitted, r.finished) for r in report.results)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start >= end


def test_results_sorted_by_submission_order():
    reqs = [
        build_request("matmul", tenant="low", priority=0,
                      config={"n": 96, "block": 16}),
        build_request("matmul", tenant="high", priority=5,
                      config={"n": 96, "block": 16}),
    ]
    report = _sched(reqs, config=ServeConfig(max_active=1)).run()
    assert [r.tenant for r in report.results] == ["low", "high"]


def test_priority_admits_first_in_serial_mode():
    # identical work; the later-submitted high-priority tenant is
    # admitted first, so it finishes first
    reqs = [
        build_request("stencil", tenant="low", priority=0,
                      config={"nz": 18, "ny": 48, "nx": 48}),
        build_request("stencil", tenant="high", priority=5,
                      config={"nz": 18, "ny": 48, "nx": 48}),
    ]
    report = _sched(reqs, config=ServeConfig(max_active=1)).run()
    assert report.ok
    by = {r.tenant: r for r in report.results}
    assert by["high"].finished < by["low"].finished
    assert by["low"].overtaken == 1


def test_unreachable_deadline_is_cancelled():
    ok = build_request("qcd", tenant="fast", deadline=10.0, config={"n": 5})
    late = build_request("qcd", tenant="slow", deadline=1e-9, config={"n": 5})
    report = _sched([ok, late]).run()
    by = {r.tenant: r for r in report.results}
    assert by["fast"].status == "ok"
    assert by["fast"].deadline_met is True
    assert by["slow"].status == "cancelled"
    assert by["slow"].deadline_met is False
    assert "deadline" in by["slow"].error
    assert report.cancelled == 1
    assert report.deadlines_missed == 1
    assert not report.ok


def test_deadline_advisory_when_enforcement_off():
    ok = build_request("qcd", tenant="fast", deadline=10.0, config={"n": 5})
    late = build_request("qcd", tenant="slow", deadline=1e-9, config={"n": 5})
    config = ServeConfig(enforce_deadlines=False)
    report = _sched([ok, late], config=config).run()
    by = {r.tenant: r for r in report.results}
    assert by["fast"].deadline_met is True
    assert by["slow"].status == "ok"  # ran to completion anyway
    assert by["slow"].deadline_met is False
    assert report.deadlines_missed == 1
    assert report.ok


def test_infeasible_request_fails_cleanly():
    # matmul keeps C resident on-device: 512*512*8 = 2 MB alone
    # exceeds the 1 MB budget, so no pipeline setting can ever fit
    reqs = [
        build_request("matmul", tenant="big",
                      config={"n": 512, "block": 64}),
        build_request("qcd", tenant="small", config={"n": 4}),
    ]
    report = _sched(reqs, budget=1_000_000).run()
    by = {r.tenant: r for r in report.results}
    assert by["big"].status == "failed"
    assert "MemLimitError" in by["big"].error
    assert by["small"].status == "ok"
    assert not report.ok
    assert report.device_peaks[0] <= 1_000_000


def test_report_to_dict_roundtrips_through_json():
    report = _sched(random_workload(seed=2, n=3)).run()
    text = json.dumps(report.to_dict(), sort_keys=True)
    back = json.loads(text)
    assert len(back["requests"]) == 3
    assert back["makespan_s"] == report.makespan


def test_run_is_deterministic():
    a = _sched(random_workload(seed=11, n=6)).run()
    b = _sched(random_workload(seed=11, n=6)).run()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


def test_summary_mentions_every_tenant():
    report = _sched(random_workload(seed=4, n=3)).run()
    text = report.summary()
    for r in report.results:
        assert r.tenant in text


# ----------------------------------------------------------------------
# plan cache behaviour through the scheduler
# ----------------------------------------------------------------------
def test_repeat_traffic_hits_cache_and_skips_dry_runs():
    def burst():
        return [
            build_request("stencil", tenant=f"t{i}",
                          config={"nz": 18, "ny": 48, "nx": 48})
            for i in range(3)
        ]

    report = _sched(burst(), config=ServeConfig(max_active=1)).run()
    hits = [r.cache_hit for r in report.results]
    assert hits == [False, True, True]
    assert report.cache["hits"] == 2
    assert report.cache["misses"] == 1
    # only the cold request paid the autotune search
    assert report.dry_runs > 0
    cold = _sched(burst()[:1], config=ServeConfig(max_active=1)).run()
    assert report.dry_runs == cold.dry_runs
    assert report.plan_seconds == pytest.approx(cold.plan_seconds)


def test_warm_cache_across_runs():
    from repro.serve import PlanCache

    cache = PlanCache()
    first = _sched(random_workload(seed=9, n=3), cache=cache).run()
    second = _sched(random_workload(seed=9, n=3), cache=cache).run()
    assert first.dry_runs > 0
    assert second.dry_runs == 0
    assert all(r.cache_hit for r in second.results)
    assert second.plan_seconds == 0.0


def test_autotune_off_uses_pragma_params():
    reqs = [build_request("conv3d", config={"nz": 18, "ny": 48, "nx": 48})]
    report = _sched(reqs, config=ServeConfig(autotune=False)).run()
    assert report.ok
    assert report.dry_runs == 0
    assert report.plan_seconds == 0.0


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
def test_pool_reservation_accounting():
    pool = DevicePool("k40m", budget_bytes=1000)
    assert pool.headroom(0) == 1000
    pool.reserve(0, 600)
    assert not pool.fits(0, 500)
    with pytest.raises(ValueError):
        pool.reserve(0, 500)
    pool.release(0, 600)
    with pytest.raises(ValueError):
        pool.release(0, 1)
    pool.close()


def test_pool_budget_validation():
    with pytest.raises(ValueError):
        DevicePool("k40m", budget_bytes=0)
    with pytest.raises(ValueError):
        DevicePool("k40m", budget_bytes=10**15)
    with pytest.raises(ValueError):
        DevicePool([])


def test_pool_best_fit_prefers_headroom_then_index():
    pool = DevicePool("k40m", count=3, budget_bytes=1000)
    pool.reserve(0, 500)
    assert pool.best_fit(100) == 1  # 1 and 2 tie; lower index wins
    pool.reserve(1, 200)
    assert pool.best_fit(100) == 2
    assert pool.best_fit(10_000) is None


def test_two_devices_share_the_load():
    reqs = random_workload(seed=13, n=4)
    report = _sched(reqs, devices=2).run()
    assert report.ok
    assert {r.device for r in report.results} == {0, 1}


# ----------------------------------------------------------------------
# workloads and requests
# ----------------------------------------------------------------------
def test_build_request_rejects_unknown_app():
    with pytest.raises(ValueError, match="unknown app"):
        build_request("fft")


def test_request_priority_validation():
    req = build_request("qcd", config={"n": 4})
    with pytest.raises(ValueError):
        RegionRequest(
            tenant="x", region=req.region, arrays=req.arrays,
            kernel=req.kernel, priority=-1,
        )


def test_load_workload_from_dict_and_file(tmp_path):
    data = {
        "device": "k40m",
        "budget_mb": 64,
        "requests": [
            {"app": "qcd", "tenant": "a", "config": {"n": 5}},
            {"app": "matmul", "priority": 2,
             "config": {"n": 96, "block": 16}},
        ],
    }
    spec = load_workload(data)
    assert spec.budget_bytes == 64_000_000
    assert [r.tenant for r in spec.requests] == ["a", "tenant1"]
    assert spec.requests[1].priority == 2

    path = tmp_path / "w.json"
    path.write_text(json.dumps(data))
    spec2 = load_workload(str(path))
    assert [r.label for r in spec2.requests] == [r.label for r in spec.requests]


def test_load_workload_rejects_bad_shapes():
    with pytest.raises(ValueError):
        load_workload({"nope": []})
    with pytest.raises(ValueError):
        load_workload({"requests": [{"tenant": "x"}]})


def test_load_workload_rejects_unknown_request_keys():
    from repro.gpu.errors import InvalidValueError

    good = {"app": "qcd", "config": {"n": 5}}
    with pytest.raises(InvalidValueError, match=r"request 1: unknown key"):
        load_workload({"requests": [good, {"app": "qcd", "prio": 2}]})


@pytest.mark.parametrize("deadline", [0, -1, -0.5, 0.0])
def test_load_workload_rejects_nonpositive_deadline(deadline):
    from repro.gpu.errors import InvalidValueError

    with pytest.raises(InvalidValueError, match=r"request 0: deadline"):
        load_workload({"requests": [{"app": "qcd", "deadline": deadline}]})


@pytest.mark.parametrize("deadline", ["soon", True, [1]])
def test_load_workload_rejects_non_numeric_deadline(deadline):
    from repro.gpu.errors import InvalidValueError

    with pytest.raises(InvalidValueError, match=r"request 0: deadline"):
        load_workload({"requests": [{"app": "qcd", "deadline": deadline}]})


def test_load_workload_accepts_valid_deadline():
    spec = load_workload({
        "requests": [{"app": "qcd", "deadline": 0.25, "config": {"n": 5}}]
    })
    assert spec.requests[0].deadline == 0.25


def test_random_workload_same_seed_same_mix():
    a = random_workload(seed=21, n=6)
    b = random_workload(seed=21, n=6)
    assert [r.label for r in a] == [r.label for r in b]
    assert [r.priority for r in a] == [r.priority for r in b]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_serve_replays_workload(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "w.json"
    path.write_text(json.dumps({
        "requests": [
            {"app": "stencil", "tenant": "alice",
             "config": {"nz": 18, "ny": 48, "nx": 48}},
            {"app": "matmul", "tenant": "bob",
             "config": {"n": 96, "block": 16}},
            {"app": "qcd", "tenant": "carol", "config": {"n": 5}},
        ]
    }))
    assert main(["serve", str(path)]) == 0
    out = capsys.readouterr().out
    assert "alice" in out and "bob" in out and "carol" in out
    assert main(["serve", str(path), "--serial", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["requests"]) == 3


def test_cli_serve_writes_trace(tmp_path, capsys):
    from repro.cli import main

    w = tmp_path / "w.json"
    w.write_text(json.dumps({
        "requests": [{"app": "qcd", "config": {"n": 5}}]
    }))
    trace = tmp_path / "trace.json"
    assert main(["serve", str(w), "--trace", str(trace)]) == 0
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("cat") == "serve" for e in events)


def test_cli_serve_bad_workload_is_exit_2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["serve", str(bad)]) == 2
    assert main(["serve", str(tmp_path / "missing.json")]) == 2
    capsys.readouterr()
