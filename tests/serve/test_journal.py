"""Write-ahead journal, snapshots, and crash-resume for the serve layer.

The durability contract pinned here:

* every flight-recorder event becomes one canonical, fsync-modelled
  journal line, and a crashed journal is a verbatim prefix of the
  uninterrupted one;
* ``RegionScheduler.resume`` rebuilds the run by **verified replay** —
  each regenerated record is byte-compared against the stored prefix,
  so a journal from a different config, workload, or build cannot be
  silently resumed;
* resuming after a host crash at *any* record index produces a report
  (and, in real mode, per-request outputs) **byte-identical** to the
  uninterrupted run, with completed requests never re-executed
  (exactly-once via journal dedup);
* snapshots written on the cadence carry a digest of the scheduler's
  full mutable state, recomputed and re-verified during replay.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.faults import FaultPlan, HostCrashError, pool_fault_plans
from repro.serve import (
    DevicePool,
    JournalError,
    JournalReader,
    JournalWriter,
    RegionScheduler,
    ServeConfig,
    build_request,
    output_store_path,
    random_workload,
    snapshot_path,
)
from repro.serve.journal import JOURNAL_FORMAT, encode_record

HEADER = {"kind": "journal.header", "format": JOURNAL_FORMAT}


def _write(path, records):
    w = JournalWriter(str(path))
    for rec in records:
        w.append(rec)
    w.close()
    return w


# ----------------------------------------------------------------------
# file layer: writer / reader
# ----------------------------------------------------------------------
class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.journal"
        recs = [HEADER, {"kind": "a", "x": 1}, {"kind": "b", "t": 0.5}]
        w = _write(path, recs)
        assert w.records == 3 and w.fsyncs == 3
        r = JournalReader(str(path))
        assert len(r.records) == 3 and r.dropped == 0
        for i, rec in enumerate(r.records):
            assert rec["i"] == i
            assert encode_record(rec) == r.lines[i]
        assert r.records[1]["x"] == 1
        assert not r.complete_run

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [HEADER, {"kind": "a"}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i":2,"kind":"torn","half"')  # crash mid-write
        r = JournalReader(str(path))
        assert len(r.records) == 2
        assert r.dropped == 1

    def test_gapped_index_ends_prefix(self, tmp_path):
        path = tmp_path / "j.journal"
        lines = [
            encode_record({"i": 0, **HEADER}),
            encode_record({"i": 1, "kind": "a"}),
            encode_record({"i": 3, "kind": "b"}),  # skipped 2
            encode_record({"i": 4, "kind": "c"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        r = JournalReader(str(path))
        assert len(r.records) == 2
        assert r.dropped == 2

    def test_non_canonical_line_treated_as_torn(self, tmp_path):
        path = tmp_path / "j.journal"
        ok = encode_record({"i": 0, **HEADER})
        loose = json.dumps({"i": 1, "kind": "a"}, indent=1).replace("\n", " ")
        path.write_text(ok + "\n" + loose + "\n")
        r = JournalReader(str(path))
        assert len(r.records) == 1
        assert r.dropped == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            JournalReader(str(tmp_path / "absent.journal"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text("")
        with pytest.raises(JournalError, match="no valid records"):
            JournalReader(str(path))

    def test_headerless_journal_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text(encode_record({"i": 0, "kind": "a"}) + "\n")
        with pytest.raises(JournalError, match="journal.header"):
            JournalReader(str(path))

    def test_format_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        hdr = {"kind": "journal.header", "format": JOURNAL_FORMAT + 1}
        path.write_text(encode_record({"i": 0, **hdr}) + "\n")
        with pytest.raises(JournalError, match="format"):
            JournalReader(str(path))

    def test_verify_mode_accepts_matching_prefix(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [HEADER, {"kind": "a"}])
        stored = JournalReader(str(path)).lines
        w = JournalWriter(str(path), resume_lines=stored)
        w.append(HEADER)
        w.append({"kind": "a"})
        w.append({"kind": "b"})  # past the prefix: plain append
        w.close()
        assert w.verified == 2 and w.records == 3

    def test_verify_mode_rejects_divergence(self, tmp_path):
        path = tmp_path / "j.journal"
        _write(path, [HEADER, {"kind": "a"}])
        stored = JournalReader(str(path)).lines
        w = JournalWriter(str(path), resume_lines=stored)
        w.append(HEADER)
        with pytest.raises(JournalError, match="divergence at record 1"):
            w.append({"kind": "DIFFERENT"})

    def test_crash_fires_after_durable_write(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(str(path), crash_after_events=2)
        w.append(HEADER)
        with pytest.raises(HostCrashError) as exc:
            w.append({"kind": "a"})
        assert exc.value.records == 2
        assert w.closed
        # the triggering record hit the disk before the crash
        assert len(path.read_text().splitlines()) == 2
        w.append({"kind": "ignored"})  # closed writer: no-op, no raise
        assert w.records == 2

    def test_snapshot_cadence_and_reentrancy_guard(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(str(path), snapshot_every=2)
        # a checkpoint that itself journals (as the scheduler's does);
        # the guard must keep it from re-triggering the cadence
        w.snapshot_fn = lambda: w.append({"kind": "journal.snapshot"})
        for kind in ("a", "b", "c", "d"):
            w.append({"kind": kind})
        w.close()
        kinds = [r["kind"] for r in json.loads(
            "[" + ",".join(path.read_text().split("\n")[:-1]) + "]"
        )]
        assert kinds.count("journal.snapshot") == w.snapshots > 0
        assert w.records == 4 + w.snapshots


# ----------------------------------------------------------------------
# config validation (each bad knob names its field)
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw, field",
        [
            ({"max_active": 0}, "max_active"),
            ({"aging_every": 0}, "aging_every"),
            ({"issue_quantum": 0}, "issue_quantum"),
            ({"plan_charge": -1e-6}, "plan_charge"),
            ({"max_request_retries": -1}, "max_request_retries"),
            ({"breaker_threshold": 0}, "breaker_threshold"),
            ({"breaker_window": 0.0}, "breaker_window"),
            ({"breaker_cooldown": -0.1}, "breaker_cooldown"),
            ({"max_waiting": 0}, "max_waiting"),
            ({"flight_recorder_capacity": 0}, "flight_recorder_capacity"),
            ({"snapshot_every": -1}, "snapshot_every"),
            ({"crash_after_events": 0}, "crash_after_events"),
        ],
    )
    def test_bad_knob_rejected_naming_field(self, kw, field):
        from repro.errors import InvalidValueError

        with pytest.raises(InvalidValueError, match=field):
            ServeConfig(**kw)

    def test_crash_knob_in_fault_plan_validates_too(self):
        from repro.errors import InvalidValueError

        with pytest.raises(InvalidValueError, match="crash_after_events"):
            FaultPlan(crash_after_events=0)
        # the host-crash trigger alone installs no device injectors
        assert not FaultPlan(crash_after_events=3).active


# ----------------------------------------------------------------------
# scheduler integration: journalled runs
# ----------------------------------------------------------------------
def _serve(requests, *, devices=1, virtual=True, config=None, plans=None):
    pool = DevicePool("k40m", count=devices, virtual=virtual)
    if plans is not None:
        pool.install_faults(plans)
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    report = sched.run()
    assert pool.reserved == [0] * devices
    pool.close()
    return report


def _dump(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestJournalledServe:
    def test_journal_changes_nothing_observable(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        plain = _serve(random_workload(seed=5, n=4))
        journalled = _serve(
            random_workload(seed=5, n=4),
            config=ServeConfig(journal_path=path, snapshot_every=8),
        )
        # fsync-modelled at zero virtual-time cost: byte-identical report
        assert _dump(plain) == _dump(journalled)
        # ... and the journal surface rides outside to_dict()
        assert "journal" not in journalled.to_dict()
        assert journalled.journal["records"] > 0
        assert journalled.journal["fsyncs"] == journalled.journal["records"]
        assert "journal" in journalled.summary()
        assert "resumed=0" in journalled.summary()

    def test_journal_structure(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        n = 3
        report = _serve(
            random_workload(seed=7, n=n),
            config=ServeConfig(journal_path=path),
        )
        r = JournalReader(path)
        assert r.dropped == 0
        assert r.complete_run
        assert len(r.records) == report.journal["records"]
        hdr = r.header
        assert hdr["devices"] == ["NVIDIA Tesla K40m"]
        assert hdr["virtual"] is True
        assert "config" in hdr and "journal_path" not in hdr["config"]
        assert sorted(r.submits) == list(range(n))
        done = r.completed
        assert sorted(done) == list(range(n))
        for seq, state in done.items():
            assert state["status"] == "ok"
            assert state["request_id"] == seq

    def test_snapshot_sidecar_digest(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        report = _serve(
            random_workload(seed=7, n=3),
            config=ServeConfig(journal_path=path, snapshot_every=5),
        )
        assert report.journal["snapshots"] >= 1
        sp = snapshot_path(path)
        assert os.path.exists(sp)
        with open(sp, encoding="utf-8") as fh:
            snap = json.load(fh)
        digest = hashlib.sha256(
            encode_record(snap["state"]).encode()
        ).hexdigest()[:16]
        assert snap["digest"] == digest
        assert snap["records"] <= report.journal["records"]
        assert JournalReader(path).snapshot == snap
        # the digest is journalled on the cadence too
        kinds = [r.get("kind") for r in JournalReader(path).records]
        assert kinds.count("journal.snapshot") == report.journal["snapshots"]

    def test_checkpoint_is_json_safe_and_deterministic(self):
        pool = DevicePool("k40m", virtual=True)
        sched = RegionScheduler(pool)
        sched.submit_all(random_workload(seed=2, n=2))
        a = sched.checkpoint()
        b = sched.checkpoint()
        assert encode_record(a) == encode_record(b)  # also proves JSON-safe
        sched.run()
        pool.close()

    def test_pool_crash_plan_without_journal_is_inert(self):
        # hostcrash only bites when a journal exists to crash against
        report = _serve(
            random_workload(seed=3, n=2),
            plans=pool_fault_plans("hostcrash", seed=0),
        )
        assert report.ok


# ----------------------------------------------------------------------
# crash + resume
# ----------------------------------------------------------------------
def _crash_run(requests, path, k, *, devices=1, virtual=True):
    """Run under crash injection; returns True if the crash fired."""
    pool = DevicePool("k40m", count=devices, virtual=virtual)
    try:
        sched = RegionScheduler(
            pool,
            ServeConfig(journal_path=path, snapshot_every=8,
                        crash_after_events=k),
        )
        sched.submit_all(requests)
        sched.run()
        return False
    except HostCrashError:
        return True
    finally:
        pool.close()


def _resume_run(path, requests, *, devices=1, virtual=True):
    pool = DevicePool("k40m", count=devices, virtual=virtual)
    sched = RegionScheduler.resume(
        path, pool, requests, config=ServeConfig(snapshot_every=8)
    )
    report = sched.run()
    assert pool.reserved == [0] * devices  # zero reservation leaks
    pool.close()
    return report


class TestCrashResume:
    def test_crash_at_every_index_resumes_byte_identical(self, tmp_path):
        path = str(tmp_path / "serve.journal")

        def reqs():
            return random_workload(seed=9, n=3)

        base = _serve(
            reqs(), config=ServeConfig(journal_path=path, snapshot_every=8)
        )
        want = _dump(base)
        total = base.journal["records"]
        assert total > 10
        for k in range(1, total + 1):
            assert _crash_run(reqs(), path, k), f"k={k} never crashed"
            report = _resume_run(path, reqs())
            assert _dump(report) == want, f"diverged resuming from k={k}"
            j = report.journal
            assert j["resumed"] == 1
            assert j["replayed"] == k  # every durable record re-verified
            assert j["records"] == total  # tail regenerated in full

    def test_crash_late_real_mode_restores_outputs_exactly_once(
        self, tmp_path
    ):
        path = str(tmp_path / "serve.journal")

        def reqs():
            return random_workload(seed=3, n=3, virtual=False)

        baseline = reqs()
        base = _serve(baseline, virtual=False,
                      config=ServeConfig(journal_path=path, snapshot_every=8))
        assert base.ok
        total = base.journal["records"]
        assert os.path.isdir(output_store_path(path))

        k = total - 1  # all requests done; only run.end is lost
        assert _crash_run(reqs(), path, k, virtual=False)
        resumed = reqs()
        report = _resume_run(path, resumed, virtual=False)
        assert _dump(report) == _dump(base)
        j = report.journal
        assert j["deduped"] == 3  # completed requests never re-executed
        assert j["reexecuted"] == 0
        # the sidecar store handed back bit-exact outputs
        for b, r in zip(baseline, resumed):
            for name in b.arrays:
                assert np.array_equal(b.arrays[name], r.arrays[name]), (
                    f"{b.tenant}:{name} diverged across crash-resume"
                )

    def test_crash_midway_real_mode_sampled_indices(self, tmp_path):
        path = str(tmp_path / "serve.journal")

        def reqs():
            return random_workload(seed=3, n=2, virtual=False)

        base = _serve(reqs(), virtual=False,
                      config=ServeConfig(journal_path=path, snapshot_every=8))
        total = base.journal["records"]
        for k in (1, total // 2, total):
            assert _crash_run(reqs(), path, k, virtual=False)
            report = _resume_run(path, reqs(), virtual=False)
            assert _dump(report) == _dump(base), f"diverged at k={k}"
            assert report.journal["reexecuted"] == 0

    def test_resume_complete_journal_is_pure_replay(self, tmp_path):
        path = str(tmp_path / "serve.journal")

        def reqs():
            return random_workload(seed=9, n=3)

        base = _serve(
            reqs(), config=ServeConfig(journal_path=path, snapshot_every=8)
        )
        report = _resume_run(path, reqs())
        assert _dump(report) == _dump(base)
        j = report.journal
        assert j["replayed"] == base.journal["records"]
        assert j["deduped"] == 3

    def test_crash_under_device_chaos_still_resumes_identical(self, tmp_path):
        # host crash layered on device-level faults: the journal replays
        # the fault timeline too (injection is seed-deterministic)
        path = str(tmp_path / "serve.journal")

        def once(crash):
            pool = DevicePool("k40m", count=2, virtual=True)
            pool.install_faults(pool_fault_plans("failover", seed=1, count=2))
            cfg = ServeConfig(journal_path=path, snapshot_every=8,
                              crash_after_events=crash)
            try:
                sched = RegionScheduler(pool, cfg)
                sched.submit_all(random_workload(seed=13, n=3))
                return sched.run()
            finally:
                pool.close()

        base = once(None)
        with pytest.raises(HostCrashError):
            once(base.journal["records"] // 2)
        pool = DevicePool("k40m", count=2, virtual=True)
        pool.install_faults(pool_fault_plans("failover", seed=1, count=2))
        sched = RegionScheduler.resume(
            path, pool, random_workload(seed=13, n=3),
            config=ServeConfig(snapshot_every=8),
        )
        report = sched.run()
        assert pool.reserved == [0, 0]
        pool.close()
        assert _dump(report) == _dump(base)

    def test_resume_ignores_pool_crash_plan(self, tmp_path):
        # the crashed pool's hostcrash plan must not re-arm on resume,
        # or the run would crash at the same index forever
        path = str(tmp_path / "serve.journal")

        def pool_with_crash():
            pool = DevicePool("k40m", virtual=True)
            pool.install_faults(pool_fault_plans("hostcrash", seed=0))
            return pool

        pool = pool_with_crash()
        with pytest.raises(HostCrashError):
            sched = RegionScheduler(
                pool, ServeConfig(journal_path=path, snapshot_every=8)
            )
            sched.submit_all(random_workload(seed=9, n=3))
            sched.run()
        pool.close()

        pool = pool_with_crash()
        sched = RegionScheduler.resume(
            path, pool, random_workload(seed=9, n=3),
            config=ServeConfig(snapshot_every=8),
        )
        report = sched.run()
        pool.close()
        assert report.ok and report.journal["resumed"] == 1

    def test_resume_rejects_workload_mismatch(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        _serve(random_workload(seed=9, n=3),
               config=ServeConfig(journal_path=path))
        pool = DevicePool("k40m", virtual=True)
        wrong = random_workload(seed=9, n=3)
        wrong[1] = build_request("qcd", tenant="intruder", config={"n": 5})
        with pytest.raises(JournalError, match="workload mismatch"):
            RegionScheduler.resume(path, pool, wrong)
        pool.close()

    def test_resume_rejects_short_workload(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        _serve(random_workload(seed=9, n=3),
               config=ServeConfig(journal_path=path))
        pool = DevicePool("k40m", virtual=True)
        with pytest.raises(JournalError, match="journal knows request"):
            RegionScheduler.resume(path, pool, random_workload(seed=9, n=2))
        pool.close()

    def test_resume_rejects_config_mismatch(self, tmp_path):
        # a different policy would re-simulate a different timeline;
        # the header byte-compare refuses before any work happens
        path = str(tmp_path / "serve.journal")
        _serve(random_workload(seed=9, n=3),
               config=ServeConfig(journal_path=path))
        pool = DevicePool("k40m", virtual=True)
        with pytest.raises(JournalError, match="divergence at record 0"):
            RegionScheduler.resume(
                path, pool, random_workload(seed=9, n=3),
                config=ServeConfig(max_active=1),
            )
        pool.close()

    def test_resume_detects_tampered_record(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        _serve(random_workload(seed=9, n=3),
               config=ServeConfig(journal_path=path))
        lines = open(path, encoding="utf-8").read().splitlines()
        # forge a canonical-but-wrong record mid-journal (a torn line
        # would be healed; a forged one must be refused)
        idx = next(i for i, ln in enumerate(lines)
                   if '"t":' in ln and i > 1)
        rec = json.loads(lines[idx])
        rec["t"] = rec["t"] + 1.0
        lines[idx] = encode_record(rec)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        pool = DevicePool("k40m", virtual=True)
        with pytest.raises(JournalError, match="divergence"):
            sched = RegionScheduler.resume(
                path, pool, random_workload(seed=9, n=3)
            )
            sched.run()
        pool.close()

    def test_torn_tail_is_healed_by_resume(self, tmp_path):
        path = str(tmp_path / "serve.journal")

        def reqs():
            return random_workload(seed=9, n=3)

        base = _serve(
            reqs(), config=ServeConfig(journal_path=path, snapshot_every=8)
        )
        want = open(path, encoding="utf-8").read()
        assert _crash_run(reqs(), path, 6)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i":6,"kind":"request.adm')  # torn mid-write
        report = _resume_run(path, reqs())
        assert _dump(report) == _dump(base)
        # the healed journal is byte-identical to the uninterrupted one
        assert open(path, encoding="utf-8").read() == want
