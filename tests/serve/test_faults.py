"""Fault-tolerant serving: replay, failover, breaker, deadlines, shedding.

The acceptance scenarios of the robustness PR:

* chunk replay absorbs transient faults in place (status stays ``ok``);
* device loss is non-terminal at pool level — victims restart from
  chunk 0 on a healthy device with ``migrated=True`` and reconstruct
  **bit-identical** output (real-payload comparison vs a fault-free
  single-device baseline);
* the circuit breaker quarantines a flapping device and probes it back
  after cooldown;
* provably-unreachable deadlines cancel at a chunk boundary and free
  the window for feasible lower-priority work;
* a bounded admission queue sheds deterministically by effective
  priority.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import FaultPlan, pool_fault_plans
from repro.serve import (
    DevicePool,
    RegionScheduler,
    ServeConfig,
    build_request,
    random_workload,
)


def _run(requests, *, plans=None, devices=1, config=None, virtual=True):
    pool = DevicePool("k40m", count=devices, virtual=virtual)
    if plans is not None:
        pool.install_faults(plans)
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    report = sched.run()
    assert pool.reserved == [0] * devices  # no reservation leaks, ever
    pool.close()
    return report


# ----------------------------------------------------------------------
# chunk replay
# ----------------------------------------------------------------------
def test_chunk_replay_absorbs_transient_faults():
    report = _run(
        random_workload(seed=2, n=3),
        plans=[FaultPlan(seed=1, kernel_fault_rate=0.25, h2d_fault_rate=0.15)],
    )
    assert report.ok
    assert report.faults > 0
    assert report.retries > 0
    assert report.migrated == 0
    text = report.summary()
    assert "fault tolerance" in text and "replay" in text


def test_request_retry_budget_exhaustion_fails_request():
    report = _run(
        random_workload(seed=2, n=2),
        plans=[FaultPlan(seed=0, kernel_fault_rate=0.5)],
        config=ServeConfig(max_request_retries=0),
    )
    assert not report.ok
    failed = [r for r in report.results if r.status == "failed"]
    assert failed
    for r in failed:
        assert "0 replay(s) left" in r.error


# ----------------------------------------------------------------------
# device loss and failover
# ----------------------------------------------------------------------
def _real_requests():
    # real payloads (virtual=False): outputs can be compared bit-for-bit
    return [
        build_request("stencil", tenant="alice",
                      config={"nz": 12, "ny": 24, "nx": 24}, virtual=False),
        build_request("matmul", tenant="bob",
                      config={"n": 48, "block": 8}, virtual=False),
        build_request("qcd", tenant="carol",
                      config={"n": 6}, virtual=False),
    ]


def test_failover_migrates_and_matches_fault_free_baseline():
    baseline = _real_requests()
    base_report = _run(baseline, virtual=False)
    assert base_report.ok

    victims = _real_requests()
    report = _run(
        victims,
        plans=[FaultPlan(seed=7, device_lost_at=4), None],
        devices=2,
        virtual=False,
    )
    assert report.ok  # every request completed despite losing a device
    assert report.migrated >= 1
    assert report.device_health == ["lost", "ok"]
    for r in report.results:
        assert r.status == "ok"
        if r.migrated:
            assert r.device == 1  # restarted on the survivor
    # failover restarted from chunk 0: output is exact, not approximate
    for b, v in zip(baseline, victims):
        for name in b.arrays:
            assert np.array_equal(b.arrays[name], v.arrays[name]), (
                f"{b.tenant}:{name} diverged after failover"
            )


def test_failover_report_is_deterministic():
    def once():
        return _run(
            random_workload(seed=13, n=4),
            plans=pool_fault_plans("failover", seed=1, count=2),
            devices=2,
        )

    a, b = once(), once()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


def test_whole_pool_loss_fails_cleanly():
    report = _run(
        random_workload(seed=2, n=3),
        plans=[FaultPlan(seed=0, device_lost_at=4)],
    )
    assert not report.ok
    assert report.device_health == ["lost"]
    for r in report.results:
        assert r.status == "failed"
        assert "DeviceLostError" in r.error


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_quarantines_then_probes_back():
    report = _run(
        random_workload(seed=2, n=3),
        plans=[FaultPlan(seed=1, kernel_fault_rate=0.25, h2d_fault_rate=0.15)],
        config=ServeConfig(
            breaker_threshold=2, breaker_window=1.0, breaker_cooldown=1e-4
        ),
    )
    assert report.breaker_trips == [1]
    # quarantine delayed but never killed the work
    assert report.ok


def test_breaker_knob_validation():
    from repro.errors import InvalidValueError

    with pytest.raises(InvalidValueError):
        ServeConfig(breaker_threshold=0)
    with pytest.raises(InvalidValueError):
        ServeConfig(breaker_window=-1.0)
    with pytest.raises(InvalidValueError):
        ServeConfig(breaker_cooldown=-0.1)
    with pytest.raises(InvalidValueError):
        ServeConfig(max_request_retries=-1)
    with pytest.raises(InvalidValueError):
        ServeConfig(max_waiting=0)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_cancel_frees_window_for_feasible_request():
    # A: higher priority, 16 chunks, deadline reachable by the kernel-only
    # lower bound but not by the real (transfer-laden) execution -> it is
    # admitted, falls behind, and is cancelled at a chunk boundary
    a = build_request(
        "stencil", tenant="doomed", priority=5, deadline=2e-4,
        config={"nz": 34, "ny": 64, "nx": 64, "chunk_size": 2,
                "num_streams": 2},
    )
    # B: lower priority but feasible in the freed window
    b = build_request("qcd", tenant="patient", priority=0, deadline=2e-3,
                      config={"n": 5})
    report = _run(
        [a, b], config=ServeConfig(max_active=1, autotune=False)
    )
    by = {r.tenant: r for r in report.results}
    doomed, patient = by["doomed"], by["patient"]
    assert doomed.status == "cancelled"
    assert doomed.deadline_met is False
    assert 1 <= doomed.nchunks < 16  # stopped mid-run at a chunk boundary
    assert "unreachable" in doomed.error
    assert patient.status == "ok"
    assert patient.deadline_met is True
    assert patient.admitted >= doomed.finished  # ran in the freed window
    assert report.cancelled == 1
    assert report.deadlines_missed == 1


def test_expired_waiting_request_is_shed():
    slow = build_request("matmul", tenant="hog", priority=5,
                         config={"n": 160, "block": 16})
    late = build_request("qcd", tenant="late", deadline=1e-6,
                         config={"n": 5})
    report = _run([slow, late], config=ServeConfig(max_active=1))
    by = {r.tenant: r for r in report.results}
    assert by["hog"].status == "ok"
    assert by["late"].status == "shed"
    assert "deadline" in by["late"].error
    assert by["late"].deadline_met is False
    assert report.deadlines_missed == 1


# ----------------------------------------------------------------------
# bounded admission queue
# ----------------------------------------------------------------------
def test_max_waiting_sheds_lowest_effective_priority():
    reqs = [
        build_request("qcd", tenant=f"t{p}", priority=p, config={"n": 5})
        for p in (0, 1, 2)
    ]
    report = _run(reqs, config=ServeConfig(max_waiting=1, max_active=1))
    by = {r.tenant: r for r in report.results}
    assert by["t0"].status == "shed"
    assert by["t1"].status == "shed"
    assert by["t2"].status == "ok"
    for t in ("t0", "t1"):
        assert "admission queue full" in by[t].error
    assert report.shed == 2
    assert report.tenants["t0"]["shed"] == 1


# ----------------------------------------------------------------------
# report surface
# ----------------------------------------------------------------------
def test_report_surfaces_fault_counters():
    report = _run(
        random_workload(seed=13, n=4),
        plans=pool_fault_plans("failover", seed=1, count=2),
        devices=2,
    )
    d = report.to_dict()
    for key in ("failed", "shed", "cancelled", "migrated",
                "deadlines_missed", "faults", "retries",
                "device_health", "breaker_trips", "tenants"):
        assert key in d
    assert d["migrated"] == report.migrated
    text = report.summary()
    assert "shed" in text and "cancelled" in text
    if report.migrated:
        assert "migration" in text


def test_fault_free_request_dicts_have_no_fault_keys():
    report = _run(random_workload(seed=3, n=2))
    for r in report.to_dict()["requests"]:
        assert "migrated" not in r
        assert "faults" not in r
        assert "retries" not in r


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _workload_file(tmp_path):
    path = tmp_path / "w.json"
    path.write_text(json.dumps({
        "requests": [
            {"app": "stencil", "tenant": "alice", "priority": 1,
             "config": {"nz": 26, "ny": 64, "nx": 64}},
            {"app": "matmul", "tenant": "bob",
             "config": {"n": 128, "block": 16}},
            {"app": "conv3d", "tenant": "carol", "priority": 2,
             "config": {"nz": 18, "ny": 48, "nx": 48}},
        ]
    }))
    return str(path)


def test_cli_serve_chaos_failover(tmp_path, capsys):
    from repro.cli import main

    path = _workload_file(tmp_path)
    rc = main(["serve", path, "--chaos", "failover",
               "--devices", "2", "--seed", "1", "--json"])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["migrated"] >= 1
    assert "lost" in data["device_health"]
    assert all(r["status"] == "ok" for r in data["requests"])


def test_cli_serve_unknown_chaos_profile_is_exit_2(tmp_path, capsys):
    from repro.cli import main

    path = _workload_file(tmp_path)
    assert main(["serve", path, "--chaos", "nope"]) == 2
    assert "unknown fault profile" in capsys.readouterr().err
