"""Continuous telemetry through the serve stack.

Covers the integration surface the unit tests cannot: SLO digests on
real reports, ``slo.*`` / ``telemetry.window`` events in flight-recorder
dumps on a deadline-missing run, workload-JSON ``slo`` declarations,
byte-identical telemetry across repeat runs (including the ``repro top``
CLI), and timing-neutrality — enabling the sampler never moves a
virtual clock.
"""

from __future__ import annotations

import json

import pytest

from repro.gpu.errors import InvalidValueError
from repro.obs.telemetry import read_telemetry_jsonl
from repro.serve import (
    SLO,
    DevicePool,
    RegionScheduler,
    ServeConfig,
    build_request,
    load_workload,
)


def _run(requests, *, config=None, devices=1):
    pool = DevicePool("k40m", count=devices, virtual=True)
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    report = sched.run()
    pool.close()
    return report


def _requests():
    return [
        build_request("stencil", tenant="alice",
                      config={"nz": 12, "ny": 24, "nx": 24}, virtual=True),
        build_request("matmul", tenant="bob",
                      config={"n": 48, "block": 8}, virtual=True),
        build_request("qcd", tenant="alice", config={"n": 6}, virtual=True),
    ]


_SLOS = {"alice": SLO(target=0.9, latency_s=1.0), "bob": SLO(target=0.99)}


class TestServeSLO:
    def test_report_carries_slo_digest_and_frames(self):
        report = _run(_requests(), config=ServeConfig(slos=_SLOS))
        assert report.ok
        assert set(report.slo) == {"alice", "bob"}
        a = report.slo["alice"]
        assert a["submitted"] == 2 and a["good"] == 2 and a["bad"] == 0
        assert a["compliance"] == 1.0 and a["budget"] == 1.0
        assert report.telemetry, "slos alone must enable the sampler"
        assert any("slo" in f for f in report.telemetry)
        assert "slo alice" in report.summary()
        assert json.loads(json.dumps(report.to_dict()))["slo"]["bob"][
            "target"] == 0.99

    def test_config_normalises_dict_slos_and_rejects_bad(self):
        cfg = ServeConfig(slos={"a": {"target": 0.9, "latency_s": 2.0}})
        assert cfg.slos == {"a": SLO(target=0.9, latency_s=2.0)}
        with pytest.raises(InvalidValueError):
            ServeConfig(slos={"a": {"target": 7}})

    def test_no_slo_no_telemetry_keeps_report_clean(self):
        report = _run(_requests())
        assert report.slo == {} and report.telemetry == []
        assert "slo" not in report.to_dict()
        assert "slo " not in report.summary()


class TestFlightEvents:
    def test_deadline_miss_dumps_slo_and_window_events(self):
        # carol's deadline is provably unreachable -> cancelled -> bad
        # against a tight objective; the run-end dump must show the
        # whole story: windows closing, the breach, the exhausted budget
        reqs = _requests() + [
            build_request("qcd", tenant="carol", config={"n": 6},
                          deadline=1e-6, virtual=True),
        ]
        slos = dict(_SLOS, carol=SLO(target=0.99))
        report = _run(reqs, config=ServeConfig(slos=slos))
        assert report.cancelled == 1
        assert report.slo["carol"]["bad"] == 1
        assert report.slo["carol"]["budget"] == 0.0
        assert report.flight_dumps, "deadline cancel must dump"
        kinds = {e["kind"] for e in report.flight_dumps[-1]["events"]}
        assert "telemetry.window" in kinds
        assert "slo.breach" in kinds
        assert "slo.budget_exhausted" in kinds
        breach = next(
            e for e in report.flight_dumps[-1]["events"]
            if e["kind"] == "slo.breach"
        )
        assert breach["tenant"] == "carol"
        assert breach["compliance"] < breach["target"]

    def test_healthy_run_fires_no_slo_events(self):
        report = _run(_requests(), config=ServeConfig(slos=_SLOS))
        assert report.flight_dumps == []


class TestWorkloadSLOKey:
    def test_slo_key_parses_into_spec(self, tmp_path):
        p = tmp_path / "w.json"
        p.write_text(json.dumps({"requests": [
            {"app": "qcd", "tenant": "a", "config": {"n": 5},
             "slo": {"target": 0.95, "latency_s": 0.5}},
            {"app": "qcd", "tenant": "a", "config": {"n": 5},
             "slo": {"target": 0.95, "latency_s": 0.5}},
            {"app": "qcd", "tenant": "b", "config": {"n": 5}},
        ]}))
        spec = load_workload(str(p))
        assert spec.slos == {"a": SLO(target=0.95, latency_s=0.5)}

    def test_conflicting_tenant_slo_rejected(self, tmp_path):
        p = tmp_path / "w.json"
        p.write_text(json.dumps({"requests": [
            {"app": "qcd", "tenant": "a", "config": {"n": 5},
             "slo": {"target": 0.9}},
            {"app": "qcd", "tenant": "a", "config": {"n": 5},
             "slo": {"target": 0.99}},
        ]}))
        with pytest.raises(InvalidValueError, match="declares slo"):
            load_workload(str(p))

    def test_bad_slo_names_the_request(self, tmp_path):
        p = tmp_path / "w.json"
        p.write_text(json.dumps({"requests": [
            {"app": "qcd", "config": {"n": 5}, "slo": {"target": 0}},
        ]}))
        with pytest.raises(InvalidValueError, match="request 0"):
            load_workload(str(p))


class TestDeterminism:
    def _workload_json(self, tmp_path):
        p = tmp_path / "w.json"
        p.write_text(json.dumps({"requests": [
            {"app": "stencil", "tenant": "alice",
             "slo": {"target": 0.99, "latency_s": 1.0},
             "config": {"nz": 12, "ny": 24, "nx": 24}},
            {"app": "matmul", "tenant": "bob", "slo": {"target": 0.9},
             "config": {"n": 48, "block": 8}},
            {"app": "qcd", "tenant": "alice", "config": {"n": 6}},
        ]}))
        return str(p)

    def test_telemetry_files_byte_identical_across_runs(self, tmp_path):
        from repro.cli import main

        w = self._workload_json(tmp_path)
        outs = []
        for r in range(2):
            t = str(tmp_path / f"t{r}.jsonl")
            assert main(["serve", w, "--telemetry", t]) == 0
            with open(t, encoding="utf-8") as fh:
                jsonl = fh.read()
            with open(t + ".prom", encoding="utf-8") as fh:
                prom = fh.read()
            outs.append((jsonl, prom))
        assert outs[0] == outs[1]
        header, frames = read_telemetry_jsonl(str(tmp_path / "t0.jsonl"))
        assert header["frames"] == len(frames) > 0

    def test_top_json_byte_identical_across_runs(self, tmp_path, capsys):
        from repro.cli import main

        w = self._workload_json(tmp_path)
        runs = []
        for _ in range(2):
            assert main(["top", w, "--json"]) == 0
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        assert main(["top", w]) == 0  # dashboard renders too
        dash = capsys.readouterr().out
        assert "slo tenant" in dash and "util" in dash

    def test_top_reads_saved_stream_identically(self, tmp_path, capsys):
        from repro.cli import main

        w = self._workload_json(tmp_path)
        t = str(tmp_path / "t.jsonl")
        assert main(["serve", w, "--telemetry", t]) == 0
        capsys.readouterr()
        assert main(["top", w, "--json"]) == 0
        live = capsys.readouterr().out
        assert main(["top", t, "--json"]) == 0
        saved = capsys.readouterr().out
        assert live == saved

    def test_multi_device_frames_deterministic(self):
        cfg = ServeConfig(telemetry=True, slos=_SLOS)
        a = _run(_requests(), config=cfg, devices=2)
        b = _run(_requests(), config=cfg, devices=2)
        assert [json.dumps(f, sort_keys=True) for f in a.telemetry] == \
            [json.dumps(f, sort_keys=True) for f in b.telemetry]
        assert any(
            ch.startswith("dev1.") for f in a.telemetry
            for ch in f.get("util", {})
        ), "second device's busy intervals must be attributed"


class TestTimingNeutrality:
    def test_sampler_never_changes_measured_results(self):
        off = _run(_requests())
        on = _run(_requests(), config=ServeConfig(telemetry=True))
        assert on.makespan == off.makespan
        d_on, d_off = on.to_dict(), off.to_dict()
        assert json.dumps(d_on, sort_keys=True) == \
            json.dumps(d_off, sort_keys=True)
