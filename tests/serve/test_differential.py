"""Differential tests: interleaved serving vs the serial baseline.

The whole point of multi-tenant interleaving is that it changes *when*
commands run, never *what* they compute.  These tests execute the same
seeded workload twice — once interleaved (scheduler default), once
serialized (``max_active=1``, each region drains before the next
starts) — and require:

* **bit-identical output arrays** per request (``np.array_equal``, not
  allclose: reordering across tenants must not perturb a single ULP),
* **conserved per-region engine busy time**: a request's summed
  h2d/d2h/kernel occupancy is a property of its plan, not of what else
  shared the device, and
* the per-tenant slice of the shared device timeline
  (:meth:`~repro.sim.trace.Timeline.for_streams` on the ``t<id>.``
  stream prefix) agrees with the scheduler's own busy accounting.

``random_workload`` rebuilds identical host arrays for each mode, so
the two runs start from the same bits by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import DevicePool, RegionScheduler, ServeConfig, random_workload

SEEDS = (0, 7, 23)


def _run(requests, *, serial):
    pool = DevicePool("k40m")
    config = ServeConfig(max_active=1) if serial else ServeConfig()
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    report = sched.run()
    assert report.ok
    return report, pool


@pytest.mark.parametrize("seed", SEEDS)
def test_interleaved_outputs_bit_identical_to_serial(seed):
    inter_reqs = random_workload(seed=seed, n=6, virtual=False)
    serial_reqs = random_workload(seed=seed, n=6, virtual=False)
    _run(inter_reqs, serial=False)
    _run(serial_reqs, serial=True)
    for a, b in zip(inter_reqs, serial_reqs):
        assert a.label == b.label
        for var in a.arrays:
            assert np.array_equal(
                np.asarray(a.arrays[var]), np.asarray(b.arrays[var])
            ), f"seed {seed}: {a.label}.{var} diverged between modes"


@pytest.mark.parametrize("seed", SEEDS)
def test_per_region_busy_time_is_conserved(seed):
    inter, _ = _run(random_workload(seed=seed, n=6), serial=False)
    serial, _ = _run(random_workload(seed=seed, n=6), serial=True)
    for a, b in zip(inter.results, serial.results):
        assert a.commands == b.commands
        assert a.nchunks == b.nchunks
        for kind in ("h2d", "d2h", "kernel"):
            assert a.busy[kind] == pytest.approx(b.busy[kind], abs=1e-12), (
                f"seed {seed}: request {a.request_id} {kind} busy changed "
                f"under interleaving"
            )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_timeline_slice_matches_scheduler_accounting(seed):
    report, pool = _run(random_workload(seed=seed, n=5), serial=False)
    timeline = pool.runtimes[0].timeline()
    sliced_total = 0
    for r in report.results:
        sub = timeline.for_streams(f"t{r.request_id}.")
        sliced_total += len(sub)
        # kernels always run on the tenant's own streams
        assert sub.busy_time("kernel") == pytest.approx(
            r.busy["kernel"], abs=1e-12
        ), f"request {r.request_id}: trace and report disagree on kernels"
        # transfers: the stream slice misses only the stream-less
        # blocking resident copies, never another tenant's traffic
        for kind in ("h2d", "d2h"):
            assert sub.busy_time(kind) <= r.busy[kind] + 1e-12
    # every pipeline-stream command belongs to exactly one tenant
    # slice (resident copies ride the runtime's internal sync streams)
    streamed = [rec for rec in timeline if rec.stream.startswith("t")]
    assert sliced_total == len(streamed)
    # and per-kind busy over the whole device is exactly the sum of
    # what the scheduler attributed to the tenants (resident copies
    # included) — nothing double-counted, nothing lost
    for kind in ("h2d", "d2h", "kernel"):
        assert timeline.busy_time(kind) == pytest.approx(
            sum(r.busy[kind] for r in report.results), abs=1e-12
        )


def test_interleaving_changes_schedule_not_results():
    # sanity that the two modes are actually different schedules —
    # otherwise the differential tests above prove nothing
    inter, _ = _run(random_workload(seed=1, n=5), serial=False)
    serial, _ = _run(random_workload(seed=1, n=5), serial=True)
    assert inter.makespan != serial.makespan
    starts_inter = [r.admitted for r in inter.results]
    starts_serial = [r.admitted for r in serial.results]
    assert starts_inter != starts_serial


def test_differential_report_is_deterministic():
    import json

    runs = []
    for _ in range(2):
        report, _ = _run(random_workload(seed=42, n=5), serial=False)
        runs.append(json.dumps(report.to_dict(), sort_keys=True))
    assert runs[0] == runs[1]
