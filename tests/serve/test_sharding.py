"""Differential tests for sharded execution (one region, many devices).

Sharding a region's loop across a pool must change *where* chunks run
and *what the clock reads* — never the bytes the region computes.
These tests pin that contract from both entry points:

* **standalone** (:func:`~repro.core.multidevice.execute_sharded`, the
  engine behind ``region.run(devices=...)``): each of the paper's four
  applications is byte-identical (``np.array_equal``) at 2 and 3
  shards to a single-device run — including matmul, whose reduction
  resident is merged across shards in loop order;
* **served** (:class:`~repro.serve.RegionScheduler` with
  ``shards > 1`` requests): the same bit-identity against a
  serially-served baseline.  The served differential runs with
  ``autotune=False`` so shard seams stay aligned with chunk seams:
  matmul's per-chunk GEMM folds its chunk's whole k-range in one
  contraction, so re-chunking *within* a seam-misaligned shard is the
  one case where a reduction may legitimately differ in the last ulp;
* **failover**: a shard's device dying mid-run still yields exact
  output — re-split across survivors standalone (``migrated``,
  ``resplits``), whole-request re-admission under the scheduler;
* **contention model**: halo bytes grow one seam at a time and the
  shared-PCIe link forbids super-linear scaling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multidevice import ShardedResult, execute_sharded
from repro.faults import FaultPlan
from repro.gpu import Runtime
from repro.gpu.errors import InvalidValueError
from repro.serve import DevicePool, RegionScheduler, ServeConfig
from repro.serve.workload import build_request, load_workload
from repro.sim import NVIDIA_K40M, Device

from tests.core.test_executor import ScaleKernel, expected, make_arrays, make_region

#: small real-payload configs, one per app — big enough to pipeline,
#: small enough that bit-for-bit comparison stays cheap
APP_CONFIGS = {
    "stencil": {"nz": 18, "ny": 48, "nx": 48},
    "conv3d": {"nz": 18, "ny": 48, "nx": 48},
    "matmul": {"n": 96, "block": 16},
    "qcd": {"n": 6},
}


def _k40m_runtimes(n):
    return [Runtime(Device(NVIDIA_K40M)) for _ in range(n)]


def _arrays_equal(a, b):
    return all(
        np.array_equal(np.asarray(a[var]), np.asarray(b[var])) for var in a
    )


# ----------------------------------------------------------------------
# standalone: every app, byte-identical at 2 and 3 shards
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", sorted(APP_CONFIGS))
@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_app_bit_identical_to_single_device(app, n_shards):
    ref = build_request(app, config=APP_CONFIGS[app], virtual=False)
    ref.region.run(Runtime(Device(NVIDIA_K40M)), ref.arrays, ref.kernel)

    sh = build_request(app, config=APP_CONFIGS[app], virtual=False)
    res = execute_sharded(
        _k40m_runtimes(n_shards), sh.region, sh.arrays, sh.kernel,
        weights=[1] * n_shards,
    )
    assert isinstance(res, ShardedResult)
    assert _arrays_equal(ref.arrays, sh.arrays), (
        f"{app} diverged when sharded {n_shards} ways"
    )
    assert len(res.shares) == n_shards
    assert not res.migrated and res.resplits == 0


def test_stencil_apps_charge_halo_reductions_do_not():
    """Stencil-shaped regions pay a halo push per interior seam; the
    matmul reduction has no spatial seam to exchange."""
    halo = {}
    for app in ("stencil", "matmul"):
        req = build_request(app, config=APP_CONFIGS[app], virtual=False)
        res = execute_sharded(
            _k40m_runtimes(2), req.region, req.arrays, req.kernel,
            weights=[1, 1],
        )
        halo[app] = res.halo_bytes
    assert halo["stencil"] > 0
    assert halo["matmul"] == 0


# ----------------------------------------------------------------------
# halo accounting and the shared-link contention model
# ----------------------------------------------------------------------
def test_halo_bytes_grow_one_seam_at_a_time():
    """k shards have k-1 interior seams; an even split moves the same
    overlap across each, so halo bytes are exactly linear in seams."""
    n = 64
    per_seam = None
    for k in (2, 3, 4):
        arrays = make_arrays(n)
        res = execute_sharded(
            _k40m_runtimes(k), make_region(n, 2, 2), arrays,
            ScaleKernel(), weights=[1] * k,
        )
        assert np.array_equal(arrays["OUT"], expected(arrays, n))
        if per_seam is None:
            per_seam = res.halo_bytes
            assert per_seam > 0
        assert res.halo_bytes == per_seam * (k - 1)


def test_shared_link_forbids_superlinear_scaling():
    """Wall time on k shards can never beat elapsed/k: the shards share
    one host PCIe link, and halo pushes only add work."""
    n = 64
    region = make_region(n, 2, 2)
    arrays = make_arrays(n)
    single = region.run(Runtime(NVIDIA_K40M), arrays, ScaleKernel())
    prev = None
    for k in (2, 4):
        arrays = make_arrays(n)
        res = execute_sharded(
            _k40m_runtimes(k), region, arrays, ScaleKernel(), weights=[1] * k,
        )
        assert res.elapsed >= single.elapsed / k - 1e-12
        assert res.elapsed == max(r.elapsed for r in res.per_device)
        if prev is not None:
            # more shards: more link sharers and more halo traffic, so
            # scaling efficiency can only fall
            assert single.elapsed / (k * res.elapsed) <= prev + 1e-9
        prev = single.elapsed / (k * res.elapsed)


# ----------------------------------------------------------------------
# failover: device loss mid-run stays exact
# ----------------------------------------------------------------------
def test_standalone_loss_resplits_on_survivors_exactly():
    n = 64
    rts = _k40m_runtimes(3)
    rts[1].install_faults(FaultPlan(seed=7, device_lost_at=6))
    arrays = make_arrays(n)
    res = execute_sharded(
        rts, make_region(n, 2, 2), arrays, ScaleKernel(), weights=[1, 1, 1],
    )
    assert res.migrated
    assert res.resplits >= 1
    assert rts[1].device.lost
    # re-running a chunk is idempotent, so the healed output is exact
    assert np.array_equal(arrays["OUT"], expected(arrays, n))
    assert sum(res.shares) == n - 2


def test_scheduler_reshards_request_after_member_loss():
    cfg = APP_CONFIGS["stencil"]
    clean = build_request("stencil", config=cfg, virtual=False)
    clean.region.run(Runtime(Device(NVIDIA_K40M)), clean.arrays, clean.kernel)

    victim = build_request("stencil", config=cfg, virtual=False, shards=2)
    pool = DevicePool("k40m", count=3, virtual=False)
    pool.install_faults([None, FaultPlan(seed=7, device_lost_at=2), None])
    sched = RegionScheduler(pool, ServeConfig())
    sched.submit(victim)
    report = sched.run()
    assert pool.reserved == [0, 0, 0]

    (r,) = report.results
    assert r.status == "ok"
    assert r.migrated
    # the sharded request lost device 1 and was re-served on survivors
    assert pool.health == ["ok", "lost", "ok"]
    assert r.shards == 2 and r.devices == (0, 2)
    assert _arrays_equal(clean.arrays, victim.arrays)


# ----------------------------------------------------------------------
# served sharding: differential vs serial service
# ----------------------------------------------------------------------
def _serve(requests, count):
    pool = DevicePool("k40m", count=count, virtual=False)
    # autotune off keeps chunk_size at the configs' 1, so shard seams
    # align with chunk seams and the matmul reduction folds identically
    sched = RegionScheduler(pool, ServeConfig(autotune=False))
    sched.submit_all(requests)
    report = sched.run()
    assert report.ok
    assert pool.reserved == [0] * count
    return report


def test_served_sharded_outputs_bit_identical_to_serial():
    serial = [
        build_request(a, config=c, virtual=False)
        for a, c in sorted(APP_CONFIGS.items())
    ]
    sharded = [
        build_request(a, config=c, virtual=False, shards=2)
        for a, c in sorted(APP_CONFIGS.items())
    ]
    _serve(serial, 1)
    report = _serve(sharded, 2)
    for a, b, r in zip(serial, sharded, report.results):
        assert r.shards == 2 and r.devices == (0, 1)
        assert _arrays_equal(a.arrays, b.arrays), (
            f"{a.label} diverged between serial and sharded service"
        )


def test_served_sharding_degrades_to_single_device():
    # shards=4 on a 2-device pool: serve on what exists, don't fail
    req = build_request(
        "stencil", config=APP_CONFIGS["stencil"], virtual=False, shards=4
    )
    report = _serve([req], 2)
    (r,) = report.results
    assert r.status == "ok"
    assert r.shards == 2 and r.devices == (0, 1)

    # shards=2 on a 1-device pool: ordinary single-device service
    req = build_request(
        "stencil", config=APP_CONFIGS["stencil"], virtual=False, shards=2
    )
    report = _serve([req], 1)
    (r,) = report.results
    assert r.status == "ok"
    assert r.shards == 1 and r.devices == ()


def test_sharded_result_dict_carries_devices():
    req = build_request("qcd", config={"n": 6}, shards=2)
    report = _serve([req], 2)
    d = report.results[0].to_dict()
    assert d["shards"] == 2
    assert d["devices"] == [0, 1]


# ----------------------------------------------------------------------
# placement surfaces: workload JSON and request validation
# ----------------------------------------------------------------------
def test_workload_json_accepts_shards():
    spec = load_workload({
        "devices": 2,
        "requests": [
            {"app": "qcd", "shards": 2, "config": {"n": 6}},
            {"app": "stencil", "config": APP_CONFIGS["stencil"]},
        ],
    })
    assert spec.requests[0].shards == 2
    assert spec.requests[1].shards == 1


@pytest.mark.parametrize("bad", [0, -1, "2", True, 1.5])
def test_workload_json_rejects_bad_shards(bad):
    with pytest.raises(InvalidValueError, match="request 0.*shards"):
        load_workload({
            "requests": [{"app": "qcd", "shards": bad, "config": {"n": 6}}],
        })


def test_request_validates_shards():
    with pytest.raises(ValueError, match="shards"):
        build_request("qcd", config={"n": 6}, shards=0)
