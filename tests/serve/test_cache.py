"""Unit tests of the structural plan cache."""

from __future__ import annotations

import pytest

from repro.serve import PlanCache, build_request


def _bound_plan(app="stencil", config=None):
    req = build_request(app, config=config or {"nz": 18, "ny": 48, "nx": 48})
    return req.region.bind(req.arrays), req.kernel


# ----------------------------------------------------------------------
# key structure
# ----------------------------------------------------------------------
def test_same_request_same_key():
    p1, k1 = _bound_plan()
    p2, k2 = _bound_plan()
    assert PlanCache.key_for(p1, k1, "k40m", 100) == PlanCache.key_for(
        p2, k2, "k40m", 100
    )


@pytest.mark.parametrize(
    "other",
    [
        {"nz": 26, "ny": 48, "nx": 48},  # different split extent
        {"nz": 18, "ny": 64, "nx": 64},  # different inner shape
        {"nz": 18, "ny": 48, "nx": 48, "chunk_size": 4},  # pragma params
        {"nz": 18, "ny": 48, "nx": 48, "num_streams": 3},
    ],
)
def test_shape_or_param_change_changes_key(other):
    p1, k1 = _bound_plan()
    p2, k2 = _bound_plan(config=other)
    assert PlanCache.key_for(p1, k1, "k40m", 100) != PlanCache.key_for(
        p2, k2, "k40m", 100
    )


def test_profile_and_limit_are_part_of_the_key():
    plan, kernel = _bound_plan()
    base = PlanCache.key_for(plan, kernel, "k40m", 100)
    assert base != PlanCache.key_for(plan, kernel, "hd7970", 100)
    assert base != PlanCache.key_for(plan, kernel, "k40m", 200)
    assert base != PlanCache.key_for(plan, kernel, "k40m", None)


def test_different_apps_never_collide():
    p1, k1 = _bound_plan("stencil")
    p2, k2 = _bound_plan("conv3d", config={"nz": 18, "ny": 48, "nx": 48})
    assert PlanCache.key_for(p1, k1, "k40m", 100) != PlanCache.key_for(
        p2, k2, "k40m", 100
    )


def test_dep_fn_regions_are_uncacheable():
    import numpy as np

    from repro.core import TargetRegion, make_kernel
    from repro.directives.clauses import (
        Affine,
        Loop,
        PipelineClause,
        PipelineMapClause,
    )

    clause = PipelineMapClause(
        direction="to",
        var="A",
        split_dim=0,
        split_iter=Affine(1, 0),
        size=1,
        dims=((0, 8), (0, 8)),
        dep_fn=lambda k: (k, k + 1),
    )
    region = TargetRegion(
        pipeline=PipelineClause("static", 1, 2),
        pipeline_maps=[clause],
        loop=Loop("k", 0, 8),
    )
    kernel = make_kernel(
        cost=lambda profile, t0, t1: (t1 - t0) * 1e-6,
        body=lambda views, t0, t1: None,
        name="noop",
    )
    plan = region.bind({"A": np.zeros((8, 8))})
    assert PlanCache.key_for(plan, kernel, "k40m", 100) is None
    cache = PlanCache()
    assert cache.get(None) is None
    cache.put(None, 1, 2)
    assert len(cache) == 0
    assert cache.stats()["uncacheable"] == 1


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
def test_get_put_and_counters():
    cache = PlanCache()
    key = ("k",)
    assert cache.get(key) is None
    cache.put(key, 4, 2)
    assert cache.get(key) == (4, 2)
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["hit_rate"] == 0.5


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    cache.put(("a",), 1, 1)
    cache.put(("b",), 2, 2)
    assert cache.get(("a",)) == (1, 1)  # refresh a; b is now LRU
    cache.put(("c",), 3, 3)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == (1, 1)
    assert cache.get(("c",)) == (3, 3)
    assert len(cache) == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_mismatched_key_never_returns_a_plan():
    cache = PlanCache()
    cache.put(("a",), 8, 4)
    assert cache.get(("b",)) is None
    assert cache.get(("a", "x")) is None
    assert cache.get(("a",)) == (8, 4)
