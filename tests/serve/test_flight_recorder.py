"""Scheduler flight recorder and per-tenant latency percentiles.

The post-mortem acceptance scenario: a run that loses a device mid-way
must produce flight-recorder dumps whose event window shows the
``DeviceLostError`` and the migrated request's restart on a healthy
device.  Plus: deadline cancellations dump, dumps stay deterministic,
fault-free runs dump nothing, and the new ``tenant_latency``
percentiles are deterministic and internally consistent.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan
from repro.serve import (
    DevicePool,
    RegionScheduler,
    ServeConfig,
    build_request,
    random_workload,
)


def _run(requests, *, plans=None, devices=1, config=None):
    pool = DevicePool("k40m", count=devices, virtual=True)
    if plans is not None:
        pool.install_faults(plans)
    sched = RegionScheduler(pool, config)
    sched.submit_all(requests)
    report = sched.run()
    pool.close()
    return report


def _failover_requests():
    return [
        build_request("stencil", tenant="alice",
                      config={"nz": 12, "ny": 24, "nx": 24}, virtual=True),
        build_request("matmul", tenant="bob",
                      config={"n": 48, "block": 8}, virtual=True),
        build_request("qcd", tenant="carol",
                      config={"n": 6}, virtual=True),
    ]


class TestFailoverDump:
    def test_device_loss_dump_shows_error_and_migrated_restart(self):
        report = _run(
            _failover_requests(),
            plans=[FaultPlan(seed=7, device_lost_at=4), None],
            devices=2,
        )
        assert report.ok and report.migrated >= 1
        reasons = [d["reason"] for d in report.flight_dumps]
        assert "device-lost" in reasons
        assert reasons[-1] == "run-end"
        final = report.flight_dumps[-1]
        events = final["events"]
        assert any(
            e["kind"] == "device.lost" and e.get("error") == "DeviceLostError"
            for e in events
        ), "dump must contain the DeviceLostError event"
        lost_seq = next(
            e["seq"] for e in events if e["kind"] == "device.lost"
        )
        restart = [
            e for e in events
            if e["kind"] == "request.admit" and e.get("migrated")
        ]
        assert restart, "dump must contain the migrated request's restart"
        assert all(e["seq"] > lost_seq for e in restart)
        requeued = {
            e["request"] for e in events if e["kind"] == "request.requeue"
        }
        assert {e["request"] for e in restart} <= requeued

    def test_dumps_are_deterministic(self):
        def once():
            return _run(
                _failover_requests(),
                plans=[FaultPlan(seed=7, device_lost_at=4), None],
                devices=2,
            )

        a, b = once(), once()
        assert json.dumps(a.flight_dumps, sort_keys=True) == json.dumps(
            b.flight_dumps, sort_keys=True
        )

    def test_fault_free_run_dumps_nothing(self):
        report = _run(random_workload(seed=3, n=3))
        assert report.ok
        assert report.flight_dumps == []

    def test_deadline_cancel_dumps(self):
        reqs = [
            build_request(
                "stencil", tenant="late",
                config={"nz": 24, "ny": 48, "nx": 48},
                deadline=1e-6, virtual=True,
            ),
        ]
        report = _run(reqs)
        statuses = {r.status for r in report.results}
        assert statuses & {"cancelled", "shed"}
        if report.cancelled:
            assert any(
                d["reason"] == "deadline-cancel" for d in report.flight_dumps
            )

    def test_ring_is_bounded(self):
        report = _run(
            _failover_requests(),
            plans=[FaultPlan(seed=7, device_lost_at=4), None],
            devices=2,
            config=ServeConfig(flight_recorder_capacity=4),
        )
        for d in report.flight_dumps:
            assert len(d["events"]) <= 4
        assert report.flight_dumps[-1]["dropped"] > 0

    def test_capacity_validation(self):
        from repro.errors import InvalidValueError

        with pytest.raises(InvalidValueError, match="flight_recorder_capacity"):
            ServeConfig(flight_recorder_capacity=0)


class TestTenantLatency:
    def test_percentiles_are_deterministic(self):
        def once():
            return _run(random_workload(seed=11, n=6))

        a, b = once(), once()
        assert a.tenant_latency == b.tenant_latency
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_percentiles_are_consistent_with_results(self):
        report = _run(random_workload(seed=11, n=6))
        lat = report.tenant_latency
        ok = [r for r in report.results if r.status == "ok"]
        assert sum(d["count"] for d in lat.values()) == len(ok)
        for tenant, d in lat.items():
            waits = sorted(
                r.queue_wait for r in ok if r.tenant == tenant
            )
            assert d["queue_wait"]["p50"] in waits
            assert d["queue_wait"]["p99"] == waits[-1]
            assert (
                d["queue_wait"]["p50"]
                <= d["queue_wait"]["p95"]
                <= d["queue_wait"]["p99"]
            )
            assert (
                d["service"]["p50"]
                <= d["service"]["p95"]
                <= d["service"]["p99"]
            )

    def test_summary_and_to_dict_carry_latency(self):
        report = _run(random_workload(seed=11, n=4))
        assert "tenant_latency" in report.to_dict()
        text = report.summary()
        assert "wait p50/p95/p99" in text

    def test_no_ok_requests_means_empty_latency(self):
        report = _run(
            random_workload(seed=2, n=2),
            plans=[FaultPlan(seed=0, kernel_fault_rate=0.5)],
            config=ServeConfig(max_request_retries=0),
        )
        assert not report.ok
        ok_tenants = {r.tenant for r in report.results if r.status == "ok"}
        assert set(report.tenant_latency) == ok_tenants
