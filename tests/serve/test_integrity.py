"""Served silent-failure defense: policy, quarantine, straggler watchdog.

The serving-layer acceptance scenarios of the integrity PR:

* ``ServeConfig.integrity="checksum"`` under sdc chaos detects the
  injected bitflips, recovers in place under the retry budget, and
  delivers **byte-identical** outputs versus a fault-free run — on a
  single device and sharded 3-ways across a 3-device pool;
* with verification off the same chaos provably corrupts outputs
  (the differential that proves injection is not a no-op);
* a device with an elevated SDC rate trips the breaker through the
  corruption path and is **quarantined** (``device_health``);
* the straggler watchdog on the mixed-8 sharded workload re-splits
  work away from a 10x-slowed device and beats the no-watchdog wall
  time with exact outputs and a deterministic report;
* the policy is **per-tenant overridable** and settable from workload
  JSON, with unknown values rejected naming the request.

Runs compare against a *clean* baseline, never integrity-on vs
integrity-off directly: verify commands shift the global command
sequence the injector hashes on, so the two modes corrupt at
different points of their (individually deterministic) timelines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multidevice import WatchdogConfig
from repro.faults import pool_fault_plans
from repro.gpu.errors import InvalidValueError
from repro.serve import DevicePool, RegionScheduler, ServeConfig, build_request
from repro.serve.workload import load_workload

#: the four paper apps at chaos-test sizes, with their output arrays
APPS = (
    ("stencil", {"nz": 12, "ny": 24, "nx": 24, "iters": 1, "num_streams": 2}, "Anext"),
    ("conv3d", {"nz": 12, "ny": 24, "nx": 24, "num_streams": 2}, "B"),
    ("matmul", {"n": 48, "block": 8, "num_streams": 2}, "C"),
    ("qcd", {"n": 6, "num_streams": 2}, "eta"),
)


def _serve_apps(
    *, seed=0, chaos=None, integrity="off", shards=1, count=1,
    config=None, request_integrity=None,
):
    """Serve the four apps; returns (report, output bytes, scheduler)."""
    reqs = [
        build_request(
            app, tenant=f"t{i}", config=dict(cfg), virtual=False,
            shards=shards, integrity=request_integrity,
        )
        for i, (app, cfg, _) in enumerate(APPS)
    ]
    cfg = config or {}
    with DevicePool("k40m", count=count, virtual=False) as pool:
        if chaos is not None:
            pool.install_faults(pool_fault_plans(chaos, seed=seed, count=count))
        sched = RegionScheduler(pool, ServeConfig(integrity=integrity, **cfg))
        sched.submit_all(reqs)
        report = sched.run()
        assert pool.reserved == [0] * count  # no reservation leaks, ever
    outs = [reqs[i].arrays[v].tobytes() for i, (_, _, v) in enumerate(APPS)]
    return report, outs, sched


# ----------------------------------------------------------------------
# checksum differential, served
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "shards, count, seed", [(1, 1, 3), (3, 3, 0)],
    ids=["single-device", "sharded-3x3"],
)
class TestServedChecksumDifferential:
    def test_detects_and_recovers_byte_exact(self, shards, count, seed):
        _, clean, _ = _serve_apps(shards=shards, count=count)
        rep, outs, sched = _serve_apps(
            seed=seed, chaos="sdc", integrity="checksum",
            shards=shards, count=count,
        )
        assert rep.ok
        assert rep.corruptions >= 2  # detected, per-result accounted
        assert rep.verified > rep.corruptions
        assert outs == clean
        kinds = {e["kind"] for e in sched.recorder.events}
        assert "corruption" in kinds
        assert "integrity" in rep.summary()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # flipped exponents
    def test_verification_off_provably_corrupts(self, shards, count, seed):
        _, clean, _ = _serve_apps(shards=shards, count=count)
        rep, outs, _ = _serve_apps(
            seed=seed, chaos="sdc", integrity="off", shards=shards, count=count,
        )
        assert rep.corruptions == 0  # nobody watching ...
        assert sum(a != b for a, b in zip(outs, clean)) >= 2  # ... silently wrong

    def test_report_is_deterministic(self, shards, count, seed):
        rep1, o1, _ = _serve_apps(
            seed=seed, chaos="sdc", integrity="checksum",
            shards=shards, count=count,
        )
        rep2, o2, _ = _serve_apps(
            seed=seed, chaos="sdc", integrity="checksum",
            shards=shards, count=count,
        )
        assert rep1.to_dict() == rep2.to_dict()
        assert o1 == o2


# ----------------------------------------------------------------------
# corruption-driven quarantine
# ----------------------------------------------------------------------
def test_high_sdc_device_is_quarantined():
    rep, _, sched = _serve_apps(
        seed=1, chaos="sdc", integrity="checksum",
        config={"breaker_threshold": 2, "breaker_window": 10.0},
    )
    assert rep.ok  # quarantine is containment, not failure
    d = rep.to_dict()
    assert d["device_health"] == ["quarantined"]
    assert d["breaker_trips"] == [1]
    kinds = {e["kind"] for e in sched.recorder.events}
    assert "quarantine" in kinds
    assert "device.fault" not in kinds  # corruption path, not fail-stop


# ----------------------------------------------------------------------
# straggler watchdog on the mixed-8 sharded workload
# ----------------------------------------------------------------------
def _mixed8(shards=3):
    """4x qcd + 4x stencil, sharded — the benchmark mix, real payloads.

    Sized for a memory-constrained pool (790 kB budget): the stencil
    shards tune down to multi-chunk pipelines, which is what gives the
    watchdog a per-shard completion *rate* to compare.
    """
    reqs = []
    for i in range(4):
        reqs.append(build_request(
            "qcd", tenant=f"qcd{i}", config={"n": 6},
            shards=shards, virtual=False,
        ))
        reqs.append(build_request(
            "stencil", tenant=f"sten{i}",
            config={"nz": 194, "ny": 64, "nx": 64},
            shards=shards, virtual=False,
        ))
    return reqs


def _serve_mixed8(*, watchdog, chaos, seed=0):
    reqs = _mixed8()
    with DevicePool(
        "k40m", count=3, virtual=False, budget_bytes=790_000
    ) as pool:
        if chaos:
            pool.install_faults(pool_fault_plans("straggler", seed=seed, count=3))
        sched = RegionScheduler(pool, ServeConfig(straggler_watchdog=watchdog))
        sched.submit_all(reqs)
        rep = sched.run()
        assert pool.reserved == [0] * 3
    outs = tuple(
        (r.arrays["eta"] if i % 2 == 0 else r.arrays["Anext"]).tobytes()
        for i, r in enumerate(reqs)
    )
    return rep, outs, sched


def test_watchdog_resplits_away_from_slow_device_and_wins():
    _, clean, _ = _serve_mixed8(watchdog=False, chaos=False)
    on, outs_on, sched = _serve_mixed8(watchdog=True, chaos=True)
    off, outs_off, _ = _serve_mixed8(watchdog=False, chaos=True)
    assert on.ok
    assert on.resplits >= 1  # work was re-split away from the straggler
    assert off.resplits == 0
    assert on.makespan < off.makespan  # and it paid off
    assert outs_on == clean  # re-splitting preserved exactness
    assert outs_off == clean  # slow, not wrong: off is exact too
    kinds = {e["kind"] for e in sched.recorder.events}
    assert "straggler" in kinds and "shard.resplit" in kinds
    assert f"{on.resplits} " in on.summary() and "straggler" in on.summary()
    # deterministic report, per the acceptance bar
    again, outs2, _ = _serve_mixed8(watchdog=True, chaos=True)
    assert again.to_dict() == on.to_dict()
    assert outs2 == outs_on


def test_watchdog_accepts_config_object():
    rep, _, _ = _serve_mixed8(
        watchdog=WatchdogConfig(ratio=0.4, min_done=2), chaos=True
    )
    assert rep.ok and rep.resplits >= 1


# ----------------------------------------------------------------------
# per-tenant policy override and workload JSON
# ----------------------------------------------------------------------
def test_request_integrity_overrides_scheduler_default():
    # scheduler default off, every request opts in -> verified anyway
    rep, _, _ = _serve_apps(integrity="off", request_integrity="checksum")
    assert rep.verified > 0
    # scheduler default checksum, every request opts out -> nothing runs
    rep, _, _ = _serve_apps(integrity="checksum", request_integrity="off")
    assert rep.verified == 0


def test_workload_json_integrity_key():
    spec = load_workload({
        "requests": [
            {"app": "matmul", "config": {"n": 48, "block": 8}},
            {"app": "qcd", "config": {"n": 6}, "integrity": "checksum"},
        ],
    })
    assert spec.requests[0].integrity is None
    assert spec.requests[1].integrity == "checksum"


def test_workload_json_rejects_bad_integrity_naming_request():
    with pytest.raises(InvalidValueError, match="request 1"):
        load_workload({
            "requests": [
                {"app": "qcd", "config": {"n": 6}},
                {"app": "qcd", "config": {"n": 6}, "integrity": "crc32"},
            ],
        })


def test_request_rejects_bad_integrity():
    with pytest.raises(InvalidValueError, match="integrity"):
        build_request("qcd", config={"n": 6}, integrity="md5")


def test_bad_serve_config_integrity_rejected():
    with pytest.raises(InvalidValueError, match="integrity"):
        ServeConfig(integrity="paranoid")
