#!/usr/bin/env python3
"""Quickstart: pipeline a halo'd loop through the directive runtime.

This is the smallest end-to-end use of the public API:

1. write the pragma (the paper's Figure 1 grammar),
2. define a kernel: a cost model plus a NumPy body over translated
   chunk views,
3. run it under the three execution models and compare.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import Loop, NVIDIA_K40M, RegionKernel, Runtime, TargetRegion

N, COLS = 512, 32768  # 512 rows of 256 KB


class BlurKernel(RegionKernel):
    """out[k] = (in[k-1] + in[k] + in[k+1]) / 3 over rows."""

    name = "blur"
    index_penalty = 0.01

    def cost(self, profile, t0, t1):
        # memory-bound streaming kernel: ~2 arrays of traffic
        return (t1 - t0) * COLS * 8 * 2 / 12e9

    def run(self, views, t0, t1):
        src = views["IN"].take(t0 - 1, t1 + 1)   # halo'd window
        dst = views["OUT"].take(t0, t1)          # own rows
        dst[...] = (src[:-2] + src[1:-1] + src[2:]) / 3.0


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.random((N, COLS))
    arrays = {"IN": a, "OUT": np.zeros_like(a)}

    region = TargetRegion.parse(
        f"""
        #pragma omp target \\
            pipeline(static[16,3]) \\
            pipeline_map(to: IN[k-1:3][0:{COLS}]) \\
            pipeline_map(from: OUT[k:1][0:{COLS}]) \\
            pipeline_mem_limit(256MB)
        """,
        loop=Loop("k", 1, N - 1),
    )

    # reference for validation
    expect = np.zeros_like(a)
    expect[1:-1] = (a[:-2] + a[1:-1] + a[2:]) / 3.0

    print(f"{'model':<18} {'elapsed':>10} {'peak mem':>10} {'overlap':>8}  correct")
    results = {}
    for model in ("naive", "pipelined", "pipelined-buffer"):
        with Runtime(NVIDIA_K40M) as rt:
            arrays["OUT"][:] = 0
            res = region.run(rt, arrays, BlurKernel(), model=model)
            ok = np.allclose(arrays["OUT"], expect)
        results[model] = res
        print(
            f"{model:<18} {res.elapsed * 1e3:8.2f}ms {res.memory_peak / 1e6:8.1f}MB "
            f"{res.overlap:8.2f}  {ok}"
        )

    naive = results["naive"]
    buf = results["pipelined-buffer"]
    print(
        f"\npipelined-buffer: {naive.elapsed / buf.elapsed:.2f}x speedup, "
        f"{100 * (1 - buf.memory_peak / naive.memory_peak):.0f}% less device memory "
        f"({buf.nchunks} chunks on {buf.num_streams} streams)"
    )

    from repro.analysis import ascii_gantt

    print("\nnaive timeline (no overlap):")
    print(ascii_gantt(naive.timeline, width=72))
    print("\npipelined-buffer timeline (transfers under kernels):")
    print(ascii_gantt(buf.timeline, width=72))


if __name__ == "__main__":
    main()
