#!/usr/bin/env python3
"""The paper's Figure 2, end to end.

Feeds the stencil pragma from the paper (verbatim, modulo concrete
extents) through the parser, runs the Parboil-style Jacobi sweep under
all three execution models on the simulated K40m, validates every
result against pure NumPy, and prints the Figure 5/6-style comparison.

Run::

    python examples/stencil_pipeline.py [nz ny nx iters]
"""

import sys

import numpy as np

from repro.apps import stencil as st
from repro.sim.trace import audit


def main() -> None:
    args = [int(a) for a in sys.argv[1:]] or [48, 384, 384, 2]
    nz, ny, nx, iters = (args + [2])[:4]
    cfg = st.StencilConfig(nz=nz, ny=ny, nx=nx, iters=iters, chunk_size=1, num_streams=3)

    print("pragma (paper Figure 2):")
    print(
        f"  #pragma omp target pipeline(static[1,3]) \\\n"
        f"      pipeline_map(to: A0[k-1:3][0:{ny}][0:{nx}]) \\\n"
        f"      pipeline_map(from: Anext[k:1][0:{ny}][0:{nx}])\n"
    )

    ref = st.reference(cfg)
    rows = {}
    for model in ("naive", "pipelined", "pipelined-buffer"):
        res, grid = st.run_checked(model, cfg)
        audit(res.timeline)  # structural invariants of the simulated run
        assert np.allclose(grid, ref, rtol=1e-5, atol=1e-6), model
        rows[model] = res

    naive = rows["naive"]
    print(f"{'model':<18} {'time':>10} {'speedup':>8} {'peak mem':>10} {'h2d/d2h/kernel busy (ms)':>28}")
    for model, res in rows.items():
        d = res.time_distribution
        print(
            f"{model:<18} {res.elapsed * 1e3:8.2f}ms "
            f"{naive.elapsed / res.elapsed:7.2f}x {res.memory_peak / 1e6:8.1f}MB "
            f"{d['h2d'] * 1e3:8.2f}/{d['d2h'] * 1e3:.2f}/{d['kernel'] * 1e3:.2f}"
        )
    buf = rows["pipelined-buffer"]
    print(
        f"\nall three models validated against NumPy; buffer version used "
        f"{buf.nchunks} chunks, saving "
        f"{100 * (1 - buf.memory_peak / naive.memory_peak):.0f}% device memory"
    )


if __name__ == "__main__":
    main()
