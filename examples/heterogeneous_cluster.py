#!/usr/bin/env python3
"""Future-work features: autotuning + heterogeneous multi-device runs.

The paper's conclusion lists an auto-tuning scheduler and multi-device
execution as future work; both are implemented here as extensions.
This example:

1. lets the autotuner pick ``(chunk_size, num_streams)`` for the 3-D
   convolution on each device via virtual dry runs, then
2. shards the convolution across a K40m + HD 7970 pair through the
   placement API (``region.run(..., devices=[...])``): the loop is
   split proportionally to each device's probed throughput on a shared
   virtual clock, with halo exchange and shared-PCIe contention
   modelled.

Run::

    python examples/heterogeneous_cluster.py
"""

from repro.apps import conv3d as cv
from repro.core.autotune import autotune
from repro.gpu import Runtime
from repro.kernels.conv3d import Conv3dKernel
from repro.sim import AMD_HD7970, NVIDIA_K40M, Device


def main() -> None:
    # -- 1. per-device autotuning -------------------------------------
    print("autotuning 3dconv pipeline parameters (virtual dry runs):")
    for name, profile, cfg in (
        ("K40m  ", NVIDIA_K40M, cv.Conv3dConfig()),
        ("HD7970", AMD_HD7970, cv.Conv3dConfig(nz=384, ny=384, nx=384)),
    ):
        region = cv.make_region(cfg)
        arrays = cv.make_arrays(cfg, virtual=True)
        kernel = Conv3dKernel(cfg.ny, cfg.nx)
        rep = autotune(region, Runtime(Device(profile), virtual=True), arrays, kernel)
        naive = cv.run_model("naive", cfg, profile, virtual=True)
        print(
            f"  {name}: chunk={rep.best.chunk_size:<4} streams={rep.best.num_streams} "
            f"-> {naive.elapsed / rep.best.elapsed:.2f}x over naive "
            f"({rep.dry_runs} dry runs)"
        )

    # -- 2. heterogeneous sharding via the placement API ---------------
    cfg = cv.Conv3dConfig(nz=384, ny=384, nx=384, chunk_size=8, num_streams=2)
    region = cv.make_region(cfg)
    kernel = Conv3dKernel(cfg.ny, cfg.nx)

    single = cv.run_model("pipelined-buffer", cfg, virtual=True)
    twin = region.run(
        None, cv.make_arrays(cfg, virtual=True), kernel,
        devices=[Runtime(Device(NVIDIA_K40M), virtual=True),
                 Runtime(Device(NVIDIA_K40M), virtual=True)],
    )
    pair = region.run(
        None, cv.make_arrays(cfg, virtual=True), kernel,
        devices=[Runtime(Device(NVIDIA_K40M), virtual=True),
                 Runtime(Device(AMD_HD7970), virtual=True)],
    )

    print("\nsharded 3dconv 384^3 over a shared PCIe link:")
    print(f"  single K40m:      {single.elapsed * 1e3:7.1f} ms")
    print(
        f"  K40m + K40m:      {twin.elapsed * 1e3:7.1f} ms "
        f"({single.elapsed / twin.elapsed:.2f}x)"
    )
    print(
        f"  K40m + HD7970:    {pair.elapsed * 1e3:7.1f} ms "
        f"({single.elapsed / pair.elapsed:.2f}x, shares "
        f"{pair.shares[0]}/{pair.shares[1]} planes, "
        f"imbalance {100 * pair.imbalance():.0f}%)"
    )
    print(
        "  the probed split keeps both shards finishing together, but a\n"
        "  transfer-bound region gains little from a second card when\n"
        "  both shards contend for the same host link — the honest\n"
        "  multi-GPU story a per-device-link model would hide"
    )


if __name__ == "__main__":
    main()
