#!/usr/bin/env python3
"""Future-work features: autotuning + heterogeneous multi-device runs.

The paper's conclusion lists an auto-tuning scheduler and multi-device
execution as future work; both are implemented here as extensions.
This example:

1. lets the autotuner pick ``(chunk_size, num_streams)`` for the 3-D
   convolution on each device via virtual dry runs, then
2. co-schedules the convolution across a K40m + HD 7970 pair, with the
   loop split proportionally to each device's probed throughput.

Run::

    python examples/heterogeneous_cluster.py
"""

from repro.apps import conv3d as cv
from repro.core.autotune import autotune
from repro.core.multidevice import execute_multi_device
from repro.gpu import Runtime
from repro.kernels.conv3d import Conv3dKernel
from repro.sim import AMD_HD7970, NVIDIA_K40M, Device


def main() -> None:
    # -- 1. per-device autotuning -------------------------------------
    print("autotuning 3dconv pipeline parameters (virtual dry runs):")
    for name, profile, cfg in (
        ("K40m  ", NVIDIA_K40M, cv.Conv3dConfig()),
        ("HD7970", AMD_HD7970, cv.Conv3dConfig(nz=384, ny=384, nx=384)),
    ):
        region = cv.make_region(cfg)
        arrays = cv.make_arrays(cfg, virtual=True)
        kernel = Conv3dKernel(cfg.ny, cfg.nx)
        rep = autotune(region, Runtime(Device(profile), virtual=True), arrays, kernel)
        naive = cv.run_model("naive", cfg, profile, virtual=True)
        print(
            f"  {name}: chunk={rep.best.chunk_size:<4} streams={rep.best.num_streams} "
            f"-> {naive.elapsed / rep.best.elapsed:.2f}x over naive "
            f"({rep.dry_runs} dry runs)"
        )

    # -- 2. heterogeneous co-scheduling --------------------------------
    cfg = cv.Conv3dConfig(nz=384, ny=384, nx=384, chunk_size=8, num_streams=2)
    region = cv.make_region(cfg)
    kernel = Conv3dKernel(cfg.ny, cfg.nx)

    single = cv.run_model("pipelined-buffer", cfg, virtual=True)
    arrays = cv.make_arrays(cfg, virtual=True)
    pair = execute_multi_device(
        [Runtime(Device(NVIDIA_K40M), virtual=True),
         Runtime(Device(AMD_HD7970), virtual=True)],
        region, arrays, kernel,
    )

    print("\nco-scheduled 3dconv 384^3 across K40m + HD 7970:")
    print(f"  single K40m:      {single.elapsed * 1e3:7.1f} ms")
    print(
        f"  K40m + HD7970:    {pair.elapsed * 1e3:7.1f} ms "
        f"(shares {pair.shares[0]}/{pair.shares[1]} planes, "
        f"imbalance {100 * pair.imbalance():.0f}%)"
    )
    print(
        f"  scaling:          {single.elapsed / pair.elapsed:.2f}x from adding "
        f"the (much slower) AMD card"
    )


if __name__ == "__main__":
    main()
