#!/usr/bin/env python3
"""Out-of-core matrix multiplication: beyond device memory.

The paper's Figure 9/10 punchline: at n = 20480 and 24576 the
full-footprint versions (baseline and block-shared) raise device OOM on
the 12 GB K40m, while the ring-buffered pipeline streams A/B reduction
bands through a small buffer, keeps only C resident, and completes with
no performance loss versus the tiled kernel.

This example (1) validates the pipelined GEMM numerically at a small
size, then (2) reruns the paper's size sweep in metadata-only virtual
mode (timing and memory accounting are exact; see DESIGN.md).

Run::

    python examples/out_of_core_matmul.py
"""

import numpy as np

from repro.apps import matmul as mm
from repro.kernels.matmul import init_matrices


def main() -> None:
    # 1. numerical validation at a small size (real arrays)
    n_small = 96
    cfg = mm.MatmulConfig(n=n_small, block=16, num_streams=2)
    a, b, _ = init_matrices(n_small)
    _, c = mm.run_checked("pipeline-buffer", cfg)
    assert np.allclose(c, a @ b, rtol=1e-12)
    print(f"pipelined GEMM validated against NumPy at n={n_small}\n")

    # 2. the paper's sweep (virtual mode)
    sizes = (8192, 14336, 20480, 24576)
    print(f"{'n':>6} {'baseline':>14} {'block_shared':>14} {'pipeline-buffer':>16}")
    for n in sizes:
        row = [f"{n:>6}"]
        for model in mm.MATMUL_MODELS:
            res = mm.run_model(model, mm.MatmulConfig(n=n), virtual=True)
            if res is None:
                row.append(f"{'OOM':>14}")
            else:
                cell = f"{res.elapsed:6.1f}s/{res.memory_peak / 1e9:4.1f}GB"
                row.append(f"{cell:>14}")
        print(" ".join(row))

    full = 3 * 24576**2 * 8 / 1e9
    print(
        f"\nAt n=24576 the full footprint would be {full:.1f} GB "
        f"(> 10 GB usable on the K40m): only the ring-buffered runtime "
        f"completes, holding C resident and streaming A/B bands."
    )


if __name__ == "__main__":
    main()
