#!/usr/bin/env python3
"""Chunk-count tuning on the AMD HD 7970 (the paper's Figure 8).

On the Radeon, chunked transfers fall well below peak bandwidth and
per-call overheads are an order of magnitude above NVIDIA's, so the
default fine-grained pipelining *loses* to the Naive offload.  This
example sweeps the chunk count, prints the speedup curve (rise, peak,
collapse), and shows two remedies the library offers:

* an explicit coarse ``chunk_size``, and
* the ``adaptive`` schedule extension, which ramps the chunk size
  automatically.

Run::

    python examples/amd_tuning.py
"""

from repro.analysis.report import ascii_bar_chart
from repro.apps import conv3d as cv

NZ = 384  # the HD 7970's 3 GB bounds the dataset


def cfg_for(nchunks: int, schedule: str = "static") -> cv.Conv3dConfig:
    cs = max(1, (NZ - 2) // nchunks)
    return cv.Conv3dConfig(
        nz=NZ, ny=384, nx=384, chunk_size=cs, num_streams=2, schedule=schedule
    )


def main() -> None:
    labels, speeds = [], []
    for nchunks in (2, 4, 6, 9, 12, 20, 50, 382):
        vs = cv.run_all(cfg_for(nchunks), device="hd7970", virtual=True)
        labels.append(f"{nchunks:>3} chunks")
        speeds.append(vs.speedup("pipelined"))
    print(
        ascii_bar_chart(
            labels,
            speeds,
            unit="x",
            title="HD 7970: Pipelined speedup over Naive vs chunk count "
            "(3dconv 384^3)",
        )
    )
    print(
        "\nThe default (chunk per plane, 382 chunks) transfers at ~2 GB/s "
        "instead of ~6.5 GB/s and pays 382x the enqueue overhead — worse "
        "than not pipelining at all, exactly the paper's AMD finding."
    )

    adaptive = cv.run_model(
        "pipelined-buffer", cfg_for(96, schedule="adaptive"), "hd7970", virtual=True
    )
    naive = cv.run_model("naive", cfg_for(2), "hd7970", virtual=True)
    best = max(speeds)
    print(
        f"\nadaptive schedule (no hand tuning): "
        f"{naive.elapsed / adaptive.elapsed:.2f}x with {adaptive.nchunks} chunks "
        f"(hand-tuned best: {best:.2f}x)"
    )

    limited = cv.run_model(
        "pipelined-buffer",
        cv.Conv3dConfig(nz=NZ, ny=384, nx=384, chunk_size=64, num_streams=2,
                        mem_limit="64MB"),
        "hd7970",
        virtual=True,
    )
    print(
        f"pipeline_mem_limit(64MB): runtime shrank chunk size to "
        f"{limited.chunk_size}, buffer peak {limited.data_peak / 1e6:.0f} MB"
    )


if __name__ == "__main__":
    main()
