#!/usr/bin/env python3
"""2-D block data regions: filtering an image larger than the buffer.

The paper's runtime "handles non-contiguous copies for 2D arrays, which
means buffering a 'Block' of a matrix" with recorded
``x_offset``/``y_offset`` passed to the kernels.  This example streams
a large image through a tiny tile buffer — each tile moves with a
pitched 2-D copy — applying a contrast-stretch filter per tile, and
compares device memory against the whole-image footprint.

Run::

    python examples/tiled_image_filter.py
"""

import numpy as np

from repro.core import Block2DRegion, TileKernel
from repro.gpu import Runtime
from repro.sim import NVIDIA_K40M


class ContrastStretch(TileKernel):
    """out = clip(1.5 * (in - 0.5) + 0.5, 0, 1) — pointwise filter."""

    name = "contrast"

    def cost(self, profile, rows, cols):
        # a heavier filter: ~16 B of traffic per pixel at 5 GB/s effective
        return rows * cols * 16 / 5e9

    def run(self, ins, outs):
        a = ins["IN"].data
        outs["OUT"].data[...] = np.clip(1.5 * (a - 0.5) + 0.5, 0.0, 1.0)


def main() -> None:
    h, w = 2048, 2048
    rng = np.random.default_rng(5)
    image = rng.random((h, w))
    out = np.zeros_like(image)

    region = Block2DRegion((h, w), tile=(256, 1024), num_streams=3)
    rt = Runtime(NVIDIA_K40M)
    res = region.run(rt, {"IN": image}, {"OUT": out}, ContrastStretch())

    expect = np.clip(1.5 * (image - 0.5) + 0.5, 0, 1)
    assert np.allclose(out, expect)

    full = image.nbytes + out.nbytes
    print(f"image:          {h}x{w} float64 ({image.nbytes / 1e6:.0f} MB each way)")
    print(f"tiles:          {res.nchunks} of 256x1024 on {res.num_streams} streams")
    print(f"device buffers: {res.data_peak / 1e6:.1f} MB "
          f"(vs {full / 1e6:.0f} MB whole-image footprint)")
    print(f"elapsed:        {res.elapsed * 1e3:.1f} ms, "
          f"transfer overlap {res.overlap:.0%}")
    print("result validated against NumPy")
    print(
        "note: pitched (row-by-row) tile copies run far below peak PCIe\n"
        "bandwidth — the paper's non-contiguous-transfer observation; wide\n"
        "tiles keep the rows long."
    )


if __name__ == "__main__":
    main()
