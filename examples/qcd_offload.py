#!/usr/bin/env python3
"""Lattice QCD offload study (the paper's Figures 3 and 5/6 for QCD).

Runs the Wilson-style Dslash application on the simulated K40m:

* validates the pipelined execution against NumPy on a small lattice,
* reproduces the Naive time-distribution breakdown (transfers ~50%),
* shows speedup and memory savings growing with problem size
  (O(C n^4) -> O(C n^3) per chunk).

Run::

    python examples/qcd_offload.py
"""

import numpy as np

from repro.analysis.report import ascii_bar_chart
from repro.apps import qcd as qc


def main() -> None:
    # numerical validation on a small lattice (real arrays)
    small = qc.QcdConfig(n=6, num_streams=2)
    ref = qc.reference(small)
    _, eta = qc.run_checked("pipelined-buffer", small)
    assert np.allclose(eta, ref, atol=1e-10)
    print("Dslash pipelined execution validated against NumPy at n=6\n")

    print("Naive time distribution (virtual mode, paper Figure 3 left):")
    for name in ("small", "medium", "large"):
        vs = qc.run_all(qc.QcdConfig.dataset(name), virtual=True)
        d = vs.naive.time_distribution
        total = sum(d.values())
        print(
            f"  qcd-{name:<7} HtoD {100 * d['h2d'] / total:4.1f}%  "
            f"DtoH {100 * d['d2h'] / total:4.1f}%  "
            f"kernel {100 * d['kernel'] / total:4.1f}%"
        )

    print("\nSpeedup over Naive and memory (paper Figures 5/6):")
    names, speeds = [], []
    for name in ("small", "medium", "large"):
        vs = qc.run_all(qc.QcdConfig.dataset(name), virtual=True)
        names.append(f"qcd-{name}")
        speeds.append(vs.speedup("pipelined-buffer"))
        print(
            f"  qcd-{name:<7} buffer {vs.speedup('pipelined-buffer'):4.2f}x  "
            f"mem {vs.naive.memory_peak / 1e6:7.0f} -> "
            f"{vs.buffer.memory_peak / 1e6:6.0f} MB "
            f"(-{100 * vs.memory_saving():.0f}%)"
        )
    print()
    print(ascii_bar_chart(names, speeds, unit="x", title="Pipelined-buffer speedup"))
    print(
        "\nSplitting the time dimension reduces the footprint from "
        "O(C n^4) to O(C n^3): savings grow with lattice size, as the "
        "paper reports (up to ~79-82% for n=36)."
    )


if __name__ == "__main__":
    main()
