"""``TargetRegion`` — the user-facing entry point of the extension.

A region is one pipelined offload construct: a pragma (or equivalent
clause objects), the loop it applies to, and — once bound to host
arrays — a resolved :class:`~repro.core.plan.RegionPlan`.  Usage
mirrors the paper's Figure 2:

>>> import numpy as np
>>> from repro.core import TargetRegion
>>> from repro.directives import Loop
>>> nz = ny = nx = 16
>>> A0 = np.random.default_rng(0).random((nz, ny, nx)).astype(np.float32)
>>> Anext = np.zeros_like(A0)
>>> region = TargetRegion.parse(f'''
...     #pragma omp target \\
...         pipeline(static[1,3]) \\
...         pipeline_map(to: A0[k-1:3][0:{ny}][0:{nx}]) \\
...         pipeline_map(from: Anext[k:1][0:{ny}][0:{nx}]) \\
...         pipeline_mem_limit(256MB)
... ''', loop=Loop("k", 1, nz - 1))

then ``region.run(rt, {"A0": A0, "Anext": Anext}, kernel)`` executes it
with the proposed runtime, and ``model="pipelined"`` / ``model="naive"``
select the paper's two baselines on the *same* clauses and kernel.
(``run_pipelined`` / ``run_naive`` remain as deprecated aliases.)
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.executor import RegionResult, execute_pipeline
from repro.core.kernel import RegionKernel
from repro.core.memlimit import tune_plan
from repro.core.offload import execute_manual_pipelined, execute_naive
from repro.core.plan import RegionPlan
from repro.directives.clauses import (
    DirectiveError,
    Loop,
    MapClause,
    MemLimitClause,
    PipelineClause,
    PipelineMapClause,
)
from repro.directives.parser import ParsedPragma, parse_pragma
from repro.directives.splitspec import SplitSpec
from repro.gpu.runtime import Runtime

__all__ = ["TargetRegion", "RegionResult"]

#: accepted ``model=`` spellings → canonical model name
_MODEL_ALIASES = {
    "buffer": "buffer",
    "pipelined-buffer": "buffer",
    "pipelined_buffer": "buffer",
    "pipelined": "pipelined",
    "naive": "naive",
}


class TargetRegion:
    """One pipelined offload region (pragma + loop).

    Construct with :meth:`parse` from pragma text, or directly from
    clause objects.  All three execution models share the clauses and
    the kernel, differing only in how data moves — exactly the paper's
    Naive / Pipelined / Pipelined-buffer comparison.

    Parameters
    ----------
    pipeline:
        The ``pipeline(...)`` clause.
    pipeline_maps:
        ``pipeline_map`` clauses (at least one).
    maps:
        Resident ``map`` clauses.
    mem_limit:
        Optional ``pipeline_mem_limit`` clause.
    loop:
        The pipelined loop.
    halo_mode:
        ``"dedup"`` (default) or ``"duplicate"`` — see
        :class:`~repro.core.plan.RegionPlan`.
    """

    def __init__(
        self,
        pipeline: PipelineClause,
        pipeline_maps: List[PipelineMapClause],
        loop: Loop,
        maps: Optional[List[MapClause]] = None,
        mem_limit: Optional[MemLimitClause] = None,
        halo_mode: str = "dedup",
        device_num: Optional[int] = None,
        privates: tuple = (),
    ) -> None:
        if not pipeline_maps:
            raise DirectiveError("a pipeline region needs at least one pipeline_map")
        self.pipeline = pipeline
        self.pipeline_maps = list(pipeline_maps)
        self.maps = list(maps or [])
        self.mem_limit = mem_limit
        self.loop = loop
        self.halo_mode = halo_mode
        #: ``device(n)`` clause value; see :meth:`select_runtime`
        self.device_num = device_num
        #: ``private(...)`` variables — recorded for fidelity; the
        #: functional NumPy kernels allocate per-chunk temporaries
        #: naturally, so no runtime action is needed
        self.privates = tuple(privates)

    @classmethod
    def parse(cls, pragma: str, loop: Loop, *, halo_mode: str = "dedup") -> "TargetRegion":
        """Build a region from pragma text (see
        :func:`repro.directives.parser.parse_pragma`)."""
        parsed: ParsedPragma = parse_pragma(pragma, loop)
        return cls(
            pipeline=parsed.pipeline,
            pipeline_maps=parsed.pipeline_maps,
            maps=parsed.maps,
            mem_limit=parsed.mem_limit,
            loop=loop,
            halo_mode=halo_mode,
            device_num=parsed.device_num,
            privates=parsed.privates,
        )

    def select_runtime(self, runtimes) -> Runtime:
        """Pick the runtime named by the ``device(n)`` clause.

        ``runtimes`` may be a single runtime (returned as-is when no
        clause or device 0 is requested) or a sequence indexed by
        device number.
        """
        if isinstance(runtimes, Runtime):
            if self.device_num not in (None, 0):
                raise DirectiveError(
                    f"region requests device({self.device_num}) but only one "
                    f"runtime was provided"
                )
            return runtimes
        idx = self.device_num or 0
        try:
            return runtimes[idx]
        except IndexError as exc:
            raise DirectiveError(
                f"device({idx}) requested but only {len(runtimes)} runtimes given"
            ) from exc

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind(self, arrays: Dict[str, np.ndarray]) -> RegionPlan:
        """Resolve clauses against host arrays into a
        :class:`RegionPlan` (without memory tuning).

        Split-dimension lengths left as ``-1`` placeholders by the
        parser are bound to the arrays' actual extents here.
        """
        specs: Dict[str, SplitSpec] = {}
        dtypes: Dict[str, np.dtype] = {}
        shapes: Dict[str, tuple] = {}
        for clause in self.pipeline_maps:
            if clause.var not in arrays:
                raise DirectiveError(f"no host array bound for {clause.var!r}")
            host = arrays[clause.var]
            dims = list(clause.dims)
            lo, length = dims[clause.split_dim]
            if length == -1:
                dims[clause.split_dim] = (0, int(host.shape[clause.split_dim]))
                clause = replace(clause, dims=tuple(dims))
            spec = SplitSpec.derive(clause, self.loop)
            spec.validate_shape(tuple(host.shape))
            specs[clause.var] = spec
            dtypes[clause.var] = np.dtype(host.dtype)
            shapes[clause.var] = tuple(host.shape)
        residents: Dict[str, MapClause] = {}
        for m in self.maps:
            if m.var not in arrays:
                raise DirectiveError(f"no host array bound for {m.var!r}")
            residents[m.var] = m
            dtypes[m.var] = np.dtype(arrays[m.var].dtype)
            shapes[m.var] = tuple(arrays[m.var].shape)
        return RegionPlan(
            loop=self.loop,
            chunk_size=self.pipeline.chunk_size,
            num_streams=self.pipeline.num_streams,
            schedule=self.pipeline.schedule,
            specs=specs,
            residents=residents,
            dtypes=dtypes,
            shapes=shapes,
            halo_mode=self.halo_mode,
        )

    def plan_for(self, runtime: Runtime, arrays: Dict[str, np.ndarray]) -> RegionPlan:
        """Bind and apply memory tuning (explicit limit, else free
        device memory)."""
        plan = self.bind(arrays)
        limit = (
            self.mem_limit.limit_bytes
            if self.mem_limit is not None
            else runtime.device.memory.free
        )
        return tune_plan(plan, limit)

    # ------------------------------------------------------------------
    # execution models
    # ------------------------------------------------------------------
    def run(
        self,
        runtime: Optional[Runtime],
        arrays: Dict[str, np.ndarray],
        kernel: RegionKernel,
        *,
        model: str = "buffer",
        fault_policy=None,
        devices=None,
        weights=None,
        integrity: str = "off",
        watchdog=None,
    ) -> RegionResult:
        """Execute the region under one of the paper's three models.

        Parameters
        ----------
        model:
            ``"buffer"`` (default; alias ``"pipelined-buffer"``) runs
            the proposed runtime with ring buffers and memory tuning;
            ``"pipelined"`` the hand-coded OpenACC baseline;
            ``"naive"`` the synchronous whole-array baseline.  All
            three share the clauses and the kernel — only data movement
            differs.
        fault_policy:
            Optional :class:`~repro.faults.FaultPolicy`.  When given,
            execution is self-healing: faulted chunks are replayed with
            backoff (buffer model), whole attempts are retried
            (baselines), memory pressure re-tunes the plan, and the
            ``degrade`` chain falls back across models.  Exhaustion
            raises :class:`~repro.faults.RegionFailure` with per-chunk
            status instead of a bare fault error.
        devices:
            Optional placement spec: a device count, a sequence of
            profile names / :class:`Device` / :class:`Runtime` entries,
            or a :class:`~repro.serve.DevicePool`.  When given, the
            region is **sharded** across those devices on a shared
            virtual clock (``model`` must be ``"buffer"``) and a
            :class:`~repro.core.multidevice.ShardedResult` is returned.
            ``runtime`` may be ``None``; when given, it supplies the
            default profile for a bare count.  See
            :func:`~repro.core.multidevice.execute_sharded`.
        weights:
            Optional per-device split weights for the ``devices`` path
            (defaults to probed throughput).
        integrity:
            Silent-failure defense mode (``"off"`` / ``"checksum"`` /
            ``"vote"``; see :mod:`repro.integrity`).  Buffer model
            only: the baselines have no chunk machinery to verify or
            replay with.
        watchdog:
            Optional straggler watchdog for the ``devices`` path:
            ``True`` (defaults) or a
            :class:`~repro.core.multidevice.WatchdogConfig`.  Work is
            re-split away from a slow-but-alive shard whose progress
            falls behind its peers.
        """
        from repro.integrity import validate_integrity

        canonical = _MODEL_ALIASES.get(model)
        if canonical is None:
            raise DirectiveError(
                f"unknown execution model {model!r}; expected one of "
                f"'buffer' (alias 'pipelined-buffer'), 'pipelined', 'naive'"
            )
        integrity = validate_integrity(integrity)
        if integrity != "off" and canonical != "buffer":
            raise DirectiveError(
                f"integrity {integrity!r} requires the 'buffer' model "
                f"(chunk-granular verification), not {model!r}"
            )
        if watchdog and devices is None:
            raise DirectiveError(
                "the straggler watchdog requires a devices= placement "
                "(it compares progress across shards)"
            )
        if devices is not None:
            if canonical != "buffer":
                raise DirectiveError(
                    f"devices= placement requires the 'buffer' model, "
                    f"not {model!r}"
                )
            from repro.core.multidevice import execute_sharded
            from repro.core.placement import resolve_runtimes
            from repro.sim.varray import is_virtual

            virtual = (
                runtime.virtual
                if runtime is not None
                else any(is_virtual(a) for a in arrays.values())
            )
            runtimes = resolve_runtimes(devices, base=runtime, virtual=virtual)
            return execute_sharded(
                runtimes, self, arrays, kernel,
                weights=weights, policy=fault_policy,
                integrity=integrity, watchdog=watchdog,
            )
        if runtime is None:
            raise DirectiveError("run() needs a runtime (or a devices= spec)")
        if fault_policy is not None:
            from repro.core.recovery import run_with_recovery

            return run_with_recovery(
                self, runtime, arrays, kernel, canonical, fault_policy,
                integrity=integrity,
            )
        if canonical == "buffer":
            plan = self.plan_for(runtime, arrays)
            return execute_pipeline(
                runtime, plan, arrays, kernel, integrity=integrity
            )
        plan = self.bind(arrays)  # full-footprint baselines: no buffer tuning
        if canonical == "pipelined":
            return execute_manual_pipelined(runtime, plan, arrays, kernel)
        return execute_naive(runtime, plan, arrays, kernel)

    def run_pipelined(
        self,
        runtime: Runtime,
        arrays: Dict[str, np.ndarray],
        kernel: RegionKernel,
    ) -> RegionResult:
        """Deprecated alias of ``run(..., model="pipelined")``."""
        warnings.warn(
            "TargetRegion.run_pipelined() is deprecated; "
            "use run(..., model='pipelined')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(runtime, arrays, kernel, model="pipelined")

    def run_naive(
        self,
        runtime: Runtime,
        arrays: Dict[str, np.ndarray],
        kernel: RegionKernel,
    ) -> RegionResult:
        """Deprecated alias of ``run(..., model="naive")``."""
        warnings.warn(
            "TargetRegion.run_naive() is deprecated; "
            "use run(..., model='naive')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(runtime, arrays, kernel, model="naive")
