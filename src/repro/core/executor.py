"""The Pipelined-buffer executor: the proposed runtime itself.

For each chunk ``i`` (assigned round-robin to stream ``i % S``) the
executor:

1. computes the chunk's **dependency slices** per ``pipeline_map``
   array ("Our framework calculates dependencies of the current
   chunk"),
2. enqueues H2D transfers for the *new* portion of each input slice —
   data already resident from earlier chunks is not re-transferred in
   ``dedup`` mode ("removes the data that only previous chunks
   require"); ``duplicate`` mode re-sends the whole slice,
3. guards ring-buffer **slot reuse** with event dependencies: a
   transfer into buffer positions ``p`` waits for the kernels (and
   drains) of the previous lap that still use ``p - capacity``,
4. launches the chunk's kernel once its inputs' transfer events have
   completed (cross-stream transfers included), with the ring-buffer
   index-translation cost applied, and
5. enqueues D2H transfers of the chunk's output slices, recording
   events that future laps' reuse checks consult.

Resident (``map``) arrays are allocated whole and copied synchronously
at region entry/exit, like ordinary OpenACC data regions.

The executor works identically in real mode (payloads move NumPy data;
results are verified against references) and virtual mode (metadata
only; same timeline and memory accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.core.plan import Chunk, RegionPlan
from repro.core.ringbuffer import DeviceRing
from repro.gpu.runtime import Runtime
from repro.sim.engine import EventToken
from repro.sim.trace import Timeline, overlap_fraction, time_distribution
from repro.sim.varray import is_virtual

__all__ = ["RegionResult", "execute_pipeline"]


@dataclass
class RegionResult:
    """Measured outcome of executing a region under one model.

    Attributes
    ----------
    model:
        ``"naive"``, ``"pipelined"``, or ``"pipelined-buffer"``.
    elapsed:
        End-to-end virtual seconds for the region (transfers included),
        the quantity the paper reports speedups over.
    memory_peak:
        Peak device memory during the region, **including** the driver
        context overhead — what a profiler such as ``nvidia-smi``
        reports and what Figures 6/10 plot.
    data_peak:
        Peak memory minus the context overhead (the region's own
        allocations).
    timeline:
        All commands the region retired.
    nchunks, chunk_size, num_streams:
        Effective pipeline shape (1/NA for the naive model).
    """

    model: str
    elapsed: float
    memory_peak: int
    data_peak: int
    timeline: Timeline
    nchunks: int
    chunk_size: int
    num_streams: int

    @property
    def time_distribution(self) -> Dict[str, float]:
        """Busy seconds per command kind (h2d/d2h/kernel)."""
        return time_distribution(self.timeline)

    @property
    def overlap(self) -> float:
        """Fraction of transfer time hidden under kernels."""
        return overlap_fraction(self.timeline)

    def speedup_over(self, other: "RegionResult") -> float:
        """``other.elapsed / self.elapsed`` (how much faster than other)."""
        return other.elapsed / self.elapsed

    def memory_saving_over(self, other: "RegionResult") -> float:
        """Fractional memory reduction vs ``other`` (0.97 = 97% less)."""
        return 1.0 - self.memory_peak / other.memory_peak

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable digest (JSON-safe) for harness output."""
        d = self.time_distribution
        return {
            "model": self.model,
            "elapsed_s": self.elapsed,
            "memory_peak_bytes": int(self.memory_peak),
            "data_peak_bytes": int(self.data_peak),
            "nchunks": self.nchunks,
            "chunk_size": self.chunk_size,
            "num_streams": self.num_streams,
            "busy_s": {k: d[k] for k in ("h2d", "d2h", "kernel")},
            "overlap": self.overlap,
            "commands": len(self.timeline),
        }

    def summary(self) -> str:
        """Multi-line human-readable digest of the region's execution."""
        d = self.time_distribution
        util = self.timeline.engine_utilization()
        util_s = "  ".join(f"{e}={u:.0%}" for e, u in sorted(util.items()))
        return "\n".join(
            [
                f"model            {self.model}",
                f"elapsed          {self.elapsed * 1e3:.3f} ms",
                f"chunks           {self.nchunks} (chunk_size={self.chunk_size}, "
                f"streams={self.num_streams})",
                f"busy time        h2d={d['h2d'] * 1e3:.3f} ms  "
                f"d2h={d['d2h'] * 1e3:.3f} ms  kernel={d['kernel'] * 1e3:.3f} ms",
                f"transfer overlap {self.overlap:.1%}",
                f"engine util      {util_s}",
                f"device memory    peak {self.memory_peak / 1e6:.1f} MB "
                f"(data {self.data_peak / 1e6:.1f} MB + context)",
            ]
        )


class _Measurer:
    """Captures elapsed/memory/timeline deltas around a region."""

    def __init__(self, runtime: Runtime) -> None:
        self.rt = runtime
        self.t0 = runtime.elapsed
        self.n0 = len(runtime.device.sim.completed)
        runtime.device.memory.reset_peak()

    def finish(
        self, model: str, nchunks: int, chunk_size: int, num_streams: int
    ) -> RegionResult:
        """Close the measurement window and package the result."""
        rt = self.rt
        from repro.sim.trace import TimelineRecord
        from repro.sim.stream import SimStream

        recs = []
        for c in rt.device.sim.completed[self.n0:]:
            recs.append(
                TimelineRecord(
                    kind=c.kind,
                    label=c.label,
                    stream=c.stream.name if isinstance(c.stream, SimStream) else "",
                    engine=c.engine,
                    enqueue=c.enqueue_time,
                    start=c.start_time,
                    finish=c.finish_time,
                    nbytes=c.nbytes,
                )
            )
        mem = rt.device.memory
        return RegionResult(
            model=model,
            elapsed=rt.elapsed - self.t0,
            memory_peak=mem.peak,
            data_peak=mem.peak - mem.context_overhead,
            timeline=Timeline(recs),
            nchunks=nchunks,
            chunk_size=chunk_size,
            num_streams=num_streams,
        )


@dataclass
class _Records:
    """Event bookkeeping for one pipelined array."""

    h2d: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    readers: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    d2h: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    covered_hi: Optional[int] = None


def _intersecting(
    records: List[Tuple[int, int, EventToken]], lo: int, hi: int
) -> List[EventToken]:
    """Tokens of records whose range intersects ``[lo, hi)``."""
    return [tok for (rlo, rhi, tok) in records if rlo < hi and rhi > lo]


def _prune(records: List[Tuple[int, int, EventToken]], lo: int) -> None:
    """Drop records that can never intersect future (monotone) ranges."""
    records[:] = [(rlo, rhi, tok) for (rlo, rhi, tok) in records if rhi > lo]


def _axis_slice(ndim: int, dim: int, lo: int, hi: int) -> tuple:
    idx: list = [slice(None)] * ndim
    idx[dim] = slice(lo, hi)
    return tuple(idx)


def execute_pipeline(
    runtime: Runtime,
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
) -> RegionResult:
    """Run a region under the proposed Pipelined-buffer model.

    Parameters
    ----------
    runtime:
        The host runtime; its ``call_overhead_scale`` is managed for
        the duration (the proposed runtime's per-stream bookkeeping is
        cheap: ``runtime_stream_factor``).
    plan:
        A resolved (and, if requested, memory-limit-tuned) plan.
    arrays:
        Host arrays keyed by clause variable names.  Real ndarrays or
        :class:`~repro.sim.varray.VirtualArray` (all the same mode).
    kernel:
        The region kernel.
    """
    profile = runtime.profile
    chunks = plan.chunks()
    streams_n = min(plan.num_streams, len(chunks))
    meas = _Measurer(runtime)
    old_scale = runtime.call_overhead_scale
    old_contention = runtime.command_overhead
    runtime.call_overhead_scale = 1.0 + profile.runtime_stream_factor * (streams_n - 1)
    runtime.command_overhead = profile.runtime_stream_contention * (streams_n - 1)
    try:
        streams = [runtime.create_stream(f"pipe{i}") for i in range(streams_n)]

        # resident arrays: whole-array data region
        resident_dev: Dict[str, object] = {}
        for var, clause in plan.residents.items():
            host = arrays[var]
            dev = runtime.malloc(host.shape, host.dtype, tag=f"{var}:resident")
            if clause.direction in ("to", "tofrom"):
                runtime.memcpy_h2d(dev, host, label=f"h2d:{var}:resident")
            resident_dev[var] = dev

        # ring buffers
        rings: Dict[str, DeviceRing] = {}
        for var, spec in plan.specs.items():
            host = arrays[var]
            rings[var] = DeviceRing(
                runtime,
                host.shape,
                spec.split_dim,
                plan.ring_capacity(var),
                host.dtype,
                tag=f"{var}:ring",
            )

        books: Dict[str, _Records] = {v: _Records() for v in plan.specs}
        virtual = any(is_virtual(arrays[v]) for v in arrays) or runtime.virtual

        def make_kernel_payload(chunk: Chunk):
            if virtual:
                return None

            def run() -> None:
                views: Dict[str, ChunkView] = {}
                out_ranges: Dict[str, Tuple[int, int]] = {}
                for var, spec in plan.specs.items():
                    lo, hi = plan.chunk_dep_range(var, chunk)
                    ring = rings[var]
                    cl = spec.clause
                    if cl.is_input:
                        data = ring.gather(lo, hi)
                    else:
                        shape = list(ring.host_shape)
                        shape[spec.split_dim] = hi - lo
                        data = np.zeros(shape, dtype=arrays[var].dtype)
                    views[var] = ChunkView(data, spec.split_dim, lo, hi)
                    if cl.is_output:
                        out_ranges[var] = (lo, hi)
                for var, dev in resident_dev.items():
                    views[var] = ChunkView(dev.backing, None, 0, dev.shape[0])
                kernel.run(views, chunk.t0, chunk.t1)
                for var, (lo, hi) in out_ranges.items():
                    rings[var].scatter(views[var].data, lo, hi)

            return run

        for chunk in chunks:
            st = streams[chunk.index % streams_n]
            in_tokens: List[EventToken] = []
            out_reuse: List[EventToken] = []

            for var, spec in plan.specs.items():
                cl = spec.clause
                lo, hi = plan.chunk_dep_range(var, chunk)
                ring = rings[var]
                book = books[var]
                if cl.is_input:
                    if plan.halo_mode == "dedup" and book.covered_hi is not None:
                        new_lo = max(lo, book.covered_hi)
                    else:
                        new_lo = lo
                    if new_lo < hi:
                        host = arrays[var]
                        for piece in ring.pieces(new_lo, hi):
                            reuse = _intersecting(
                                book.readers,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            reuse += _intersecting(
                                book.d2h,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            rows, row_bytes = ring.transfer_geometry(piece)
                            tok = EventToken(f"h2d:{var}:{piece.g_lo}")
                            runtime.memcpy_h2d_async(
                                ring.device_view(piece),
                                ring.host_section(host, piece),
                                st,
                                waits=reuse,
                                records=[tok],
                                rows=rows,
                                row_bytes=row_bytes,
                                label=f"h2d:{var}[{piece.g_lo}:{piece.g_hi})",
                            )
                            book.h2d.append((piece.g_lo, piece.g_hi, tok))
                        book.covered_hi = max(book.covered_hi or hi, hi)
                    in_tokens.extend(_intersecting(book.h2d, lo, hi))
                    _prune(book.h2d, lo)
                    _prune(book.readers, lo - ring.capacity)
                if cl.is_output:
                    # a kernel writing positions p must wait until the
                    # previous lap's data at p has drained to the host
                    # (and, for tofrom arrays, been read by its kernels)
                    out_reuse.extend(
                        _intersecting(book.d2h, lo - ring.capacity, hi - ring.capacity)
                    )
                    out_reuse.extend(
                        _intersecting(book.readers, lo - ring.capacity, hi - ring.capacity)
                    )
                    _prune(book.d2h, lo - ring.capacity)

            ktok = EventToken(f"kernel:{chunk.index}")
            runtime.launch(
                kernel.chunk_cost(profile, chunk.t0, chunk.t1, translated=True),
                make_kernel_payload(chunk),
                st,
                waits=in_tokens + out_reuse,
                records=[ktok],
                label=f"{kernel.name}[{chunk.t0}:{chunk.t1})",
            )

            for var, spec in plan.specs.items():
                cl = spec.clause
                book = books[var]
                lo, hi = plan.chunk_dep_range(var, chunk)
                if cl.is_input:
                    book.readers.append((lo, hi, ktok))
                if cl.is_output:
                    ring = rings[var]
                    host = arrays[var]
                    for piece in ring.pieces(lo, hi):
                        rows, row_bytes = ring.transfer_geometry(piece)
                        dtok = EventToken(f"d2h:{var}:{piece.g_lo}")
                        runtime.memcpy_d2h_async(
                            ring.host_section(host, piece),
                            ring.device_view(piece),
                            st,
                            records=[dtok],
                            rows=rows,
                            row_bytes=row_bytes,
                            label=f"d2h:{var}[{piece.g_lo}:{piece.g_hi})",
                        )
                        book.d2h.append((piece.g_lo, piece.g_hi, dtok))

        runtime.synchronize()

        # resident copy-out and cleanup
        for var, clause in plan.residents.items():
            if clause.direction in ("from", "tofrom"):
                runtime.memcpy_d2h(arrays[var], resident_dev[var], label=f"d2h:{var}:resident")
        for dev in resident_dev.values():
            runtime.free(dev)
        for ring in rings.values():
            runtime.free(ring.darr)
    finally:
        runtime.call_overhead_scale = old_scale
        runtime.command_overhead = old_contention

    return meas.finish(
        "pipelined-buffer", len(chunks), plan.chunk_size, streams_n
    )
