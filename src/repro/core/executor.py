"""The Pipelined-buffer executor: the proposed runtime itself.

For each chunk ``i`` (assigned round-robin to stream ``i % S``) the
executor:

1. computes the chunk's **dependency slices** per ``pipeline_map``
   array ("Our framework calculates dependencies of the current
   chunk"),
2. enqueues H2D transfers for the *new* portion of each input slice —
   data already resident from earlier chunks is not re-transferred in
   ``dedup`` mode ("removes the data that only previous chunks
   require"); ``duplicate`` mode re-sends the whole slice,
3. guards ring-buffer **slot reuse** with event dependencies: a
   transfer into buffer positions ``p`` waits for the kernels (and
   drains) of the previous lap that still use ``p - capacity``,
4. launches the chunk's kernel once its inputs' transfer events have
   completed (cross-stream transfers included), with the ring-buffer
   index-translation cost applied, and
5. enqueues D2H transfers of the chunk's output slices, recording
   events that future laps' reuse checks consult.

Resident (``map``) arrays are allocated whole and copied synchronously
at region entry/exit, like ordinary OpenACC data regions.

The executor works identically in real mode (payloads move NumPy data;
results are verified against references) and virtual mode (metadata
only; same timeline and memory accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.core.plan import Chunk, RegionPlan
from repro.core.ringbuffer import DeviceRing
from repro.gpu.runtime import Runtime
from repro.sim.engine import EventToken
from repro.sim.trace import Timeline, overlap_fraction, time_distribution
from repro.sim.varray import is_virtual

__all__ = ["RegionResult", "execute_pipeline"]


@dataclass
class RegionResult:
    """Measured outcome of executing a region under one model.

    Attributes
    ----------
    model:
        ``"naive"``, ``"pipelined"``, or ``"pipelined-buffer"``.
    elapsed:
        End-to-end virtual seconds for the region (transfers included),
        the quantity the paper reports speedups over.
    memory_peak:
        Peak device memory during the region, **including** the driver
        context overhead — what a profiler such as ``nvidia-smi``
        reports and what Figures 6/10 plot.
    data_peak:
        Peak memory minus the context overhead (the region's own
        allocations).
    timeline:
        All commands the region retired.
    nchunks, chunk_size, num_streams:
        Effective pipeline shape (1/NA for the naive model).
    metrics:
        :meth:`repro.obs.MetricsRegistry.snapshot` taken when the
        region finished — populated only when the runtime carries an
        enabled :class:`~repro.obs.Observability`; ``{}`` otherwise.
    """

    model: str
    elapsed: float
    memory_peak: int
    data_peak: int
    timeline: Timeline
    nchunks: int
    chunk_size: int
    num_streams: int
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def time_distribution(self) -> Dict[str, float]:
        """Busy seconds per command kind (h2d/d2h/kernel)."""
        return time_distribution(self.timeline)

    @property
    def overlap(self) -> float:
        """Fraction of transfer time hidden under kernels."""
        return overlap_fraction(self.timeline)

    def speedup_over(self, other: "RegionResult") -> float:
        """``other.elapsed / self.elapsed`` (how much faster than other)."""
        return other.elapsed / self.elapsed

    def memory_saving_over(self, other: "RegionResult") -> float:
        """Fractional memory reduction vs ``other`` (0.97 = 97% less)."""
        return 1.0 - self.memory_peak / other.memory_peak

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable digest (JSON-safe) for harness output."""
        dist = self.time_distribution
        d: Dict[str, object] = {
            "model": self.model,
            "elapsed_s": self.elapsed,
            "memory_peak_bytes": int(self.memory_peak),
            "data_peak_bytes": int(self.data_peak),
            "nchunks": self.nchunks,
            "chunk_size": self.chunk_size,
            "num_streams": self.num_streams,
            "busy_s": {k: dist[k] for k in ("h2d", "d2h", "kernel")},
            "overlap": self.overlap,
            "commands": len(self.timeline),
        }
        if self.metrics:
            d["metrics"] = self.metrics
        return d

    def summary(self) -> str:
        """Multi-line human-readable digest of the region's execution."""
        d = self.time_distribution
        util = self.timeline.engine_utilization()
        util_s = "  ".join(f"{e}={u:.0%}" for e, u in sorted(util.items()))
        return "\n".join(
            [
                f"model            {self.model}",
                f"elapsed          {self.elapsed * 1e3:.3f} ms",
                f"chunks           {self.nchunks} (chunk_size={self.chunk_size}, "
                f"streams={self.num_streams})",
                f"busy time        h2d={d['h2d'] * 1e3:.3f} ms  "
                f"d2h={d['d2h'] * 1e3:.3f} ms  kernel={d['kernel'] * 1e3:.3f} ms",
                f"transfer overlap {self.overlap:.1%}",
                f"engine util      {util_s}",
                f"device memory    peak {self.memory_peak / 1e6:.1f} MB "
                f"(data {self.data_peak / 1e6:.1f} MB + context)",
            ]
        )


class _Measurer:
    """Captures elapsed/memory/timeline deltas around a region."""

    def __init__(self, runtime: Runtime) -> None:
        self.rt = runtime
        self.t0 = runtime.elapsed
        self.n0 = len(runtime.device.sim.completed)
        runtime.device.memory.reset_peak()

    def finish(
        self, model: str, nchunks: int, chunk_size: int, num_streams: int
    ) -> RegionResult:
        """Close the measurement window and package the result."""
        rt = self.rt
        from repro.sim.trace import TimelineRecord
        from repro.sim.stream import SimStream

        recs = []
        for c in rt.device.sim.completed[self.n0:]:
            recs.append(
                TimelineRecord(
                    kind=c.kind,
                    label=c.label,
                    stream=c.stream.name if isinstance(c.stream, SimStream) else "",
                    engine=c.engine,
                    enqueue=c.enqueue_time,
                    start=c.start_time,
                    finish=c.finish_time,
                    nbytes=c.nbytes,
                )
            )
        mem = rt.device.memory
        timeline = Timeline(recs)
        snapshot: Dict[str, object] = {}
        m = rt.metrics
        if m.enabled:
            for eng, util in timeline.engine_utilization().items():
                m.gauge(f"engine.util.{eng}").set(util)
            m.gauge("mem.peak").set(mem.peak)
            m.gauge("mem.data_peak").set(mem.peak - mem.context_overhead)
            snapshot = m.snapshot()
        return RegionResult(
            model=model,
            elapsed=rt.elapsed - self.t0,
            memory_peak=mem.peak,
            data_peak=mem.peak - mem.context_overhead,
            timeline=timeline,
            nchunks=nchunks,
            chunk_size=chunk_size,
            num_streams=num_streams,
            metrics=snapshot,
        )


@dataclass
class _Records:
    """Event bookkeeping for one pipelined array."""

    h2d: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    readers: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    d2h: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    covered_hi: Optional[int] = None


def _intersecting(
    records: List[Tuple[int, int, EventToken]], lo: int, hi: int
) -> List[EventToken]:
    """Tokens of records whose range intersects ``[lo, hi)``."""
    return [tok for (rlo, rhi, tok) in records if rlo < hi and rhi > lo]


def _prune(records: List[Tuple[int, int, EventToken]], lo: int) -> None:
    """Drop records that can never intersect future (monotone) ranges."""
    records[:] = [(rlo, rhi, tok) for (rlo, rhi, tok) in records if rhi > lo]


def _axis_slice(ndim: int, dim: int, lo: int, hi: int) -> tuple:
    idx: list = [slice(None)] * ndim
    idx[dim] = slice(lo, hi)
    return tuple(idx)


def execute_pipeline(
    runtime: Runtime,
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
) -> RegionResult:
    """Run a region under the proposed Pipelined-buffer model.

    Parameters
    ----------
    runtime:
        The host runtime; its ``call_overhead_scale`` is managed for
        the duration (the proposed runtime's per-stream bookkeeping is
        cheap: ``runtime_stream_factor``).
    plan:
        A resolved (and, if requested, memory-limit-tuned) plan.
    arrays:
        Host arrays keyed by clause variable names.  Real ndarrays or
        :class:`~repro.sim.varray.VirtualArray` (all the same mode).
    kernel:
        The region kernel.
    """
    profile = runtime.profile
    chunks = plan.chunks()
    streams_n = min(plan.num_streams, len(chunks))
    meas = _Measurer(runtime)
    tracer = runtime.tracer
    tr_on = tracer.enabled
    m_on = runtime.metrics.enabled
    # (command, gating tokens) pairs for slot-reuse stall accounting;
    # resolved after synchronize() once every token has a finish time
    stall_watch: list = []
    rspan = None
    if tr_on:
        rspan = tracer.begin(
            f"region:{kernel.name}", "region",
            model="pipelined-buffer", nchunks=len(chunks),
            chunk_size=plan.chunk_size, streams=streams_n,
        )
    old_scale = runtime.call_overhead_scale
    old_contention = runtime.command_overhead
    runtime.call_overhead_scale = 1.0 + profile.runtime_stream_factor * (streams_n - 1)
    runtime.command_overhead = profile.runtime_stream_contention * (streams_n - 1)
    try:
        streams = [runtime.create_stream(f"pipe{i}") for i in range(streams_n)]

        # resident arrays: whole-array data region
        resident_dev: Dict[str, object] = {}
        for var, clause in plan.residents.items():
            host = arrays[var]
            dev = runtime.malloc(host.shape, host.dtype, tag=f"{var}:resident")
            if clause.direction in ("to", "tofrom"):
                runtime.memcpy_h2d(dev, host, label=f"h2d:{var}:resident")
            resident_dev[var] = dev

        # ring buffers
        rings: Dict[str, DeviceRing] = {}
        for var, spec in plan.specs.items():
            host = arrays[var]
            rings[var] = DeviceRing(
                runtime,
                host.shape,
                spec.split_dim,
                plan.ring_capacity(var),
                host.dtype,
                tag=f"{var}:ring",
            )

        books: Dict[str, _Records] = {v: _Records() for v in plan.specs}
        virtual = any(is_virtual(arrays[v]) for v in arrays) or runtime.virtual

        def make_kernel_payload(chunk: Chunk):
            if virtual:
                return None

            def run() -> None:
                views: Dict[str, ChunkView] = {}
                out_ranges: Dict[str, Tuple[int, int]] = {}
                for var, spec in plan.specs.items():
                    lo, hi = plan.chunk_dep_range(var, chunk)
                    ring = rings[var]
                    cl = spec.clause
                    if cl.is_input:
                        data = ring.gather(lo, hi)
                    else:
                        shape = list(ring.host_shape)
                        shape[spec.split_dim] = hi - lo
                        data = np.zeros(shape, dtype=arrays[var].dtype)
                    views[var] = ChunkView(data, spec.split_dim, lo, hi)
                    if cl.is_output:
                        out_ranges[var] = (lo, hi)
                for var, dev in resident_dev.items():
                    views[var] = ChunkView(dev.backing, None, 0, dev.shape[0])
                kernel.run(views, chunk.t0, chunk.t1)
                for var, (lo, hi) in out_ranges.items():
                    rings[var].scatter(views[var].data, lo, hi)

            return run

        for chunk in chunks:
            st = streams[chunk.index % streams_n]
            in_tokens: List[EventToken] = []
            out_reuse: List[EventToken] = []

            cspan = None
            if tr_on:
                cspan = tracer.begin(
                    f"chunk:{chunk.index}", "chunk",
                    chunk=chunk.index, stream=st.name, t0=chunk.t0, t1=chunk.t1,
                )
            # plan: resolve this chunk's dependency slices and ring slots
            with tracer.span("plan", "phase", chunk=chunk.index) as psp:
                ranges = {v: plan.chunk_dep_range(v, chunk) for v in plan.specs}
                if tr_on:
                    psp.set(slots={
                        v: ranges[v][0] % rings[v].capacity for v in ranges
                    })

            ph2d = tracer.begin("h2d", "phase", chunk=chunk.index) if tr_on else None
            for var, spec in plan.specs.items():
                cl = spec.clause
                lo, hi = ranges[var]
                ring = rings[var]
                book = books[var]
                if cl.is_input:
                    if plan.halo_mode == "dedup" and book.covered_hi is not None:
                        new_lo = max(lo, book.covered_hi)
                    else:
                        new_lo = lo
                    if new_lo < hi:
                        host = arrays[var]
                        for piece in ring.pieces(new_lo, hi):
                            reuse = _intersecting(
                                book.readers,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            reuse += _intersecting(
                                book.d2h,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            rows, row_bytes = ring.transfer_geometry(piece)
                            tok = EventToken(f"h2d:{var}:{piece.g_lo}")
                            cmd = runtime.memcpy_h2d_async(
                                ring.device_view(piece),
                                ring.host_section(host, piece),
                                st,
                                waits=reuse,
                                records=[tok],
                                rows=rows,
                                row_bytes=row_bytes,
                                label=f"h2d:{var}[{piece.g_lo}:{piece.g_hi})",
                            )
                            if m_on and reuse:
                                stall_watch.append((cmd, list(reuse)))
                            book.h2d.append((piece.g_lo, piece.g_hi, tok))
                        book.covered_hi = max(book.covered_hi or hi, hi)
                    in_tokens.extend(_intersecting(book.h2d, lo, hi))
                    _prune(book.h2d, lo)
                    _prune(book.readers, lo - ring.capacity)
                if cl.is_output:
                    # a kernel writing positions p must wait until the
                    # previous lap's data at p has drained to the host
                    # (and, for tofrom arrays, been read by its kernels)
                    out_reuse.extend(
                        _intersecting(book.d2h, lo - ring.capacity, hi - ring.capacity)
                    )
                    out_reuse.extend(
                        _intersecting(book.readers, lo - ring.capacity, hi - ring.capacity)
                    )
                    _prune(book.d2h, lo - ring.capacity)
            if tr_on:
                tracer.end(ph2d)
                pk = tracer.begin("kernel", "phase", chunk=chunk.index,
                                  waits=len(in_tokens) + len(out_reuse))

            ktok = EventToken(f"kernel:{chunk.index}")
            kcmd = runtime.launch(
                kernel.chunk_cost(profile, chunk.t0, chunk.t1, translated=True),
                make_kernel_payload(chunk),
                st,
                waits=in_tokens + out_reuse,
                records=[ktok],
                label=f"{kernel.name}[{chunk.t0}:{chunk.t1})",
            )
            if m_on and out_reuse:
                stall_watch.append((kcmd, list(out_reuse)))
            if tr_on:
                tracer.end(pk)
                pd2h = tracer.begin("d2h", "phase", chunk=chunk.index)

            for var, spec in plan.specs.items():
                cl = spec.clause
                book = books[var]
                lo, hi = ranges[var]
                if cl.is_input:
                    book.readers.append((lo, hi, ktok))
                if cl.is_output:
                    ring = rings[var]
                    host = arrays[var]
                    for piece in ring.pieces(lo, hi):
                        rows, row_bytes = ring.transfer_geometry(piece)
                        dtok = EventToken(f"d2h:{var}:{piece.g_lo}")
                        runtime.memcpy_d2h_async(
                            ring.host_section(host, piece),
                            ring.device_view(piece),
                            st,
                            records=[dtok],
                            rows=rows,
                            row_bytes=row_bytes,
                            label=f"d2h:{var}[{piece.g_lo}:{piece.g_hi})",
                        )
                        book.d2h.append((piece.g_lo, piece.g_hi, dtok))
            if tr_on:
                tracer.end(pd2h)
                # the slots this chunk's retiring work hands back to the
                # ring for the next lap's transfers
                tracer.instant(
                    "slot-release", "phase", chunk=chunk.index,
                    released={
                        v: [ranges[v][0] % rings[v].capacity, ranges[v][0], ranges[v][1]]
                        for v in ranges
                    },
                )
                tracer.end(cspan)

        runtime.synchronize()

        if m_on and stall_watch:
            # every gating token is resolved now; stall = time a command
            # spent gated past its enqueue by ring-slot reuse
            hist = runtime.metrics.histogram("stall.slot_reuse.seconds")
            total_stall = 0.0
            for cmd, toks in stall_watch:
                gate = max((t.time for t in toks if t.time is not None), default=None)
                if gate is None:
                    continue
                stall = max(0.0, gate - cmd.enqueue_time)
                hist.observe(stall)
                total_stall += stall
            runtime.metrics.counter("stall.slot_reuse.total_seconds").inc(total_stall)

        # resident copy-out and cleanup
        for var, clause in plan.residents.items():
            if clause.direction in ("from", "tofrom"):
                runtime.memcpy_d2h(arrays[var], resident_dev[var], label=f"d2h:{var}:resident")
        for dev in resident_dev.values():
            runtime.free(dev)
        for ring in rings.values():
            runtime.free(ring.darr)
    finally:
        runtime.call_overhead_scale = old_scale
        runtime.command_overhead = old_contention
        if tr_on:
            tracer.end(rspan)

    return meas.finish(
        "pipelined-buffer", len(chunks), plan.chunk_size, streams_n
    )
