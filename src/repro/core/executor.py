"""The Pipelined-buffer executor: the proposed runtime itself.

For each chunk ``i`` (assigned round-robin to stream ``i % S``) the
executor:

1. computes the chunk's **dependency slices** per ``pipeline_map``
   array ("Our framework calculates dependencies of the current
   chunk"),
2. enqueues H2D transfers for the *new* portion of each input slice —
   data already resident from earlier chunks is not re-transferred in
   ``dedup`` mode ("removes the data that only previous chunks
   require"); ``duplicate`` mode re-sends the whole slice,
3. guards ring-buffer **slot reuse** with event dependencies: a
   transfer into buffer positions ``p`` waits for the kernels (and
   drains) of the previous lap that still use ``p - capacity``,
4. launches the chunk's kernel once its inputs' transfer events have
   completed (cross-stream transfers included), with the ring-buffer
   index-translation cost applied, and
5. enqueues D2H transfers of the chunk's output slices, recording
   events that future laps' reuse checks consult.

Resident (``map``) arrays are allocated whole and copied synchronously
at region entry/exit, like ordinary OpenACC data regions.

The executor works identically in real mode (payloads move NumPy data;
results are verified against references) and virtual mode (metadata
only; same timeline and memory accounting).

The per-chunk issue logic lives in :class:`PipelineIssuer`, a resumable
object that issues one chunk's commands per :meth:`~PipelineIssuer.issue_next`
call.  :func:`execute_pipeline` drives one issuer start-to-finish (the
single-region model measured in the paper); :mod:`repro.serve`
interleaves many issuers over a shared device so one tenant's kernels
hide another's transfers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.core.plan import Chunk, RegionPlan
from repro.core.ringbuffer import DeviceRing
from repro.faults.policy import (
    CHUNK_EXHAUSTED,
    CHUNK_FAILED,
    CHUNK_OK,
    CHUNK_RECOVERED,
    FaultPolicy,
    RegionFailure,
)
from repro.gpu.errors import DeviceLostError, InvalidValueError, TransferError
from repro.gpu.runtime import Runtime
from repro.integrity import (
    INTEGRITY_OFF,
    INTEGRITY_VOTE,
    digest,
    validate_integrity,
    verify_cost,
)
from repro.sim.engine import Command, EventToken
from repro.sim.trace import Timeline, overlap_fraction, time_distribution
from repro.sim.varray import is_virtual

__all__ = ["RegionResult", "PipelineIssuer", "execute_pipeline"]


@dataclass
class RegionResult:
    """Measured outcome of executing a region under one model.

    Attributes
    ----------
    model:
        ``"naive"``, ``"pipelined"``, or ``"pipelined-buffer"``.
    elapsed:
        End-to-end virtual seconds for the region (transfers included),
        the quantity the paper reports speedups over.
    memory_peak:
        Peak device memory during the region, **including** the driver
        context overhead — what a profiler such as ``nvidia-smi``
        reports and what Figures 6/10 plot.
    data_peak:
        Peak memory minus the context overhead (the region's own
        allocations).
    timeline:
        All commands the region retired.
    nchunks, chunk_size, num_streams:
        Effective pipeline shape (1/NA for the naive model).
    metrics:
        :meth:`repro.obs.MetricsRegistry.snapshot` taken when the
        region finished — populated only when the runtime carries an
        enabled :class:`~repro.obs.Observability`; ``{}`` otherwise.
    t_begin:
        Virtual time (``runtime.elapsed``) when the measurement window
        opened; ``t_begin + elapsed`` closes it.  The critical-path
        analyzer partitions exactly this window.
    commands:
        The retired :class:`~repro.sim.engine.Command` objects behind
        ``timeline``, with their dependency metadata — the input of
        :func:`repro.obs.analyze.analyze_result`.  Excluded from
        :meth:`to_dict`.
    faults:
        Faulted commands (injected + poisoned) the region absorbed.
        Zero unless a fault injector was installed.
    retries:
        Recovery replays (chunk replays, blocking-copy reissues, whole
        region re-attempts) performed to produce this result.
    verified:
        Integrity checks performed (checksum/vote commands plus
        synchronous replay re-verifications).  Zero with integrity off.
    corruptions:
        Silent corruptions detected (and recovered from) by those
        checks.
    """

    model: str
    elapsed: float
    memory_peak: int
    data_peak: int
    timeline: Timeline
    nchunks: int
    chunk_size: int
    num_streams: int
    metrics: Dict[str, object] = field(default_factory=dict)
    t_begin: float = 0.0
    commands: List[Command] = field(default_factory=list, repr=False)
    faults: int = 0
    retries: int = 0
    verified: int = 0
    corruptions: int = 0

    @property
    def time_distribution(self) -> Dict[str, float]:
        """Busy seconds per command kind (h2d/d2h/kernel)."""
        return time_distribution(self.timeline)

    @property
    def overlap(self) -> float:
        """Fraction of transfer time hidden under kernels."""
        return overlap_fraction(self.timeline)

    def speedup_over(self, other: "RegionResult") -> float:
        """``other.elapsed / self.elapsed`` (how much faster than other)."""
        return other.elapsed / self.elapsed

    def memory_saving_over(self, other: "RegionResult") -> float:
        """Fractional memory reduction vs ``other`` (0.97 = 97% less)."""
        return 1.0 - self.memory_peak / other.memory_peak

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable digest (JSON-safe) for harness output."""
        dist = self.time_distribution
        d: Dict[str, object] = {
            "model": self.model,
            "elapsed_s": self.elapsed,
            "memory_peak_bytes": int(self.memory_peak),
            "data_peak_bytes": int(self.data_peak),
            "nchunks": self.nchunks,
            "chunk_size": self.chunk_size,
            "num_streams": self.num_streams,
            "busy_s": {k: dist[k] for k in ("h2d", "d2h", "kernel")},
            "overlap": self.overlap,
            "commands": len(self.timeline),
        }
        if self.faults or self.retries:
            d["faults"] = self.faults
            d["retries"] = self.retries
        if self.verified or self.corruptions:
            d["verified"] = self.verified
            d["corruptions"] = self.corruptions
        if self.metrics:
            d["metrics"] = self.metrics
        return d

    def summary(self) -> str:
        """Multi-line human-readable digest of the region's execution."""
        d = self.time_distribution
        util = self.timeline.engine_utilization()
        util_s = "  ".join(f"{e}={u:.0%}" for e, u in sorted(util.items()))
        lines = [
            f"model            {self.model}",
            f"elapsed          {self.elapsed * 1e3:.3f} ms",
            f"chunks           {self.nchunks} (chunk_size={self.chunk_size}, "
            f"streams={self.num_streams})",
            f"busy time        h2d={d['h2d'] * 1e3:.3f} ms  "
            f"d2h={d['d2h'] * 1e3:.3f} ms  kernel={d['kernel'] * 1e3:.3f} ms",
            f"transfer overlap {self.overlap:.1%}",
            f"engine util      {util_s}",
            f"device memory    peak {self.memory_peak / 1e6:.1f} MB "
            f"(data {self.data_peak / 1e6:.1f} MB + context)",
        ]
        if self.faults or self.retries:
            lines.append(
                f"fault recovery   {self.faults} fault(s) absorbed, "
                f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}"
            )
        if self.verified or self.corruptions:
            lines.append(
                f"integrity        {self.verified} check(s), "
                f"{self.corruptions} corruption(s) detected"
            )
        return "\n".join(lines)


class _Measurer:
    """Captures elapsed/memory/timeline deltas around a region."""

    def __init__(self, runtime: Runtime) -> None:
        self.rt = runtime
        self.t0 = runtime.elapsed
        self.n0 = len(runtime.device.sim.completed)
        runtime.device.memory.reset_peak()

    def finish(
        self, model: str, nchunks: int, chunk_size: int, num_streams: int,
        faults: int = 0, retries: int = 0, verified: int = 0,
        corruptions: int = 0,
    ) -> RegionResult:
        """Close the measurement window and package the result."""
        rt = self.rt
        from repro.sim.trace import TimelineRecord
        from repro.sim.stream import SimStream

        cmds = list(rt.device.sim.completed[self.n0:])
        recs = []
        for c in cmds:
            recs.append(
                TimelineRecord(
                    kind=c.kind,
                    label=c.label,
                    stream=c.stream.name if isinstance(c.stream, SimStream) else "",
                    engine=c.engine,
                    enqueue=c.enqueue_time,
                    start=c.start_time,
                    finish=c.finish_time,
                    nbytes=c.nbytes,
                )
            )
        mem = rt.device.memory
        timeline = Timeline(recs)
        snapshot: Dict[str, object] = {}
        m = rt.metrics
        if m.enabled:
            for eng, util in timeline.engine_utilization().items():
                m.gauge(f"engine.util.{eng}").set(util)
            m.gauge("mem.peak").set(mem.peak)
            m.gauge("mem.data_peak").set(mem.peak - mem.context_overhead)
            snapshot = m.snapshot()
        return RegionResult(
            model=model,
            elapsed=rt.elapsed - self.t0,
            memory_peak=mem.peak,
            data_peak=mem.peak - mem.context_overhead,
            timeline=timeline,
            nchunks=nchunks,
            chunk_size=chunk_size,
            num_streams=num_streams,
            metrics=snapshot,
            t_begin=self.t0,
            commands=cmds,
            faults=faults,
            retries=retries,
            verified=verified,
            corruptions=corruptions,
        )


@dataclass
class _Records:
    """Event bookkeeping for one pipelined array."""

    h2d: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    readers: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    d2h: List[Tuple[int, int, EventToken]] = field(default_factory=list)
    covered_hi: Optional[int] = None


def _intersecting(
    records: List[Tuple[int, int, EventToken]], lo: int, hi: int
) -> List[EventToken]:
    """Tokens of records whose range intersects ``[lo, hi)``."""
    return [tok for (rlo, rhi, tok) in records if rlo < hi and rhi > lo]


def _prune(records: List[Tuple[int, int, EventToken]], lo: int) -> None:
    """Drop records that can never intersect future (monotone) ranges."""
    records[:] = [(rlo, rhi, tok) for (rlo, rhi, tok) in records if rhi > lo]


def _axis_slice(ndim: int, dim: int, lo: int, hi: int) -> tuple:
    idx: list = [slice(None)] * ndim
    idx[dim] = slice(lo, hi)
    return tuple(idx)


def _cleanup_after_failure(runtime: Runtime, device_arrays, claim=None) -> None:
    """Best-effort teardown after a failed region.

    Drains the device without letting sync-point fault reporting mask
    the original exception, claims any fault backlog (via ``claim``
    when given, so a scheduler can route co-tenant faults to their
    owners instead of dropping them), and releases the region's device
    allocations so a degraded re-attempt (or the caller) starts from a
    clean allocator.
    """
    old_defer, runtime.defer_faults = runtime.defer_faults, True
    try:
        try:
            runtime.synchronize()
        except Exception:
            pass
    finally:
        runtime.defer_faults = old_defer
    try:
        (claim or runtime.pop_faults)()
    except Exception:
        pass
    for arr in device_arrays:
        try:
            runtime.free(arr)
        except Exception:
            pass


class PipelineIssuer:
    """Resumable per-chunk command issue for one pipelined region.

    The issuer owns the region-lifetime state of the Pipelined-buffer
    model — streams, resident device arrays, ring buffers, per-array
    event books — and exposes the pipeline as a sequence of small
    steps:

    - :meth:`open` creates streams, stages resident arrays, and
      allocates the ring buffers;
    - :meth:`issue_next` enqueues *one* chunk's dependency transfers,
      kernel launch, and output drains, then returns (nothing blocks);
    - :meth:`drain` blocks until every command this issuer enqueued on
      its own streams has retired;
    - :meth:`finalize` copies resident arrays back and frees all device
      allocations;
    - :meth:`abort` is the failure-path teardown.

    :func:`execute_pipeline` issues every chunk back-to-back, which is
    exactly the paper's single-region pipeline.  A scheduler (see
    :mod:`repro.serve`) can instead hold several issuers on one runtime
    and alternate ``issue_next`` calls between them: because the issuer
    saves and restores the runtime's per-call overhead scale around
    every step, regions with different stream counts interleave without
    perturbing each other's host-clock accounting, and their commands
    contend only where they truly share engines.

    Attributes of note: :attr:`commands` collects every device command
    this issuer enqueued (used for per-tenant busy-time attribution),
    :attr:`faults_n`/:attr:`retries_n` count policy-absorbed faults and
    replays.
    """

    def __init__(
        self,
        runtime: Runtime,
        plan: RegionPlan,
        arrays: Dict[str, np.ndarray],
        kernel: RegionKernel,
        *,
        policy: Optional[FaultPolicy] = None,
        stream_prefix: str = "pipe",
        region_span: bool = True,
        claim_faults=None,
        recorder=None,
        reduction_residents=None,
        integrity: str = INTEGRITY_OFF,
        halo_ranges=None,
    ) -> None:
        self.runtime = runtime
        self.plan = plan
        self.arrays = arrays
        self.kernel = kernel
        self.policy = policy
        #: resident vars treated as *reduction accumulators*: staged as
        #: zeros, per-chunk deltas snapshotted into
        #: :attr:`reduction_parts`, and the final writeback suppressed
        #: (a sharded merge applies the deltas in global chunk order).
        #: Only valid for kernels whose resident update is additive and
        #: independent of the resident's prior value (``C += f(in)``).
        self.reduction_residents = frozenset(reduction_residents or ())
        #: ``(chunk_t0, {var: delta})`` snapshots, one per executed chunk
        self.reduction_parts: List[Tuple[int, Dict[str, np.ndarray]]] = []
        #: callable claiming this issuer's fault backlog.  Defaults to
        #: ``runtime.pop_faults`` (sole tenant); a scheduler installs a
        #: router here so one tenant's recovery never claims — and
        #: silently drops — another tenant's faults.
        self.claim_faults = claim_faults if claim_faults is not None else runtime.pop_faults
        #: optional :class:`~repro.obs.recorder.FlightRecorder`; when
        #: set, chunk issues / replays / claimed faults are logged into
        #: its bounded ring (no effect on timing)
        self.recorder = recorder
        self.profile = runtime.profile
        self.chunks = plan.chunks()
        self.streams_n = min(plan.num_streams, len(self.chunks))
        self.stream_prefix = stream_prefix
        self.region_span = region_span
        self.tracer = runtime.tracer
        self.tr_on = self.tracer.enabled
        self.m_on = runtime.metrics.enabled
        #: host-call overhead scale / per-command contention this region
        #: imposes while it is the one talking to the runtime
        self.scale = 1.0 + self.profile.runtime_stream_factor * (self.streams_n - 1)
        self.contention = self.profile.runtime_stream_contention * (self.streams_n - 1)
        self.faults_n = 0
        self.retries_n = 0
        #: command -> chunk index, for mapping faults back to replay units
        self.meta: Dict[Command, int] = {}
        #: every device command this issuer enqueued, in issue order
        self.commands: List[Command] = []
        self.resident_dev: Dict[str, object] = {}
        self.rings: Dict[str, DeviceRing] = {}
        self.books: Dict[str, _Records] = {}
        self.streams: List = []
        # (command, gating tokens) pairs for slot-reuse stall accounting;
        # resolved after the pipeline drains, once tokens have times
        self.stall_watch: list = []
        self.virtual = any(is_virtual(arrays[v]) for v in arrays) or runtime.virtual
        self.rspan = None
        self._cursor = 0
        self._opened = False
        self._finalized = False
        #: silent-failure defense mode: off / checksum / vote
        self.integrity = validate_integrity(integrity)
        #: split-dim ranges of ``arrays`` this shard receives across a
        #: seam from a neighbouring shard — verify commands covering
        #: them are classified as halo checks (``{var: [(lo, hi), ...]}``)
        self.halo_ranges = {
            v: [tuple(r) for r in rs] for v, rs in (halo_ranges or {}).items()
        }
        #: integrity checks performed / corruptions detected
        self.verified_n = 0
        self.corruptions_n = 0
        self.seam_verified_n = 0
        #: append-only log of every detection, as
        #: ``(var, lo, hi, chunk, kind, time)``
        self.corruption_log: List[Tuple] = []
        #: detections awaiting recovery (drained by :meth:`recover`)
        self._corruptions: List[Tuple] = []
        self.verify_stream = None
        #: retry bounds for corruption replays when no policy is set
        self._ipolicy = policy if policy is not None else FaultPolicy()
        #: single-device reduction self-merge: with integrity on,
        #: writable residents run in reduction mode so a corrupted
        #: chunk's replay supersedes its delta (keep-last dedup) —
        #: without it, replaying an accumulating chunk would
        #: double-apply its contribution
        self.merge_reductions = False
        if self.integrity != INTEGRITY_OFF:
            if self.integrity == INTEGRITY_VOTE:
                for var, spec in plan.specs.items():
                    if spec.clause.is_input and spec.clause.is_output:
                        raise InvalidValueError(
                            f"integrity 'vote' cannot dual-execute over "
                            f"tofrom pipelined array {var!r} (its input is "
                            f"overwritten in place); use 'checksum'"
                        )
            if not self.reduction_residents:
                red = frozenset(
                    v for v, cl in plan.residents.items()
                    if cl.direction in ("from", "tofrom")
                )
                if red:
                    self.reduction_residents = red
                    self.merge_reductions = True

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    @property
    def issued(self) -> int:
        """Chunks issued so far."""
        return self._cursor

    @property
    def remaining(self) -> int:
        """Chunks not yet issued."""
        return len(self.chunks) - self._cursor

    @property
    def done_issuing(self) -> bool:
        """Whether every chunk has been issued."""
        return self._cursor >= len(self.chunks)

    @contextmanager
    def _overheads(self):
        """Impose this region's overhead scale for one step.

        Interleaved issuers each see their own stream-count-dependent
        API-call cost, exactly as if each region had the runtime to
        itself for the duration of the step.
        """
        rt = self.runtime
        prev = (rt.call_overhead_scale, rt.command_overhead)
        rt.call_overhead_scale = self.scale
        rt.command_overhead = self.contention
        try:
            yield
        finally:
            rt.call_overhead_scale, rt.command_overhead = prev

    def _record_faults(self, pending) -> None:
        """Log claimed faults into the flight recorder (if any)."""
        if self.recorder is None or not pending:
            return
        for c in pending:
            self.recorder.record(
                "fault", t=self.runtime.elapsed,
                fault=(getattr(c.error, "kind", None) or "poisoned"),
                label=c.label, chunk=self.meta.get(c),
            )

    def _blocking_with_retry(self, issue, what: str, verify=None) -> None:
        """Run a blocking resident copy, reissuing it under the policy.

        Resident copies are whole-array and synchronous, so reissuing
        the copy in place (with backoff) is an exact replay.  With
        integrity on, ``verify`` (a zero-arg callable returning the two
        array views that must be byte-identical after the copy) is
        digested synchronously — the cost charged to host time — and a
        mismatch reissues the copy exactly like a fail-stop fault.
        """
        runtime = self.runtime
        policy = self.policy
        check = self.integrity != INTEGRITY_OFF and verify is not None
        if policy is None and not check:
            self.commands.append(issue())
            return
        retry = policy if policy is not None else self._ipolicy
        attempt = 0
        while True:
            cmd = issue()
            self.commands.append(cmd)
            if policy is not None:
                # chunkless sentinel: lets a fault router attribute the
                # blocking copy to this issuer without making it a
                # replay unit
                self.meta[cmd] = -1
            bad = self.claim_faults() if policy is not None else []
            corrupt = False
            if check and not bad:
                runtime.host_now += verify_cost(cmd.nbytes)
                self.verified_n += 1
                if not self.virtual:
                    a, b = verify()
                    if digest(a) != digest(b):
                        corrupt = True
                        self._note_corruption(
                            what, 0, 0, -1, "resident", recover=False
                        )
            if not bad and not corrupt:
                return
            self.faults_n += len(bad)
            self._record_faults(bad)
            if runtime.device.lost:
                raise DeviceLostError(
                    f"device lost during {what}", pending=len(bad)
                )
            if attempt >= retry.max_retries:
                raise TransferError(
                    f"{what} still "
                    f"{'corrupt' if corrupt else 'faulting'} after "
                    f"{retry.max_retries} retries",
                    fault=bad[0].error if bad else None,
                    pending=len(bad) or 1,
                )
            delay = retry.backoff_for(attempt)
            runtime.host_now += delay
            attempt += 1
            self.retries_n += 1
            if runtime.metrics.enabled:
                runtime.metrics.counter("faults.retries").inc()
                runtime.metrics.counter("faults.backoff_seconds").inc(delay)

    # ------------------------------------------------------------------
    # integrity: detection
    # ------------------------------------------------------------------
    def _in_halo(self, var: str, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` of ``var`` crosses a shard-seam range."""
        for rlo, rhi in self.halo_ranges.get(var, ()):
            if rlo < hi and rhi > lo:
                return True
        return False

    def _note_corruption(
        self, var: str, lo: int, hi: int, chunk_index: int, kind: str,
        *, recover: bool = True,
    ) -> None:
        """Log one detected corruption (and queue it for recovery)."""
        runtime = self.runtime
        self.corruptions_n += 1
        entry = (var, lo, hi, chunk_index, kind, runtime.device.now)
        self.corruption_log.append(entry)
        if recover:
            self._corruptions.append(entry)
        if self.recorder is not None:
            self.recorder.record(
                "corruption", t=runtime.elapsed, var=var, lo=lo, hi=hi,
                chunk=(chunk_index if chunk_index >= 0 else None), cause=kind,
            )
        if self.m_on:
            runtime.metrics.counter("integrity.corruptions").inc()

    def _checksum_payload(self, var: str, piece, chunk_index: int, kind: str):
        if self.virtual:
            return None
        ring, host = self.rings[var], self.arrays[var]

        def run() -> None:
            if digest(ring.device_view(piece).backing) != digest(
                ring.host_section(host, piece)
            ):
                self._note_corruption(
                    var, piece.g_lo, piece.g_hi, chunk_index, kind
                )

        return run

    def _issue_verify(
        self, xfer: Command, tok: EventToken, var: str, piece,
        chunk_index: int, kind: str, book: _Records,
    ) -> None:
        """Enqueue one checksum command covering a transfer piece.

        The verify command waits on the transfer it checks, runs on the
        dedicated verify stream at the modelled digest bandwidth
        (:data:`~repro.integrity.CHECKSUM_BYTES_PER_SECOND`), and is
        registered as a *reader* of the piece's range so ring-slot
        reuse cannot overwrite data that has not been verified yet.
        """
        runtime = self.runtime
        ckind = kind
        if kind == "h2d" and self._in_halo(var, piece.g_lo, piece.g_hi):
            ckind = "halo"
            self.seam_verified_n += 1
        vtok = EventToken.acquire(f"verify:{var}:{piece.g_lo}")
        vcmd = runtime.launch(
            verify_cost(xfer.nbytes),
            self._checksum_payload(var, piece, chunk_index, ckind),
            self.verify_stream,
            waits=[tok],
            records=[vtok],
            nbytes=xfer.nbytes,
            label=f"verify:{ckind}:{var}[{piece.g_lo}:{piece.g_hi})",
        )
        vcmd.chunk = chunk_index
        self.commands.append(vcmd)
        if self.policy is not None:
            self.meta[vcmd] = chunk_index
        book.readers.append((piece.g_lo, piece.g_hi, vtok))
        self.verified_n += 1

    def _dual_execute_check(self, chunk: Chunk):
        """Payload for a vote command: re-run the chunk, compare outputs.

        Inputs are re-gathered from the (checksum-verified) rings;
        reduction residents recompute into scratch and are compared
        against the chunk's snapshotted delta.  Any mismatch means the
        primary kernel miscomputed — checksums alone cannot see that,
        because a wrong-but-self-consistent output digests equal on
        both sides of its drain.
        """
        if self.virtual:
            return None
        plan, arrays, rings = self.plan, self.arrays, self.rings
        resident_dev, kernel = self.resident_dev, self.kernel

        def run() -> None:
            views: Dict[str, ChunkView] = {}
            out_ranges: Dict[str, Tuple[int, int]] = {}
            for var, spec in plan.specs.items():
                lo, hi = plan.chunk_dep_range(var, chunk)
                ring = rings[var]
                cl = spec.clause
                if cl.is_input:
                    data = ring.gather(lo, hi)
                else:
                    shape = list(ring.host_shape)
                    shape[spec.split_dim] = hi - lo
                    data = np.zeros(shape, dtype=arrays[var].dtype)
                views[var] = ChunkView(data, spec.split_dim, lo, hi)
                if cl.is_output:
                    out_ranges[var] = (lo, hi)
            red_tmp: Dict[str, np.ndarray] = {}
            for var, dev in resident_dev.items():
                if var in self.reduction_residents:
                    red_tmp[var] = np.zeros_like(arrays[var])
                    views[var] = ChunkView(red_tmp[var], None, 0, dev.shape[0])
                else:
                    views[var] = ChunkView(dev.backing, None, 0, dev.shape[0])
            kernel.run(views, chunk.t0, chunk.t1)
            for var, (lo, hi) in out_ranges.items():
                if digest(views[var].data) != digest(rings[var].gather(lo, hi)):
                    self._note_corruption(var, lo, hi, chunk.index, "vote")
            if red_tmp:
                part = None
                for t0, p in reversed(self.reduction_parts):
                    if t0 == chunk.t0:
                        part = p
                        break
                for var, tmp in red_tmp.items():
                    if part is None or var not in part or \
                            digest(tmp) != digest(part[var]):
                        self._note_corruption(
                            var, chunk.t0, chunk.t1, chunk.index, "vote"
                        )

        return run

    def _issue_vote(self, chunk: Chunk, ktok: EventToken, ranges) -> None:
        """Enqueue the dual-execution check for one chunk (vote mode).

        The re-execution waits on the primary kernel (and inherits its
        poison, so a fail-stop-faulted kernel never triggers a bogus
        vote) and registers as a reader of every range it re-gathers,
        keeping slot reuse honest.
        """
        runtime, kernel = self.runtime, self.kernel
        v2tok = EventToken.acquire(f"vote:{chunk.index}")
        vcmd = runtime.launch(
            kernel.chunk_cost(self.profile, chunk.t0, chunk.t1, translated=True),
            self._dual_execute_check(chunk),
            self.verify_stream,
            waits=[ktok],
            records=[v2tok],
            label=f"verify:vote:{kernel.name}[{chunk.t0}:{chunk.t1})",
        )
        vcmd.chunk = chunk.index
        self.commands.append(vcmd)
        if self.policy is not None:
            self.meta[vcmd] = chunk.index
        for var, (lo, hi) in ranges.items():
            self.books[var].readers.append((lo, hi, v2tok))
        self.verified_n += 1

    def _kernel_sink(self, chunk: Chunk):
        """Resolve where a silent kernel miscompute lands for ``chunk``.

        Returned as a zero-arg callable so the injector reads the
        written data at *retirement* (after the payload has scattered
        outputs), not at enqueue time.  ``None`` in virtual mode — the
        injector still logs the event, keeping real/virtual fault
        timelines aligned.
        """
        if self.virtual:
            return None
        plan, rings = self.plan, self.rings

        def resolve():
            for var in sorted(plan.specs):
                if not plan.specs[var].clause.is_output:
                    continue
                lo, hi = plan.chunk_dep_range(var, chunk)
                pieces = rings[var].pieces(lo, hi)
                if pieces:
                    return rings[var].device_view(pieces[0]).backing
            if self.reduction_residents:
                for t0, part in reversed(self.reduction_parts):
                    if t0 != chunk.t0:
                        continue
                    for var in sorted(part):
                        return part[var]
            for var in sorted(self.resident_dev):
                if plan.residents[var].direction in ("from", "tofrom"):
                    return self.resident_dev[var].backing
            return None

        return resolve

    # ------------------------------------------------------------------
    # lifecycle steps
    # ------------------------------------------------------------------
    def open(self) -> None:
        """Create streams, stage resident arrays, allocate ring buffers.

        Raises :class:`~repro.gpu.errors.OutOfMemoryError` if the ring
        buffers or resident arrays do not fit; the caller (scheduler)
        owns admission control and may retry after releasing memory.
        """
        if self._opened:
            return
        self._opened = True
        runtime, plan, arrays = self.runtime, self.plan, self.arrays
        if self.tr_on and self.region_span:
            self.rspan = self.tracer.begin(
                f"region:{self.kernel.name}", "region",
                model="pipelined-buffer", nchunks=len(self.chunks),
                chunk_size=plan.chunk_size, streams=self.streams_n,
            )
        with self._overheads():
            self.streams = [
                runtime.create_stream(f"{self.stream_prefix}{i}")
                for i in range(self.streams_n)
            ]
            if self.integrity != INTEGRITY_OFF:
                # dedicated verify stream: checks overlap the pipeline's
                # own streams instead of serializing behind chunk work;
                # deliberately excluded from streams_n so the region's
                # host-overhead scale matches an integrity-off run
                self.verify_stream = runtime.create_stream(
                    f"{self.stream_prefix}v"
                )

            # resident arrays: whole-array data region
            for var, clause in plan.residents.items():
                host = arrays[var]
                dev = runtime.malloc(host.shape, host.dtype, tag=f"{var}:resident")
                self.resident_dev[var] = dev
                if clause.direction in ("to", "tofrom"):
                    self._blocking_with_retry(
                        lambda d=dev, h=host, v=var: runtime.memcpy_h2d(
                            d, h, label=f"h2d:{v}:resident"
                        ),
                        f"resident h2d of {var!r}",
                        verify=lambda d=dev, h=host: (d.backing, h),
                    )
                if var in self.reduction_residents and not self.virtual:
                    # reduction accumulator: this shard contributes a
                    # delta on top of zeros; the staged host value is
                    # merged exactly once, by the sharded merge
                    dev.backing[...] = 0

            # ring buffers
            for var, spec in plan.specs.items():
                host = arrays[var]
                self.rings[var] = DeviceRing(
                    runtime,
                    host.shape,
                    spec.split_dim,
                    plan.ring_capacity(var),
                    host.dtype,
                    tag=f"{var}:ring",
                )
        self.books = {v: _Records() for v in plan.specs}

    def _kernel_payload(self, chunk: Chunk):
        if self.virtual:
            return None
        plan, arrays, rings = self.plan, self.arrays, self.rings
        resident_dev, kernel = self.resident_dev, self.kernel

        def run() -> None:
            views: Dict[str, ChunkView] = {}
            out_ranges: Dict[str, Tuple[int, int]] = {}
            for var, spec in plan.specs.items():
                lo, hi = plan.chunk_dep_range(var, chunk)
                ring = rings[var]
                cl = spec.clause
                if cl.is_input:
                    data = ring.gather(lo, hi)
                else:
                    shape = list(ring.host_shape)
                    shape[spec.split_dim] = hi - lo
                    data = np.zeros(shape, dtype=arrays[var].dtype)
                views[var] = ChunkView(data, spec.split_dim, lo, hi)
                if cl.is_output:
                    out_ranges[var] = (lo, hi)
            for var, dev in resident_dev.items():
                views[var] = ChunkView(dev.backing, None, 0, dev.shape[0])
            kernel.run(views, chunk.t0, chunk.t1)
            for var, (lo, hi) in out_ranges.items():
                rings[var].scatter(views[var].data, lo, hi)
            if self.reduction_residents:
                # snapshot this chunk's delta and reset the accumulator
                # so every chunk's contribution is isolated; a replayed
                # chunk snapshots the identical delta again (the merge
                # dedups by chunk start)
                part = {}
                for var in self.reduction_residents:
                    dev = resident_dev.get(var)
                    if dev is None:
                        continue
                    part[var] = np.array(dev.backing, copy=True)
                    dev.backing[...] = 0
                self.reduction_parts.append((chunk.t0, part))

        return run

    def issue_next(self) -> Optional[Chunk]:
        """Issue one chunk's H2D → kernel → D2H commands; never blocks.

        Returns the issued :class:`~repro.core.plan.Chunk`, or ``None``
        when every chunk has already been issued.
        """
        if self._cursor >= len(self.chunks):
            return None
        chunk = self.chunks[self._cursor]
        self._cursor += 1
        runtime, plan, arrays = self.runtime, self.plan, self.arrays
        tracer, tr_on, m_on = self.tracer, self.tr_on, self.m_on
        policy, meta, profile = self.policy, self.meta, self.profile
        kernel, rings, books = self.kernel, self.rings, self.books

        with self._overheads():
            st = self.streams[chunk.index % self.streams_n]
            in_tokens: List[EventToken] = []
            out_reuse: List[EventToken] = []

            cspan = None
            if tr_on:
                cspan = tracer.begin(
                    f"chunk:{chunk.index}", "chunk",
                    chunk=chunk.index, stream=st.name, t0=chunk.t0, t1=chunk.t1,
                )
            # plan: resolve this chunk's dependency slices and ring slots
            with tracer.span("plan", "phase", chunk=chunk.index) as psp:
                ranges = {v: plan.chunk_dep_range(v, chunk) for v in plan.specs}
                if tr_on:
                    psp.set(slots={
                        v: ranges[v][0] % rings[v].capacity for v in ranges
                    })

            ph2d = tracer.begin("h2d", "phase", chunk=chunk.index) if tr_on else None
            for var, spec in plan.specs.items():
                cl = spec.clause
                lo, hi = ranges[var]
                ring = rings[var]
                book = books[var]
                if cl.is_input:
                    if plan.halo_mode == "dedup" and book.covered_hi is not None:
                        new_lo = max(lo, book.covered_hi)
                    else:
                        new_lo = lo
                    if new_lo < hi:
                        host = arrays[var]
                        for piece in ring.pieces(new_lo, hi):
                            reuse = _intersecting(
                                book.readers,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            reuse += _intersecting(
                                book.d2h,
                                piece.g_lo - ring.capacity,
                                piece.g_hi - ring.capacity,
                            )
                            rows, row_bytes = ring.transfer_geometry(piece)
                            tok = EventToken.acquire(f"h2d:{var}:{piece.g_lo}")
                            cmd = runtime.memcpy_h2d_async(
                                ring.device_view(piece),
                                ring.host_section(host, piece),
                                st,
                                waits=reuse,
                                records=[tok],
                                # slot-reuse waits are ordering-only:
                                # a faulted drain must not poison the
                                # next lap's fresh transfer
                                poison_waits=(),
                                rows=rows,
                                row_bytes=row_bytes,
                                label=f"h2d:{var}[{piece.g_lo}:{piece.g_hi})",
                            )
                            cmd.chunk = chunk.index
                            self.commands.append(cmd)
                            if policy is not None:
                                meta[cmd] = chunk.index
                            if m_on and reuse:
                                self.stall_watch.append((cmd, list(reuse)))
                            book.h2d.append((piece.g_lo, piece.g_hi, tok))
                            if self.integrity != INTEGRITY_OFF:
                                self._issue_verify(
                                    cmd, tok, var, piece, chunk.index,
                                    "h2d", book,
                                )
                        book.covered_hi = max(book.covered_hi or hi, hi)
                    in_tokens.extend(_intersecting(book.h2d, lo, hi))
                    _prune(book.h2d, lo)
                    _prune(book.readers, lo - ring.capacity)
                if cl.is_output:
                    # a kernel writing positions p must wait until the
                    # previous lap's data at p has drained to the host
                    # (and, for tofrom arrays, been read by its kernels)
                    out_reuse.extend(
                        _intersecting(book.d2h, lo - ring.capacity, hi - ring.capacity)
                    )
                    out_reuse.extend(
                        _intersecting(book.readers, lo - ring.capacity, hi - ring.capacity)
                    )
                    _prune(book.d2h, lo - ring.capacity)
            if tr_on:
                tracer.end(ph2d)
                pk = tracer.begin("kernel", "phase", chunk=chunk.index,
                                  waits=len(in_tokens) + len(out_reuse))

            ktok = EventToken.acquire(f"kernel:{chunk.index}")
            kcmd = runtime.launch(
                kernel.chunk_cost(profile, chunk.t0, chunk.t1, translated=True),
                self._kernel_payload(chunk),
                st,
                waits=in_tokens + out_reuse,
                records=[ktok],
                # only the input transfers are data dependencies; the
                # out_reuse waits guard slot recycling
                poison_waits=in_tokens,
                label=f"{kernel.name}[{chunk.t0}:{chunk.t1})",
            )
            kcmd.chunk = chunk.index
            kcmd.sink = self._kernel_sink(chunk)
            self.commands.append(kcmd)
            if policy is not None:
                meta[kcmd] = chunk.index
            if m_on and out_reuse:
                self.stall_watch.append((kcmd, list(out_reuse)))
            if tr_on:
                tracer.end(pk)
                pd2h = tracer.begin("d2h", "phase", chunk=chunk.index)

            for var, spec in plan.specs.items():
                cl = spec.clause
                book = books[var]
                lo, hi = ranges[var]
                if cl.is_input:
                    book.readers.append((lo, hi, ktok))
                if cl.is_output:
                    ring = rings[var]
                    host = arrays[var]
                    for piece in ring.pieces(lo, hi):
                        rows, row_bytes = ring.transfer_geometry(piece)
                        dtok = EventToken.acquire(f"d2h:{var}:{piece.g_lo}")
                        dcmd = runtime.memcpy_d2h_async(
                            ring.host_section(host, piece),
                            ring.device_view(piece),
                            st,
                            records=[dtok],
                            rows=rows,
                            row_bytes=row_bytes,
                            label=f"d2h:{var}[{piece.g_lo}:{piece.g_hi})",
                        )
                        dcmd.chunk = chunk.index
                        self.commands.append(dcmd)
                        if policy is not None:
                            meta[dcmd] = chunk.index
                        book.d2h.append((piece.g_lo, piece.g_hi, dtok))
                        if self.integrity != INTEGRITY_OFF:
                            self._issue_verify(
                                dcmd, dtok, var, piece, chunk.index,
                                "d2h", book,
                            )
            if self.integrity == INTEGRITY_VOTE:
                self._issue_vote(chunk, ktok, ranges)
            if tr_on:
                tracer.end(pd2h)
                # the slots this chunk's retiring work hands back to the
                # ring for the next lap's transfers
                tracer.instant(
                    "slot-release", "phase", chunk=chunk.index,
                    released={
                        v: [ranges[v][0] % rings[v].capacity, ranges[v][0], ranges[v][1]]
                        for v in ranges
                    },
                )
                tracer.end(cspan)
        if self.recorder is not None:
            self.recorder.record(
                "chunk.issue", t=runtime.elapsed, chunk=chunk.index,
                stream=st.name, region=kernel.name,
            )
        return chunk

    def drain(self) -> None:
        """Block until all commands on this issuer's streams retired.

        Unlike :meth:`Runtime.synchronize` this only waits for *this
        region's* streams, so a scheduler can retire one tenant while
        others keep flowing.
        """
        for st in self.streams:
            self.runtime.stream_synchronize(st)
        if self.verify_stream is not None:
            self.runtime.stream_synchronize(self.verify_stream)

    def _enqueue_replay(self, chunk: Chunk) -> None:
        """Replay one chunk synchronously: full dep-range h2d→kernel→d2h."""
        runtime, plan, arrays = self.runtime, self.plan, self.arrays
        rings, meta, kernel = self.rings, self.meta, self.kernel
        st = self.streams[chunk.index % self.streams_n]
        rtoks: List[EventToken] = []
        for var, spec in plan.specs.items():
            if not spec.clause.is_input:
                continue
            lo, hi = plan.chunk_dep_range(var, chunk)
            ring = rings[var]
            host = arrays[var]
            for piece in ring.pieces(lo, hi):
                rows, row_bytes = ring.transfer_geometry(piece)
                tok = EventToken.acquire(f"replay-h2d:{var}:{piece.g_lo}")
                cmd = runtime.memcpy_h2d_async(
                    ring.device_view(piece),
                    ring.host_section(host, piece),
                    st,
                    records=[tok],
                    rows=rows,
                    row_bytes=row_bytes,
                    label=f"replay:h2d:{var}[{piece.g_lo}:{piece.g_hi})",
                )
                cmd.chunk = chunk.index
                self.commands.append(cmd)
                meta[cmd] = chunk.index
                rtoks.append(tok)
        ktok = EventToken.acquire(f"replay-kernel:{chunk.index}")
        kcmd = runtime.launch(
            kernel.chunk_cost(self.profile, chunk.t0, chunk.t1, translated=True),
            self._kernel_payload(chunk),
            st,
            waits=rtoks,
            records=[ktok],
            label=f"replay:{kernel.name}[{chunk.t0}:{chunk.t1})",
        )
        kcmd.chunk = chunk.index
        kcmd.sink = self._kernel_sink(chunk)
        self.commands.append(kcmd)
        meta[kcmd] = chunk.index
        for var, spec in plan.specs.items():
            if not spec.clause.is_output:
                continue
            lo, hi = plan.chunk_dep_range(var, chunk)
            ring = rings[var]
            host = arrays[var]
            for piece in ring.pieces(lo, hi):
                rows, row_bytes = ring.transfer_geometry(piece)
                dcmd = runtime.memcpy_d2h_async(
                    ring.host_section(host, piece),
                    ring.device_view(piece),
                    st,
                    waits=[ktok],
                    rows=rows,
                    row_bytes=row_bytes,
                    label=f"replay:d2h:{var}[{piece.g_lo}:{piece.g_hi})",
                )
                dcmd.chunk = chunk.index
                self.commands.append(dcmd)
                meta[dcmd] = chunk.index

    def recover(self, budget: Optional[int] = None) -> None:
        """Chunk-granular recovery from faults *and* silent corruption.

        The pipeline has drained.  Fail-stop faults (requires a policy)
        map back to their chunks and replay synchronously; corruptions
        flagged by integrity checks replay their owner chunk plus — for
        corrupted input transfers — every issued chunk whose dependency
        slice overlaps the corrupt range.  Replayed chunks are
        re-verified in place, so a corruption *during* recovery loops
        until clean or the retry bound trips.

        ``budget`` optionally caps the *total* number of chunk replays
        this call may perform (on top of the per-chunk
        ``policy.max_retries``); a scheduler uses it to enforce a
        per-request retry budget.  Exceeding it raises
        :class:`~repro.faults.RegionFailure`.
        """
        state = {"budget": budget}
        while True:
            if self.policy is not None:
                self._recover_faults(state)
            if not self._corruptions:
                return
            self._recover_corruptions(state)

    def _recover_faults(self, state: Dict[str, Optional[int]]) -> None:
        """Replay chunks whose commands reported fail-stop faults.

        Faulted kernels never ran their payloads (poison propagation
        suppresses consumers of faulted data too), so replay is exact —
        even for accumulating kernels.
        """
        runtime, policy = self.runtime, self.policy
        tracer, m_on, chunks = self.tracer, self.m_on, self.chunks
        budget = state["budget"]
        with self._overheads():
            chunk_status = {c.index: CHUNK_OK for c in chunks}
            attempts = {c.index: 0 for c in chunks}
            pending = self.claim_faults()
            self.faults_n += len(pending)
            self._record_faults(pending)
            while pending:
                if runtime.device.lost:
                    raise DeviceLostError(
                        "device lost during pipelined region",
                        pending=len(pending),
                    )
                affected = sorted({
                    k for k in (self.meta[c] for c in pending if c in self.meta)
                    if k >= 0
                })
                if not affected:
                    # faults on commands this region did not issue (or
                    # on blocking copies already retried in place);
                    # claimed above, nothing to replay here
                    break
                if budget is not None and len(affected) > budget:
                    for k in affected:
                        chunk_status[k] = CHUNK_FAILED
                    raise RegionFailure(
                        f"{len(affected)} chunk(s) faulted but only "
                        f"{budget} replay(s) left in the request budget",
                        chunk_status=chunk_status,
                        attempts=[
                            f"buffer: request retry budget exhausted with "
                            f"{len(affected)} chunk(s) pending"
                        ],
                        retries=self.retries_n,
                    )
                exhausted = [
                    k for k in affected if attempts[k] >= policy.max_retries
                ]
                if exhausted:
                    for k in exhausted:
                        chunk_status[k] = CHUNK_EXHAUSTED
                    for k in affected:
                        if k not in exhausted:
                            chunk_status[k] = CHUNK_FAILED
                    raise RegionFailure(
                        f"{len(exhausted)} chunk(s) still faulting after "
                        f"{policy.max_retries} replays each",
                        chunk_status=chunk_status,
                        attempts=[
                            f"buffer: chunk {k} exhausted "
                            f"{attempts[k] + 1} attempts"
                            for k in exhausted
                        ],
                        retries=self.retries_n,
                    )
                for k in affected:
                    if budget is not None:
                        budget -= 1
                        state["budget"] = budget
                    attempts[k] += 1
                    delay = policy.backoff_for(attempts[k] - 1)
                    runtime.host_now += delay
                    self.retries_n += 1
                    if m_on:
                        runtime.metrics.counter("faults.retries").inc()
                        runtime.metrics.counter(
                            "faults.backoff_seconds"
                        ).inc(delay)
                    if self.recorder is not None:
                        self.recorder.record(
                            "chunk.replay", t=runtime.elapsed, chunk=k,
                            attempt=attempts[k], backoff=delay,
                        )
                    with tracer.span(
                        f"replay:chunk{k}", "fault",
                        chunk=k, attempt=attempts[k], backoff=delay,
                    ):
                        self._enqueue_replay(chunks[k])
                    # drain before the next replay: two replayed chunks
                    # can alias the same ring slots (mod capacity), and
                    # replays lack the pipeline's slot-reuse ordering
                    # waits, so concurrency here would race
                    runtime.synchronize()
                    chunk_status[k] = CHUNK_RECOVERED
                pending = self.claim_faults()
                self.faults_n += len(pending)
                self._record_faults(pending)

    # ------------------------------------------------------------------
    # integrity: response
    # ------------------------------------------------------------------
    def _affected_chunks(self, batch: List[Tuple]) -> List[int]:
        """Chunks whose data a corruption batch may have poisoned.

        The owner chunk always replays.  A corrupted *input* piece
        (h2d/halo) may additionally have fed any issued chunk whose
        dependency slice intersects the corrupt range — dedup mode
        transfers each row once and shares it across chunks, and the
        checksum verdict can land after a sharing kernel already ran.
        """
        plan = self.plan
        affected = set()
        for var, lo, hi, owner, kind, _t in batch:
            if owner >= 0:
                affected.add(owner)
            if kind in ("h2d", "halo"):
                for c in self.chunks[: self._cursor]:
                    clo, chi = plan.chunk_dep_range(var, c)
                    if clo < hi and chi > lo:
                        affected.add(c.index)
        return sorted(affected)

    def _recover_corruptions(self, state: Dict[str, Optional[int]]) -> None:
        """Replay chunks whose data an integrity check proved corrupt.

        Works without a fault policy (corruption replay bounds come
        from :attr:`_ipolicy`); exhaustion dumps the flight-recorder
        ring before raising, so the detection trail survives the
        failure.
        """
        runtime, chunks = self.runtime, self.chunks
        ipolicy = self._ipolicy
        attempts: Dict[int, int] = {}
        with self._overheads():
            while self._corruptions:
                batch, self._corruptions = self._corruptions, []
                affected = self._affected_chunks(batch)
                budget = state["budget"]
                if budget is not None and len(affected) > budget:
                    if self.recorder is not None:
                        self.recorder.dump(
                            "integrity-exhausted", region=self.kernel.name,
                            corruptions=self.corruptions_n,
                        )
                    raise RegionFailure(
                        f"{len(affected)} corrupted chunk(s) but only "
                        f"{budget} replay(s) left in the request budget",
                        chunk_status={k: CHUNK_FAILED for k in affected},
                        attempts=[
                            "integrity: request retry budget exhausted "
                            f"with {len(affected)} chunk(s) corrupt"
                        ],
                        retries=self.retries_n,
                    )
                exhausted = [
                    k for k in affected
                    if attempts.get(k, 0) >= ipolicy.max_retries
                ]
                if exhausted:
                    if self.recorder is not None:
                        self.recorder.dump(
                            "integrity-exhausted", region=self.kernel.name,
                            corruptions=self.corruptions_n,
                        )
                    raise RegionFailure(
                        f"{len(exhausted)} chunk(s) still corrupt after "
                        f"{ipolicy.max_retries} replays each",
                        chunk_status={
                            k: (CHUNK_EXHAUSTED if k in exhausted
                                else CHUNK_FAILED)
                            for k in affected
                        },
                        attempts=[
                            f"integrity: chunk {k} exhausted "
                            f"{attempts[k] + 1} attempts"
                            for k in exhausted
                        ],
                        retries=self.retries_n,
                    )
                for k in affected:
                    if state["budget"] is not None:
                        state["budget"] -= 1
                    attempts[k] = attempts.get(k, 0) + 1
                    delay = ipolicy.backoff_for(attempts[k] - 1)
                    runtime.host_now += delay
                    self.retries_n += 1
                    if self.m_on:
                        runtime.metrics.counter("faults.retries").inc()
                        runtime.metrics.counter("integrity.replays").inc()
                    if self.recorder is not None:
                        self.recorder.record(
                            "chunk.replay", t=runtime.elapsed, chunk=k,
                            attempt=attempts[k], backoff=delay,
                            cause="corruption",
                        )
                    with self.tracer.span(
                        f"replay:chunk{k}", "fault",
                        chunk=k, attempt=attempts[k], cause="corruption",
                    ):
                        self._enqueue_replay(chunks[k])
                    # drain before verifying: the re-verify reads host
                    # and device sides of the replayed transfers, and
                    # two replays can alias ring slots (mod capacity)
                    runtime.synchronize()
                    self._verify_chunk_sync(chunks[k])

    def _verify_chunk_sync(self, chunk: Chunk) -> None:
        """Synchronously re-verify a replayed chunk's data.

        The pipeline is drained, so this runs host-side: each piece's
        digest cost is charged to virtual host time (same cost model as
        the async verify commands), keeping replay verification visible
        in the clock and in wait attribution.
        """
        runtime, plan, rings = self.runtime, self.plan, self.rings
        arrays = self.arrays
        for var, spec in plan.specs.items():
            lo, hi = plan.chunk_dep_range(var, chunk)
            ring = rings[var]
            host = arrays[var]
            for piece in ring.pieces(lo, hi):
                nbytes = piece.extent * ring.unit_elems * ring.itemsize
                runtime.host_now += verify_cost(nbytes)
                self.verified_n += 1
                if self.virtual:
                    continue
                if digest(ring.device_view(piece).backing) != digest(
                    ring.host_section(host, piece)
                ):
                    kind = "h2d" if spec.clause.is_input else "d2h"
                    self._note_corruption(
                        var, piece.g_lo, piece.g_hi, chunk.index, kind
                    )
        if self.integrity == INTEGRITY_VOTE:
            self._vote_check_sync(chunk)

    def _vote_check_sync(self, chunk: Chunk) -> None:
        """Synchronous dual-execution recheck of a replayed chunk."""
        self.runtime.host_now += self.kernel.chunk_cost(
            self.profile, chunk.t0, chunk.t1, translated=True
        )
        self.verified_n += 1
        check = self._dual_execute_check(chunk)
        if check is not None:
            check()

    def account_stalls(self) -> None:
        """Resolve slot-reuse stall metrics once all tokens have times."""
        runtime = self.runtime
        if not (self.m_on and self.stall_watch):
            return
        # every gating token is resolved now; stall = time a command
        # spent gated past its enqueue by ring-slot reuse
        hist = runtime.metrics.histogram("stall.slot_reuse.seconds")
        total_stall = 0.0
        for cmd, toks in self.stall_watch:
            gate = max((t.time for t in toks if t.time is not None), default=None)
            if gate is None:
                continue
            stall = max(0.0, gate - cmd.enqueue_time)
            hist.observe(stall)
            total_stall += stall
        runtime.metrics.counter("stall.slot_reuse.total_seconds").inc(total_stall)

    def finalize(self) -> None:
        """Resident copy-out and device-memory cleanup."""
        if self._finalized:
            return
        self._finalized = True
        runtime, plan, arrays = self.runtime, self.plan, self.arrays
        with self._overheads():
            for var, clause in plan.residents.items():
                if clause.direction in ("from", "tofrom"):
                    if var in self.reduction_residents and not self.virtual:
                        # charge the writeback but keep the host value:
                        # the accumulator holds only this shard's (now
                        # snapshotted) deltas, which the sharded merge
                        # applies in global chunk order
                        sink = np.empty_like(arrays[var])
                        self._blocking_with_retry(
                            lambda v=var, s=sink: runtime.memcpy_d2h(
                                s, self.resident_dev[v],
                                label=f"d2h:{v}:resident"
                            ),
                            f"resident d2h of {var!r}",
                        )
                        continue
                    self._blocking_with_retry(
                        lambda v=var: runtime.memcpy_d2h(
                            arrays[v], self.resident_dev[v], label=f"d2h:{v}:resident"
                        ),
                        f"resident d2h of {var!r}",
                        verify=lambda v=var: (
                            arrays[v], self.resident_dev[v].backing
                        ),
                    )
            if self.merge_reductions and not self.virtual:
                # single-device reduction self-merge: apply each chunk's
                # snapshotted delta exactly once, keep-last per chunk
                # start so a corruption replay's corrected delta
                # supersedes the corrupt one
                latest: Dict[int, Dict[str, np.ndarray]] = {}
                for t0, part in self.reduction_parts:
                    latest[t0] = part
                for t0 in sorted(latest):
                    for var, delta in latest[t0].items():
                        arrays[var] += delta
            for dev in self.resident_dev.values():
                runtime.free(dev)
            for ring in self.rings.values():
                runtime.free(ring.darr)
        if self.rspan is not None:
            self.tracer.end(self.rspan)
            self.rspan = None

    def abort(self) -> None:
        """Failure-path teardown: drain, claim faults, free allocations."""
        self._finalized = True
        _cleanup_after_failure(
            self.runtime,
            list(self.resident_dev.values()) + [r.darr for r in self.rings.values()],
            claim=self.claim_faults,
        )
        if self.rspan is not None:
            self.tracer.end(self.rspan)
            self.rspan = None


def execute_pipeline(
    runtime: Runtime,
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    policy: Optional[FaultPolicy] = None,
    integrity: str = INTEGRITY_OFF,
) -> RegionResult:
    """Run a region under the proposed Pipelined-buffer model.

    Parameters
    ----------
    runtime:
        The host runtime; its ``call_overhead_scale`` is managed for
        the duration (the proposed runtime's per-stream bookkeeping is
        cheap: ``runtime_stream_factor``).
    plan:
        A resolved (and, if requested, memory-limit-tuned) plan.
    arrays:
        Host arrays keyed by clause variable names.  Real ndarrays or
        :class:`~repro.sim.varray.VirtualArray` (all the same mode).
    kernel:
        The region kernel.
    policy:
        Optional :class:`~repro.faults.FaultPolicy`.  When given, the
        executor takes ownership of async fault reporting
        (``runtime.defer_faults``): every faulted chunk is replayed
        synchronously — full dependency-range H2D, kernel, D2H — with
        the policy's exponential backoff charged to virtual host time,
        until it recovers or its retry budget is exhausted (then
        :class:`~repro.faults.RegionFailure` carries per-chunk
        status).  Chunks are the natural replay unit because the
        pipeline already computes each chunk's exact dependency slices.
    integrity:
        Silent-failure defense mode (``"off"`` / ``"checksum"`` /
        ``"vote"``, see :mod:`repro.integrity`).  Detected corruptions
        are recovered by chunk replay even without a fault policy.
    """
    meas = _Measurer(runtime)
    issuer = PipelineIssuer(
        runtime, plan, arrays, kernel, policy=policy, integrity=integrity
    )
    old_defer = runtime.defer_faults
    if policy is not None:
        # the executor owns fault reporting: sync points stash faults
        # for pop_faults() instead of raising mid-pipeline
        runtime.defer_faults = True
    try:
        issuer.open()
        while issuer.issue_next() is not None:
            pass
        runtime.synchronize()
        if policy is not None or issuer._corruptions:
            issuer.recover()
        issuer.account_stalls()
        issuer.finalize()
    except BaseException:
        issuer.abort()
        raise
    finally:
        runtime.defer_faults = old_defer
    return meas.finish(
        "pipelined-buffer", len(issuer.chunks), plan.chunk_size, issuer.streams_n,
        faults=issuer.faults_n, retries=issuer.retries_n,
        verified=issuer.verified_n, corruptions=issuer.corruptions_n,
    )
