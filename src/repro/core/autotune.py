"""Auto-tuning of pipeline parameters (the paper's future work).

The paper closes with: "Finally, we will further study how the other
parameters affect our design and integrate a performance model in an
autotuning scheduler."  This module implements that scheduler.

The performance model is the simulator itself: a candidate
``(chunk_size, num_streams)`` is evaluated by executing the region in
**virtual mode** on a scratch device of the same profile — a dry run
that moves no data, costs milliseconds of wall time, and returns the
exact pipeline timeline the real execution would have (virtual and real
runs are timing-identical; the test suite asserts this).  On real
hardware the equivalent is an analytic model or a micro-benchmark
calibration pass; the search structure is the same.

The search explores a geometric ladder of chunk sizes against a small
set of stream counts, respecting any ``pipeline_mem_limit``, and keeps
the fastest feasible candidate.  The search space is tiny (tens of
candidates) because both axes act monotonically on each cost term —
the trade-off the paper maps out in Figures 4 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.executor import execute_pipeline
from repro.core.kernel import RegionKernel
from repro.core.memlimit import MemLimitError, tune_plan
from repro.gpu.runtime import Runtime
from repro.sim.device import Device
from repro.sim.memory import OutOfDeviceMemory
from repro.sim.varray import VirtualArray

__all__ = ["AutotuneReport", "Candidate", "autotune", "candidate_grid"]


@dataclass(frozen=True)
class Candidate:
    """One evaluated configuration."""

    chunk_size: int
    num_streams: int
    elapsed: float
    buffer_bytes: int
    feasible: bool


@dataclass
class AutotuneReport:
    """Outcome of an autotune search.

    Attributes
    ----------
    best:
        The fastest feasible candidate.
    candidates:
        Everything evaluated, in search order.
    dry_runs:
        Number of virtual executions performed.
    """

    best: Candidate
    candidates: List[Candidate]
    dry_runs: int

    def table(self) -> str:
        """Formatted candidate table (fastest first)."""
        lines = [f"{'chunk':>6} {'streams':>8} {'time':>12} {'buffer':>10}"]
        for c in sorted(self.candidates, key=lambda c: c.elapsed):
            mark = " <- best" if c == self.best else ""
            lines.append(
                f"{c.chunk_size:>6} {c.num_streams:>8} {c.elapsed * 1e3:>10.2f}ms "
                f"{c.buffer_bytes / 1e6:>8.1f}MB{mark}"
            )
        return "\n".join(lines)


def candidate_grid(
    trip_count: int,
    *,
    max_streams: int = 8,
    max_chunk: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """The (chunk_size, num_streams) ladder the search explores.

    Chunk sizes double from 1 up to half the trip count (a pipeline
    needs at least two chunks); stream counts cover {1, 2, 3, 4, 8}
    clamped to ``max_streams``.
    """
    if trip_count < 1:
        raise ValueError("empty loop")
    cs_max = max(1, trip_count // 2) if max_chunk is None else max_chunk
    sizes = []
    cs = 1
    while cs <= cs_max:
        sizes.append(cs)
        cs *= 2
    streams = sorted({min(s, max_streams) for s in (1, 2, 3, 4, 8)})
    return [(cs, ns) for cs in sizes for ns in streams]


def _virtual_arrays(arrays: Dict[str, object]) -> Dict[str, VirtualArray]:
    return {
        name: VirtualArray(tuple(a.shape), a.dtype) for name, a in arrays.items()
    }


def autotune(
    region,
    runtime: Runtime,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    max_streams: int = 8,
) -> AutotuneReport:
    """Search pipeline parameters for a region via virtual dry runs.

    Parameters
    ----------
    region:
        A :class:`~repro.core.region.TargetRegion`; its pragma's
        ``chunk_size``/``num_streams`` are treated as a starting point
        only.  Its ``pipeline_mem_limit`` (if any) constrains the
        search.
    runtime:
        The runtime the region will eventually run on; only its device
        *profile* is used (dry runs happen on scratch devices).
    arrays:
        The host arrays (shapes/dtypes are used; contents are not).
    kernel:
        The region kernel (cost model only; bodies are skipped).

    Returns
    -------
    AutotuneReport
        Best configuration and the full candidate list.  Apply it with
        ``region.pipeline = replace(region.pipeline,
        chunk_size=best.chunk_size, num_streams=best.num_streams)`` or
        pass the values to your config object.
    """
    base_plan = region.bind(arrays)
    limit = region.mem_limit.limit_bytes if region.mem_limit is not None else None
    vsets = _virtual_arrays(arrays)
    profile = runtime.profile

    candidates: List[Candidate] = []
    best: Optional[Candidate] = None
    dry_runs = 0
    for cs, ns in candidate_grid(base_plan.loop.trip_count, max_streams=max_streams):
        plan = base_plan.with_params(cs, ns)
        feasible = True
        try:
            plan = tune_plan(plan, limit)
            if (plan.chunk_size, plan.num_streams) != (cs, ns):
                # the limit already forces a smaller config; skip the
                # duplicate evaluation (the smaller config is in the grid)
                continue
        except MemLimitError:
            feasible = False
        if feasible:
            scratch = Runtime(Device(profile), virtual=True)
            try:
                res = execute_pipeline(scratch, plan, vsets, kernel)
            except OutOfDeviceMemory:
                cand = Candidate(cs, ns, float("inf"), plan.device_bytes(), False)
            else:
                dry_runs += 1
                cand = Candidate(cs, ns, res.elapsed, plan.device_bytes(), True)
                if best is None or cand.elapsed < best.elapsed:
                    best = cand
        else:
            cand = Candidate(cs, ns, float("inf"), plan.device_bytes(), False)
        candidates.append(cand)

    if best is None:
        raise MemLimitError(base_plan.with_params(1, 1).device_bytes(), limit or 0)
    return AutotuneReport(best=best, candidates=candidates, dry_runs=dry_runs)
