"""Self-healing region execution: retries, re-tuning, degradation.

:func:`run_with_recovery` is what ``region.run(...,
fault_policy=...)`` dispatches to.  It drives the paper's three
execution models through a :class:`~repro.faults.FaultPolicy`:

* **buffer** (the proposed Pipelined-buffer runtime) recovers at chunk
  granularity inside :func:`~repro.core.executor.execute_pipeline`;
  this layer re-tunes its plan against the *current* free pool (so a
  co-tenant memory grab shrinks the buffers instead of killing the
  run) and re-attempts after mid-run memory pressure.
* **pipelined** / **naive** baselines have no sub-region replay unit,
  so they are retried whole — their device arrays are freshly
  allocated and fully re-copied each attempt, which makes a whole
  re-run exact.
* When a model exhausts its budget (or cannot fit memory at all), the
  policy's ``degrade`` chain falls back to the next model, mirroring
  how the paper's models trade memory footprint for machinery:
  ``buffer`` needs the least memory but the most moving parts,
  ``naive`` the reverse.

Only :class:`~repro.gpu.errors.DeviceLostError` is terminal *at this
layer*: nothing can be re-enqueued on a lost device, so it converts
straight into :class:`~repro.faults.RegionFailure`.  One level up,
:class:`~repro.serve.RegionScheduler` treats device loss as
non-terminal — it quarantines the dead device and restarts the region
from chunk 0 on a healthy pool member (see ``docs/serve.md``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.executor import RegionResult, execute_pipeline
from repro.core.kernel import RegionKernel
from repro.core.memlimit import MemLimitError, tune_plan
from repro.core.offload import execute_manual_pipelined, execute_naive
from repro.faults.policy import FaultPolicy, RegionFailure
from repro.gpu.errors import (
    DeviceLostError,
    KernelFaultError,
    OutOfMemoryError,
    TransferError,
)
from repro.gpu.runtime import Runtime

__all__ = ["run_with_recovery"]


def _charge_backoff(runtime: Runtime, policy: FaultPolicy, attempt: int) -> float:
    """Charge one retry backoff to virtual host time; returns it."""
    delay = policy.backoff_for(attempt)
    runtime.host_now += delay
    if runtime.metrics.enabled:
        runtime.metrics.counter("faults.retries").inc()
        runtime.metrics.counter("faults.backoff_seconds").inc(delay)
    return delay


def _tuned_plan(region, runtime: Runtime, arrays):
    """Bind and tune against ``min(explicit limit, free memory)``.

    Under a fault policy the free pool is live state — a co-tenant may
    have grabbed memory since the last attempt — so the budget is
    re-evaluated on every attempt.
    """
    limit = (
        region.mem_limit.limit_bytes if region.mem_limit is not None else None
    )
    free = runtime.device.memory.free
    budget = free if limit is None else min(limit, free)
    return tune_plan(region.bind(arrays), budget)


def run_with_recovery(
    region,
    runtime: Runtime,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    model: str,
    policy: FaultPolicy,
    integrity: str = "off",
) -> RegionResult:
    """Execute ``region`` under ``model``, healing faults per ``policy``.

    Returns the :class:`RegionResult` of the first attempt that
    completes; its ``faults``/``retries`` fields accumulate the effort
    spent across *all* attempts (including abandoned models).  Raises
    :class:`RegionFailure` when the primary model and every ``degrade``
    fallback are exhausted, and on device loss.
    """
    from repro.core.region import _MODEL_ALIASES

    models = [model]
    for m in policy.degrade:
        canonical = _MODEL_ALIASES.get(m)
        if canonical is None:
            from repro.gpu.errors import InvalidValueError

            raise InvalidValueError(
                f"unknown degrade model {m!r}; expected one of "
                f"{sorted(set(_MODEL_ALIASES))}"
            )
        if canonical not in models:
            models.append(canonical)

    attempts_log = []
    total_faults = 0
    total_retries = 0
    last_chunk_status: Dict[int, str] = {}
    tracer = runtime.tracer

    def finish(result: RegionResult) -> RegionResult:
        result.faults += total_faults
        result.retries += total_retries
        return result

    def lost(exc) -> RegionFailure:
        return RegionFailure(
            f"device lost; recovery impossible ({exc})",
            attempts=attempts_log,
            retries=total_retries,
        )

    for mi, m in enumerate(models):
        if mi > 0:
            attempts_log.append(f"degrading to {m!r}")
            if runtime.metrics.enabled:
                runtime.metrics.counter("faults.degradations").inc()
            tracer.instant(
                "degrade", "fault", model=m, after="; ".join(attempts_log[:-1])
            )
        if m == "buffer":
            retunes = 0
            while True:
                try:
                    plan = _tuned_plan(region, runtime, arrays)
                    return finish(
                        execute_pipeline(
                            runtime, plan, arrays, kernel, policy,
                            integrity=integrity,
                        )
                    )
                except DeviceLostError as exc:
                    raise lost(exc) from exc
                except RegionFailure as exc:
                    # chunk retries exhausted inside the executor
                    total_retries += exc.retries
                    attempts_log.extend(exc.attempts)
                    last_chunk_status = exc.chunk_status
                    break
                except (TransferError, KernelFaultError) as exc:
                    # a blocking resident copy exhausted its retries
                    total_faults += exc.pending
                    attempts_log.append(f"buffer: {exc}")
                    break
                except (OutOfMemoryError, MemLimitError) as exc:
                    if policy.retune_on_pressure and retunes < policy.max_retries:
                        _charge_backoff(runtime, policy, retunes)
                        retunes += 1
                        total_retries += 1
                        if runtime.metrics.enabled:
                            runtime.metrics.counter("faults.retunes").inc()
                        continue
                    attempts_log.append(f"buffer: cannot fit memory ({exc})")
                    break
        else:
            if integrity != "off":
                # baselines have no chunk machinery: no checksums, no
                # replay unit — record the coverage gap in the trail
                attempts_log.append(
                    f"{m}: integrity {integrity!r} unavailable under a "
                    f"baseline model"
                )
            fn = execute_manual_pipelined if m == "pipelined" else execute_naive
            for attempt in range(policy.max_retries + 1):
                try:
                    plan = region.bind(arrays)
                    return finish(fn(runtime, plan, arrays, kernel))
                except DeviceLostError as exc:
                    raise lost(exc) from exc
                except (TransferError, KernelFaultError) as exc:
                    total_faults += exc.pending
                    if attempt >= policy.max_retries:
                        attempts_log.append(
                            f"{m}: retries exhausted after "
                            f"{policy.max_retries} whole-region replays ({exc})"
                        )
                        break
                    _charge_backoff(runtime, policy, attempt)
                    total_retries += 1
                except (OutOfMemoryError, MemLimitError) as exc:
                    attempts_log.append(f"{m}: cannot fit memory ({exc})")
                    break

    raise RegionFailure(
        "all execution models exhausted",
        chunk_status=last_chunk_status,
        attempts=attempts_log,
        retries=total_retries,
    )
