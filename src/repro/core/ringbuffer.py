"""Device ring buffers: modular slot mapping and index translation.

The paper: "we use the mod operator (%) to get the offset of each chunk
inside the buffer.  For example, if we have a buffer that can hold four
chunks ... we copy chunk i to position (i % 4).  Once a data chunk is
not needed for later partitions (kernels), we replace it."

We generalize the modular rule from chunk granularity to split-dim
*unit* granularity: global split-dim index ``g`` lives at buffer
position ``g % capacity``.  Consequences:

* a dependency range ``[lo, hi)`` maps to at most **two** contiguous
  buffer pieces (one when it does not wrap) — each piece is one DMA
  transfer, exactly like a real implementation would issue;
* consecutive chunks with overlapping halos share buffer contents, so
  de-duplicated transfers ("removes the data that only previous chunks
  require") fall out naturally;
* index translation for kernels is ``local = g % capacity`` — the
  offset arithmetic the paper passes into its OpenACC kernels.

Liveness (not overwriting data an in-flight chunk still needs) is the
*executor's* job, enforced with event dependencies; the ring only does
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.gpu.darray import DeviceArray
from repro.gpu.runtime import Runtime

__all__ = ["DeviceRing", "RingPiece"]


@dataclass(frozen=True)
class RingPiece:
    """One contiguous piece of a (possibly wrapping) ring range.

    Attributes
    ----------
    g_lo, g_hi:
        Global split-dim half-open range covered by the piece.
    pos:
        Buffer position of ``g_lo`` (``g_lo % capacity``).
    """

    g_lo: int
    g_hi: int
    pos: int

    @property
    def extent(self) -> int:
        """Units covered."""
        return self.g_hi - self.g_lo


class DeviceRing:
    """A pre-allocated device ring buffer for one pipelined array.

    Parameters
    ----------
    runtime:
        The host runtime (allocates the buffer).
    shape:
        Host array shape.
    split_dim:
        Dimension being split.
    capacity:
        Ring capacity in split-dim units; the buffer's shape equals the
        host shape with ``shape[split_dim]`` replaced by ``capacity``.
    dtype:
        Element type.
    tag:
        Allocator debug tag.
    """

    def __init__(
        self,
        runtime: Runtime,
        shape: Tuple[int, ...],
        split_dim: int,
        capacity: int,
        dtype,
        tag: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        if not (0 <= split_dim < len(shape)):
            raise ValueError("split_dim out of range")
        self.split_dim = split_dim
        self.capacity = int(capacity)
        self.host_shape = tuple(int(s) for s in shape)
        buf_shape = list(self.host_shape)
        buf_shape[split_dim] = self.capacity
        self.darr: DeviceArray = runtime.malloc(buf_shape, dtype, tag=tag or "ring")
        #: elements in one split-dim unit
        self.unit_elems = 1
        for i, s in enumerate(self.host_shape):
            if i != split_dim:
                self.unit_elems *= s
        self.itemsize = np.dtype(dtype).itemsize

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def pieces(self, g_lo: int, g_hi: int) -> List[RingPiece]:
        """Decompose a global range into contiguous buffer pieces.

        Raises ``ValueError`` if the range is wider than the ring —
        such a range can never be resident at once.
        """
        if g_hi <= g_lo:
            return []
        if g_hi - g_lo > self.capacity:
            raise ValueError(
                f"range [{g_lo}, {g_hi}) wider than ring capacity {self.capacity}"
            )
        out: List[RingPiece] = []
        lo = g_lo
        while lo < g_hi:
            pos = lo % self.capacity
            span = min(g_hi - lo, self.capacity - pos)
            out.append(RingPiece(lo, lo + span, pos))
            lo += span
        return out

    def _axis_slice(self, lo: int, hi: int):
        idx = [slice(None)] * len(self.host_shape)
        idx[self.split_dim] = slice(lo, hi)
        return tuple(idx)

    def device_view(self, piece: RingPiece) -> DeviceArray:
        """Device-array view for one piece."""
        return self.darr[self._axis_slice(piece.pos, piece.pos + piece.extent)]

    def host_section(self, host: np.ndarray, piece: RingPiece) -> np.ndarray:
        """Host view for one piece (global coordinates)."""
        return host[self._axis_slice(piece.g_lo, piece.g_hi)]

    # ------------------------------------------------------------------
    # functional access (real mode only)
    # ------------------------------------------------------------------
    def gather(self, g_lo: int, g_hi: int) -> Optional[np.ndarray]:
        """Contiguous copy of a global range, reading ring contents.

        Returns ``None`` in virtual mode.  This is the functional
        equivalent of a kernel reading the ring through modular index
        translation; the copy is host-side machinery only and carries
        no simulated cost (the translated access cost is modelled by
        :attr:`~repro.core.kernel.RegionKernel.index_penalty`).
        """
        if self.darr.is_virtual:
            return None
        ps = self.pieces(g_lo, g_hi)
        if len(ps) == 1:
            p = ps[0]
            return np.ascontiguousarray(self.darr.backing[self._axis_slice(p.pos, p.pos + p.extent)])
        parts = [
            self.darr.backing[self._axis_slice(p.pos, p.pos + p.extent)] for p in ps
        ]
        return np.concatenate(parts, axis=self.split_dim)

    def scatter(self, data: np.ndarray, g_lo: int, g_hi: int) -> None:
        """Write a contiguous block into the ring at a global range."""
        if self.darr.is_virtual:
            return
        off = 0
        for p in self.pieces(g_lo, g_hi):
            src = data[self._axis_slice(off, off + p.extent)]
            self.darr.backing[self._axis_slice(p.pos, p.pos + p.extent)] = src
            off += p.extent

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Device bytes held by the ring."""
        return self.capacity * self.unit_elems * self.itemsize

    def transfer_geometry(self, piece: RingPiece) -> Tuple[Optional[int], Optional[int]]:
        """(rows, row_bytes) for pricing one piece's DMA, or (None,
        None) when the piece is contiguous in host memory.

        A split along the outermost dimension is contiguous; splitting
        an inner dimension (matmul's column bands) produces a strided
        2-D copy of ``rows`` rows.
        """
        if self.split_dim == 0:
            return None, None
        rows = 1
        for s in self.host_shape[: self.split_dim]:
            rows *= s
        inner = 1
        for s in self.host_shape[self.split_dim + 1:]:
            inner *= s
        row_bytes = piece.extent * inner * self.itemsize
        return rows, row_bytes
