"""2-D block data regions: streaming matrix tiles through the device.

The paper's prototype "handles non-contiguous copies for 2D arrays,
which means buffering a 'Block' of a matrix.  If split_iter is applied
to both dimensions of a 2D array, we mark it as a 2D data region and
record the corresponding information, e.g., ``x_offset`` and
``y_offset``.  Depending on the data dependencies of each subtask, we
map the required data to this buffer and then pass the offsets in the
buffer to the corresponding computation kernels."

This module is that 2-D data-region machinery: a matrix is processed
tile by tile, each tile moved with pitched (``cudaMemcpy2DAsync``-
priced) transfers into a slot of a pre-allocated tile buffer
(slot ``index % num_streams`` — the same modular rule as the 1-D
rings), the per-tile kernel receives the buffer view plus the tile's
``(row_offset, col_offset)``, and results stream back the same way.
Device memory is bounded by ``num_streams`` tiles per array instead of
the full matrices.

Tiles are disjoint, so unlike the 1-D pipeline there is no halo or
transfer de-duplication; slot reuse is safe by in-order stream
semantics (slot == stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.executor import RegionResult, _Measurer
from repro.directives.clauses import DirectiveError
from repro.gpu.runtime import Runtime
from repro.sim.profiles import DeviceProfile
from repro.sim.varray import is_virtual

__all__ = ["Block2DRegion", "TileKernel", "TileView"]


@dataclass
class TileView:
    """A kernel's window onto one array's current tile.

    Attributes
    ----------
    data:
        The device-buffer view holding the tile (``None`` in virtual
        mode).  Shape is the tile's actual (possibly ragged) shape.
    row_offset, col_offset:
        Global coordinates of the tile's top-left element — the
        ``x_offset``/``y_offset`` the paper passes to its kernels.
    """

    data: Optional[np.ndarray]
    row_offset: int
    col_offset: int


class TileKernel:
    """Per-tile kernel: cost model + functional NumPy body."""

    name = "tile-kernel"

    def cost(self, profile: DeviceProfile, rows: int, cols: int) -> float:
        """Modelled execution seconds for one ``rows x cols`` tile."""
        raise NotImplementedError

    def run(self, ins: Dict[str, TileView], outs: Dict[str, TileView]) -> None:
        """Compute output tiles from input tiles (same grid position)."""
        raise NotImplementedError


class Block2DRegion:
    """A tiled 2-D offload region.

    Parameters
    ----------
    shape:
        The (rows, cols) of every mapped matrix (all must match).
    tile:
        The (tile_rows, tile_cols) block size; edge tiles are ragged.
    num_streams:
        GPU streams / buffer slots per array.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        tile: Tuple[int, int],
        num_streams: int = 2,
    ) -> None:
        rows, cols = int(shape[0]), int(shape[1])
        trows, tcols = int(tile[0]), int(tile[1])
        if rows < 1 or cols < 1:
            raise DirectiveError("matrix shape must be positive")
        if not (1 <= trows <= rows and 1 <= tcols <= cols):
            raise DirectiveError("tile must fit within the matrix")
        if num_streams < 1:
            raise DirectiveError("num_streams must be >= 1")
        self.shape = (rows, cols)
        self.tile = (trows, tcols)
        self.num_streams = num_streams

    @property
    def grid(self) -> Tuple[int, int]:
        """Tiles per dimension (ceil division)."""
        return (
            -(-self.shape[0] // self.tile[0]),
            -(-self.shape[1] // self.tile[1]),
        )

    def tiles(self):
        """Yield ``(index, r0, r1, c0, c1)`` in row-major order."""
        gr, gc = self.grid
        idx = 0
        for i in range(gr):
            for j in range(gc):
                r0 = i * self.tile[0]
                c0 = j * self.tile[1]
                yield (
                    idx,
                    r0,
                    min(r0 + self.tile[0], self.shape[0]),
                    c0,
                    min(c0 + self.tile[1], self.shape[1]),
                )
                idx += 1

    def buffer_bytes(self, dtypes: Dict[str, np.dtype]) -> int:
        """Device bytes the region pre-allocates."""
        per_tile = self.tile[0] * self.tile[1]
        return sum(
            self.num_streams * per_tile * np.dtype(dt).itemsize
            for dt in dtypes.values()
        )

    # ------------------------------------------------------------------
    def run(
        self,
        runtime: Runtime,
        inputs: Dict[str, np.ndarray],
        outputs: Dict[str, np.ndarray],
        kernel: TileKernel,
    ) -> RegionResult:
        """Stream every tile through the device buffer.

        ``inputs`` are copied host->device per tile; ``outputs`` are
        produced per tile and copied back.  All arrays must share the
        region's shape.
        """
        for name, arr in {**inputs, **outputs}.items():
            if tuple(arr.shape) != self.shape:
                raise DirectiveError(
                    f"{name}: shape {tuple(arr.shape)} != region {self.shape}"
                )
        meas = _Measurer(runtime)
        streams = [runtime.create_stream(f"tile{i}") for i in range(self.num_streams)]
        trows, tcols = self.tile

        # slot buffers: num_streams tiles per array, shaped (S*trows, tcols)
        in_buf = {
            n: runtime.malloc((self.num_streams * trows, tcols), a.dtype, tag=f"{n}:tiles")
            for n, a in inputs.items()
        }
        out_buf = {
            n: runtime.malloc((self.num_streams * trows, tcols), a.dtype, tag=f"{n}:tiles")
            for n, a in outputs.items()
        }
        virtual = runtime.virtual or any(
            is_virtual(a) for a in list(inputs.values()) + list(outputs.values())
        )

        ntiles = 0
        for idx, r0, r1, c0, c1 in self.tiles():
            ntiles += 1
            slot = idx % self.num_streams
            st = streams[slot]
            th, tw = r1 - r0, c1 - c0
            srow = slot * trows

            for name, host in inputs.items():
                dview = in_buf[name][srow : srow + th, :tw]
                runtime.memcpy_h2d_async(
                    dview,
                    host[r0:r1, c0:c1],
                    st,
                    rows=th,
                    row_bytes=tw * host.dtype.itemsize,
                    label=f"h2d:{name}[{r0}:{r1},{c0}:{c1}]",
                )

            payload = None
            if not virtual:

                def payload(r0=r0, c0=c0, th=th, tw=tw, srow=srow):
                    ins = {
                        n: TileView(
                            in_buf[n].backing[srow : srow + th, :tw], r0, c0
                        )
                        for n in inputs
                    }
                    outs = {
                        n: TileView(
                            out_buf[n].backing[srow : srow + th, :tw], r0, c0
                        )
                        for n in outputs
                    }
                    kernel.run(ins, outs)

            runtime.launch(
                kernel.cost(runtime.profile, th, tw),
                payload,
                st,
                label=f"{kernel.name}[{r0}:{r1},{c0}:{c1}]",
            )

            for name, host in outputs.items():
                dview = out_buf[name][srow : srow + th, :tw]
                runtime.memcpy_d2h_async(
                    host[r0:r1, c0:c1],
                    dview,
                    st,
                    rows=th,
                    row_bytes=tw * host.dtype.itemsize,
                    label=f"d2h:{name}[{r0}:{r1},{c0}:{c1}]",
                )

        runtime.synchronize()
        for d in list(in_buf.values()) + list(out_buf.values()):
            runtime.free(d)
        return meas.finish("block2d", ntiles, trows * tcols, self.num_streams)
