"""One device-spec resolver for every placement surface.

Device specifications arrive from many directions — app ``run_all``
calls, workload JSON, CLI ``--devices``, ``region.run(devices=...)`` —
and historically each surface coerced them ad hoc.  This module is the
single normalization point:

* :func:`resolve_profile_spec` turns one spec (a short name like
  ``"k40m"``, a :class:`~repro.sim.profiles.DeviceProfile`, a
  :class:`~repro.sim.device.Device`, or a
  :class:`~repro.gpu.runtime.Runtime`) into a ``DeviceProfile``;
* :func:`resolve_runtimes` turns a *placement* spec (a device count, a
  sequence of specs, or a :class:`~repro.serve.DevicePool`) into the
  list of runtimes a sharded execution spans;
* :func:`parse_devices_arg` parses the CLI's ``--devices`` string
  (``"2"`` or ``"k40m,hd7970"``).

Invalid specs raise :class:`~repro.gpu.errors.InvalidValueError`
naming the offending field, so a bad workload file or CLI flag fails
with the field that carried it rather than a bare ``KeyError``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.gpu.errors import InvalidValueError
from repro.gpu.runtime import Runtime
from repro.sim.device import Device
from repro.sim.profiles import DeviceProfile, profile_by_name

__all__ = [
    "parse_devices_arg",
    "resolve_profile_spec",
    "resolve_runtimes",
]


def resolve_profile_spec(spec, *, field: str = "device") -> DeviceProfile:
    """Normalize one device spec to a :class:`DeviceProfile`.

    Accepts a profile object, a :class:`Device`, a :class:`Runtime`,
    or a short profile name (``"k40m"``/``"hd7970"``).  Anything else
    — including an unknown name — raises
    :class:`~repro.gpu.errors.InvalidValueError` naming ``field``.
    """
    if isinstance(spec, DeviceProfile):
        return spec
    if isinstance(spec, Runtime):
        return spec.profile
    if isinstance(spec, Device):
        return spec.profile
    if isinstance(spec, str):
        try:
            return profile_by_name(spec)
        except KeyError as exc:
            raise InvalidValueError(f"{field}: {exc.args[0]}") from None
    raise InvalidValueError(
        f"{field}: cannot resolve device spec {spec!r} "
        f"(expected a profile name, DeviceProfile, Device, or Runtime)"
    )


def _runtime_for(spec, *, virtual: bool, field: str) -> Runtime:
    """One runtime for one spec entry; Runtimes pass through as-is."""
    if isinstance(spec, Runtime):
        return spec
    if isinstance(spec, Device):
        return Runtime(spec, virtual=virtual)
    return Runtime(Device(resolve_profile_spec(spec, field=field)), virtual=virtual)


def resolve_runtimes(
    devices,
    *,
    base: Optional[Runtime] = None,
    virtual: bool = False,
    field: str = "devices",
) -> List[Runtime]:
    """Normalize a placement spec into the runtimes it spans.

    ``devices`` may be:

    * an ``int`` count ``n >= 1`` — ``n`` fresh devices of ``base``'s
      profile (or the default ``"k40m"`` when no base runtime exists);
    * a single spec or a sequence of specs, each a profile name,
      :class:`DeviceProfile`, :class:`Device`, or :class:`Runtime`
      (runtimes are used as-is, preserving their clocks);
    * a :class:`~repro.serve.DevicePool` — its healthy runtimes.

    ``virtual`` selects metadata-only payloads for freshly created
    runtimes (existing runtimes keep their own mode).
    """
    if isinstance(devices, bool):
        raise InvalidValueError(f"{field}: expected a device spec, got {devices!r}")
    if isinstance(devices, int):
        if devices < 1:
            raise InvalidValueError(
                f"{field}: device count must be >= 1, got {devices}"
            )
        profile = base.profile if base is not None else profile_by_name("k40m")
        return [
            Runtime(Device(profile), virtual=virtual) for _ in range(devices)
        ]
    # a DevicePool (duck-typed to avoid a core -> serve import cycle)
    runtimes = getattr(devices, "runtimes", None)
    if runtimes is not None and hasattr(devices, "alive"):
        alive = devices.alive()
        if not alive:
            raise InvalidValueError(f"{field}: pool has no healthy devices")
        return [runtimes[i] for i in alive]
    if isinstance(devices, (str, DeviceProfile, Device, Runtime)):
        devices = [devices]
    try:
        entries = list(devices)
    except TypeError:
        raise InvalidValueError(
            f"{field}: cannot resolve device spec {devices!r} "
            f"(expected a count, spec sequence, or DevicePool)"
        ) from None
    if not entries:
        raise InvalidValueError(f"{field}: need at least one device")
    return [_runtime_for(d, virtual=virtual, field=field) for d in entries]


def parse_devices_arg(value: str, *, field: str = "--devices"):
    """Parse a CLI ``--devices`` value: a count or comma-separated names.

    ``"2"`` -> ``2``; ``"k40m,hd7970"`` -> ``["k40m", "hd7970"]`` with
    each name validated.  Returns the parsed spec (int or list of
    names) ready for :func:`resolve_runtimes` or ``DevicePool``.
    """
    text = value.strip()
    if not text:
        raise InvalidValueError(f"{field}: empty device spec")
    try:
        return int(text)
    except ValueError:
        pass
    names = [part.strip() for part in text.split(",")]
    for name in names:
        resolve_profile_spec(name, field=field)  # validate eagerly
    return names
