"""``pipeline_mem_limit`` — fitting the plan into a memory budget.

The paper: "The ``num_stream`` and ``chunk_size`` parameters determine
the size of the device buffer, which we tune before we allocate the
buffer to fit total memory usage within available size."

:func:`tune_plan` implements that tuning deterministically: it keeps
the user's requested parameters when they fit, otherwise it shrinks
``chunk_size`` (halving), then ``num_streams`` (decrementing, floor 1),
and raises :class:`MemLimitError` when even ``(1, 1)`` exceeds the
budget — the unrecoverable-OOM situation the paper argues the clause
exists to prevent.

When no explicit limit is given, the device's currently-free memory is
the budget, making regions "resilient to changes in device memory
sizes" as the paper puts it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.plan import RegionPlan
from repro.errors import ReproError

__all__ = ["MemLimitError", "tune_plan"]


class MemLimitError(ReproError, MemoryError):
    """The region cannot fit the memory budget at any pipeline setting.

    Attributes
    ----------
    needed:
        Bytes of the smallest candidate tried (the ``(1, 1)`` plan).
    limit:
        The budget in bytes.
    tried:
        The full candidate sequence the tuner walked before giving up,
        as ``(chunk_size, num_streams, device_bytes)`` tuples — so the
        error message shows exactly why no setting fits.
    """

    def __init__(
        self,
        needed: int,
        limit: int,
        tried: Sequence[Tuple[int, int, int]] = (),
    ) -> None:
        msg = (
            f"pipeline region needs at least {needed} B of device memory, "
            f"limit is {limit} B"
        )
        if tried:
            walk = " -> ".join(
                f"(chunk_size={cs}, streams={ns}: {b} B)" for cs, ns, b in tried
            )
            msg += f"; candidates tried: {walk}"
        super().__init__(msg)
        self.needed = needed
        self.limit = limit
        self.tried = tuple(tried)


def tune_plan(plan: RegionPlan, limit_bytes: Optional[int]) -> RegionPlan:
    """Shrink pipeline parameters until the plan fits ``limit_bytes``.

    Parameters
    ----------
    plan:
        The requested plan.
    limit_bytes:
        The budget; ``None`` means "no limit" and returns the plan
        unchanged.

    Returns
    -------
    RegionPlan
        The original plan if it fits, otherwise a copy with reduced
        ``chunk_size``/``num_streams``.
    """
    if limit_bytes is None:
        return plan
    if plan.device_bytes() <= limit_bytes:
        return plan
    cs, ns = plan.chunk_size, plan.num_streams
    candidate = plan
    tried = [(cs, ns, plan.device_bytes())]
    while candidate.device_bytes() > limit_bytes:
        if cs > 1:
            cs = max(1, cs // 2)
        elif ns > 1:
            ns -= 1
        else:
            raise MemLimitError(candidate.device_bytes(), limit_bytes, tried)
        candidate = plan.with_params(cs, ns)
        tried.append((cs, ns, candidate.device_bytes()))
    return candidate
