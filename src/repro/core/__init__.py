"""The proposed partitioning + pipelining runtime (the paper's contribution).

Public entry points:

* :class:`~repro.core.region.TargetRegion` — build from a pragma string
  (:meth:`TargetRegion.parse`) or clause objects, bind host arrays, and
  execute in any of the paper's three models:

  - ``region.run(rt, arrays, kernel, model="naive")`` — synchronous
    whole-array offload ("Naive"),
  - ``region.run(rt, arrays, kernel, model="pipelined")`` — hand-coded
    chunked async offload with full-footprint device arrays
    ("Pipelined"),
  - ``region.run(rt, arrays, kernel)`` — the proposed runtime (default
    ``model="buffer"``): chunked async offload into a pre-allocated
    device ring buffer with automatic index translation
    ("Pipelined-buffer").

  ``run_naive`` / ``run_pipelined`` remain as deprecated aliases.

* :class:`~repro.core.kernel.RegionKernel` — the kernel protocol
  (a cost model plus a NumPy functional body operating on translated
  chunk views).

Internals: :mod:`~repro.core.plan` (chunking), :mod:`~repro.core.scheduler`
(static/adaptive chunk schedules), :mod:`~repro.core.ringbuffer` (slot
mapping & index translation), :mod:`~repro.core.memlimit`
(``pipeline_mem_limit`` auto-tuning), :mod:`~repro.core.executor` /
:mod:`~repro.core.offload` (the three execution models).
"""

from repro.core.autotune import AutotuneReport, autotune
from repro.core.block2d import Block2DRegion, TileKernel, TileView
from repro.core.executor import PipelineIssuer
from repro.core.kernel import ChunkView, RegionKernel, make_kernel
from repro.core.memlimit import MemLimitError, tune_plan
from repro.core.multidevice import (
    MultiDeviceResult,
    ShardedIssuer,
    ShardedResult,
    execute_multi_device,
    execute_sharded,
)
from repro.core.placement import (
    parse_devices_arg,
    resolve_profile_spec,
    resolve_runtimes,
)
from repro.core.plan import Chunk, RegionPlan
from repro.core.region import RegionResult, TargetRegion

__all__ = [
    "AutotuneReport",
    "Block2DRegion",
    "Chunk",
    "ChunkView",
    "TileKernel",
    "TileView",
    "MemLimitError",
    "MultiDeviceResult",
    "PipelineIssuer",
    "RegionKernel",
    "RegionPlan",
    "RegionResult",
    "ShardedIssuer",
    "ShardedResult",
    "TargetRegion",
    "autotune",
    "make_kernel",
    "execute_multi_device",
    "execute_sharded",
    "parse_devices_arg",
    "resolve_profile_spec",
    "resolve_runtimes",
    "tune_plan",
]
