"""Chunk planning: turning a loop + clauses into scheduled subtasks.

A :class:`RegionPlan` is the fully-resolved form of one pipelined
region: the loop, the pipeline parameters after memory-limit tuning,
the derived :class:`~repro.directives.splitspec.SplitSpec` geometry per
pipelined array, and the list of :class:`Chunk` subtasks.  It also
knows how to price its own device-buffer footprint, which is what the
``pipeline_mem_limit`` tuner optimizes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.directives.clauses import DirectiveError, Loop, MapClause
from repro.directives.splitspec import SplitSpec, chunk_range

__all__ = ["Chunk", "RegionPlan", "make_chunks"]


@dataclass(frozen=True)
class Chunk:
    """One subtask: loop iterations ``[t0, t1)``.

    ``index`` is the chunk's position in schedule order; the runtime
    assigns it to stream ``index % num_streams`` and to ring-buffer
    slots by the same modular rule the paper describes ("we copy chunk
    i to position (i % 4)").
    """

    index: int
    t0: int
    t1: int

    @property
    def trip(self) -> int:
        """Iterations in this chunk."""
        return self.t1 - self.t0


def make_chunks(loop: Loop, chunk_size: int) -> List[Chunk]:
    """Split the loop into fixed-size chunks (last may be smaller)."""
    if chunk_size < 1:
        raise DirectiveError("chunk_size must be >= 1")
    chunks: List[Chunk] = []
    t = loop.start
    i = 0
    while t < loop.stop:
        hi = min(t + chunk_size, loop.stop)
        chunks.append(Chunk(i, t, hi))
        t = hi
        i += 1
    return chunks


@dataclass
class RegionPlan:
    """A resolved execution plan for one region.

    Attributes
    ----------
    loop:
        The pipelined loop.
    chunk_size, num_streams:
        Effective pipeline parameters (after any memory-limit tuning).
    schedule:
        ``"static"`` or ``"adaptive"``.
    specs:
        Derived geometry per pipelined array, keyed by variable name.
    residents:
        Resident (whole-array) map clauses, keyed by variable name.
    dtypes:
        Bound dtypes per variable (pipelined and resident).
    shapes:
        Bound host shapes per variable.
    halo_mode:
        ``"dedup"`` (each element transferred once; the runtime
        "removes the data that only previous chunks require") or
        ``"duplicate"`` (each chunk re-transfers its whole dependency
        range — the simpler scheme, kept for the ablation study).
    """

    loop: Loop
    chunk_size: int
    num_streams: int
    schedule: str
    specs: Dict[str, SplitSpec]
    residents: Dict[str, MapClause]
    dtypes: Dict[str, np.dtype]
    shapes: Dict[str, Tuple[int, ...]]
    halo_mode: str = "dedup"

    def __post_init__(self) -> None:
        from repro.gpu.errors import InvalidValueError

        for name in ("chunk_size", "num_streams"):
            v = getattr(self, name)
            if not isinstance(v, (int, np.integer)) or isinstance(v, bool):
                raise InvalidValueError(
                    f"{name} must be an integer, got {type(v).__name__} {v!r}"
                )
            if v < 1:
                raise InvalidValueError(f"{name} must be >= 1, got {v}")
        if self.halo_mode not in ("dedup", "duplicate"):
            raise DirectiveError(f"unknown halo_mode {self.halo_mode!r}")
        nchunks = len(self.chunks())
        if self.num_streams > nchunks:
            self.num_streams = max(1, nchunks)

    # ------------------------------------------------------------------
    @property
    def max_chunk_size(self) -> int:
        """Largest chunk size the schedule can produce.

        Static schedules use ``chunk_size`` throughout; the adaptive
        schedule ramps up to ``ADAPTIVE_MAX_FACTOR`` times the base
        (see :mod:`repro.core.scheduler`).  Ring buffers are sized for
        this maximum.
        """
        if self.schedule == "static":
            return min(self.chunk_size, self.loop.trip_count)
        from repro.core.scheduler import ADAPTIVE_MAX_FACTOR

        return min(self.chunk_size * ADAPTIVE_MAX_FACTOR, self.loop.trip_count)

    def chunks(self) -> List[Chunk]:
        """The ordered subtask list under the current schedule."""
        from repro.core.scheduler import schedule_chunks

        return schedule_chunks(
            self.schedule, self.loop, self.chunk_size, self.num_streams
        )

    def with_params(self, chunk_size: int, num_streams: int) -> "RegionPlan":
        """A copy with different pipeline parameters."""
        return RegionPlan(
            loop=self.loop,
            chunk_size=chunk_size,
            num_streams=num_streams,
            schedule=self.schedule,
            specs=self.specs,
            residents=self.residents,
            dtypes=self.dtypes,
            shapes=self.shapes,
            halo_mode=self.halo_mode,
        )

    # ------------------------------------------------------------------
    # buffer sizing (must mirror the executor's allocations exactly;
    # test_memlimit asserts this)
    # ------------------------------------------------------------------
    def ring_capacity(self, var: str) -> int:
        """Ring capacity (split-dim units) for a pipelined input array.

        ``dedup`` mode holds the live window of ``num_streams``
        in-flight chunks plus one chunk of prefetch slack; ``duplicate``
        mode holds ``num_streams`` slots of one chunk-extent each.
        """
        spec = self.specs[var]
        cs, ns = self.max_chunk_size, self.num_streams
        if self.halo_mode == "duplicate" or not spec.clause.is_input:
            cap = ns * self.slot_extent(var)
        else:
            cap = spec.window_extent(cs, ns) + spec.prefetch_slack(cs)
        return min(cap, spec.split_extent)

    def slot_extent(self, var: str) -> int:
        """Split-dim extent of one chunk's slot for array ``var``."""
        spec = self.specs[var]
        return min(spec.chunk_extent(self.max_chunk_size), spec.split_extent)

    def buffer_bytes(self, var: str) -> int:
        """Device bytes for one pipelined array's ring buffer."""
        spec = self.specs[var]
        itemsize = self.dtypes[var].itemsize
        return self.ring_capacity(var) * spec.bytes_per_unit(itemsize)

    def resident_bytes(self, var: str) -> int:
        """Device bytes for a resident array."""
        shape = self.shapes[var]
        return int(np.prod(shape, dtype=np.int64)) * self.dtypes[var].itemsize

    def device_bytes(self) -> int:
        """Total device bytes this plan allocates."""
        total = sum(self.buffer_bytes(v) for v in self.specs)
        total += sum(self.resident_bytes(v) for v in self.residents)
        return total

    # ------------------------------------------------------------------
    def chunk_dep_range(self, var: str, chunk: Chunk) -> Tuple[int, int]:
        """Split-dim range chunk depends on for ``var`` (clamped)."""
        return chunk_range(self.specs[var].clause, chunk.t0, chunk.t1)

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"loop {self.loop.var}=[{self.loop.start},{self.loop.stop})",
            f"chunks={len(self.chunks())}x{self.chunk_size}",
            f"streams={self.num_streams}",
            f"schedule={self.schedule}",
            f"halo={self.halo_mode}",
            f"buffer={self.device_bytes() / 1e6:.1f}MB",
        ]
        return " ".join(parts)
