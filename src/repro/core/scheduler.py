"""Chunk schedules: ``static`` (the paper) and ``adaptive`` (extension).

The paper's prototype supports only ``pipeline(static[c, s])`` — fixed
chunk size ``c`` on ``s`` streams — and names adaptive scheduling as
future work ("future work will support adaptive schedules ...
integrate a performance model into an auto-tuning scheduler").

We implement a deterministic adaptive schedule as that extension:

* the first ``s`` chunks use the requested (small) chunk size, so the
  pipeline fills quickly and the un-overlappable first transfer is
  small;
* after each full wave of ``s`` chunks the chunk size doubles, up to
  ``ADAPTIVE_MAX_FACTOR`` times the base size, amortizing per-chunk API
  and launch overhead in steady state — the exact trade-off the paper
  measures in its chunk-count study (Figure 8).

Ring buffers are sized for the *maximum* chunk extent, so the adaptive
schedule trades some memory for fewer API calls; the memory-limit
tuner accounts for that via :attr:`RegionPlan.max_chunk_size`.
"""

from __future__ import annotations

from typing import List

from repro.directives.clauses import Loop

from repro.core.plan import Chunk

__all__ = ["ADAPTIVE_MAX_FACTOR", "adaptive_chunks", "schedule_chunks"]

#: Upper bound on adaptive chunk growth relative to the base size.
ADAPTIVE_MAX_FACTOR = 8


def adaptive_chunks(loop: Loop, base_chunk: int, num_streams: int) -> List[Chunk]:
    """Build the ramp-up adaptive schedule described in the module doc."""
    if base_chunk < 1:
        raise ValueError("chunk_size must be >= 1")
    max_chunk = base_chunk * ADAPTIVE_MAX_FACTOR
    chunks: List[Chunk] = []
    t = loop.start
    size = base_chunk
    wave = max(1, num_streams)
    i = 0
    while t < loop.stop:
        hi = min(t + size, loop.stop)
        chunks.append(Chunk(i, t, hi))
        t = hi
        i += 1
        if i % wave == 0 and size < max_chunk:
            size = min(size * 2, max_chunk)
    return chunks


def schedule_chunks(
    schedule: str, loop: Loop, chunk_size: int, num_streams: int
) -> List[Chunk]:
    """Dispatch on schedule kind; returns the ordered chunk list."""
    if schedule == "static":
        from repro.core.plan import make_chunks

        return make_chunks(loop, chunk_size)
    if schedule == "adaptive":
        return adaptive_chunks(loop, chunk_size, num_streams)
    raise ValueError(f"unknown schedule {schedule!r}")
