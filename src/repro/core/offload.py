"""Baseline execution models: Naive and hand-coded Pipelined.

These are the two comparison points of every figure in the paper:

* :func:`execute_naive` — the default offload model of OpenMP/OpenACC:
  allocate every mapped array at full size, synchronously copy inputs,
  run one kernel over the whole loop, synchronously copy outputs back.
  "Data transfers consume nearly 50% of execution time, during which no
  computation is performed."

* :func:`execute_manual_pipelined` — the hand-coded OpenACC pipelining
  the paper implements for comparison: iterations are divided into
  chunks issued asynchronously on multiple streams, but array indices
  are **not** altered, so every array still occupies its full footprint
  in device memory.  The vendor OpenACC runtime's per-stream
  bookkeeping cost (``acc_stream_factor``) applies — this is the model
  whose performance degrades sharply as streams are added (Figure 7).

Both use the same :class:`~repro.core.kernel.RegionKernel` bodies as
the proposed executor, so all three models are validated against one
NumPy reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.executor import (
    RegionResult,
    _Measurer,
    _Records,
    _cleanup_after_failure,
    _intersecting,
    _prune,
    _axis_slice,
)
from repro.core.kernel import ChunkView, RegionKernel
from repro.core.plan import RegionPlan
from repro.gpu.runtime import Runtime
from repro.sim.engine import EventToken
from repro.sim.varray import is_virtual

__all__ = ["execute_naive", "execute_manual_pipelined"]


def _transfer_geometry(
    shape: Tuple[int, ...], split_dim: int, extent: int, itemsize: int
) -> Tuple[Optional[int], Optional[int]]:
    """(rows, row_bytes) for a band copy of a full-size device array."""
    if split_dim == 0:
        return None, None
    rows = 1
    for s in shape[:split_dim]:
        rows *= s
    inner = 1
    for s in shape[split_dim + 1:]:
        inner *= s
    return rows, extent * inner * itemsize


def execute_naive(
    runtime: Runtime,
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
) -> RegionResult:
    """Run a region under the synchronous whole-array offload model.

    On any failure (async fault surfacing at a sync point, OOM, ...)
    the device is drained and every device array this call allocated
    is released before the exception propagates, so a recovery layer
    can re-attempt from a clean allocator.
    """
    meas = _Measurer(runtime)
    dev: Dict[str, object] = {}
    try:
        for var in list(plan.specs) + list(plan.residents):
            host = arrays[var]
            dev[var] = runtime.malloc(host.shape, host.dtype, tag=f"{var}:naive")

        def is_input(var: str) -> bool:
            if var in plan.specs:
                return plan.specs[var].clause.is_input
            return plan.residents[var].direction in ("to", "tofrom")

        def is_output(var: str) -> bool:
            if var in plan.specs:
                return plan.specs[var].clause.is_output
            return plan.residents[var].direction in ("from", "tofrom")

        for var in dev:
            if is_input(var):
                runtime.memcpy_h2d(dev[var], arrays[var], label=f"h2d:{var}")

        virtual = runtime.virtual or any(is_virtual(arrays[v]) for v in arrays)

        def payload() -> None:
            views: Dict[str, ChunkView] = {}
            for var, d in dev.items():
                if var in plan.specs:
                    sd = plan.specs[var].split_dim
                    views[var] = ChunkView(d.backing, sd, 0, d.shape[sd])
                else:
                    views[var] = ChunkView(d.backing, None, 0, d.shape[0])
            kernel.run(views, plan.loop.start, plan.loop.stop)

        stream = runtime.create_stream("naive")
        cmd = runtime.launch(
            kernel.chunk_cost(
                runtime.profile, plan.loop.start, plan.loop.stop, translated=False
            ),
            payload if not virtual else None,
            stream,
            label=f"{kernel.name}[naive]",
        )
        runtime._block_on(cmd)

        for var in dev:
            if is_output(var):
                runtime.memcpy_d2h(arrays[var], dev[var], label=f"d2h:{var}")
        for d in dev.values():
            runtime.free(d)
    except BaseException:
        _cleanup_after_failure(runtime, list(dev.values()))
        raise
    return meas.finish("naive", 1, plan.loop.trip_count, 1)


def execute_manual_pipelined(
    runtime: Runtime,
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
) -> RegionResult:
    """Run a region under the hand-coded OpenACC pipelining model.

    Chunked asynchronous transfers and kernels on ``plan.num_streams``
    streams, but full-footprint device arrays and unmodified indexing
    (``translated=False``).  Host-side per-call overhead scales with
    the vendor runtime's ``acc_stream_factor``.
    """
    profile = runtime.profile
    chunks = plan.chunks()
    streams_n = min(plan.num_streams, len(chunks))
    meas = _Measurer(runtime)
    old_scale = runtime.call_overhead_scale
    old_contention = runtime.command_overhead
    runtime.call_overhead_scale = 1.0 + profile.acc_stream_factor * (streams_n - 1)
    runtime.command_overhead = profile.acc_stream_contention * (streams_n - 1)
    dev: Dict[str, object] = {}
    try:
        streams = [runtime.create_stream(f"acc{i}") for i in range(streams_n)]

        for var in list(plan.specs) + list(plan.residents):
            host = arrays[var]
            dev[var] = runtime.malloc(host.shape, host.dtype, tag=f"{var}:pipelined")

        # resident arrays copied synchronously up front, like a data region
        for var, clause in plan.residents.items():
            if clause.direction in ("to", "tofrom"):
                runtime.memcpy_h2d(dev[var], arrays[var], label=f"h2d:{var}:resident")

        books: Dict[str, _Records] = {v: _Records() for v in plan.specs}
        virtual = runtime.virtual or any(is_virtual(arrays[v]) for v in arrays)

        def make_kernel_payload(chunk):
            if virtual:
                return None

            def run() -> None:
                views: Dict[str, ChunkView] = {}
                for var, spec in plan.specs.items():
                    lo, hi = plan.chunk_dep_range(var, chunk)
                    d = dev[var]
                    view = d.backing[
                        _axis_slice(d.ndim, spec.split_dim, lo, hi)
                    ]
                    views[var] = ChunkView(view, spec.split_dim, lo, hi)
                for var in plan.residents:
                    d = dev[var]
                    views[var] = ChunkView(d.backing, None, 0, d.shape[0])
                kernel.run(views, chunk.t0, chunk.t1)

            return run

        for chunk in chunks:
            st = streams[chunk.index % streams_n]
            in_tokens: List[EventToken] = []
            for var, spec in plan.specs.items():
                cl = spec.clause
                if not cl.is_input:
                    continue
                lo, hi = plan.chunk_dep_range(var, chunk)
                book = books[var]
                new_lo = lo if book.covered_hi is None else max(lo, book.covered_hi)
                if plan.halo_mode == "duplicate":
                    new_lo = lo
                if new_lo < hi:
                    host = arrays[var]
                    d = dev[var]
                    sl = _axis_slice(d.ndim, spec.split_dim, new_lo, hi)
                    rows, row_bytes = _transfer_geometry(
                        host.shape, spec.split_dim, hi - new_lo, host.dtype.itemsize
                    )
                    tok = EventToken.acquire(f"h2d:{var}:{new_lo}")
                    runtime.memcpy_h2d_async(
                        d[sl],
                        host[sl],
                        st,
                        records=[tok],
                        rows=rows,
                        row_bytes=row_bytes,
                        label=f"h2d:{var}[{new_lo}:{hi})",
                    )
                    book.h2d.append((new_lo, hi, tok))
                    book.covered_hi = max(book.covered_hi or hi, hi)
                in_tokens.extend(_intersecting(book.h2d, lo, hi))
                _prune(book.h2d, lo)

            ktok = EventToken.acquire(f"kernel:{chunk.index}")
            runtime.launch(
                kernel.chunk_cost(profile, chunk.t0, chunk.t1, translated=False),
                make_kernel_payload(chunk),
                st,
                waits=in_tokens,
                records=[ktok],
                label=f"{kernel.name}[{chunk.t0}:{chunk.t1})",
            )

            for var, spec in plan.specs.items():
                if not spec.clause.is_output:
                    continue
                lo, hi = plan.chunk_dep_range(var, chunk)
                d = dev[var]
                host = arrays[var]
                sl = _axis_slice(d.ndim, spec.split_dim, lo, hi)
                rows, row_bytes = _transfer_geometry(
                    host.shape, spec.split_dim, hi - lo, host.dtype.itemsize
                )
                runtime.memcpy_d2h_async(
                    host[sl],
                    d[sl],
                    st,
                    rows=rows,
                    row_bytes=row_bytes,
                    label=f"d2h:{var}[{lo}:{hi})",
                )

        runtime.synchronize()

        for var, clause in plan.residents.items():
            if clause.direction in ("from", "tofrom"):
                runtime.memcpy_d2h(arrays[var], dev[var], label=f"d2h:{var}:resident")
        for d in dev.values():
            runtime.free(d)
    except BaseException:
        _cleanup_after_failure(runtime, list(dev.values()))
        raise
    finally:
        runtime.call_overhead_scale = old_scale
        runtime.command_overhead = old_contention
    return meas.finish("pipelined", len(chunks), plan.chunk_size, streams_n)
