"""Sharding one pipelined region across several devices.

The paper's conclusion: "we will test and analyze our approach on
other systems, such as Intel Xeon Phi co-processors, and even
multi-nodes with different accelerators", building on the authors'
CoreTSAR work which "divides computation across devices".

This module combines the two ideas: the pipelined loop is *partitioned
across devices* (CoreTSAR-style association of data to computation
along the split dimension) and each device's share is then *pipelined*
through its own ring buffer.  Because ``pipeline_map`` already states
which array slice each iteration needs, the same clauses drive both
levels — no new annotation is required.

The heart is :class:`ShardedIssuer`, which speaks the same protocol as
:class:`~repro.core.executor.PipelineIssuer` (``open`` / ``issue_next``
/ ``drain`` / ``recover`` / ``finalize`` / ``abort``) so the serving
scheduler can drive a sharded region exactly like a single-device one.
A sharded open:

* synchronizes the member host clocks to a **shared virtual clock**
  (the shards start together, so wall time is the max over shards),
* splits the loop by probed throughput (:func:`probe_rates` +
  :func:`split_loop`; a K40m + HD 7970 pair gets an uneven split),
* charges a **halo exchange** at each interior shard boundary for
  stencil-style regions — the overlap of neighboring shards'
  ``SplitSpec`` ranges moves as a D2D modeled as D2H + H2D (the H2D
  half is the consumer pipeline's ordinary first-lap transfer, already
  charged; the producer's D2H push is charged here), and
* routes every shard's transfers through one
  :class:`~repro.sim.bandwidth.BandwidthShared` link, so scaling
  curves pay for PCIe contention instead of being embarrassingly
  parallel.

Failover: a shard's device dying (``DeviceLostError``) re-splits its
incomplete iterations across the surviving shards (``self_heal=True``,
the standalone :func:`execute_sharded` path).  Completed chunks'
outputs already live in the host arrays and re-running a chunk is
idempotent, so the healed output is ``np.array_equal``-exact.  Under
the scheduler ``self_heal=False`` and the loss escalates to pool-level
failover instead.

``execute_multi_device`` — the old serial per-device entry point — is
kept as a deprecated shim; use ``region.run(devices=...)``.
"""

from __future__ import annotations

import math
import warnings
from collections import ChainMap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import (
    PipelineIssuer,
    RegionResult,
    _Measurer,
    execute_pipeline,
)
from repro.core.kernel import RegionKernel
from repro.core.memlimit import tune_plan
from repro.core.plan import RegionPlan
from repro.directives.clauses import DirectiveError, Loop
from repro.directives.splitspec import SplitSpec
from repro.gpu.errors import DeviceLostError, InvalidValueError
from repro.gpu.runtime import Runtime
from repro.integrity import INTEGRITY_OFF, validate_integrity
from repro.sim.bandwidth import BandwidthShared
from repro.sim.device import Device
from repro.sim.varray import VirtualArray

__all__ = [
    "MultiDeviceResult",
    "ShardedIssuer",
    "ShardedResult",
    "WatchdogConfig",
    "execute_multi_device",
    "execute_sharded",
    "probe_rates",
    "split_loop",
]


@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning for the straggler watchdog on sharded runs.

    A device can degrade without dying — thermal throttling, a flaky
    link, ECC retirement storms — and a fail-stop failover never sees
    it.  The watchdog compares per-shard *completed-chunk* progress
    while issuing and re-splits work away from a shard that falls too
    far behind its peers, exactly as if its device had been lost
    (outputs stay ``np.array_equal``-exact; re-running a chunk is
    idempotent).

    Attributes
    ----------
    ratio:
        A live shard is declared a straggler when its completed
        fraction drops below ``ratio`` times the best shard's.
    min_done:
        Grace period: no verdicts until the best shard has completed
        this many chunks.
    max_inflight:
        Per-shard cap on issued-but-incomplete chunks while the
        watchdog runs; ``0`` means ``max(2 * streams, 4)``.  The cap
        is what makes lag observable at issue time — without it every
        chunk is enqueued up front and a slow device is only noticed
        when the region's tail blocks on its drain.
    """

    ratio: float = 0.4
    min_done: int = 2
    max_inflight: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.ratio < 1.0):
            raise InvalidValueError(
                f"watchdog ratio must be in (0, 1), got {self.ratio!r}"
            )
        if self.min_done < 1:
            raise InvalidValueError(
                f"watchdog min_done must be >= 1, got {self.min_done!r}"
            )
        if self.max_inflight < 0:
            raise InvalidValueError(
                f"watchdog max_inflight must be >= 0, got "
                f"{self.max_inflight!r}"
            )


@dataclass
class MultiDeviceResult:
    """Outcome of one multi-device pipelined execution.

    Attributes
    ----------
    per_device:
        Each device's :class:`RegionResult`, in device order.
    shares:
        Iterations assigned per device.
    elapsed:
        Wall time: the devices run concurrently, so the slowest one
        defines the region's end-to-end time.
    """

    per_device: List[RegionResult]
    shares: List[int]

    @property
    def elapsed(self) -> float:
        """Concurrent wall time (max over devices)."""
        return max(r.elapsed for r in self.per_device)

    @property
    def total_memory_peak(self) -> int:
        """Sum of per-device peaks (each device has its own memory)."""
        return sum(r.memory_peak for r in self.per_device)

    def imbalance(self) -> float:
        """Relative gap between the slowest and fastest device."""
        times = [r.elapsed for r in self.per_device]
        return (max(times) - min(times)) / max(times)

    def summary(self) -> str:
        """Per-device digest plus the concurrent wall time."""
        lines = [
            f"device {i}: {share:5d} iters  {r.elapsed * 1e3:9.3f} ms  "
            f"peak {r.memory_peak / 1e6:8.1f} MB"
            for i, (share, r) in enumerate(zip(self.shares, self.per_device))
        ]
        lines.append(
            f"wall (max): {self.elapsed * 1e3:.3f} ms  "
            f"imbalance {self.imbalance():.1%}"
        )
        return "\n".join(lines)


@dataclass
class ShardedResult(MultiDeviceResult):
    """A :class:`MultiDeviceResult` from a shared-clock sharded run.

    Adds the failover and contention-model accounting the scheduler
    and the differential tests assert on.
    """

    #: whether a shard's device died and its work re-split onto survivors
    migrated: bool = False
    #: number of re-split events (0 on a healthy run)
    resplits: int = 0
    #: bytes charged as halo pushes between neighboring shards
    halo_bytes: int = 0
    #: faulted commands absorbed across shards
    faults: int = 0
    #: recovery replays performed across shards
    retries: int = 0
    #: integrity checks performed across shards (0 with integrity off)
    verified: int = 0
    #: silent corruptions detected (and recovered) across shards
    corruptions: int = 0
    #: seam (halo-range) checks among ``verified``
    seam_verified: int = 0
    #: re-splits triggered by the straggler watchdog (slow, not dead)
    stragglers: int = 0

    def summary(self) -> str:
        lines = [super().summary()]
        if self.halo_bytes:
            lines.append(f"halo exchange: {self.halo_bytes / 1e6:.2f} MB")
        if self.migrated:
            lines.append(
                f"failover: {self.resplits} re-split(s), output exact"
            )
        if self.stragglers:
            lines.append(
                f"straggler watchdog: {self.stragglers} shard(s) "
                f"re-split away from slow devices"
            )
        if self.verified or self.corruptions:
            lines.append(
                f"integrity: {self.verified} check(s) "
                f"({self.seam_verified} seam), "
                f"{self.corruptions} corruption(s) detected"
            )
        return "\n".join(lines)


def _subloop_plan(plan: RegionPlan, t0: int, t1: int) -> RegionPlan:
    """A plan restricted to iterations ``[t0, t1)``."""
    sub = Loop(plan.loop.var, t0, t1)
    specs = {
        var: SplitSpec.derive(spec.clause, sub) for var, spec in plan.specs.items()
    }
    return RegionPlan(
        loop=sub,
        chunk_size=plan.chunk_size,
        num_streams=plan.num_streams,
        schedule=plan.schedule,
        specs=specs,
        residents=plan.residents,
        dtypes=plan.dtypes,
        shapes=plan.shapes,
        halo_mode=plan.halo_mode,
    )


def probe_rates(
    runtimes: Sequence[Runtime],
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    probe_iters: Optional[int] = None,
) -> List[float]:
    """Iterations/second each device sustains, from virtual dry runs.

    The probe executes a short prefix of the loop on a scratch device
    of each runtime's profile; rates feed :func:`split_loop`.
    """
    trip = plan.loop.trip_count
    probe = probe_iters or max(plan.chunk_size * plan.num_streams * 2, trip // 8)
    probe = min(probe, trip)
    vsets = {n: VirtualArray(tuple(a.shape), a.dtype) for n, a in arrays.items()}
    sub = _subloop_plan(plan, plan.loop.start, plan.loop.start + probe)
    rates = []
    for rt in runtimes:
        scratch = Runtime(Device(rt.profile), virtual=True)
        res = execute_pipeline(scratch, sub, vsets, kernel)
        rates.append(probe / res.elapsed)
    return rates


def split_loop(loop: Loop, weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Partition the loop into contiguous shares proportional to
    ``weights``; every device gets at least one iteration when
    possible.

    Weights must be positive finite numbers (a NaN or infinite weight
    would silently corrupt the proportional bounds).  If the forced
    one-iteration minimum cannot be satisfied with monotonic bounds —
    more devices than iterations, or inconsistent loop metadata — a
    :class:`~repro.directives.clauses.DirectiveError` is raised instead
    of returning overlapping or empty shares.
    """
    if not weights or any(
        not isinstance(w, (int, float))
        or isinstance(w, bool)
        or not math.isfinite(w)
        or w <= 0
        for w in weights
    ):
        raise DirectiveError(
            f"device weights must be positive finite numbers, got {list(weights)!r}"
        )
    trip = loop.trip_count
    if trip < len(weights):
        raise DirectiveError(
            f"cannot split {trip} iterations over {len(weights)} devices"
        )
    total = sum(weights)
    bounds = [loop.start]
    acc = 0.0
    for w in weights[:-1]:
        acc += w
        bounds.append(loop.start + round(trip * acc / total))
    bounds.append(loop.stop)
    # enforce at least one iteration per device
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = bounds[i - 1] + 1
    bounds[-1] = loop.stop
    for i in range(len(bounds) - 1, 0, -1):
        if bounds[i] <= bounds[i - 1]:
            bounds[i - 1] = bounds[i] - 1
    # the fix-ups above are greedy; verify they produced a partition
    # (reachable only with inconsistent loop metadata, but silently
    # returning overlapping or empty shares would corrupt outputs)
    if bounds[0] != loop.start or bounds[-1] != loop.stop or any(
        bounds[i] <= bounds[i - 1] for i in range(1, len(bounds))
    ):
        raise DirectiveError(
            f"cannot split {trip} iterations over {len(weights)} devices: "
            f"the one-iteration minimum forces non-monotonic bounds {bounds}"
        )
    return [(bounds[i], bounds[i + 1]) for i in range(len(weights))]


@dataclass
class _Shard:
    """One shard: a runtime, its iteration range, and its sub-issuer."""

    runtime: Runtime
    t0: int
    t1: int
    plan: RegionPlan
    weight: float
    issuer: Optional[PipelineIssuer] = None
    measurer: Optional[_Measurer] = None
    alive: bool = True
    #: whether this is one of the original shards (re-split shards
    #: report through their runtime's original shard)
    primary: bool = True
    #: virtual time this shard's issuer opened (watchdog rate window)
    opened_at: float = 0.0


class ShardedIssuer:
    """One region's pipeline sharded across several devices.

    Speaks the :class:`~repro.core.executor.PipelineIssuer` protocol so
    :func:`execute_sharded` and the serving scheduler can drive it like
    a single-device issuer.  See the module docstring for the model.

    Parameters
    ----------
    runtimes:
        One runtime per shard (distinct devices).
    plan:
        The full, memory-tuned :class:`RegionPlan` for the region.
    shares:
        Optional precomputed ``[(t0, t1), ...]`` per shard; computed
        from ``weights`` (or probed rates) when omitted.
    weights:
        Optional split weights (one per runtime); probed when omitted.
    policy:
        Optional per-chunk :class:`~repro.faults.FaultPolicy`, applied
        to every sub-issuer.
    self_heal:
        When True (standalone), a shard's ``DeviceLostError`` is
        absorbed by re-splitting its incomplete iterations over the
        survivors.  When False (under a scheduler), the loss
        propagates for pool-level failover.
    measure:
        Capture a per-shard measurement window at ``open`` so
        :meth:`results` can produce per-device :class:`RegionResult`\\ s
        (standalone only; a scheduler owns its own accounting).
    """

    def __init__(
        self,
        runtimes: Sequence[Runtime],
        plan: RegionPlan,
        arrays: Dict[str, np.ndarray],
        kernel: RegionKernel,
        *,
        shares: Optional[Sequence[Tuple[int, int]]] = None,
        weights: Optional[Sequence[float]] = None,
        policy=None,
        stream_prefix: str = "shard",
        claim_faults=None,
        recorder=None,
        self_heal: bool = True,
        measure: bool = False,
        integrity: str = INTEGRITY_OFF,
        watchdog=None,
    ) -> None:
        if not runtimes:
            raise DirectiveError("need at least one device")
        self.runtimes = list(runtimes)
        self.plan = plan
        self.arrays = arrays
        self.kernel = kernel
        self.policy = policy
        self.stream_prefix = stream_prefix
        self.claim_faults = claim_faults
        self.recorder = recorder
        self.self_heal = self_heal
        self.measure = measure
        #: silent-failure defense mode, applied to every sub-issuer
        #: (seam transfers verify as ``halo`` checks)
        self.integrity = validate_integrity(integrity)
        #: straggler watchdog: ``None`` off, ``True`` defaults, or a
        #: :class:`WatchdogConfig`.  Independent of ``self_heal`` — a
        #: slow device is re-split away even under a scheduler, because
        #: the pool has no fail-stop signal to escalate on.
        if watchdog is None or watchdog is False:
            self.watchdog: Optional[WatchdogConfig] = None
        elif watchdog is True:
            self.watchdog = WatchdogConfig()
        else:
            self.watchdog = watchdog
        if shares is None:
            if weights is None:
                weights = probe_rates(self.runtimes, plan, arrays, kernel)
            if len(weights) != len(self.runtimes):
                raise DirectiveError("one weight per device required")
            shares = split_loop(plan.loop, weights)
        if weights is None:
            weights = [float(t1 - t0) for t0, t1 in shares]
        self.shares = [(int(t0), int(t1)) for t0, t1 in shares]
        self._shards: List[_Shard] = [
            _Shard(
                runtime=rt,
                t0=t0,
                t1=t1,
                plan=_subloop_plan(plan, t0, t1),
                weight=float(w),
            )
            for rt, (t0, t1), w in zip(self.runtimes, self.shares, weights)
        ]
        #: shared PCIe link (attached while the region is in flight)
        self.link: Optional[BandwidthShared] = (
            BandwidthShared() if len(self._shards) > 1 else None
        )
        #: written residents become cross-shard reduction accumulators:
        #: each shard computes deltas over zeros and the merge replays
        #: them in global chunk order, reproducing the single-device
        #: accumulation fold bit-for-bit (valid for additive updates
        #: like matmul's ``C += A_band @ B_band``)
        self.reduction_residents = frozenset(
            var
            for var, cl in plan.residents.items()
            if cl.direction in ("from", "tofrom")
        ) if len(self._shards) > 1 else frozenset()
        self.migrated = False
        self.resplits = 0
        #: re-splits caused by the watchdog (subset of ``resplits``)
        self.straggler_resplits = 0
        self.halo_bytes = 0
        #: faults/retries accumulated by shards that have since died
        self._base_faults = 0
        self._base_retries = 0
        #: integrity counters accumulated by since-dead shards
        self._base_verified = 0
        self._base_corruptions = 0
        self._base_seam = 0
        #: chunks a dead shard completed before dying (kept for counts)
        self._retired_chunks: List = []
        self._base_issued = 0
        #: faults popped off member runtimes, parked per owning issuer
        self._parked: Dict[int, List] = {}
        self._rr = 0
        self._opened = False
        self._finalized = False

    # ------------------------------------------------------------------
    # aggregate protocol surface
    # ------------------------------------------------------------------
    def _live(self) -> List[_Shard]:
        return [sh for sh in self._shards if sh.alive and sh.issuer is not None]

    @property
    def issued(self) -> int:
        """Chunks issued so far (completed chunks of dead shards count)."""
        return self._base_issued + sum(sh.issuer.issued for sh in self._live())

    @property
    def remaining(self) -> int:
        """Chunks not yet issued across live shards."""
        if not self._opened:
            return sum(len(sh.plan.chunks()) for sh in self._shards)
        return sum(sh.issuer.remaining for sh in self._live())

    @property
    def done_issuing(self) -> bool:
        return self.remaining == 0

    @property
    def chunks(self) -> List:
        """All shards' chunks (live issuers' plus dead-shard completions)."""
        if not self._opened:
            return [c for sh in self._shards for c in sh.plan.chunks()]
        out = list(self._retired_chunks)
        for sh in self._live():
            out.extend(sh.issuer.chunks)
        return out

    @property
    def commands(self) -> List:
        return [c for sh in self._shards if sh.issuer is not None
                for c in sh.issuer.commands]

    @property
    def streams_n(self) -> int:
        subs = [sh.issuer.streams_n for sh in self._shards if sh.issuer is not None]
        return max(subs, default=min(self.plan.num_streams, max(1, self.remaining)))

    @property
    def faults_n(self) -> int:
        return self._base_faults + sum(sh.issuer.faults_n for sh in self._live())

    @property
    def retries_n(self) -> int:
        return self._base_retries + sum(sh.issuer.retries_n for sh in self._live())

    @property
    def verified_n(self) -> int:
        return self._base_verified + sum(
            sh.issuer.verified_n for sh in self._live()
        )

    @property
    def corruptions_n(self) -> int:
        return self._base_corruptions + sum(
            sh.issuer.corruptions_n for sh in self._live()
        )

    @property
    def seam_verified_n(self) -> int:
        return self._base_seam + sum(
            sh.issuer.seam_verified_n for sh in self._live()
        )

    @property
    def _corruptions(self) -> List:
        """Detections awaiting recovery across live shards."""
        return [
            e for sh in self._live() for e in sh.issuer._corruptions
        ]

    @property
    def meta(self):
        """Command -> chunk mapping across shards (supports ``in``)."""
        maps = [sh.issuer.meta for sh in self._shards if sh.issuer is not None]
        return ChainMap(*maps) if maps else {}

    def remaining_kernel_bound(self, kernel) -> float:
        """Lower bound on remaining work: shards run concurrently, so
        the max over shards of their unissued kernel cost."""
        bounds = [
            sum(
                kernel.chunk_cost(sh.runtime.profile, c.t0, c.t1, translated=True)
                for c in sh.issuer.chunks[sh.issuer.issued:]
            )
            for sh in self._live()
        ]
        return max(bounds, default=0.0)

    # ------------------------------------------------------------------
    # fault routing
    # ------------------------------------------------------------------
    def _claim_all(self) -> List:
        """Pop every member runtime's fault backlog (or the installed
        scheduler router's view of it)."""
        if self.claim_faults is not None:
            return list(self.claim_faults())
        out: List = []
        for rt in {id(sh.runtime): sh.runtime for sh in self._shards}.values():
            out.extend(rt.pop_faults())
        return out

    def _route_faults(self, asker: PipelineIssuer) -> List:
        """Per-sub-issuer claim: park each fault with its owner, return
        the asker's own (plus anything parked for it earlier).  Orphans
        go to the asker, which claims-and-ignores them."""
        out = self._parked.pop(id(asker), [])
        for cmd in self._claim_all():
            owner = None
            for sh in self._shards:
                if sh.issuer is not None and cmd in sh.issuer.meta:
                    owner = sh.issuer
                    break
            if owner is None or owner is asker:
                out.append(cmd)
            else:
                self._parked.setdefault(id(owner), []).append(cmd)
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _sync_clocks(self, shards: Sequence[_Shard]) -> float:
        """Barrier the member host clocks to the latest one."""
        t = max(sh.runtime.elapsed for sh in shards)
        for sh in shards:
            if sh.runtime.host_now < t:
                sh.runtime.host_now = t
        return t

    def _halo_ranges_for(self, sh: _Shard) -> Optional[Dict]:
        """Input ranges ``sh`` shares with other shards — its seams.

        A transfer whose rows fall in a seam carries data another
        shard also depends on; with integrity on, its checksum is
        classified as a ``halo`` check so corruption at a shard seam
        is attributed separately from interior transfer noise.
        """
        if self.integrity == INTEGRITY_OFF or len(self._shards) <= 1:
            return None
        out: Dict[str, List[Tuple[int, int]]] = {}
        for var, spec in self.plan.specs.items():
            if not spec.clause.is_input:
                continue
            lo, hi = sh.plan.specs[var].total_range()
            ranges = []
            for other in self._shards:
                if other is sh or not other.alive:
                    continue
                olo, ohi = other.plan.specs[var].total_range()
                a, b = max(lo, olo), min(hi, ohi)
                if a < b:
                    ranges.append((a, b))
            if ranges:
                out[var] = ranges
        return out or None

    def _make_issuer(self, sh: _Shard, index: int, *, prefix: str) -> None:
        issuer = PipelineIssuer(
            sh.runtime, sh.plan, self.arrays, self.kernel,
            policy=self.policy,
            stream_prefix=f"{prefix}{index}.",
            region_span=False,
            recorder=self.recorder,
            reduction_residents=self.reduction_residents,
            integrity=self.integrity,
            halo_ranges=self._halo_ranges_for(sh),
        )
        issuer.claim_faults = lambda i=issuer: self._route_faults(i)
        sh.issuer = issuer

    def _charge_halo(self) -> None:
        """Charge the boundary pushes between neighboring shards.

        For each interior boundary, the overlap of the two shards'
        input ``SplitSpec`` ranges is data both sides touch — the halo.
        Its producer-side D2H (the push half of the modeled D2D) is
        charged to the left shard's device before the pipelines start;
        the consumer's H2D half is the ordinary first-lap transfer its
        own pipeline already pays for.  Purely a cost: every shard's
        pipeline reads its full dependency range from the host, so
        correctness never depends on this transfer.
        """
        for i in range(1, len(self._shards)):
            left, right = self._shards[i - 1], self._shards[i]
            for var, spec in self.plan.specs.items():
                if not spec.clause.is_input:
                    continue
                l_lo, l_hi = left.plan.specs[var].total_range()
                r_lo, r_hi = right.plan.specs[var].total_range()
                rows = min(l_hi, r_hi) - max(l_lo, r_lo)
                if rows <= 0:
                    continue
                nbytes = rows * spec.bytes_per_unit(
                    np.dtype(self.plan.dtypes[var]).itemsize
                )
                rt = left.runtime
                cmd = rt.device.submit_copy(
                    "d2h", int(nbytes),
                    enqueue_time=rt.host_now,
                    label=f"halo:{var}[{max(l_lo, r_lo)}:{min(l_hi, r_hi)})",
                )
                finish = rt.device.wait(cmd)
                if rt.host_now < finish:
                    rt.host_now = finish
                self.halo_bytes += int(nbytes)
                if self.recorder is not None:
                    self.recorder.record(
                        "shard.halo", t=rt.elapsed, var=var,
                        rows=rows, nbytes=int(nbytes), boundary=i,
                    )
        if self.halo_bytes:
            m = self._shards[0].runtime.metrics
            if m.enabled:
                m.counter("sharded.halo_bytes").inc(self.halo_bytes)

    def open(self) -> None:
        """Sync clocks, attach the shared link, charge halos, open shards."""
        if self._opened:
            return
        self._opened = True
        self._sync_clocks(self._shards)
        if self.measure:
            for sh in self._shards:
                sh.measurer = _Measurer(sh.runtime)
        if self.link is not None:
            for sh in self._shards:
                self.link.attach(sh.runtime.device)
        for idx, sh in enumerate(self._shards):
            self._make_issuer(sh, idx, prefix=self.stream_prefix)
        self._charge_halo()
        # consumers start after their halo arrived
        self._sync_clocks(self._shards)
        for sh in self._shards:
            sh.issuer.open()
            sh.opened_at = sh.runtime.elapsed
            if self.recorder is not None:
                self.recorder.record(
                    "shard.open", t=sh.runtime.elapsed,
                    shard=self._shards.index(sh), t0=sh.t0, t1=sh.t1,
                    device=sh.runtime.profile.name,
                )
        m = self._shards[0].runtime.metrics
        if m.enabled:
            m.counter("sharded.regions").inc()
            m.counter("sharded.shards").inc(len(self._shards))

    def issue_next(self):
        """Issue one chunk on the least-advanced live shard.

        Round-robin weighted by progress: the live shard with the most
        chunks remaining issues next (ties to shard order), so shards
        finish issuing together and the scheduler's fairness accounting
        sees one region, not N.  Returns the issued chunk, or ``None``
        when every shard has issued everything.

        With a :class:`WatchdogConfig`, a shard at its in-flight cap
        stops issuing; instead the member simulators are pumped to the
        globally-earliest pending event and per-shard progress is
        compared — a shard falling behind the pack is re-split away
        exactly like a lost device.
        """
        while True:
            candidates = [sh for sh in self._live() if sh.issuer.remaining]
            if not candidates:
                return None
            if self.watchdog is not None:
                if self._watchdog_check():
                    continue  # shard set changed: recompute candidates
                cap = self._wd_cap()
                ready = [
                    sh for sh in candidates if self._inflight(sh) < cap
                ]
                if not ready:
                    if self._pump():
                        continue
                    ready = candidates  # nothing in flight: no livelock
                candidates = ready
            sh = max(candidates, key=lambda s: s.issuer.remaining)
            try:
                return sh.issuer.issue_next()
            except DeviceLostError:
                if not self.self_heal:
                    raise
                self._reshard(sh)

    # ------------------------------------------------------------------
    # straggler watchdog
    # ------------------------------------------------------------------
    def _wd_cap(self) -> int:
        cap = self.watchdog.max_inflight
        if cap:
            return cap
        streams = max(
            (sh.issuer.streams_n for sh in self._live()), default=1
        )
        return max(2 * streams, 4)

    def _inflight(self, sh: _Shard) -> int:
        """Issued-but-incomplete chunks on one shard."""
        return sh.issuer.issued - len(self._completed_chunks(sh.issuer))

    def _pump(self) -> bool:
        """Advance member sims to the globally-earliest pending event.

        Returns False when nothing is in flight anywhere (the caller
        must then issue rather than spin).  Advancing every sim to the
        same instant keeps the shared-clock discipline: no shard's
        device ever runs ahead of a peer's observation of it.
        """
        sims = {
            id(sh.runtime.device.sim): sh.runtime.device.sim
            for sh in self._live()
        }.values()
        times = [
            s.next_event_time for s in sims if s.next_event_time is not None
        ]
        if not times:
            return False
        t = min(times)
        for s in sims:
            s.advance_to(t)
        return True

    def _watchdog_check(self) -> bool:
        """Compare per-shard completion *rates*; re-split stragglers.

        Rates (completed chunks per virtual second since the shard's
        own open) rather than raw fractions, so a freshly re-split
        shard — zero completions, tiny window — is judged against its
        own clock instead of being mistaken for a new straggler.  A
        shard with no completions yet renders no verdict; a hung (as
        opposed to slow) device is fail-stop territory, not the
        watchdog's.  Returns whether a shard was re-split (the caller's
        shard list is then stale).
        """
        live = self._live()
        if len(live) < 2:
            return False
        progress = []
        for sh in live:
            total = len(sh.issuer.chunks)
            done = len(self._completed_chunks(sh.issuer))
            window = sh.runtime.elapsed - sh.opened_at
            if total and done and window > 0.0:
                progress.append((sh, done, total, done / window))
        if len(progress) < 2:
            return False
        if max(done for _, done, _, _ in progress) < self.watchdog.min_done:
            return False
        best = max(rate for _, _, _, rate in progress)
        for sh, done, total, rate in progress:
            if done < total and rate < self.watchdog.ratio * best:
                self._reshard(sh, cause="straggler")
                return True
        return False

    def drain(self) -> None:
        """Issue any remaining work and wait for all shards' streams.

        Self-healing: a shard dying mid-drain re-splits its incomplete
        iterations, and the loop continues until a full pass issues
        nothing and drains cleanly.
        """
        while True:
            while self.issue_next() is not None:
                pass
            retry = False
            for sh in list(self._shards):
                if not sh.alive or sh.issuer is None:
                    continue
                try:
                    sh.issuer.drain()
                except DeviceLostError:
                    if not self.self_heal:
                        raise
                    self._reshard(sh)
                    retry = True
                    break
            if not retry:
                return

    def recover(self, budget: Optional[int] = None) -> None:
        """Per-shard chunk-granular recovery: faults and corruptions."""
        if self.policy is None and self.integrity == INTEGRITY_OFF:
            return
        while True:
            retry = False
            for sh in list(self._shards):
                if not sh.alive or sh.issuer is None:
                    continue
                before = sh.issuer.retries_n
                try:
                    sh.issuer.recover(budget=budget)
                except DeviceLostError:
                    if not self.self_heal:
                        raise
                    self._reshard(sh)
                    self.drain()
                    retry = True
                if budget is not None:
                    budget = max(0, budget - (sh.issuer.retries_n - before))
                if retry:
                    break
            if not retry:
                return

    def account_stalls(self) -> None:
        for sh in self._live():
            sh.issuer.account_stalls()

    def finalize(self) -> None:
        """Finalize every live shard and detach the shared link."""
        if self._finalized:
            return
        self._finalized = True
        for sh in self._live():
            sh.issuer.finalize()
        self._merge_reductions()
        self._detach_link()

    def _merge_reductions(self) -> None:
        """Apply reduction-resident deltas in global chunk order.

        Replays the exact left fold a single device performs: the host
        value is the fold's seed, each chunk's delta its addend, and
        ordering by chunk start iteration reproduces single-device
        chunk order.  Deltas are deduped by chunk start — a chunk both
        computed on a since-dead shard and re-run on a survivor
        produced the identical delta twice.
        """
        if not self.reduction_residents:
            return
        parts: Dict[int, Dict[str, np.ndarray]] = {}
        for sh in self._shards:
            if sh.issuer is None:
                continue
            for t0, part in sh.issuer.reduction_parts:
                parts[t0] = part
        for t0 in sorted(parts):
            for var, delta in parts[t0].items():
                self.arrays[var] += delta

    def abort(self) -> None:
        """Failure-path teardown of every shard."""
        self._finalized = True
        for sh in self._shards:
            if sh.issuer is not None:
                sh.issuer.abort()
        self._detach_link()

    def _detach_link(self) -> None:
        if self.link is not None:
            for sh in self._shards:
                self.link.detach(sh.runtime.device)

    # ------------------------------------------------------------------
    # failover: re-split a dead shard's work across survivors
    # ------------------------------------------------------------------
    @staticmethod
    def _completed_chunks(issuer: PipelineIssuer) -> set:
        """Chunk indices whose every command retired cleanly.

        A chunk is complete iff all its commands finished without an
        injected error or poison — in particular its D2H drains, so its
        output rows are final in the host arrays.  Unissued chunks have
        no commands and are never complete.
        """
        status: Dict[int, bool] = {}
        for cmd in issuer.commands:
            k = getattr(cmd, "chunk", None)
            if k is None:
                continue
            ok = (
                cmd.finish_time is not None
                and cmd.error is None
                and not cmd.poisoned
            )
            status[k] = status.get(k, True) and ok
        return {k for k, ok in status.items() if ok}

    def _reshard(self, dead: _Shard, cause: str = "device-lost") -> None:
        """Absorb ``dead``'s loss: re-split its incomplete iterations.

        Completed chunks' outputs already reached the host; incomplete
        ones (including any chunk whose commands were in flight when
        the device died — poison propagation guarantees no partial
        kernel output reached the host) re-run on the survivors.
        Re-running a chunk is idempotent, so the result is exact.

        ``cause="straggler"`` retires a slow-but-*alive* shard: its
        completed outputs are valid and kept, but any chunk implicated
        by a still-pending corruption verdict is treated as incomplete
        so the re-run scrubs it.
        """
        dead.alive = False
        self.migrated = True
        self.resplits += 1
        if cause == "straggler":
            self.straggler_resplits += 1
        rt = dead.runtime
        if self.link is not None:
            self.link.detach(rt.device)
        if self.recorder is not None:
            self.recorder.record(
                "shard.lost" if cause == "device-lost" else "straggler",
                t=rt.elapsed,
                shard=self._shards.index(dead),
                device=rt.profile.name, t0=dead.t0, t1=dead.t1,
            )
        issuer = dead.issuer
        issuer.abort()
        self._base_faults += issuer.faults_n
        self._base_retries += issuer.retries_n
        self._base_verified += issuer.verified_n
        self._base_corruptions += issuer.corruptions_n
        self._base_seam += issuer.seam_verified_n
        self._parked.pop(id(issuer), None)
        done = self._completed_chunks(issuer)
        if issuer._corruptions:
            # a silently-corrupted chunk retires cleanly; anything a
            # pending verdict implicates must re-run on a survivor
            done -= set(issuer._affected_chunks(issuer._corruptions))
            issuer._corruptions.clear()
        pending = [c for c in issuer.chunks if c.index not in done]
        completed = [c for c in issuer.chunks if c.index in done]
        self._retired_chunks.extend(completed)
        self._base_issued += len(completed)
        survivors = [sh for sh in self._shards if sh.alive]
        if not survivors:
            raise DeviceLostError(
                "every shard device lost; no survivors to re-split onto"
            )
        if not pending:
            return
        t_r = min(c.t0 for c in pending)
        end = dead.t1
        trip = end - t_r
        takers = survivors[: max(1, min(len(survivors), trip))]
        parts = split_loop(
            Loop(self.plan.loop.var, t_r, end), [sh.weight for sh in takers]
        )
        self._sync_clocks(takers)
        new_shards: List[_Shard] = []
        for j, (sh_s, (a, b)) in enumerate(zip(takers, parts)):
            sub = _Shard(
                runtime=sh_s.runtime,
                t0=a,
                t1=b,
                plan=_subloop_plan(self.plan, a, b),
                weight=sh_s.weight,
                primary=False,
            )
            self._make_issuer(
                sub, j, prefix=f"{self.stream_prefix}r{self.resplits}_"
            )
            sub.issuer.open()
            sub.opened_at = sub.runtime.elapsed
            new_shards.append(sub)
        self._shards.extend(new_shards)
        if self.recorder is not None:
            self.recorder.record(
                "shard.resplit", t=self._clock(),
                t0=t_r, t1=end, survivors=len(takers),
                resplit=self.resplits,
            )
        m = self._shards[0].runtime.metrics
        if m.enabled:
            m.counter("sharded.resplits").inc()
            if cause == "straggler":
                m.counter("sharded.stragglers").inc()

    def _clock(self) -> float:
        return max(sh.runtime.elapsed for sh in self._shards)

    # ------------------------------------------------------------------
    # results (standalone mode)
    # ------------------------------------------------------------------
    def results(self) -> List[RegionResult]:
        """Per-device results (requires ``measure=True`` at open).

        One result per *original* shard; a re-split shard's work lands
        on a survivor's runtime, inside that survivor's measurement
        window.
        """
        out = []
        for sh in self._shards:
            if not sh.primary or sh.measurer is None:
                continue
            issuer = sh.issuer
            out.append(sh.measurer.finish(
                "pipelined-buffer",
                len(issuer.chunks),
                self.plan.chunk_size,
                issuer.streams_n,
                faults=issuer.faults_n,
                retries=issuer.retries_n,
                verified=issuer.verified_n,
                corruptions=issuer.corruptions_n,
            ))
        return out


def execute_sharded(
    runtimes: Sequence[Runtime],
    region,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    weights: Optional[Sequence[float]] = None,
    policy=None,
    recorder=None,
    integrity: str = INTEGRITY_OFF,
    watchdog=None,
) -> ShardedResult:
    """Run one region sharded across several devices on a shared clock.

    The standalone entry behind ``region.run(devices=...)``: splits the
    loop by probed throughput (or explicit ``weights``), runs one
    sub-pipeline per device with halo-exchange charges and shared-PCIe
    contention, and self-heals a mid-run device loss by re-splitting
    the dead shard's incomplete iterations across the survivors
    (``migrated=True`` in the result; outputs stay exact).  With
    ``integrity`` on, every shard's transfers are checksum-verified
    (seam rows as ``halo`` checks); with a ``watchdog``, slow-but-alive
    shards are re-split away too.
    """
    if not runtimes:
        raise DirectiveError("need at least one device")
    plan = region.bind(arrays)
    limit = (
        region.mem_limit.limit_bytes
        if region.mem_limit is not None
        else min(rt.device.memory.free for rt in runtimes)
    )
    plan = tune_plan(plan, limit)
    issuer = ShardedIssuer(
        runtimes, plan, arrays, kernel,
        weights=weights, policy=policy, recorder=recorder,
        self_heal=True, measure=True,
        integrity=integrity, watchdog=watchdog,
    )
    old_defer = [rt.defer_faults for rt in issuer.runtimes]
    if policy is not None:
        for rt in issuer.runtimes:
            rt.defer_faults = True
    try:
        issuer.open()
        while issuer.issue_next() is not None:
            pass
        issuer.drain()
        issuer.recover()
        issuer.account_stalls()
        issuer.finalize()
    except BaseException:
        issuer.abort()
        raise
    finally:
        for rt, was in zip(issuer.runtimes, old_defer):
            rt.defer_faults = was
    return ShardedResult(
        per_device=issuer.results(),
        shares=[t1 - t0 for t0, t1 in issuer.shares],
        migrated=issuer.migrated,
        resplits=issuer.resplits,
        halo_bytes=issuer.halo_bytes,
        faults=issuer.faults_n,
        retries=issuer.retries_n,
        verified=issuer.verified_n,
        corruptions=issuer.corruptions_n,
        seam_verified=issuer.seam_verified_n,
        stragglers=issuer.straggler_resplits,
    )


def execute_multi_device(
    runtimes: Sequence[Runtime],
    region,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    weights: Optional[Sequence[float]] = None,
) -> MultiDeviceResult:
    """Deprecated: run one region's shares serially, one per device.

    This is the pre-sharding entry point: each device's share runs as
    an independent :func:`execute_pipeline` on a private link and a
    private clock — no shared-clock barrier, no halo exchange, no PCIe
    contention.  Use ``region.run(arrays, kernel, devices=...)`` (or
    :func:`execute_sharded`) for the honest multi-device model.
    """
    warnings.warn(
        "execute_multi_device() is deprecated; use "
        "region.run(..., devices=...) or execute_sharded()",
        DeprecationWarning,
        stacklevel=2,
    )
    if not runtimes:
        raise DirectiveError("need at least one device")
    plan = region.bind(arrays)
    if weights is None:
        weights = probe_rates(runtimes, plan, arrays, kernel)
    if len(weights) != len(runtimes):
        raise DirectiveError("one weight per device required")
    shares = split_loop(plan.loop, weights)
    results = []
    for rt, (t0, t1) in zip(runtimes, shares):
        sub = _subloop_plan(plan, t0, t1)
        results.append(execute_pipeline(rt, sub, arrays, kernel))
    return MultiDeviceResult(
        per_device=results, shares=[t1 - t0 for t0, t1 in shares]
    )
