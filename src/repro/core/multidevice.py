"""Multi-device co-scheduling (the paper's future work).

The paper's conclusion: "we will test and analyze our approach on
other systems, such as Intel Xeon Phi co-processors, and even
multi-nodes with different accelerators", building on the authors'
CoreTSAR work which "divides computation across devices".

This module combines the two ideas: the pipelined loop is *partitioned
across devices* (CoreTSAR-style association of data to computation
along the split dimension) and each device's share is then *pipelined*
through its own ring buffer.  Because ``pipeline_map`` already states
which array slice each iteration needs, the same clauses drive both
levels — no new annotation is required.

Device shares are chosen proportionally to measured device throughput:
each device gets a virtual **dry-run probe** of a few chunks (the same
simulator-as-performance-model trick the autotuner uses), and the loop
is split by the resulting rates.  A heterogeneous pair (K40m + HD 7970)
therefore gets an uneven split rather than a naive half/half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import RegionResult, execute_pipeline
from repro.core.kernel import RegionKernel
from repro.core.plan import RegionPlan
from repro.directives.clauses import DirectiveError, Loop
from repro.directives.splitspec import SplitSpec
from repro.gpu.runtime import Runtime
from repro.sim.device import Device
from repro.sim.varray import VirtualArray

__all__ = ["MultiDeviceResult", "execute_multi_device", "probe_rates", "split_loop"]


@dataclass
class MultiDeviceResult:
    """Outcome of one multi-device pipelined execution.

    Attributes
    ----------
    per_device:
        Each device's :class:`RegionResult`, in device order.
    shares:
        Iterations assigned per device.
    elapsed:
        Wall time: the devices run concurrently, so the slowest one
        defines the region's end-to-end time.
    """

    per_device: List[RegionResult]
    shares: List[int]

    @property
    def elapsed(self) -> float:
        """Concurrent wall time (max over devices)."""
        return max(r.elapsed for r in self.per_device)

    @property
    def total_memory_peak(self) -> int:
        """Sum of per-device peaks (each device has its own memory)."""
        return sum(r.memory_peak for r in self.per_device)

    def imbalance(self) -> float:
        """Relative gap between the slowest and fastest device."""
        times = [r.elapsed for r in self.per_device]
        return (max(times) - min(times)) / max(times)

    def summary(self) -> str:
        """Per-device digest plus the concurrent wall time."""
        lines = [
            f"device {i}: {share:5d} iters  {r.elapsed * 1e3:9.3f} ms  "
            f"peak {r.memory_peak / 1e6:8.1f} MB"
            for i, (share, r) in enumerate(zip(self.shares, self.per_device))
        ]
        lines.append(
            f"wall (max): {self.elapsed * 1e3:.3f} ms  "
            f"imbalance {self.imbalance():.1%}"
        )
        return "\n".join(lines)


def _subloop_plan(plan: RegionPlan, t0: int, t1: int) -> RegionPlan:
    """A plan restricted to iterations ``[t0, t1)``."""
    sub = Loop(plan.loop.var, t0, t1)
    specs = {
        var: SplitSpec.derive(spec.clause, sub) for var, spec in plan.specs.items()
    }
    return RegionPlan(
        loop=sub,
        chunk_size=plan.chunk_size,
        num_streams=plan.num_streams,
        schedule=plan.schedule,
        specs=specs,
        residents=plan.residents,
        dtypes=plan.dtypes,
        shapes=plan.shapes,
        halo_mode=plan.halo_mode,
    )


def probe_rates(
    runtimes: Sequence[Runtime],
    plan: RegionPlan,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    probe_iters: Optional[int] = None,
) -> List[float]:
    """Iterations/second each device sustains, from virtual dry runs.

    The probe executes a short prefix of the loop on a scratch device
    of each runtime's profile; rates feed :func:`split_loop`.
    """
    trip = plan.loop.trip_count
    probe = probe_iters or max(plan.chunk_size * plan.num_streams * 2, trip // 8)
    probe = min(probe, trip)
    vsets = {n: VirtualArray(tuple(a.shape), a.dtype) for n, a in arrays.items()}
    sub = _subloop_plan(plan, plan.loop.start, plan.loop.start + probe)
    rates = []
    for rt in runtimes:
        scratch = Runtime(Device(rt.profile), virtual=True)
        res = execute_pipeline(scratch, sub, vsets, kernel)
        rates.append(probe / res.elapsed)
    return rates


def split_loop(loop: Loop, weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Partition the loop into contiguous shares proportional to
    ``weights``; every device gets at least one iteration when
    possible."""
    if not weights or any(w <= 0 for w in weights):
        raise DirectiveError("device weights must be positive")
    trip = loop.trip_count
    if trip < len(weights):
        raise DirectiveError(
            f"cannot split {trip} iterations over {len(weights)} devices"
        )
    total = sum(weights)
    bounds = [loop.start]
    acc = 0.0
    for w in weights[:-1]:
        acc += w
        bounds.append(loop.start + round(trip * acc / total))
    bounds.append(loop.stop)
    # enforce at least one iteration per device
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            bounds[i] = bounds[i - 1] + 1
    bounds[-1] = loop.stop
    for i in range(len(bounds) - 1, 0, -1):
        if bounds[i] <= bounds[i - 1]:
            bounds[i - 1] = bounds[i] - 1
    return [(bounds[i], bounds[i + 1]) for i in range(len(weights))]


def execute_multi_device(
    runtimes: Sequence[Runtime],
    region,
    arrays: Dict[str, np.ndarray],
    kernel: RegionKernel,
    *,
    weights: Optional[Sequence[float]] = None,
) -> MultiDeviceResult:
    """Run one pipelined region across several devices.

    Parameters
    ----------
    runtimes:
        One runtime per device.  Each must be freshly created (its
        clocks define that device's wall time).
    region:
        A :class:`~repro.core.region.TargetRegion`.
    arrays:
        Host arrays, shared by all devices (each device reads the
        slices its iterations depend on and writes its own outputs).
    kernel:
        The region kernel (shared).
    weights:
        Optional explicit split weights; by default device throughput
        is probed via virtual dry runs.
    """
    if not runtimes:
        raise DirectiveError("need at least one device")
    plan = region.bind(arrays)
    if weights is None:
        weights = probe_rates(runtimes, plan, arrays, kernel)
    if len(weights) != len(runtimes):
        raise DirectiveError("one weight per device required")
    shares = split_loop(plan.loop, weights)
    results = []
    for rt, (t0, t1) in zip(runtimes, shares):
        sub = _subloop_plan(plan, t0, t1)
        results.append(execute_pipeline(rt, sub, arrays, kernel))
    return MultiDeviceResult(
        per_device=results, shares=[t1 - t0 for t0, t1 in shares]
    )
