"""Kernel protocol: cost model + functional body over translated views.

On real hardware the paper keeps the OpenACC kernel body *identical*
across versions and only swaps the base pointer/offsets ("the back-end
runtime generates a new device base pointer and corresponding offsets,
leaving the body identical").  Here a kernel is one object with two
duties:

* :meth:`RegionKernel.cost` — modelled device execution time for a
  range of loop iterations (used by the simulator), and
* :meth:`RegionKernel.run` — the NumPy functional body, which receives
  a :class:`ChunkView` per mapped array and must use
  :meth:`ChunkView.local` to translate global split-dimension indices —
  exactly the index translation the paper's runtime performs.

Because every execution model calls the *same* ``run`` with different
views (whole arrays for Naive, array slices for Pipelined, ring-buffer
slots for Pipelined-buffer), a single reference comparison validates
all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sim.profiles import DeviceProfile

__all__ = ["ChunkView", "RegionKernel", "make_kernel"]


@dataclass
class ChunkView:
    """A kernel's window onto one mapped array for one chunk.

    Attributes
    ----------
    data:
        The backing NumPy view/array, or ``None`` in virtual mode
        (kernels are not run then).
    split_dim:
        The split dimension, or ``None`` for resident (whole-array)
        maps.
    lo:
        Global split-dimension index corresponding to local index 0.
        For resident maps this is 0.
    hi:
        One past the last global split-dimension index in the view.
    """

    data: Optional[np.ndarray]
    split_dim: Optional[int]
    lo: int
    hi: int

    def local(self, global_index: int) -> int:
        """Translate a global split-dim index into this view."""
        return global_index - self.lo

    def local_slice(self, g_lo: int, g_hi: int) -> slice:
        """Translate a global half-open range into a local slice."""
        if g_lo < self.lo or g_hi > self.hi:
            raise IndexError(
                f"chunk view covers [{self.lo}, {self.hi}); "
                f"requested [{g_lo}, {g_hi})"
            )
        return slice(g_lo - self.lo, g_hi - self.lo)

    def take(self, g_lo: int, g_hi: int) -> np.ndarray:
        """The sub-view for a global split-dim range."""
        if self.split_dim is None:
            raise ValueError("take() on a resident view; index it directly")
        idx = [slice(None)] * self.data.ndim
        idx[self.split_dim] = self.local_slice(g_lo, g_hi)
        return self.data[tuple(idx)]


class RegionKernel:
    """Base class for pipelined kernels.

    Subclasses implement :meth:`cost` and :meth:`run` and may override
    :attr:`index_penalty`.

    Attributes
    ----------
    name:
        Label used in traces.
    index_penalty:
        Relative kernel slowdown when array accesses go through the
        ring-buffer offset translation (the "Pipelined-buffer" model).
        The paper finds this negligible for simple kernels but
        measurable for Lattice QCD's "huge indexing operation"; each
        application calibrates its own value.
    """

    name: str = "kernel"
    index_penalty: float = 0.01
    #: set True when :meth:`cost` is a pure function of the *extent*
    #: ``t1 - t0`` (plus the profile and fixed kernel parameters) —
    #: i.e. every equally-sized chunk costs the same.  Enables the
    #: :meth:`chunk_cost` memo, so tiled pipelines stop re-walking the
    #: profile's cost tables once per chunk.  Leave False for costs
    #: that depend on the absolute position of ``[t0, t1)``.
    uniform_chunk_cost: bool = False

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Modelled execution seconds for loop iterations ``[t0, t1)``.

        Implementations are pure functions of the iteration range and
        the device profile (roofline-style; see
        :mod:`repro.kernels.cost`).
        """
        raise NotImplementedError

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """Execute iterations ``[t0, t1)`` against the given views.

        Must only touch, for each mapped array, the global index range
        its ``pipeline_map`` clause declares — the property tests
        enforce this by construction of the views.
        """
        raise NotImplementedError

    def chunk_cost(
        self, profile: DeviceProfile, t0: int, t1: int, *, translated: bool
    ) -> float:
        """Cost including the index-translation penalty if applicable.

        When :attr:`uniform_chunk_cost` is set, results are memoized by
        ``(profile, t1 - t0, translated)``.  The memo replays the exact
        arithmetic of the first evaluation, so cached and uncached
        lookups are bit-identical.
        """
        if self.uniform_chunk_cost:
            key = (id(profile), t1 - t0, translated)
            memo = getattr(self, "_chunk_cost_memo", None)
            if memo is None:
                memo = self._chunk_cost_memo = {}
            hit = memo.get(key)
            # the stored profile reference both pins the id against
            # reuse and lets us verify the hit is for this profile
            if hit is not None and hit[0] is profile:
                return hit[1]
            c = self.cost(profile, t0, t1)
            if translated:
                c = c * (1.0 + self.index_penalty)
            memo[key] = (profile, c)
            return c
        c = self.cost(profile, t0, t1)
        return c * (1.0 + self.index_penalty) if translated else c


def make_kernel(
    cost,
    body,
    *,
    name: str = "kernel",
    index_penalty: float = 0.01,
) -> RegionKernel:
    """Build a :class:`RegionKernel` from two functions.

    A convenience for the common case where a full class is ceremony:

    >>> k = make_kernel(
    ...     cost=lambda profile, t0, t1: (t1 - t0) * 1e-6,
    ...     body=lambda views, t0, t1: None,
    ...     name="noop",
    ... )

    Parameters
    ----------
    cost:
        ``(profile, t0, t1) -> seconds``.
    body:
        ``(views, t0, t1) -> None`` — the functional NumPy body over
        translated :class:`ChunkView` objects.
    name, index_penalty:
        Forwarded to the kernel attributes.
    """
    if not callable(cost) or not callable(body):
        raise TypeError("cost and body must be callable")

    class _FnKernel(RegionKernel):
        def cost(self, profile, t0, t1):  # noqa: D102 - delegated
            return cost(profile, t0, t1)

        def run(self, views, t0, t1):  # noqa: D102 - delegated
            body(views, t0, t1)

    _FnKernel.name = name
    _FnKernel.index_penalty = float(index_penalty)
    _FnKernel.__name__ = f"FnKernel_{name}"
    return _FnKernel()
