"""The exception hierarchy, rooted at :class:`ReproError`.

Every error this package raises deliberately derives from
:class:`ReproError`, so ``except repro.errors.ReproError`` catches any
failure of the directive runtime while letting unrelated bugs
propagate.  Each concrete class *also* keeps its historical builtin
base (``ValueError``, ``MemoryError``, ``RuntimeError``) via multiple
inheritance, so existing ``except`` clauses keep working:

* :class:`~repro.directives.clauses.DirectiveError` (``ValueError``) —
  malformed or semantically invalid pragmas/clauses.
* :class:`~repro.sim.engine.SimulationError` (``RuntimeError``) —
  inconsistent use of the discrete-event simulator.
* :class:`~repro.sim.memory.OutOfDeviceMemory` (``MemoryError``) —
  device allocation failure; aliased as
  :data:`~repro.gpu.errors.OutOfMemoryError` at the GPU layer.
* :class:`~repro.gpu.errors.GpuError` (``RuntimeError``) — host
  runtime misuse (``cudaError_t``-ish), incl.
  :class:`~repro.gpu.errors.InvalidValueError`.
* :class:`~repro.core.memlimit.MemLimitError` (``MemoryError``) — no
  pipeline setting fits the ``pipeline_mem_limit`` budget.
* :class:`~repro.gpu.errors.TransferError` /
  :class:`~repro.gpu.errors.KernelFaultError` /
  :class:`~repro.gpu.errors.DeviceLostError` (``RuntimeError``) —
  injected faults surfacing at sync points (async error reporting).
* :class:`~repro.faults.RegionFailure` (``RuntimeError``) — a region
  could not complete despite its fault policy; carries per-chunk
  status.

The concrete classes stay defined in their home layers (importing this
module pulls in nothing else); they are re-exported here lazily for
one-stop importing, and eagerly from :mod:`repro` itself.
"""

from __future__ import annotations

__all__ = [
    "DeviceLostError",
    "DirectiveError",
    "GpuError",
    "HostCrashError",
    "InvalidValueError",
    "JournalError",
    "KernelFaultError",
    "MemLimitError",
    "OutOfDeviceMemory",
    "OutOfMemoryError",
    "RegionFailure",
    "ReproError",
    "SimulationError",
    "TransferError",
]


class ReproError(Exception):
    """Root of every exception the directive runtime raises on purpose."""


#: name -> defining module, resolved on first attribute access so this
#: module stays import-cycle-free (the layers import ``ReproError``
#: from here while they are themselves being imported).
_HOMES = {
    "DirectiveError": "repro.directives.clauses",
    "SimulationError": "repro.sim.engine",
    "OutOfDeviceMemory": "repro.sim.memory",
    "GpuError": "repro.gpu.errors",
    "InvalidValueError": "repro.gpu.errors",
    "OutOfMemoryError": "repro.gpu.errors",
    "TransferError": "repro.gpu.errors",
    "KernelFaultError": "repro.gpu.errors",
    "DeviceLostError": "repro.gpu.errors",
    "MemLimitError": "repro.core.memlimit",
    "RegionFailure": "repro.faults.policy",
    "HostCrashError": "repro.faults.plan",
    "JournalError": "repro.serve.journal",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_HOMES))
