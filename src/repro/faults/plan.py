"""Fault plans: declarative, seeded descriptions of what goes wrong.

A :class:`FaultPlan` is pure data — probabilities, caps, and scheduled
events — with one integer ``seed``.  All randomness is derived by
counter-based hashing (see :mod:`repro.faults.inject`), never from a
shared mutable RNG, so the injected event timeline is a pure function
of ``(seed, command sequence)``: the same program under the same plan
produces a **bit-identical** fault timeline, including any retries the
recovery layer performs.

Fault classes modelled (mirroring what production offload runtimes see):

* **transient transfer faults** — an H2D/D2H DMA retires without
  delivering its data (ECC hiccup, link retrain); a retried transfer
  gets an independent draw and typically succeeds.
* **transient kernel faults** — a kernel retires without running
  (``cudaErrorLaunchFailure``-ish); independent per launch.
* **sticky kernel faults** — kernels whose label matches a
  ``sticky_kernels`` pattern *always* fault, modelling a deterministic
  bug; retries cannot succeed, which is what exercises retry
  exhaustion and model degradation.
* **latency jitter** — engine occupancy inflated by a bounded random
  fraction, modelling co-tenant interference on the bus/SMs.
* **memory pressure** — a "co-tenant" grabs device memory at a given
  command-retirement count (and optionally releases it later),
  shrinking the free pool mid-run.
* **device loss** — after ``device_lost_at`` retirements the device
  disappears; every later command faults and the runtime raises
  :class:`~repro.gpu.errors.DeviceLostError`.

Silent fault classes (PR 7) — the command retires *successfully* and
no exception is ever raised; only data (or time) is wrong:

* **bit flips** — an H2D/D2H DMA delivers its bytes with exactly one
  bit flipped (``bitflip_rate``), modelling ECC-escaping DMA/link
  corruption.
* **miscomputes** — a kernel writes a subtly wrong output
  (``miscompute_rate``), modelling silent data corruption in a
  marginal SM.
* **slow device** — every command's occupancy is multiplied by
  ``slow_factor`` once ``slow_after`` commands have retired,
  modelling a thermally-throttled or contended device that is slow
  but alive (the straggler case).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.gpu.errors import InvalidValueError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "HostCrashError",
    "InjectedFault",
    "PressureEvent",
]


class HostCrashError(ReproError, RuntimeError):
    """The serve control plane was killed by the host-crash injector.

    Raised by the journal writer *after* the triggering record is
    durably on disk, so a resumed run sees exactly the events the
    crashed run saw.  Carries the journal index at which the host died.
    """

    def __init__(self, records: int) -> None:
        super().__init__(
            f"host crash injected after journal record {records - 1} "
            f"({records} records durable)"
        )
        self.records = records


#: fault kinds carried on :class:`InjectedFault` descriptors
KIND_H2D = "h2d"
KIND_D2H = "d2h"
KIND_KERNEL = "kernel"
KIND_STICKY = "kernel-sticky"
KIND_POISONED = "poisoned"
KIND_DEVICE_LOST = "device-lost"
#: silent fault kinds (the command retires OK; only data/time is wrong)
KIND_BITFLIP = "bitflip"
KIND_MISCOMPUTE = "miscompute"
KIND_SLOW = "slow-device"

#: every fault kind a plan may name in ``only_kinds``
FAULT_KINDS = frozenset({
    KIND_H2D,
    KIND_D2H,
    KIND_KERNEL,
    KIND_STICKY,
    KIND_DEVICE_LOST,
    KIND_BITFLIP,
    KIND_MISCOMPUTE,
    KIND_SLOW,
    "jitter",
    "pressure",
})


@dataclass(frozen=True)
class InjectedFault:
    """One injected (or propagated) fault on one command.

    Attributes
    ----------
    kind:
        ``"h2d"`` / ``"d2h"`` / ``"kernel"`` / ``"kernel-sticky"`` /
        ``"poisoned"`` (a command whose inputs came from a faulted
        command; its payload was suppressed) / ``"device-lost"``.
    seq:
        Sequence number of the faulted command.
    time:
        Virtual time at which the fault surfaced (command retirement).
    label:
        The faulted command's label, for diagnostics.
    sticky:
        Whether retrying the same work can ever succeed.
    """

    kind: str
    seq: int
    time: float
    label: str = ""
    sticky: bool = False

    def __str__(self) -> str:
        tag = " (sticky)" if self.sticky else ""
        return f"{self.kind} fault on #{self.seq} {self.label!r} @ {self.time:.6g}s{tag}"


@dataclass(frozen=True)
class PressureEvent:
    """A co-tenant grabbing device memory mid-run.

    Attributes
    ----------
    at_retirement:
        Fires when this many commands have retired (0-based count
        *after* the triggering command retires).
    nbytes:
        Bytes the co-tenant requests; clamped to the free pool, so the
        event never itself raises OOM — it starves the *region*.
    release_at:
        Optional retirement count at which the co-tenant frees its
        allocation again (``None`` = held until the device dies).
    leave_bytes:
        Optional floor on the free pool: the grab is further clamped so
        at least this many bytes stay free.  Lets tests squeeze a
        device down to an exactly-known budget (big enough for a
        re-tuned plan, too small for the original).
    """

    at_retirement: int
    nbytes: int
    release_at: Optional[int] = None
    leave_bytes: Optional[int] = None


@dataclass(frozen=True)
class FaultPlan:
    """Seeded deterministic description of injected failures.

    All rates are probabilities in ``[0, 1]`` evaluated independently
    per command via counter-based hashing of ``(seed, domain, seq)``.
    The default plan injects nothing.
    """

    seed: int = 0
    #: transient transfer-fault probability per H2D / D2H command
    h2d_fault_rate: float = 0.0
    d2h_fault_rate: float = 0.0
    #: transient kernel-fault probability per launch
    kernel_fault_rate: float = 0.0
    #: label substrings of kernels that always fault (deterministic bug)
    sticky_kernels: Tuple[str, ...] = ()
    #: caps on the number of injected transfer/kernel faults
    #: (``None`` = unlimited); propagated poison is not counted
    max_transfer_faults: Optional[int] = None
    max_kernel_faults: Optional[int] = None
    #: maximum fractional latency inflation per command (0.1 = up to
    #: +10% occupancy, uniformly drawn)
    jitter: float = 0.0
    #: scheduled co-tenant memory grabs
    pressure_events: Tuple[PressureEvent, ...] = field(default_factory=tuple)
    #: retirement count after which the device is lost (``None`` = never)
    device_lost_at: Optional[int] = None
    #: silent-corruption probability per H2D/D2H command: the transfer
    #: retires successfully but delivers one flipped bit
    bitflip_rate: float = 0.0
    #: silent-miscompute probability per kernel launch: the kernel
    #: retires successfully but its output carries one flipped bit
    miscompute_rate: float = 0.0
    #: persistent occupancy multiplier once ``slow_after`` commands
    #: have retired (1.0 = healthy; 10.0 = a 10x straggler)
    slow_factor: float = 1.0
    #: retirement count at which the slowdown engages
    slow_after: int = 0
    #: restrict injection to these fault kinds (empty = no restriction);
    #: unknown kind names are rejected at construction
    only_kinds: Tuple[str, ...] = ()
    #: kill the serve control plane after this many journal records
    #: have been durably written (``None`` = never).  Host-level, not
    #: device-level: it is harvested by the scheduler's journal writer
    #: and deliberately does **not** make the plan ``active`` (a pure
    #: host-crash plan installs no device injectors, so the pre-crash
    #: schedule is the fault-free schedule).
    crash_after_events: Optional[int] = None

    def __post_init__(self) -> None:
        rates = (
            "h2d_fault_rate", "d2h_fault_rate", "kernel_fault_rate",
            "bitflip_rate", "miscompute_rate",
        )
        for name in rates:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise InvalidValueError(f"{name} must be in [0, 1], got {v}")
        if self.jitter < 0.0:
            raise InvalidValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.slow_factor <= 0.0:
            raise InvalidValueError(
                f"slow_factor must be > 0, got {self.slow_factor}"
            )
        if self.slow_after < 0:
            raise InvalidValueError(
                f"slow_after must be >= 0, got {self.slow_after}"
            )
        for name in ("max_transfer_faults", "max_kernel_faults"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise InvalidValueError(f"{name} must be >= 0, got {v}")
        if self.device_lost_at is not None and self.device_lost_at < 1:
            raise InvalidValueError(
                f"device_lost_at must be >= 1, got {self.device_lost_at}"
            )
        if self.crash_after_events is not None and self.crash_after_events < 1:
            raise InvalidValueError(
                f"crash_after_events must be >= 1, got {self.crash_after_events}"
            )
        for i, ev in enumerate(self.pressure_events):
            if ev.nbytes <= 0:
                raise InvalidValueError(
                    f"pressure_events[{i}].nbytes must be > 0, got {ev.nbytes}"
                )
            if ev.at_retirement < 0:
                raise InvalidValueError(
                    f"pressure_events[{i}].at_retirement must be >= 0, "
                    f"got {ev.at_retirement}"
                )
            if ev.release_at is not None and ev.release_at <= 0:
                raise InvalidValueError(
                    f"pressure_events[{i}].release_at must be > 0, "
                    f"got {ev.release_at}"
                )
            if ev.leave_bytes is not None and ev.leave_bytes < 0:
                raise InvalidValueError(
                    f"pressure_events[{i}].leave_bytes must be >= 0, "
                    f"got {ev.leave_bytes}"
                )
        unknown = sorted(set(self.only_kinds) - FAULT_KINDS)
        if unknown:
            raise InvalidValueError(
                f"only_kinds names unknown fault kind(s) "
                f"{', '.join(map(repr, unknown))}; known kinds are "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )

    def allows(self, kind: str) -> bool:
        """Whether ``kind`` survives the ``only_kinds`` restriction."""
        return not self.only_kinds or kind in self.only_kinds

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.h2d_fault_rate
            or self.d2h_fault_rate
            or self.kernel_fault_rate
            or self.sticky_kernels
            or self.jitter
            or self.pressure_events
            or self.device_lost_at is not None
            or self.bitflip_rate
            or self.miscompute_rate
            or self.slow_factor != 1.0
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different seed."""
        return replace(self, seed=int(seed))
