"""Fault plans: declarative, seeded descriptions of what goes wrong.

A :class:`FaultPlan` is pure data — probabilities, caps, and scheduled
events — with one integer ``seed``.  All randomness is derived by
counter-based hashing (see :mod:`repro.faults.inject`), never from a
shared mutable RNG, so the injected event timeline is a pure function
of ``(seed, command sequence)``: the same program under the same plan
produces a **bit-identical** fault timeline, including any retries the
recovery layer performs.

Fault classes modelled (mirroring what production offload runtimes see):

* **transient transfer faults** — an H2D/D2H DMA retires without
  delivering its data (ECC hiccup, link retrain); a retried transfer
  gets an independent draw and typically succeeds.
* **transient kernel faults** — a kernel retires without running
  (``cudaErrorLaunchFailure``-ish); independent per launch.
* **sticky kernel faults** — kernels whose label matches a
  ``sticky_kernels`` pattern *always* fault, modelling a deterministic
  bug; retries cannot succeed, which is what exercises retry
  exhaustion and model degradation.
* **latency jitter** — engine occupancy inflated by a bounded random
  fraction, modelling co-tenant interference on the bus/SMs.
* **memory pressure** — a "co-tenant" grabs device memory at a given
  command-retirement count (and optionally releases it later),
  shrinking the free pool mid-run.
* **device loss** — after ``device_lost_at`` retirements the device
  disappears; every later command faults and the runtime raises
  :class:`~repro.gpu.errors.DeviceLostError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["FaultPlan", "InjectedFault", "PressureEvent"]


#: fault kinds carried on :class:`InjectedFault` descriptors
KIND_H2D = "h2d"
KIND_D2H = "d2h"
KIND_KERNEL = "kernel"
KIND_STICKY = "kernel-sticky"
KIND_POISONED = "poisoned"
KIND_DEVICE_LOST = "device-lost"


@dataclass(frozen=True)
class InjectedFault:
    """One injected (or propagated) fault on one command.

    Attributes
    ----------
    kind:
        ``"h2d"`` / ``"d2h"`` / ``"kernel"`` / ``"kernel-sticky"`` /
        ``"poisoned"`` (a command whose inputs came from a faulted
        command; its payload was suppressed) / ``"device-lost"``.
    seq:
        Sequence number of the faulted command.
    time:
        Virtual time at which the fault surfaced (command retirement).
    label:
        The faulted command's label, for diagnostics.
    sticky:
        Whether retrying the same work can ever succeed.
    """

    kind: str
    seq: int
    time: float
    label: str = ""
    sticky: bool = False

    def __str__(self) -> str:
        tag = " (sticky)" if self.sticky else ""
        return f"{self.kind} fault on #{self.seq} {self.label!r} @ {self.time:.6g}s{tag}"


@dataclass(frozen=True)
class PressureEvent:
    """A co-tenant grabbing device memory mid-run.

    Attributes
    ----------
    at_retirement:
        Fires when this many commands have retired (0-based count
        *after* the triggering command retires).
    nbytes:
        Bytes the co-tenant requests; clamped to the free pool, so the
        event never itself raises OOM — it starves the *region*.
    release_at:
        Optional retirement count at which the co-tenant frees its
        allocation again (``None`` = held until the device dies).
    leave_bytes:
        Optional floor on the free pool: the grab is further clamped so
        at least this many bytes stay free.  Lets tests squeeze a
        device down to an exactly-known budget (big enough for a
        re-tuned plan, too small for the original).
    """

    at_retirement: int
    nbytes: int
    release_at: Optional[int] = None
    leave_bytes: Optional[int] = None


@dataclass(frozen=True)
class FaultPlan:
    """Seeded deterministic description of injected failures.

    All rates are probabilities in ``[0, 1]`` evaluated independently
    per command via counter-based hashing of ``(seed, domain, seq)``.
    The default plan injects nothing.
    """

    seed: int = 0
    #: transient transfer-fault probability per H2D / D2H command
    h2d_fault_rate: float = 0.0
    d2h_fault_rate: float = 0.0
    #: transient kernel-fault probability per launch
    kernel_fault_rate: float = 0.0
    #: label substrings of kernels that always fault (deterministic bug)
    sticky_kernels: Tuple[str, ...] = ()
    #: caps on the number of injected transfer/kernel faults
    #: (``None`` = unlimited); propagated poison is not counted
    max_transfer_faults: Optional[int] = None
    max_kernel_faults: Optional[int] = None
    #: maximum fractional latency inflation per command (0.1 = up to
    #: +10% occupancy, uniformly drawn)
    jitter: float = 0.0
    #: scheduled co-tenant memory grabs
    pressure_events: Tuple[PressureEvent, ...] = field(default_factory=tuple)
    #: retirement count after which the device is lost (``None`` = never)
    device_lost_at: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("h2d_fault_rate", "d2h_fault_rate", "kernel_fault_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.h2d_fault_rate
            or self.d2h_fault_rate
            or self.kernel_fault_rate
            or self.sticky_kernels
            or self.jitter
            or self.pressure_events
            or self.device_lost_at is not None
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different seed."""
        return replace(self, seed=int(seed))
