"""Deterministic fault injection and self-healing execution.

The paper argues chunked pipelined execution makes offload regions
"resilient to changes in device memory sizes"; this subpackage extends
that resilience claim to the full fault surface a production offload
runtime faces — transient DMA failures, kernel faults, co-tenant
memory pressure, device loss — and makes every chunk an independent
*replay unit*:

* :class:`FaultPlan` / :class:`FaultInjector`
  (:mod:`repro.faults.plan`, :mod:`repro.faults.inject`) — a seeded,
  deterministic description and executor of injected failures,
  consulted by the simulator at command dispatch/retirement.  Same
  seed ⇒ bit-identical fault timeline; no plan installed ⇒ the hooks
  are dead branches and results are bit-identical to a fault-free
  build.
* :class:`FaultPolicy` / :class:`RegionFailure`
  (:mod:`repro.faults.policy`) — retry/backoff/degradation policy
  accepted by ``region.run(..., fault_policy=...)``, and the
  structured terminal error carrying per-chunk status.
* :mod:`repro.faults.profiles` — named chaos profiles plus
  :func:`run_chaos`, the engine behind the ``repro chaos`` CLI: run an
  application under a profile, recover, and verify the result still
  matches the sequential NumPy reference.

Usage::

    from repro import Runtime, NVIDIA_K40M
    from repro.faults import FaultPlan, FaultPolicy

    rt = Runtime(NVIDIA_K40M)
    rt.install_faults(FaultPlan(seed=7, h2d_fault_rate=0.05,
                                kernel_fault_rate=0.02))
    policy = FaultPolicy(max_retries=3, degrade=("pipelined", "naive"))
    result = region.run(rt, arrays, kernel, fault_policy=policy)
    assert result.retries >= 0   # recovery effort is measured
"""

from __future__ import annotations

from repro.faults.inject import FaultInjector, hash_u01
from repro.faults.plan import (
    FaultPlan,
    HostCrashError,
    InjectedFault,
    PressureEvent,
)
from repro.faults.policy import FaultPolicy, RegionFailure
from repro.faults.profiles import (
    CHAOS_APPS,
    PROFILES,
    ChaosReport,
    fault_profile,
    pool_fault_plans,
    run_chaos,
)

__all__ = [
    "CHAOS_APPS",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "FaultPolicy",
    "HostCrashError",
    "InjectedFault",
    "PressureEvent",
    "PROFILES",
    "RegionFailure",
    "fault_profile",
    "hash_u01",
    "pool_fault_plans",
    "run_chaos",
]
