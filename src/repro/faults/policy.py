"""Recovery policy and structured failure types.

A :class:`FaultPolicy` tells ``region.run(...)`` how hard to try when
commands fault: how many times to replay a failed chunk, how the
exponential backoff (charged in *virtual host time*) grows, and which
execution models to degrade through once the primary model has
exhausted its retries.  :class:`RegionFailure` is the terminal error —
it carries per-chunk status and the attempt history so callers can see
exactly what was tried and what state every chunk ended in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["FaultPolicy", "RegionFailure"]

#: chunk states carried by :class:`RegionFailure` / recovery reports
CHUNK_OK = "ok"                  # completed without any fault
CHUNK_RECOVERED = "recovered"    # faulted, then a replay succeeded
CHUNK_FAILED = "failed"          # faulted; replay pending when run aborted
CHUNK_EXHAUSTED = "exhausted"    # faulted max_retries + 1 times


@dataclass(frozen=True)
class FaultPolicy:
    """How a region run responds to injected/async faults.

    Parameters
    ----------
    max_retries:
        Replays allowed per chunk (pipelined-buffer model) or per whole
        region attempt (baseline models) before giving up.
    backoff:
        Base backoff in virtual seconds; retry ``n`` charges
        ``backoff * backoff_factor**n`` to the host clock before
        re-enqueueing, so recovery cost shows up in measured time.
    backoff_factor:
        Exponential growth factor (>= 1).
    degrade:
        Execution models to fall back to, in order, after the current
        model exhausts its retries (e.g. ``("pipelined", "naive")``).
        An empty tuple disables degradation.
    retune_on_pressure:
        Whether a mid-run ``OutOfMemoryError`` triggers re-tuning the
        plan against the shrunken free pool (smaller chunks / fewer
        streams) instead of propagating.
    """

    max_retries: int = 3
    backoff: float = 1e-4
    backoff_factor: float = 2.0
    degrade: Tuple[str, ...] = ()
    retune_on_pressure: bool = True

    def __post_init__(self) -> None:
        from repro.gpu.errors import InvalidValueError

        if self.max_retries < 0:
            raise InvalidValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0.0:
            raise InvalidValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise InvalidValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff seconds charged before retry number ``attempt``
        (0-based)."""
        return self.backoff * self.backoff_factor ** attempt


class RegionFailure(ReproError, RuntimeError):
    """A region could not complete despite the fault policy.

    Attributes
    ----------
    chunk_status:
        ``{chunk_index: status}`` with statuses ``"ok"``,
        ``"recovered"``, ``"failed"``, ``"exhausted"`` — the state of
        every chunk of the *last* attempted model when the run gave up.
    attempts:
        Human-readable history, one entry per model attempt
        (``"buffer: chunk 3 exhausted 4 attempts"``, ...).
    retries:
        Total replays performed across all attempts.
    """

    def __init__(
        self,
        message: str,
        *,
        chunk_status: Optional[Dict[int, str]] = None,
        attempts: Optional[List[str]] = None,
        retries: int = 0,
    ) -> None:
        self.chunk_status = dict(chunk_status or {})
        self.attempts = list(attempts or [])
        self.retries = int(retries)
        bad = {i: s for i, s in self.chunk_status.items()
               if s in (CHUNK_FAILED, CHUNK_EXHAUSTED)}
        detail = []
        if bad:
            detail.append(f"failed chunks: {sorted(bad)}")
        if self.attempts:
            detail.append("attempts: " + "; ".join(self.attempts))
        full = message if not detail else message + " (" + " | ".join(detail) + ")"
        super().__init__(full)
