"""The fault injector: the simulator-side half of :mod:`repro.faults`.

A :class:`FaultInjector` is installed on a
:class:`~repro.sim.device.Device` (see
:meth:`repro.gpu.runtime.Runtime.install_faults`).  The simulator
consults it at exactly two points:

* **dispatch** (:meth:`latency_extra`) — bounded latency jitter added
  to the command's engine occupancy, and
* **retirement** (:meth:`fault_at_retirement` then
  :meth:`after_retirement`) — transient/sticky faults, device loss,
  and scheduled co-tenant memory-pressure events.

Every decision is a pure hash of ``(plan.seed, domain, cmd.seq)``, so
two runs of the same program under the same plan produce bit-identical
injected timelines — the injector keeps an :attr:`events` log whose
equality across runs is asserted by the determinism tests.  With no
injector installed the simulator hooks are dead branches and existing
results are bit-identical to pre-fault behaviour.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    KIND_BITFLIP,
    KIND_D2H,
    KIND_DEVICE_LOST,
    KIND_H2D,
    KIND_KERNEL,
    KIND_MISCOMPUTE,
    KIND_SLOW,
    KIND_STICKY,
    FaultPlan,
    InjectedFault,
)

__all__ = ["FaultInjector", "hash_u01"]


def hash_u01(seed: int, domain: str, n: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a counter hash.

    Platform-independent (BLAKE2b of the decimal key), so fault
    timelines reproduce across machines, not just across runs.
    """
    key = f"{seed}:{domain}:{n}".encode()
    h = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(h, "big") / 2.0**64


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan` against one device.

    Parameters
    ----------
    plan:
        The fault plan to realise.

    Attributes
    ----------
    events:
        Append-only log of every injected action, as plain tuples —
        ``("fault", kind, seq, time)``, ``("jitter", seq, extra)``,
        ``("pressure", nbytes, retirement)``,
        ``("pressure-release", nbytes, retirement)``,
        ``("device-lost", retirement)``,
        ``("silent", kind, seq, time)``,
        ``("slow-device", retirement)`` — the deterministic fingerprint
        of one run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: List[Tuple] = []
        self.retired = 0
        self.transfer_faults = 0
        self.kernel_faults = 0
        self.silent_faults = 0
        self.device_lost = False
        self._slow_logged = False
        #: wired by ``Device.install_fault_injector``
        self._memory = None
        self._pressure_recs: List[Tuple[int, object]] = []  # (release_at, rec)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_memory(self, allocator) -> None:
        """Give the injector access to the device allocator (for
        pressure events)."""
        self._memory = allocator

    # ------------------------------------------------------------------
    # dispatch hook
    # ------------------------------------------------------------------
    def latency_extra(self, cmd) -> float:
        """Extra occupancy seconds for ``cmd`` (0.0 for most)."""
        plan = self.plan
        if cmd.kind == "marker" or cmd.duration <= 0.0:
            return 0.0
        extra = 0.0
        if plan.jitter and plan.allows("jitter"):
            u = hash_u01(plan.seed, "jitter", cmd.seq)
            jit = u * plan.jitter * cmd.duration
            if jit:
                self.events.append(("jitter", cmd.seq, jit))
                extra += jit
        if plan.slow_factor != 1.0 and plan.allows(KIND_SLOW) \
                and self.retired >= plan.slow_after:
            if not self._slow_logged:
                self._slow_logged = True
                self.events.append(("slow-device", self.retired))
            extra += cmd.duration * (plan.slow_factor - 1.0)
        return extra

    # ------------------------------------------------------------------
    # retirement hooks
    # ------------------------------------------------------------------
    def _transfer_budget(self) -> bool:
        cap = self.plan.max_transfer_faults
        return cap is None or self.transfer_faults < cap

    def _kernel_budget(self) -> bool:
        cap = self.plan.max_kernel_faults
        return cap is None or self.kernel_faults < cap

    def fault_at_retirement(self, cmd, now: float) -> Optional[InjectedFault]:
        """Decide whether ``cmd`` faults as it retires.

        Called by the simulator *before* the command's payload runs; a
        non-``None`` return suppresses the payload.
        """
        plan = self.plan
        if self.device_lost:
            return self._record(InjectedFault(KIND_DEVICE_LOST, cmd.seq, now,
                                              cmd.label, sticky=True))
        if cmd.kind == "marker":
            return None
        if cmd.kind in ("h2d", "d2h"):
            rate = plan.h2d_fault_rate if cmd.kind == "h2d" else plan.d2h_fault_rate
            if rate and plan.allows(cmd.kind) and self._transfer_budget() and \
                    hash_u01(plan.seed, f"fault:{cmd.kind}", cmd.seq) < rate:
                self.transfer_faults += 1
                kind = KIND_H2D if cmd.kind == "h2d" else KIND_D2H
                return self._record(InjectedFault(kind, cmd.seq, now, cmd.label))
        elif cmd.kind == "kernel":
            if plan.allows(KIND_STICKY) and \
                    any(pat in cmd.label for pat in plan.sticky_kernels):
                self.kernel_faults += 1
                return self._record(
                    InjectedFault(KIND_STICKY, cmd.seq, now, cmd.label, sticky=True)
                )
            if plan.kernel_fault_rate and plan.allows(KIND_KERNEL) and \
                    self._kernel_budget() and \
                    hash_u01(plan.seed, "fault:kernel", cmd.seq) < plan.kernel_fault_rate:
                self.kernel_faults += 1
                return self._record(InjectedFault(KIND_KERNEL, cmd.seq, now, cmd.label))
        return None

    def _record(self, fault: InjectedFault) -> InjectedFault:
        self.events.append(("fault", fault.kind, fault.seq, fault.time))
        return fault

    # ------------------------------------------------------------------
    # silent corruption
    # ------------------------------------------------------------------
    def _silent_rate(self, cmd) -> Tuple[float, str]:
        plan = self.plan
        if cmd.kind in ("h2d", "d2h"):
            if plan.bitflip_rate and plan.allows(KIND_BITFLIP):
                return plan.bitflip_rate, KIND_BITFLIP
        elif cmd.kind == "kernel":
            if plan.miscompute_rate and plan.allows(KIND_MISCOMPUTE):
                return plan.miscompute_rate, KIND_MISCOMPUTE
        return 0.0, ""

    def corrupt_at_retirement(self, cmd, now: float) -> None:
        """Maybe flip one bit in ``cmd``'s delivered data.

        Called by the simulator *after* the command's payload ran (the
        command retired successfully; this is what makes the fault
        silent).  The decision — and the flipped element/bit — is a
        pure hash of ``(seed, kind, cmd.seq)``, so the corruption
        timeline is logged identically in virtual mode; the actual flip
        only happens when ``cmd.sink`` resolves to a real ndarray.
        """
        if cmd.kind == "marker":
            return
        rate, kind = self._silent_rate(cmd)
        if not rate or \
                hash_u01(self.plan.seed, f"silent:{cmd.kind}", cmd.seq) >= rate:
            return
        self.silent_faults += 1
        self.events.append(("silent", kind, cmd.seq, now))
        sink = cmd.sink
        if callable(sink):
            sink = sink()
        if not isinstance(sink, np.ndarray) or sink.size == 0:
            return
        u_elem = hash_u01(self.plan.seed, f"silent-elem:{cmd.kind}", cmd.seq)
        u_bit = hash_u01(self.plan.seed, f"silent-bit:{cmd.kind}", cmd.seq)
        flat_index = min(int(u_elem * sink.size), sink.size - 1)
        idx = np.unravel_index(flat_index, sink.shape)
        itemsize = sink.dtype.itemsize
        bit = min(int(u_bit * 8 * itemsize), 8 * itemsize - 1)
        raw = bytearray(sink[idx].tobytes())
        raw[bit // 8] ^= 1 << (bit % 8)
        sink[idx] = np.frombuffer(bytes(raw), dtype=sink.dtype)[0]

    def after_retirement(self, cmd, now: float) -> None:
        """Advance the retirement counter; fire scheduled events."""
        self.retired += 1
        plan = self.plan
        if plan.device_lost_at is not None and not self.device_lost \
                and plan.allows(KIND_DEVICE_LOST) \
                and self.retired >= plan.device_lost_at:
            self.device_lost = True
            self.events.append(("device-lost", self.retired))
        if self._memory is None or not plan.allows("pressure"):
            return
        for ev in plan.pressure_events:
            if ev.at_retirement == self.retired:
                grab = min(int(ev.nbytes), self._memory.free)
                if ev.leave_bytes is not None:
                    grab = min(grab, max(0, self._memory.free - int(ev.leave_bytes)))
                # the allocator aligns requests up; align the grab down
                # so grabbing "everything" cannot itself OOM
                align = getattr(self._memory, "alignment", 1) or 1
                grab -= grab % align
                if grab > 0:
                    rec = self._memory.allocate(grab, tag="fault:co-tenant")
                    self.events.append(("pressure", grab, self.retired))
                    if ev.release_at is not None:
                        self._pressure_recs.append((ev.release_at, rec))
        still_held = []
        for release_at, rec in self._pressure_recs:
            if self.retired >= release_at:
                self._memory.release(rec)
                self.events.append(("pressure-release", rec.nbytes, self.retired))
            else:
                still_held.append((release_at, rec))
        self._pressure_recs = still_held

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        """Total injected faults (excluding propagated poison and
        silent corruptions — those never surface as errors)."""
        return self.transfer_faults + self.kernel_faults

    def fingerprint(self) -> Tuple[Tuple, ...]:
        """The full event log as a hashable tuple (determinism tests)."""
        return tuple(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(seed={self.plan.seed}, retired={self.retired}, "
            f"faults={self.fault_count}, lost={self.device_lost})"
        )
