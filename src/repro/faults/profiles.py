"""Named chaos profiles and the chaos runner behind ``repro chaos``.

A *profile* is a reusable :class:`~repro.faults.plan.FaultPlan`
template; :func:`fault_profile` stamps it with a seed.
:func:`run_chaos` runs one evaluation application under a profile with
a retrying :class:`~repro.faults.policy.FaultPolicy`, in **real**
(functional) mode, and verifies the recovered result against the
application's sequential NumPy reference — the end-to-end proof that
chunk replay reconstructs bit-correct output through injected faults.

Application imports are deferred to call time so this module (and the
``repro.faults`` package) stays importable from low layers without
dragging in :mod:`repro.apps`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, PressureEvent
from repro.faults.policy import FaultPolicy

__all__ = [
    "CHAOS_APPS",
    "ChaosReport",
    "PROFILES",
    "fault_profile",
    "pool_fault_plans",
    "run_chaos",
]

#: named fault-plan templates (seed applied by :func:`fault_profile`)
PROFILES: Dict[str, FaultPlan] = {
    # transient DMA + kernel hiccups: everything recoverable by replay
    "transient": FaultPlan(
        h2d_fault_rate=0.08,
        d2h_fault_rate=0.08,
        kernel_fault_rate=0.04,
    ),
    # transient faults plus bounded latency jitter on every engine
    "jitter": FaultPlan(
        h2d_fault_rate=0.05,
        kernel_fault_rate=0.02,
        jitter=0.25,
    ),
    # a co-tenant grabs most of the card early in the run
    "pressure": FaultPlan(
        pressure_events=(PressureEvent(at_retirement=3, nbytes=1 << 62),),
    ),
    # everything at once: the full chaos soup
    "chaos": FaultPlan(
        h2d_fault_rate=0.06,
        d2h_fault_rate=0.06,
        kernel_fault_rate=0.03,
        jitter=0.15,
        pressure_events=(
            PressureEvent(at_retirement=5, nbytes=1 << 30, release_at=40),
        ),
    ),
    # mild transients plus a mid-run device loss: exercises the serving
    # layer's pool-level failover (on a multi-device pool only one
    # device carries the loss; see :func:`pool_fault_plans`)
    "failover": FaultPlan(
        h2d_fault_rate=0.05,
        kernel_fault_rate=0.02,
        device_lost_at=8,
    ),
    # silent data corruption: transfers retire successfully but
    # occasionally deliver a flipped bit — invisible without integrity
    # verification (bitflip-only so ``integrity="checksum"`` catches
    # every event; add miscomputes via only_kinds/vote for the harder
    # case)
    "sdc": FaultPlan(
        bitflip_rate=0.06,
    ),
    # a slow-but-alive device: 10x occupancy inflation once warmed up
    # (on a multi-device pool only one device carries the slowdown;
    # see :func:`pool_fault_plans`) — the straggler-watchdog case
    "straggler": FaultPlan(
        slow_factor=10.0,
        slow_after=4,
    ),
    # host/control-plane crash: the serve loop dies after 12 journal
    # records; devices stay healthy.  Only meaningful with a journal
    # (``repro serve --journal``); device-level chaos runs ignore it.
    "hostcrash": FaultPlan(
        crash_after_events=12,
    ),
}

#: applications the chaos runner knows how to build and verify
CHAOS_APPS = ("stencil", "3dconv", "matmul", "qcd")


@dataclass
class ChaosReport:
    """Recovery statistics of one chaos run."""

    app: str
    profile: str
    seed: int
    device: str
    model: str                       # model that finally completed
    elapsed: float
    faults_injected: int
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    chunks: int = 0
    matches_reference: Optional[bool] = None  # None in virtual mode
    max_error: float = 0.0
    integrity: str = "off"
    verified: int = 0
    corruptions: int = 0

    def summary(self) -> str:
        """Multi-line human-readable recovery report."""
        kinds = "  ".join(f"{k}={v}" for k, v in sorted(self.faults_by_kind.items()))
        match = {True: "yes", False: "NO", None: "n/a (virtual)"}[self.matches_reference]
        lines = [
            f"app              {self.app} ({self.device})",
            f"fault profile    {self.profile} (seed {self.seed})",
            f"model            {self.model}",
            f"elapsed          {self.elapsed * 1e3:.3f} ms",
            f"faults injected  {self.faults_injected}" + (f"  ({kinds})" if kinds else ""),
            f"chunk retries    {self.retries} (over {self.chunks} chunks)",
        ]
        if self.integrity != "off":
            lines.append(
                f"integrity        {self.integrity}: {self.verified} "
                f"check(s), {self.corruptions} corruption(s) detected"
            )
        lines.append(
            f"reference match  {match}"
            + (f" (max abs err {self.max_error:.3g})" if self.matches_reference else "")
        )
        return "\n".join(lines)


def fault_profile(name: str, seed: int = 0) -> FaultPlan:
    """Look up a named profile and stamp it with ``seed``."""
    try:
        plan = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; know {sorted(PROFILES)}"
        ) from None
    return plan.with_seed(seed)


def pool_fault_plans(
    name: str, *, seed: int = 0, count: int = 1
) -> List[Optional[FaultPlan]]:
    """Per-device fault plans for a :class:`~repro.serve.DevicePool`.

    Each device gets the named profile under a distinct seed derived
    from ``seed`` (independent but deterministic fault timelines).  If
    the profile schedules a device loss and the pool has more than one
    device, only one device — ``seed % count``, deterministic — keeps
    the loss, so the pool always retains survivors to fail over to.
    A persistent slowdown (``slow_factor``) is confined to the same
    single carrier device, so a straggler profile produces one slow
    member among healthy peers rather than a uniformly slow pool.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    template = fault_profile(name, seed)
    carrier = seed % count
    plans: List[Optional[FaultPlan]] = []
    for i in range(count):
        plan = template.with_seed(seed * 1_000_003 + i)
        if count > 1 and i != carrier:
            if template.device_lost_at is not None:
                plan = replace(plan, device_lost_at=None)
            if template.slow_factor != 1.0:
                plan = replace(plan, slow_factor=1.0, slow_after=0)
        plans.append(plan)
    return plans


def _app_setup(app: str, device: str, obs):
    """(runtime, arrays, region, kernel, output_var, reference, iters).

    Small problem sizes: chaos runs are functional-correctness checks,
    not performance studies.
    """
    import numpy as np  # noqa: F401 - referenced by closures below

    from repro.apps.common import new_runtime

    if app == "stencil":
        from repro.apps import stencil as st
        from repro.kernels.stencil3d import StencilKernel

        cfg = st.StencilConfig(nz=12, ny=24, nx=24, iters=2, num_streams=2)
        return (
            new_runtime(device, obs=obs),
            st.make_arrays(cfg),
            st.make_region(cfg),
            StencilKernel(cfg.ny, cfg.nx),
            "A0",
            lambda: st.reference(cfg),
            cfg.iters,
        )
    if app == "3dconv":
        from repro.apps import conv3d as cv
        from repro.kernels.conv3d import Conv3dKernel

        cfg = cv.Conv3dConfig(nz=12, ny=24, nx=24, num_streams=2)
        return (
            new_runtime(device, obs=obs),
            cv.make_arrays(cfg),
            cv.make_region(cfg),
            Conv3dKernel(cfg.ny, cfg.nx),
            "B",
            lambda: cv.reference(cfg),
            1,
        )
    if app == "qcd":
        from repro.apps import qcd as qc
        from repro.kernels.qcd import DslashKernel

        cfg = qc.QcdConfig(n=6, num_streams=2)
        return (
            new_runtime(device, obs=obs),
            qc.make_arrays(cfg),
            qc.make_region(cfg),
            DslashKernel(cfg.n, cfg.n, cfg.n),
            "eta",
            lambda: qc.reference(cfg),
            1,
        )
    if app == "matmul":
        from repro.apps import matmul as mm
        from repro.kernels.matmul import MatmulChunkKernel, init_matrices

        cfg = mm.MatmulConfig(n=48, block=8, num_streams=2)

        def ref():
            a, b, c = init_matrices(cfg.n)
            return c + a @ b

        return (
            new_runtime(device, obs=obs),
            mm.make_arrays(cfg),
            mm.make_region(cfg),
            MatmulChunkKernel(cfg.n, cfg.block),
            "C",
            ref,
            1,
        )
    raise KeyError(f"unknown chaos app {app!r}; know {CHAOS_APPS}")


def run_chaos(
    app: str,
    profile: str = "transient",
    *,
    seed: int = 0,
    device: str = "k40m",
    policy: Optional[FaultPolicy] = None,
    model: str = "buffer",
    obs=None,
    atol: float = 1e-4,
    integrity: str = "off",
) -> ChaosReport:
    """Run ``app`` under a named fault profile and report recovery.

    The run is functional (real NumPy payloads); the recovered output
    is compared element-wise against the app's sequential reference.
    """
    import numpy as np

    from repro.faults.inject import FaultInjector

    plan = fault_profile(profile, seed)
    if policy is None:
        policy = FaultPolicy(max_retries=4, degrade=("pipelined", "naive"))
    rt, arrays, region, kernel, out_var, reference, iters = _app_setup(app, device, obs)
    injector: FaultInjector = rt.install_faults(plan)

    results = []
    with rt:
        for _ in range(iters):
            if app == "stencil":
                arrays["Anext"].fill(0)
            results.append(
                region.run(
                    rt, arrays, kernel, model=model, fault_policy=policy,
                    integrity=integrity,
                )
            )
            if app == "stencil":
                arrays["A0"], arrays["Anext"] = arrays["Anext"], arrays["A0"]
        out = arrays[out_var]

    expect = reference()
    max_err = float(np.max(np.abs(out - expect))) if out.size else 0.0
    matches = bool(np.allclose(out, expect, atol=atol))

    by_kind: Dict[str, int] = {}
    for ev in injector.events:
        if ev[0] == "fault":
            by_kind[ev[1]] = by_kind.get(ev[1], 0) + 1
    return ChaosReport(
        app=app,
        profile=profile,
        seed=seed,
        device=device,
        model=results[-1].model,
        elapsed=sum(r.elapsed for r in results),
        faults_injected=injector.fault_count,
        faults_by_kind=by_kind,
        retries=sum(r.retries for r in results),
        chunks=sum(r.nchunks for r in results),
        matches_reference=matches,
        max_error=max_err,
        integrity=integrity,
        verified=sum(r.verified for r in results),
        corruptions=sum(r.corruptions for r in results),
    )
