"""Kernel execution-time models.

Two forms are provided:

* :func:`roofline_time` — the textbook bound
  ``max(flops / flop_rate, bytes / mem_bw)`` scaled by an efficiency
  factor; used where arithmetic genuinely dominates (matrix
  multiplication).
* :func:`effective_time` — work divided by a calibrated *effective
  rate*; used for the streaming kernels (stencil, convolution, QCD),
  whose OpenACC-generated 2016-era code runs far below roofline.

Calibration philosophy (also in DESIGN.md): the paper's figures are
determined by the *ratio* of kernel time to PCIe transfer time, not by
absolute speed.  The paper itself tells us those ratios — e.g. Lattice
QCD spends "nearly 50%" of Naive execution in transfers (Figure 3),
and the per-benchmark speedups of Figure 5 pin kernel/transfer balance
for the others.  Each application module sets one effective-rate
constant to land its paper ratio and documents the paper evidence next
to it.  Absolute seconds are *not* matched to the authors' testbed.
"""

from __future__ import annotations

from repro.sim.profiles import DeviceProfile

__all__ = ["roofline_time", "effective_time"]


def roofline_time(
    profile: DeviceProfile,
    flops: float,
    bytes_moved: float,
    itemsize: int,
    *,
    flop_efficiency: float = 1.0,
    mem_efficiency: float = 1.0,
) -> float:
    """Roofline execution time: the slower of compute and memory.

    Parameters
    ----------
    profile:
        Device profile (peak rates).
    flops:
        Floating-point operations performed.
    bytes_moved:
        Device-memory traffic in bytes.
    itemsize:
        Element size selecting fp32 vs fp64 peak.
    flop_efficiency, mem_efficiency:
        Fractions of peak actually achieved (0 < e <= 1).
    """
    if flops < 0 or bytes_moved < 0:
        raise ValueError("negative work")
    if not (0 < flop_efficiency <= 1 and 0 < mem_efficiency <= 1):
        raise ValueError("efficiencies must be in (0, 1]")
    t_flop = flops / (profile.flops(itemsize) * flop_efficiency)
    t_mem = bytes_moved / (profile.mem_bw * mem_efficiency)
    return max(t_flop, t_mem)


def effective_time(work_units: float, effective_rate: float) -> float:
    """Execution time as work at a calibrated effective rate.

    ``work_units`` is whatever the calibration chose (bytes, sites,
    flops); ``effective_rate`` is units/second.
    """
    if work_units < 0:
        raise ValueError("negative work")
    if effective_rate <= 0:
        raise ValueError("effective rate must be positive")
    return work_units / effective_rate
