"""Lattice QCD Dslash-like operator (SciDAC application stand-in).

The paper's largest application is a production Lattice Quantum
Chromodynamics code whose main subroutine applies a stencil-like
operator over a high-dimensional lattice, with problem size
``O(C n^4)`` and memory footprint reduced to ``O(C n^3)`` per chunk by
splitting one lattice dimension.

We implement a Wilson-fermion-style Dslash on an ``(nt, nz, ny, nx)``
lattice: 4-spinors of SU(3) colour vectors (``4 x 3`` complex128 per
site, 192 B) and gauge links (``4`` directions of ``3 x 3`` complex128
per site, 576 B).  The operator applies the link matrix of each
direction to every spin component of the neighbouring spinor:

.. math::

    \\eta(t, s) = \\sum_{\\mu \\in \\{x,y,z\\}}
        \\left[ U_\\mu(t,s)\\,\\psi(t, s+\\hat\\mu)
              - U^\\dagger_\\mu(t, s-\\hat\\mu)\\,\\psi(t, s-\\hat\\mu)
        \\right]
      + U_t(t,s)\\,\\psi(t+1, s) - U^\\dagger_t(t-1,s)\\,\\psi(t-1, s)

(per spin component; spin projection is omitted — it changes only the
flop constant, not the data movement the paper studies).  Spatial
directions are periodic within a time slab; the pipelined loop runs
over interior ``t`` slices, so the clauses are::

    pipeline_map(to:   psi[k-1:3][...])   # needs t-1, t, t+1
    pipeline_map(to:   G[k-1:2][...])     # needs links at t-1 and t
    pipeline_map(from: eta[k:1][...])

This preserves what the paper uses QCD for: a large 4-D footprint
(~1.7 GB naive at n = 36), a halo along the split dimension, gauge
data dominating transfer volume, and index arithmetic heavy enough
that ring-buffer translation is visible (``index_penalty``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.kernels.cost import effective_time
from repro.sim.profiles import DeviceProfile

__all__ = [
    "DslashKernel",
    "FLOPS_PER_SITE",
    "init_lattice",
    "reference_dslash",
]

#: Complex flops per lattice site: 8 SU(3) mat-vecs per spin component
#: (2 per direction x 4 directions) at 66 flops each, times 4 spin
#: components, plus vector adds.
FLOPS_PER_SITE = 2640.0

#: Calibrated effective compute rate (flop/s).  Evidence: Figure 3 puts
#: transfers at "nearly 50%" of Naive QCD execution, and Figure 5 gives
#: the large case a ~1.5-1.6x pipelined speedup; both hold when kernel
#: time is ~1.1-1.2x total transfer time.  Per interior site the runtime
#: moves ~768 B H2D (gauge links dominate) + 192 B D2H, so at 10 GB/s
#: PCIe the kernel must average ~2640 flops / ~110 ns ~= 24 GFlop/s —
#: the 2016 OpenACC-generated QCD kernel is latency/indexing-bound, far
#: below peak.
EFFECTIVE_FLOPS = 24.0e9


def init_lattice(
    nt: int, nz: int, ny: int, nx: int, seed: int = 2017
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reproducible gauge field ``G``, spinor ``psi``, zeroed ``eta``.

    Shapes: ``G (nt, 4, nz, ny, nx, 3, 3)``, ``psi/eta
    (nt, nz, ny, nx, 4, 3)``, all complex128.  Direction index order is
    ``(x, y, z, t) = (0, 1, 2, 3)``.
    """
    rng = np.random.default_rng(seed)

    def crand(shape):
        """Uniform complex values in the unit box around 0."""
        return (rng.random(shape) - 0.5 + 1j * (rng.random(shape) - 0.5)).astype(
            np.complex128
        )

    g = crand((nt, 4, nz, ny, nx, 3, 3))
    psi = crand((nt, nz, ny, nx, 4, 3))
    eta = np.zeros((nt, nz, ny, nx, 4, 3), dtype=np.complex128)
    return g, psi, eta


# spatial direction mu -> axis of a (nz, ny, nx, 4, 3) slab
_MU_AXIS = {0: 2, 1: 1, 2: 0}  # x -> axis 2, y -> axis 1, z -> axis 0


def _apply_slice(
    g_t: np.ndarray, g_tm1: np.ndarray, psi_tm1: np.ndarray,
    psi_t: np.ndarray, psi_tp1: np.ndarray,
) -> np.ndarray:
    """Dslash on one time slice; returns the ``eta`` slab.

    ``...ab,...sb->...sa`` applies the site's 3x3 link matrix to each
    of the 4 spin components of the neighbour spinor.
    """
    out = np.zeros_like(psi_t)
    for mu in (0, 1, 2):
        ax = _MU_AXIS[mu]
        u = g_t[mu]
        fwd = np.roll(psi_t, -1, axis=ax)
        out += np.einsum("...ab,...sb->...sa", u, fwd)
        u_back = np.roll(g_t[mu], 1, axis=ax)
        bwd = np.roll(psi_t, 1, axis=ax)
        out -= np.einsum("...ba,...sb->...sa", np.conj(u_back), bwd)
    # temporal direction (mu = 3): forward uses links at t, backward at t-1
    out += np.einsum("...ab,...sb->...sa", g_t[3], psi_tp1)
    out -= np.einsum("...ba,...sb->...sa", np.conj(g_tm1[3]), psi_tm1)
    return out


def reference_dslash(g: np.ndarray, psi: np.ndarray, eta: np.ndarray) -> None:
    """Apply Dslash to all interior time slices (NumPy oracle)."""
    nt = psi.shape[0]
    for t in range(1, nt - 1):
        eta[t] = _apply_slice(g[t], g[t - 1], psi[t - 1], psi[t], psi[t + 1])


class DslashKernel(RegionKernel):
    """Chunked Dslash over time slices ``[t0, t1)``.

    Mapped arrays: ``G`` (input, halo: t-1 and t), ``psi`` (input,
    halo 1 both sides), ``eta`` (output).
    """

    name = "qcd-dslash"
    #: the paper: "The huge indexing operation to map the
    #: high-dimensional space to the pre-allocated buffer probably leads
    #: to the performance difference" — QCD pays a visible translation
    #: cost, unlike the simple kernels.
    index_penalty = 0.08
    #: cost depends only on the slice count ``t1 - t0``
    uniform_chunk_cost = True

    def __init__(self, nz: int, ny: int, nx: int) -> None:
        self.v3 = int(nz) * int(ny) * int(nx)

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Effective-rate cost for the chunk's lattice sites."""
        sites = (t1 - t0) * self.v3
        return effective_time(sites * FLOPS_PER_SITE, EFFECTIVE_FLOPS)

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """Dslash on time slices [t0, t1) via translated views."""
        g = views["G"]
        psi = views["psi"]
        eta = views["eta"]
        g_win = g.take(t0 - 1, t1)        # links at t-1 .. t1-1
        psi_win = psi.take(t0 - 1, t1 + 1)
        eta_win = eta.take(t0, t1)
        for i, t in enumerate(range(t0, t1)):
            eta_win[i] = _apply_slice(
                g_win[i + 1],
                g_win[i],
                psi_win[i],
                psi_win[i + 1],
                psi_win[i + 2],
            )
