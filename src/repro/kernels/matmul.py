"""Polybench matrix multiplication: naive, block-shared, pipelined.

Three versions, as in the paper's Section V-E:

* **baseline** — Polybench's naive OpenACC kernel: one GPU thread per
  element of ``C``, every thread streaming a full row of ``A`` and
  column of ``B`` from global memory.  Memory-bound and slow.
* **block-shared** — the tiled kernel: sub-matrices staged into shared
  memory (the paper uses ``private()``/``cache()``), cutting global
  traffic by the tile factor.  "can achieve up to 3x speed up over the
  baseline."
* **pipeline-buffer** — the proposed runtime applied to the tiled
  kernel: the reduction dimension is partitioned into column-blocks of
  ``A`` and row-blocks of ``B`` streamed through a ring buffer
  (``A``'s column bands are **non-contiguous** -> pitched 2-D copies),
  while ``C`` stays resident (``map(tofrom: C)``) and accumulates.

Matrices are float64 (``3 n^2 * 8`` bytes for the full-footprint
versions), which is what makes the two largest paper sizes exceed the
K40m's usable memory for baseline/block-shared but not for the
ring-buffered version (Figures 9/10).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.kernels.cost import roofline_time
from repro.sim.profiles import DeviceProfile

__all__ = [
    "BASELINE_FLOP_EFF",
    "BLOCK_SHARED_FLOP_EFF",
    "MatmulChunkKernel",
    "MatmulWholeKernel",
    "init_matrices",
    "reference_matmul",
]

#: Fraction of fp64 peak the naive one-thread-per-element kernel
#: achieves.  Evidence: Figure 9 shows block-shared at ~3x baseline, so
#: the pair below is calibrated at a 3x ratio with the tiled kernel at a
#: plausible fraction of K40m peak for 2016 OpenACC.
BASELINE_FLOP_EFF = 0.085
#: Fraction of fp64 peak for the tiled (shared-memory) kernel.
BLOCK_SHARED_FLOP_EFF = 0.255


def init_matrices(n: int, seed: int = 42, dtype=np.float64):
    """Reproducible ``A``, ``B`` and a zeroed ``C`` (all ``n x n``)."""
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)).astype(dtype)
    b = rng.random((n, n)).astype(dtype)
    c = np.zeros((n, n), dtype=dtype)
    return a, b, c


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """NumPy oracle ``A @ B``."""
    return a @ b


def _gemm_cost(
    profile: DeviceProfile, n_rows: int, n_cols: int, k_depth: int, flop_eff: float
) -> float:
    """Roofline time for ``(n_rows x k_depth) @ (k_depth x n_cols)``."""
    flops = 2.0 * n_rows * n_cols * k_depth
    # tiled kernels stream each operand O(n^3 / tile) times; fold the
    # traffic effect into the flop efficiency and charge operand reads
    # plus the C update once.
    bytes_moved = (n_rows * k_depth + k_depth * n_cols + 2.0 * n_rows * n_cols) * 8.0
    return roofline_time(
        profile, flops, bytes_moved, itemsize=8, flop_efficiency=flop_eff
    )


class MatmulWholeKernel(RegionKernel):
    """Whole-problem GEMM for the two naive-offload versions.

    ``variant`` selects the cost model: ``"baseline"`` or
    ``"block_shared"``.  The functional body is identical (``C = A @
    B``) — only modelled speed differs, as on real hardware.
    """

    index_penalty = 0.0
    #: cost scales linearly with ``t1 - t0`` over a fixed trip count
    uniform_chunk_cost = True

    def __init__(self, n: int, variant: str = "baseline", trips: int = 1) -> None:
        if variant not in ("baseline", "block_shared"):
            raise ValueError(f"unknown matmul variant {variant!r}")
        self.n = int(n)
        self.variant = variant
        self.trips = max(1, int(trips))
        self.name = f"matmul-{variant}"

    def _eff(self) -> float:
        return BASELINE_FLOP_EFF if self.variant == "baseline" else BLOCK_SHARED_FLOP_EFF

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Whole-problem GEMM cost, scaled to the covered loop span."""
        # the naive-offload launch covers the whole loop; cost scales
        # with the fraction of the loop's trip count covered
        return _gemm_cost(profile, self.n, self.n, self.n, self._eff()) * (
            (t1 - t0) / self.trips
        )

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """C = A @ B over the full device arrays."""
        a = views["A"].data
        b = views["B"].data
        c = views["C"].data
        c[...] = a @ b


class MatmulChunkKernel(RegionKernel):
    """One reduction-block GEMM update for the pipelined version.

    The pipelined loop variable ``kb`` indexes blocks of ``block``
    columns of ``A`` / rows of ``B``; each chunk performs
    ``C += A[:, kb*block : ...] @ B[kb*block : ..., :]`` against the
    resident ``C``.  Runs the block-shared (tiled) kernel cost.
    """

    name = "matmul-pipeline"
    #: ring-offset indexing on a compute-bound kernel: negligible, the
    #: paper measures pipeline-buffer == block-shared for matmul.
    index_penalty = 0.005
    #: cost depends only on the block count ``t1 - t0``
    uniform_chunk_cost = True

    def __init__(self, n: int, block: int) -> None:
        self.n = int(n)
        self.block = int(block)

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Tiled-GEMM cost of this chunk's reduction blocks."""
        depth = (t1 - t0) * self.block
        return _gemm_cost(profile, self.n, self.n, depth, BLOCK_SHARED_FLOP_EFF)

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """C += A_band @ B_band for reduction blocks [t0, t1)."""
        g_lo = t0 * self.block
        g_hi = min(t1 * self.block, self.n)
        a_band = views["A"].take(g_lo, g_hi)   # (n, depth) columns of A
        b_band = views["B"].take(g_lo, g_hi)   # (depth, n) rows of B
        c = views["C"].data
        c += a_band @ b_band
