"""Application kernels: NumPy reference bodies + device cost models.

One module per application from the paper's evaluation:

* :mod:`repro.kernels.stencil3d` — Parboil's 7-point Jacobi heat stencil,
* :mod:`repro.kernels.conv3d` — Polybench's 3-D convolution (27-point),
* :mod:`repro.kernels.matmul` — Polybench matrix multiplication
  (naive and block-shared/tiled kernels),
* :mod:`repro.kernels.qcd` — a Lattice QCD Dslash-like operator on a
  4-D lattice (the SciDAC application stand-in).

Each module provides a pure-NumPy **reference** (the test oracle), a
:class:`~repro.core.kernel.RegionKernel` whose ``run`` body works on
translated chunk views, and an **effective-rate cost model** (see
:mod:`repro.kernels.cost`) calibrated so kernel-vs-transfer ratios
match the paper's measured behaviour.
"""

from repro.kernels.cost import effective_time, roofline_time

__all__ = ["effective_time", "roofline_time"]
