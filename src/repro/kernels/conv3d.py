"""Polybench 3-D convolution.

``B(i,j,k)`` is a fixed linear combination of the 3x3x3 neighbourhood
of ``A(i,j,k)`` (interior points only), after Polybench's
``3DConvolution`` kernel.  The pipelined loop runs over the outermost
dimension ``i`` (our ``z``): a chunk ``[t0, t1)`` reads ``A`` planes
``[t0-1, t1+1)`` and writes ``B`` planes ``[t0, t1)`` — the same
clause shape as the stencil, with a heavier kernel.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.kernels.cost import effective_time
from repro.sim.profiles import DeviceProfile

__all__ = ["Conv3dKernel", "reference_conv3d", "init_volume", "COEFFS"]

#: 3x3x3 coefficient tensor (Polybench uses +-0.2/0.5/0.7/0.8... values;
#: any fixed tensor exercises the same data movement).
_rng = np.random.default_rng(7)
COEFFS = (_rng.random((3, 3, 3)).astype(np.float32) - 0.5).round(2)
COEFFS.setflags(write=False)

#: Calibrated effective kernel bandwidth (bytes of A+B traffic per
#: second), per device.  Evidence (K40m): Figure 5 measures 1.45x
#: (Pipelined) and 1.46x (Pipelined-buffer) speedups over Naive for
#: 3dconv; with a shared DMA resource that pins kernel time at ~0.45x of
#: total transfer time: 8 bytes/voxel at ~20 GB/s effective against
#: 10 GB/s PCIe.  Evidence (HD 7970): Figure 8's chunk sweep *rises*
#: from 1.2x at two chunks to a peak around 4-9 chunks, which requires
#: the AMD conv kernel to be comparable to the transfer time (the
#: 27-point kernel generated through the OpenCL backend runs far below
#: the CUDA one — heavy register pressure on GCN), ~10 GB/s effective.
EFFECTIVE_BW = {
    "NVIDIA Tesla K40m": 20.0e9,
    "AMD Radeon HD 7970": 10.0e9,
}


def init_volume(nz: int, ny: int, nx: int, seed: int = 99) -> np.ndarray:
    """A reproducible float32 input volume."""
    rng = np.random.default_rng(seed)
    return rng.random((nz, ny, nx), dtype=np.float32)


def reference_conv3d(a: np.ndarray, b: np.ndarray) -> None:
    """Full-volume 27-point convolution (NumPy oracle); interior only."""
    acc = np.zeros_like(a[1:-1, 1:-1, 1:-1])
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                c = COEFFS[dz + 1, dy + 1, dx + 1]
                acc += c * a[
                    1 + dz : a.shape[0] - 1 + dz,
                    1 + dy : a.shape[1] - 1 + dy,
                    1 + dx : a.shape[2] - 1 + dx,
                ]
    b[1:-1, 1:-1, 1:-1] = acc


class Conv3dKernel(RegionKernel):
    """Chunked 27-point convolution over ``z`` planes ``[t0, t1)``."""

    name = "conv3d"
    index_penalty = 0.02
    #: cost depends only on the plane count ``t1 - t0``
    uniform_chunk_cost = True

    def __init__(self, ny: int, nx: int) -> None:
        self.ny = int(ny)
        self.nx = int(nx)

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Effective-rate cost for the chunk's voxels."""
        voxels = (t1 - t0) * self.ny * self.nx
        rate = EFFECTIVE_BW.get(profile.name, EFFECTIVE_BW["NVIDIA Tesla K40m"])
        return effective_time(voxels * 8.0, rate)

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """27-point convolution over the translated chunk views."""
        a = views["A"].take(t0 - 1, t1 + 1)
        b = views["B"].take(t0, t1)
        nz, ny, nx = a.shape
        acc = np.zeros((nz - 2, ny - 2, nx - 2), dtype=a.dtype)
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    c = COEFFS[dz + 1, dy + 1, dx + 1]
                    acc += c * a[
                        1 + dz : nz - 1 + dz,
                        1 + dy : ny - 1 + dy,
                        1 + dx : nx - 1 + dx,
                    ]
        b[:, 1:-1, 1:-1] = acc
