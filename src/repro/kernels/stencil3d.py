"""Parboil 7-point Jacobi heat-equation stencil.

The benchmark the paper takes from the Parboil suite: one Jacobi sweep
computes, for every interior point of a 3-D grid,

.. code-block:: c

    Anext[Index3D(i, j, k)] =
        (A0[i, j, k+1] + A0[i, j, k-1] +
         A0[i, j+1, k] + A0[i, j-1, k] +
         A0[i+1, j, k] + A0[i-1, j, k]) * c1
        - A0[i, j, k] * c0;

(the exact loop of the paper's Figure 2).  Our arrays are indexed
``[z, y, x]``; the pipelined loop runs over interior ``z`` planes, so a
chunk of iterations ``[t0, t1)`` reads ``A0`` planes ``[t0-1, t1+1)``
(halo 1 each side — the ``pipeline_map(to: A0[k-1:3]...)`` clause) and
writes ``Anext`` planes ``[t0, t1)`` (``pipeline_map(from:
Anext[k:1]...)``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.kernel import ChunkView, RegionKernel
from repro.kernels.cost import effective_time
from repro.sim.profiles import DeviceProfile

__all__ = ["C0", "C1", "StencilKernel", "reference_sweep", "init_grid"]

#: Parboil's coefficients: ``c0 = 1/6`` scaled center, ``c1`` neighbours.
C0 = np.float32(2.0)
C1 = np.float32(1.0 / 6.0)

#: Calibrated effective kernel bandwidth (bytes of A0+Anext traffic per
#: second), per device.  Evidence (K40m): Figure 5 gives the hand-coded
#: Pipelined stencil ~1.57x over Naive; with one shared PCIe DMA
#: resource that places kernel time near the (H2D + D2H) time, i.e.
#: ~8 bytes/voxel at ~9 GB/s effective against 10 GB/s PCIe.  Evidence
#: (HD 7970): Figure 8 has the Naive stencil 56% faster than the
#: default-chunked Pipelined version and a 1.35x win at two chunks —
#: which requires the AMD kernel to run *faster* than the chunk-degraded
#: link (the GCN stencil kernel is simple and compact), ~9 GB/s as well.
EFFECTIVE_BW = {
    "NVIDIA Tesla K40m": 9.0e9,
    "AMD Radeon HD 7970": 9.0e9,
}


def init_grid(nz: int, ny: int, nx: int, seed: int = 1234) -> np.ndarray:
    """A reproducible float32 grid with non-trivial interior values."""
    rng = np.random.default_rng(seed)
    return rng.random((nz, ny, nx), dtype=np.float32)


def reference_sweep(a0: np.ndarray, anext: np.ndarray) -> None:
    """One full Jacobi sweep (NumPy oracle); boundaries untouched."""
    c = a0[1:-1, 1:-1, 1:-1]
    anext[1:-1, 1:-1, 1:-1] = (
        a0[2:, 1:-1, 1:-1]
        + a0[:-2, 1:-1, 1:-1]
        + a0[1:-1, 2:, 1:-1]
        + a0[1:-1, :-2, 1:-1]
        + a0[1:-1, 1:-1, 2:]
        + a0[1:-1, 1:-1, :-2]
    ) * C1 - c * C0


class StencilKernel(RegionKernel):
    """Chunked Jacobi sweep over ``z`` planes ``[t0, t1)``.

    Mapped arrays: ``A0`` (input, halo 1) and ``Anext`` (output).
    """

    name = "stencil"
    #: index translation is a modular offset on the outer plane index.
    #: Calibrated so the buffer version trails the 2-stream hand-coded
    #: Pipelined slightly and overtakes it past ~6 streams (Figure 7).
    index_penalty = 0.05
    #: cost depends only on the plane count ``t1 - t0``
    uniform_chunk_cost = True

    def __init__(self, ny: int, nx: int) -> None:
        self.ny = int(ny)
        self.nx = int(nx)

    def cost(self, profile: DeviceProfile, t0: int, t1: int) -> float:
        """Effective-rate cost for the chunk's planes."""
        planes = t1 - t0
        voxels = planes * self.ny * self.nx
        rate = EFFECTIVE_BW.get(profile.name, EFFECTIVE_BW["NVIDIA Tesla K40m"])
        return effective_time(voxels * 8.0, rate)

    def run(self, views: Dict[str, ChunkView], t0: int, t1: int) -> None:
        """7-point Jacobi sweep over the translated chunk views."""
        a0 = views["A0"]
        anext = views["Anext"]
        src = a0.take(t0 - 1, t1 + 1)
        dst = anext.take(t0, t1)
        c = src[1:-1, 1:-1, 1:-1]
        dst[:, 1:-1, 1:-1] = (
            src[2:, 1:-1, 1:-1]
            + src[:-2, 1:-1, 1:-1]
            + src[1:-1, 2:, 1:-1]
            + src[1:-1, :-2, 1:-1]
            + src[1:-1, 1:-1, 2:]
            + src[1:-1, 1:-1, :-2]
        ) * C1 - c * C0
