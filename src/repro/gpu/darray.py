"""Device array handles.

A :class:`DeviceArray` pairs a simulated device allocation with backing
storage (a real ``np.ndarray`` or a metadata-only
:class:`~repro.sim.varray.VirtualArray`).  Slicing a device array
returns a *view* sharing the parent's allocation — the analogue of
doing pointer arithmetic on a ``cudaMalloc`` base pointer, which is how
the paper's runtime addresses ring-buffer slots
(``deviceptr() + offset``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.gpu.errors import InvalidValueError
from repro.sim.memory import AllocationRecord
from repro.sim.varray import VirtualArray, is_virtual

__all__ = ["DeviceArray"]

Backing = Union[np.ndarray, VirtualArray]


class DeviceArray:
    """A handle to (a view of) device memory.

    Attributes
    ----------
    backing:
        The storage (real or virtual).  Functional payloads read/write
        it; the simulator charges virtual time independently.
    allocation:
        The owning :class:`AllocationRecord`, or ``None`` for views.
    base:
        The root :class:`DeviceArray` that owns the allocation.
    """

    __slots__ = ("backing", "allocation", "base", "_freed")

    def __init__(
        self,
        backing: Backing,
        allocation: Optional[AllocationRecord],
        base: Optional["DeviceArray"] = None,
    ) -> None:
        self.backing = backing
        self.allocation = allocation
        self.base = base if base is not None else self
        self._freed = False

    # -- metadata ------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape."""
        return self.backing.shape

    @property
    def dtype(self):
        """Element dtype."""
        return self.backing.dtype

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.backing.ndim

    @property
    def nbytes(self) -> int:
        """Logical bytes covered by this view."""
        return int(self.backing.nbytes) if not is_virtual(self.backing) else self.backing.nbytes

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def is_virtual(self) -> bool:
        """True if the backing is metadata-only."""
        return is_virtual(self.backing)

    @property
    def is_view(self) -> bool:
        """True if this handle does not own its allocation."""
        return self.base is not self

    # -- views ---------------------------------------------------------
    def __getitem__(self, key) -> "DeviceArray":
        """Pointer-arithmetic view into the same allocation."""
        self._check_alive()
        return DeviceArray(self.backing[key], None, base=self.base)

    def reshape(self, *shape) -> "DeviceArray":
        """Reshaped view of the same allocation."""
        self._check_alive()
        return DeviceArray(self.backing.reshape(*shape), None, base=self.base)

    # -- lifetime ------------------------------------------------------
    def _check_alive(self) -> None:
        if self.base._freed:
            raise InvalidValueError("use of freed device memory")

    def mark_freed(self) -> None:
        """Invalidate the handle (called by ``Runtime.free``)."""
        if self.is_view:
            raise InvalidValueError("cannot free a view; free the base allocation")
        if self._freed:
            raise InvalidValueError("double free of device array")
        self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "virtual" if self.is_virtual else "real"
        kind = "view" if self.is_view else "alloc"
        return f"DeviceArray({kind}, {mode}, shape={self.shape}, dtype={self.dtype})"
