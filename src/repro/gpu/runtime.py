"""The host runtime: the CUDA-flavoured API the prototype targets.

A :class:`Runtime` owns one simulated :class:`~repro.sim.device.Device`
and a **host clock**.  Every API call advances the host clock by a
profile-dependent overhead; asynchronously enqueued commands cannot
start on the device before the host call that issued them returned.
This reproduces the API-call/scheduling overheads that dominate the
paper's AMD results and its stream-count sensitivity study.

Mapping to the paper's implementation section:

=====================================  ==================================
paper (CUDA / OpenCL)                   here
=====================================  ==================================
``cudaMalloc`` / ``clCreateBuffer``     :meth:`Runtime.malloc`
``cudaHostAlloc`` (pinned)              :meth:`Runtime.hostalloc`
``cudaMemcpyAsync``                     :meth:`Runtime.memcpy_h2d_async`,
                                        :meth:`Runtime.memcpy_d2h_async`
``cudaMallocPitch``+``Memcpy2DAsync``   the same calls with ``rows=``
``acc_get_cuda_stream`` interop         streams are first-class here
events (``cudaEventRecord``/wait)       :meth:`Runtime.record_event` /
                                        ``waits=`` arguments
=====================================  ==================================
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.darray import DeviceArray
from repro.gpu.errors import InvalidValueError
from repro.sim.device import Device
from repro.sim.engine import Command, EventToken
from repro.sim.profiles import DeviceProfile
from repro.sim.stream import SimStream
from repro.sim.trace import Timeline
from repro.sim.varray import VirtualArray, is_virtual, nbytes_of

__all__ = ["Runtime"]

HostArray = Union[np.ndarray, VirtualArray]


class _PinRegistry:
    """Identity-based registry of page-locked host arrays.

    ``np.ndarray`` is unhashable, so a ``WeakSet`` cannot hold one; we
    key weak references by ``id`` and drop entries when the referent is
    collected, avoiding stale id-reuse hits.
    """

    def __init__(self) -> None:
        self._refs: dict = {}

    def add(self, arr) -> None:
        """Register an array as pinned."""
        key = id(arr)
        try:
            self._refs[key] = weakref.ref(arr, lambda _w, k=key: self._refs.pop(k, None))
        except TypeError:  # pragma: no cover - non-weakrefable object
            self._refs[key] = lambda: arr

    def __contains__(self, arr) -> bool:
        ref = self._refs.get(id(arr))
        return ref is not None and ref() is arr


def _copy_payload(dst, src) -> Optional[Callable[[], None]]:
    """Build a functional copy payload, or ``None`` in virtual mode."""
    if is_virtual(dst) or is_virtual(src):
        return None

    def run() -> None:
        dst[...] = src

    return run


class Runtime:
    """Host-side GPU runtime bound to one simulated device.

    Parameters
    ----------
    device:
        A :class:`DeviceProfile` (a fresh device is created) or an
        existing :class:`Device`.
    virtual:
        If True, :meth:`malloc` and :meth:`hostalloc` create
        metadata-only backings: timing and memory accounting are exact,
        functional payloads are skipped.

    Attributes
    ----------
    host_now:
        Host wall clock (virtual seconds).
    call_overhead_scale:
        Multiplier on per-call overheads.  Higher layers (the vendor
        OpenACC model, the pipeline runtime) set this to express their
        per-stream bookkeeping costs.
    default_pinned:
        Whether unregistered host buffers are treated as page-locked.
        True by default (the paper pins host memory in all measured
        versions); the pinned-vs-pageable ablation flips it.
    command_overhead:
        Device-side seconds added to the duration of every transfer and
        kernel submitted while set.  The execution models use it to
        express their runtime's per-command stream-scheduling cost
        (``acc_stream_contention`` / ``runtime_stream_contention``).
    """

    def __init__(self, device: Union[Device, DeviceProfile], *, virtual: bool = False) -> None:
        self.device = device if isinstance(device, Device) else Device(device)
        self.virtual = bool(virtual)
        self.host_now = 0.0
        self.call_overhead_scale = 1.0
        self.command_overhead = 0.0
        self.default_pinned = True
        self._pinned = _PinRegistry()
        self._streams: list = []

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    @property
    def profile(self) -> DeviceProfile:
        """The device profile in use."""
        return self.device.profile

    @property
    def device_time(self) -> float:
        """Device virtual clock (latest simulated event time)."""
        return self.device.now

    @property
    def elapsed(self) -> float:
        """End-to-end elapsed virtual time seen by the application."""
        return max(self.host_now, self.device.now)

    def _charge_async(self) -> float:
        """Charge one async API call; returns its completion time."""
        dt = self.profile.api_overhead * self.call_overhead_scale
        self.host_now += dt
        return self.host_now

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------
    def create_stream(self, name: str = "") -> SimStream:
        """Create an in-order stream (``cudaStreamCreate``)."""
        self.host_now += self.profile.stream_create_overhead
        s = SimStream(name)
        self._streams.append(s)
        return s

    def event(self, name: str = "event") -> EventToken:
        """Create an unrecorded event token (``cudaEventCreate``)."""
        return EventToken(name)

    def record_event(self, stream: SimStream, name: str = "event") -> EventToken:
        """Record an event at the current tail of ``stream``.

        Implemented as a zero-duration marker command, exactly like
        ``cudaEventRecord``: the token completes when all work
        previously enqueued on the stream has finished.
        """
        tok = EventToken(name)
        t = self._charge_async()
        self.device.submit_marker(
            stream=stream, enqueue_time=t, records=[tok], label=f"record:{name}"
        )
        return tok

    def stream_wait_event(self, stream: SimStream, token: EventToken, label: str = "") -> None:
        """Make subsequent work on ``stream`` wait for ``token``
        (``cudaStreamWaitEvent``)."""
        t = self._charge_async()
        self.device.submit_marker(
            stream=stream, enqueue_time=t, waits=[token], label=label or f"wait:{token.name}"
        )

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, shape: Sequence[int], dtype, tag: str = "") -> DeviceArray:
        """Allocate device memory (``cudaMalloc``).

        Raises :class:`~repro.gpu.errors.OutOfMemoryError` when the
        request does not fit.
        """
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        rec = self.device.alloc(nbytes, tag)
        if self.virtual:
            backing: HostArray = VirtualArray(shape, dt)
        else:
            backing = np.zeros(shape, dtype=dt)
        self.host_now += self.profile.api_overhead
        return DeviceArray(backing, rec)

    def free(self, arr: DeviceArray) -> None:
        """Release device memory (``cudaFree``)."""
        if arr.allocation is None:
            raise InvalidValueError("cannot free a device-array view")
        arr.mark_freed()
        self.device.free(arr.allocation)
        self.host_now += self.profile.api_overhead

    def hostalloc(self, shape: Sequence[int], dtype) -> HostArray:
        """Allocate pinned host memory (``cudaHostAlloc``)."""
        shape = tuple(int(s) for s in shape)
        if self.virtual:
            arr: HostArray = VirtualArray(shape, np.dtype(dtype))
        else:
            arr = np.zeros(shape, dtype=dtype)
        self._pinned.add(arr)
        self.host_now += self.profile.api_overhead
        return arr

    def pin(self, arr: HostArray) -> HostArray:
        """Register an existing host array as page-locked
        (``cudaHostRegister``)."""
        self._pinned.add(arr)
        return arr

    def is_pinned(self, arr: HostArray) -> bool:
        """Whether a host array is treated as page-locked."""
        return arr in self._pinned or self.default_pinned

    @property
    def memory_used(self) -> int:
        """Current device memory usage in bytes (incl. context)."""
        return self.device.memory.used

    @property
    def memory_peak(self) -> int:
        """Peak device memory usage in bytes (incl. context)."""
        return self.device.memory.peak

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    @staticmethod
    def _check_copy(dst_shape: Tuple[int, ...], src_shape: Tuple[int, ...]) -> None:
        if tuple(dst_shape) != tuple(src_shape):
            raise InvalidValueError(
                f"copy shape mismatch: dst {tuple(dst_shape)} vs src {tuple(src_shape)}"
            )

    def memcpy_h2d_async(
        self,
        dst: DeviceArray,
        src: HostArray,
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        rows: Optional[int] = None,
        row_bytes: Optional[int] = None,
        pinned: Optional[bool] = None,
        label: str = "",
    ) -> Command:
        """Asynchronous host-to-device copy (``cudaMemcpyAsync``).

        Passing ``rows``/``row_bytes`` makes this a pitched 2-D copy
        (``cudaMemcpy2DAsync``); otherwise the transfer is contiguous.
        """
        dst._check_alive()
        self._check_copy(dst.shape, src.shape)
        t = self._charge_async()
        return self.device.submit_copy(
            "h2d",
            nbytes_of(src),
            stream=stream,
            payload=_copy_payload(dst.backing, src),
            enqueue_time=t,
            waits=waits,
            records=records,
            pinned=self.is_pinned(src) if pinned is None else pinned,
            rows=rows,
            row_bytes=row_bytes,
            extra_seconds=self.command_overhead,
            label=label or "h2d",
        )

    def memcpy_d2h_async(
        self,
        dst: HostArray,
        src: DeviceArray,
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        rows: Optional[int] = None,
        row_bytes: Optional[int] = None,
        pinned: Optional[bool] = None,
        label: str = "",
    ) -> Command:
        """Asynchronous device-to-host copy (``cudaMemcpyAsync``)."""
        src._check_alive()
        self._check_copy(dst.shape, src.shape)
        t = self._charge_async()
        return self.device.submit_copy(
            "d2h",
            nbytes_of(src.backing),
            stream=stream,
            payload=_copy_payload(dst, src.backing),
            enqueue_time=t,
            waits=waits,
            records=records,
            pinned=self.is_pinned(dst) if pinned is None else pinned,
            rows=rows,
            row_bytes=row_bytes,
            extra_seconds=self.command_overhead,
            label=label or "d2h",
        )

    def memcpy_h2d(self, dst: DeviceArray, src: HostArray, **kw) -> None:
        """Blocking host-to-device copy (``cudaMemcpy``)."""
        s = kw.pop("stream", None) or SimStream("sync-h2d")
        cmd = self.memcpy_h2d_async(dst, src, s, **kw)
        self._block_on(cmd)

    def memcpy_d2h(self, dst: HostArray, src: DeviceArray, **kw) -> None:
        """Blocking device-to-host copy (``cudaMemcpy``)."""
        s = kw.pop("stream", None) or SimStream("sync-d2h")
        cmd = self.memcpy_d2h_async(dst, src, s, **kw)
        self._block_on(cmd)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        cost_seconds: float,
        fn: Optional[Callable[[], None]],
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        nbytes: int = 0,
        label: str = "kernel",
    ) -> Command:
        """Launch a kernel asynchronously.

        Parameters
        ----------
        cost_seconds:
            Modelled execution time (see :mod:`repro.kernels.cost`);
            the profile's launch overhead is added on top.
        fn:
            Functional payload run when the kernel retires (``None`` in
            virtual mode).
        """
        t = self._charge_async()
        return self.device.submit_kernel(
            cost_seconds,
            stream=stream,
            payload=fn if not self.virtual else None,
            enqueue_time=t,
            waits=waits,
            records=records,
            nbytes=nbytes,
            extra_seconds=self.command_overhead,
            label=label,
        )

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _block_on(self, cmd: Command) -> None:
        finish = self.device.wait(cmd)
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead

    def stream_synchronize(self, stream: SimStream) -> None:
        """Block until all work enqueued on ``stream`` completed."""
        tail = self.device.sim.stream_tail(stream)
        if tail is not None and not tail.done:
            self._block_on(tail)
        else:
            self.host_now += self.profile.sync_overhead

    def event_synchronize(self, token: EventToken) -> None:
        """Block until ``token`` completes (``cudaEventSynchronize``)."""
        finish = self.device.sim.wait_event(token)
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead

    def synchronize(self) -> None:
        """Block until the device is idle (``cudaDeviceSynchronize``)."""
        finish = self.device.wait_all()
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def timeline(self) -> Timeline:
        """Timeline of all retired commands."""
        return self.device.timeline()
