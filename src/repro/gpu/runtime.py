"""The host runtime: the CUDA-flavoured API the prototype targets.

A :class:`Runtime` owns one simulated :class:`~repro.sim.device.Device`
and a **host clock**.  Every API call advances the host clock by a
profile-dependent overhead; asynchronously enqueued commands cannot
start on the device before the host call that issued them returned.
This reproduces the API-call/scheduling overheads that dominate the
paper's AMD results and its stream-count sensitivity study.

Mapping to the paper's implementation section:

=====================================  ==================================
paper (CUDA / OpenCL)                   here
=====================================  ==================================
``cudaMalloc`` / ``clCreateBuffer``     :meth:`Runtime.malloc`
``cudaHostAlloc`` (pinned)              :meth:`Runtime.hostalloc`
``cudaMemcpyAsync``                     :meth:`Runtime.memcpy_h2d_async`,
                                        :meth:`Runtime.memcpy_d2h_async`
``cudaMallocPitch``+``Memcpy2DAsync``   the same calls with ``rows=``
``acc_get_cuda_stream`` interop         streams are first-class here
events (``cudaEventRecord``/wait)       :meth:`Runtime.record_event` /
                                        ``waits=`` arguments
=====================================  ==================================
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.darray import DeviceArray
from repro.gpu.errors import (
    DeviceLostError,
    InvalidValueError,
    KernelFaultError,
    TransferError,
)
from repro.obs import OBS_NULL, Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer
from repro.sim.device import Device
from repro.sim.engine import Command, EventToken
from repro.sim.profiles import DeviceProfile
from repro.sim.stream import SimStream
from repro.sim.trace import Timeline
from repro.sim.varray import VirtualArray, is_virtual, nbytes_of

__all__ = ["Runtime"]

HostArray = Union[np.ndarray, VirtualArray]


def _retired_span(cmd: Command) -> Span:
    """Build the engine-track span for one retired command.

    Installed as the tracer's command inflater: the retirement hot path
    records the command itself (:meth:`~repro.obs.tracer.Tracer.defer_command`)
    and this function materializes the exact span an eager observer
    would have emitted, the first time the trace is read.
    """
    stream = cmd.stream
    attrs = {
        "stream": stream.name if isinstance(stream, SimStream) else "",
        "nbytes": cmd.nbytes,
        "queue_depth": cmd.queue_depth,
    }
    err = cmd.error
    if err is not None:
        attrs["fault"] = err.kind
    elif cmd.poisoned:
        attrs["fault"] = "poisoned"
    return Span(
        cmd.label or cmd.kind,
        cmd.kind,
        f"engine:{cmd.engine}",
        start=cmd.start_time,
        end=cmd.finish_time,
        attrs=attrs,
    )


def _replay_retired(m, cmd: Command) -> None:
    """Apply one retired command's metrics to registry ``m``.

    Installed as the metrics registry's command replayer; the deferred
    backlog replays in retirement order, so instrument state matches
    eager per-retirement updates exactly.
    """
    kind = cmd.kind
    if kind in ("h2d", "d2h"):
        m.counter(f"bytes.{kind}").inc(cmd.nbytes)
        m.histogram(f"transfer.seconds.{kind}").observe(cmd.duration)
    elif kind == "kernel":
        m.counter("commands.kernel").inc()
        m.histogram("kernel.seconds").observe(cmd.duration)
    m.gauge(f"queue.depth.{cmd.engine}").set(cmd.queue_depth)


class _PinRegistry:
    """Identity-based registry of page-locked host arrays.

    ``np.ndarray`` is unhashable, so a ``WeakSet`` cannot hold one; we
    key weak references by ``id`` and drop entries when the referent is
    collected, avoiding stale id-reuse hits.
    """

    def __init__(self) -> None:
        self._refs: dict = {}

    def add(self, arr) -> None:
        """Register an array as pinned."""
        key = id(arr)
        try:
            self._refs[key] = weakref.ref(arr, lambda _w, k=key: self._refs.pop(k, None))
        except TypeError:  # pragma: no cover - non-weakrefable object
            self._refs[key] = lambda: arr

    def __contains__(self, arr) -> bool:
        ref = self._refs.get(id(arr))
        return ref is not None and ref() is arr


def _copy_payload(dst, src) -> Optional[Callable[[], None]]:
    """Build a functional copy payload, or ``None`` in virtual mode."""
    if is_virtual(dst) or is_virtual(src):
        return None

    def run() -> None:
        dst[...] = src

    return run


class Runtime:
    """Host-side GPU runtime bound to one simulated device.

    Parameters
    ----------
    device:
        A :class:`DeviceProfile` (a fresh device is created) or an
        existing :class:`Device`.
    virtual:
        If True, :meth:`malloc` and :meth:`hostalloc` create
        metadata-only backings: timing and memory accounting are exact,
        functional payloads are skipped.
    obs:
        An :class:`repro.obs.Observability` to record into.  Defaults
        to the shared disabled pair (zero overhead).  When enabled,
        every API call becomes a host span, every retired device
        command an engine-track span (with queue depth at dispatch),
        and transfer/kernel/allocation metrics accumulate in
        ``obs.metrics``.  Observation never advances virtual time, so
        measured results are identical with it on or off.

    The runtime is a context manager: ``with Runtime(profile) as rt:``
    calls :meth:`close` on exit, deterministically draining the device
    and releasing every live allocation.

    Attributes
    ----------
    host_now:
        Host wall clock (virtual seconds).
    call_overhead_scale:
        Multiplier on per-call overheads.  Higher layers (the vendor
        OpenACC model, the pipeline runtime) set this to express their
        per-stream bookkeeping costs.
    default_pinned:
        Whether unregistered host buffers are treated as page-locked.
        True by default (the paper pins host memory in all measured
        versions); the pinned-vs-pageable ablation flips it.
    command_overhead:
        Device-side seconds added to the duration of every transfer and
        kernel submitted while set.  The execution models use it to
        express their runtime's per-command stream-scheduling cost
        (``acc_stream_contention`` / ``runtime_stream_contention``).
    """

    def __init__(
        self,
        device: Union[Device, DeviceProfile],
        *,
        virtual: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.device = device if isinstance(device, Device) else Device(device)
        self.virtual = bool(virtual)
        self.host_now = 0.0
        self.call_overhead_scale = 1.0
        self.command_overhead = 0.0
        self.default_pinned = True
        self._pinned = _PinRegistry()
        self._streams: list = []
        self._closed = False
        #: cursor into ``device.sim.faulted`` — commands before it have
        #: already been reported/claimed
        self._fault_cursor = 0
        #: when True, sync points do not raise on pending faults; the
        #: recovery layer claims them via :meth:`pop_faults` instead
        self.defer_faults = False
        self.obs = obs if obs is not None else OBS_NULL
        self.tracer = self.obs.tracer
        self.metrics = self.obs.metrics
        self._obs_on = self.obs.enabled
        if self.tracer.enabled:
            self.tracer.set_clock(lambda: self.host_now)
            self.tracer.set_command_inflater(_retired_span)
        if self.metrics.enabled:
            self.metrics.set_command_replay(_replay_retired)
        if self._obs_on:
            self.device.sim.observer = self._make_observer()

    # ------------------------------------------------------------------
    # observability hooks
    # ------------------------------------------------------------------
    def _trace_api(self, name: str, t0: float, op: Optional[str] = None, **attrs) -> None:
        """Emit one host span covering an API call ``[t0, host_now]``.

        ``op`` is the API-call family for the per-op call counter;
        defaults to ``name`` up to the first ``:``.
        """
        op = op or name.split(":", 1)[0]
        self.tracer.defer(name, "api", "host", t0, self.host_now,
                          dict(op=op, **attrs))
        m = self.metrics
        if m.enabled:
            m.counter("api.calls").inc()
            m.counter(f"api.calls.{op}").inc()

    def _command_retired(self, cmd: Command) -> None:
        """Simulator observer: one engine-track span per retired command.

        Hot path — called once per retired command.  Both the span
        (:func:`_retired_span`) and the metrics
        (:func:`_replay_retired`) are deferred: the command itself is
        the record, inflated lazily when the trace or an instrument is
        read.
        """
        if cmd.kind == "marker":
            return
        self.tracer.defer_command(cmd)
        self.metrics.defer_command(cmd)

    def _make_observer(self) -> Callable[[Command], None]:
        """The retirement observer installed on the simulator.

        When both halves of the observability pair are the standard
        lazy kinds, retirement reduces to two list appends; the
        returned closure binds those appends directly, skipping the
        dispatch through :meth:`_command_retired` on the hottest
        callback in the stack.  Any other configuration (eager tracer,
        partial pair) falls back to the general method.
        """
        tracer, metrics = self.tracer, self.metrics
        if (
            type(tracer) is not Tracer or tracer._eager
            or type(metrics) is not MetricsRegistry
        ):
            return self._command_retired
        # bound appends stay valid because Tracer.clear()/materialize
        # and MetricsRegistry._drain mutate their lists in place
        span_append = tracer._spans.append
        metric_append = metrics._deferred.append

        def observer(cmd: Command) -> None:
            if cmd.kind != "marker":
                tracer._dirty = True
                span_append(cmd)
                metric_append(cmd)

        return observer

    # ------------------------------------------------------------------
    # fault injection and async error reporting
    # ------------------------------------------------------------------
    def install_faults(self, faults):
        """Install a fault plan or injector on the underlying device.

        Accepts a :class:`~repro.faults.FaultPlan` (an injector is
        built for it) or a ready :class:`~repro.faults.FaultInjector`;
        returns the installed injector.  Faulted commands surface as
        :class:`~repro.gpu.errors.TransferError` /
        :class:`~repro.gpu.errors.KernelFaultError` /
        :class:`~repro.gpu.errors.DeviceLostError` at sync points,
        mirroring CUDA's asynchronous error reporting.
        """
        from repro.faults import FaultInjector, FaultPlan

        inj = FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
        self.device.install_fault_injector(inj)
        return inj

    @property
    def fault_injector(self):
        """The installed :class:`~repro.faults.FaultInjector` (or None)."""
        return self.device.injector

    def pending_faults(self) -> list:
        """Faulted commands not yet claimed, without claiming them."""
        return list(self.device.sim.faulted[self._fault_cursor:])

    def pop_faults(self) -> list:
        """Claim and return all unreported faulted commands.

        Injected faults are counted into ``metrics`` (when enabled) as
        ``faults.injected`` / ``faults.injected.<kind>``; propagated
        poison as ``faults.poisoned``.
        """
        sim = self.device.sim
        new = sim.faulted[self._fault_cursor:]
        self._fault_cursor = len(sim.faulted)
        if new and self.metrics.enabled:
            m = self.metrics
            for cmd in new:
                if cmd.error is not None:
                    m.counter("faults.injected").inc()
                    m.counter(f"faults.injected.{cmd.error.kind}").inc()
                else:
                    m.counter("faults.poisoned").inc()
        return list(new)

    def _raise_pending_faults(self) -> None:
        """Surface unclaimed faults as typed exceptions (sync points).

        No-op while :attr:`defer_faults` is set — the recovery layer
        then owns the backlog via :meth:`pop_faults`.
        """
        if self.defer_faults:
            return
        if self.device.lost:
            pending = len(self.pending_faults())
            self.pop_faults()
            raise DeviceLostError("device lost during execution", pending=pending)
        faults = self.pop_faults()
        if not faults:
            return
        first = next((c for c in faults if c.error is not None), faults[0])
        kind = first.error.kind if first.error is not None else "poisoned"
        msg = (
            f"async fault detected at synchronization: {kind} on "
            f"{first.label or first.kind!r} ({len(faults)} faulted command(s))"
        )
        if kind in ("h2d", "d2h"):
            raise TransferError(msg, fault=first.error, pending=len(faults))
        raise KernelFaultError(msg, fault=first.error, pending=len(faults))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InvalidValueError("runtime is closed")

    def _check_device(self) -> None:
        """Reject new device work once the device is lost."""
        self._check_open()
        if self.device.lost:
            raise DeviceLostError("device lost; no further work accepted")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Drain the device and release every live allocation.

        Deterministic teardown: pending commands complete (advancing
        virtual time exactly as :meth:`synchronize` would), then all
        device memory returns to the allocator.  Idempotent; any API
        call after close raises
        :class:`~repro.gpu.errors.InvalidValueError`.
        """
        if self._closed:
            return
        # teardown must not throw: claim (rather than raise) any fault
        # backlog while draining
        old_defer, self.defer_faults = self.defer_faults, True
        try:
            self.synchronize()
        finally:
            self.defer_faults = old_defer
        self.pop_faults()
        for rec in list(self.device.memory.live_allocations):
            self.device.memory.release(rec)
        self._closed = True

    def __enter__(self) -> "Runtime":
        self._check_open()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------
    @property
    def profile(self) -> DeviceProfile:
        """The device profile in use."""
        return self.device.profile

    @property
    def device_time(self) -> float:
        """Device virtual clock (latest simulated event time)."""
        return self.device.now

    @property
    def elapsed(self) -> float:
        """End-to-end elapsed virtual time seen by the application."""
        return max(self.host_now, self.device.now)

    def _charge_async(self) -> float:
        """Charge one async API call; returns its completion time."""
        self._check_device()
        dt = self.profile.api_overhead * self.call_overhead_scale
        self.host_now += dt
        return self.host_now

    # ------------------------------------------------------------------
    # streams and events
    # ------------------------------------------------------------------
    def create_stream(self, name: str = "") -> SimStream:
        """Create an in-order stream (``cudaStreamCreate``)."""
        self._check_device()
        t0 = self.host_now
        self.host_now += self.profile.stream_create_overhead
        s = SimStream(name)
        self._streams.append(s)
        if self._obs_on:
            self._trace_api("stream_create", t0, stream=s.name)
        return s

    def event(self, name: str = "event") -> EventToken:
        """Create an unrecorded event token (``cudaEventCreate``)."""
        return EventToken.acquire(name)

    def record_event(self, stream: SimStream, name: str = "event") -> EventToken:
        """Record an event at the current tail of ``stream``.

        Implemented as a zero-duration marker command, exactly like
        ``cudaEventRecord``: the token completes when all work
        previously enqueued on the stream has finished.
        """
        tok = EventToken(name)
        t0 = self.host_now
        t = self._charge_async()
        self.device.submit_marker(
            stream=stream, enqueue_time=t, records=[tok], label=f"record:{name}"
        )
        if self._obs_on:
            self._trace_api("event_record", t0, stream=stream.name, event=name)
        return tok

    def stream_wait_event(self, stream: SimStream, token: EventToken, label: str = "") -> None:
        """Make subsequent work on ``stream`` wait for ``token``
        (``cudaStreamWaitEvent``)."""
        t0 = self.host_now
        t = self._charge_async()
        self.device.submit_marker(
            stream=stream, enqueue_time=t, waits=[token], label=label or f"wait:{token.name}"
        )
        if self._obs_on:
            self._trace_api("stream_wait_event", t0, stream=stream.name,
                            event=token.name)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, shape: Sequence[int], dtype, tag: str = "") -> DeviceArray:
        """Allocate device memory (``cudaMalloc``).

        Raises :class:`~repro.gpu.errors.OutOfMemoryError` when the
        request does not fit.
        """
        self._check_device()
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        t0 = self.host_now
        rec = self.device.alloc(nbytes, tag)
        if self.virtual:
            backing: HostArray = VirtualArray(shape, dt)
        else:
            backing = np.zeros(shape, dtype=dt)
        self.host_now += self.profile.api_overhead
        if self._obs_on:
            self._trace_api(f"malloc:{tag}" if tag else "malloc", t0,
                            nbytes=nbytes, tag=tag)
            m = self.metrics
            if m.enabled:
                m.counter("alloc.count").inc()
                m.counter("alloc.bytes").inc(nbytes)
                mem = self.device.memory
                m.gauge("mem.used").set(mem.used)
        return DeviceArray(backing, rec)

    def free(self, arr: DeviceArray) -> None:
        """Release device memory (``cudaFree``)."""
        self._check_open()
        if arr.allocation is None:
            raise InvalidValueError("cannot free a device-array view")
        t0 = self.host_now
        arr.mark_freed()
        self.device.free(arr.allocation)
        self.host_now += self.profile.api_overhead
        if self._obs_on:
            self._trace_api("free", t0, nbytes=arr.allocation.nbytes,
                            tag=arr.allocation.tag)
            if self.metrics.enabled:
                self.metrics.gauge("mem.used").set(self.device.memory.used)

    def hostalloc(self, shape: Sequence[int], dtype) -> HostArray:
        """Allocate pinned host memory (``cudaHostAlloc``)."""
        self._check_open()
        shape = tuple(int(s) for s in shape)
        t0 = self.host_now
        if self.virtual:
            arr: HostArray = VirtualArray(shape, np.dtype(dtype))
        else:
            arr = np.zeros(shape, dtype=dtype)
        self._pinned.add(arr)
        self.host_now += self.profile.api_overhead
        if self._obs_on:
            self._trace_api("hostalloc", t0, nbytes=nbytes_of(arr))
        return arr

    def pin(self, arr: HostArray) -> HostArray:
        """Register an existing host array as page-locked
        (``cudaHostRegister``)."""
        self._pinned.add(arr)
        return arr

    def is_pinned(self, arr: HostArray) -> bool:
        """Whether a host array is treated as page-locked."""
        return arr in self._pinned or self.default_pinned

    @property
    def memory_used(self) -> int:
        """Current device memory usage in bytes (incl. context)."""
        return self.device.memory.used

    @property
    def memory_peak(self) -> int:
        """Peak device memory usage in bytes (incl. context)."""
        return self.device.memory.peak

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    @staticmethod
    def _check_copy(dst_shape: Tuple[int, ...], src_shape: Tuple[int, ...]) -> None:
        if tuple(dst_shape) != tuple(src_shape):
            raise InvalidValueError(
                f"copy shape mismatch: dst {tuple(dst_shape)} vs src {tuple(src_shape)}"
            )

    def memcpy_h2d_async(
        self,
        dst: DeviceArray,
        src: HostArray,
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        poison_waits: Optional[Iterable[EventToken]] = None,
        rows: Optional[int] = None,
        row_bytes: Optional[int] = None,
        pinned: Optional[bool] = None,
        label: str = "",
    ) -> Command:
        """Asynchronous host-to-device copy (``cudaMemcpyAsync``).

        Passing ``rows``/``row_bytes`` makes this a pitched 2-D copy
        (``cudaMemcpy2DAsync``); otherwise the transfer is contiguous.
        ``poison_waits`` narrows which ``waits`` are data dependencies
        for fault-poison propagation (see
        :meth:`repro.sim.engine.Simulator.enqueue`).
        """
        dst._check_alive()
        self._check_copy(dst.shape, src.shape)
        t0 = self.host_now
        t = self._charge_async()
        if self._obs_on:
            self._trace_api(label or "h2d", t0, op="memcpy_h2d_async",
                            nbytes=nbytes_of(src), stream=stream.name)
        cmd = self.device.submit_copy(
            "h2d",
            nbytes_of(src),
            stream=stream,
            payload=_copy_payload(dst.backing, src),
            enqueue_time=t,
            waits=waits,
            records=records,
            poison_waits=poison_waits,
            pinned=self.is_pinned(src) if pinned is None else pinned,
            rows=rows,
            row_bytes=row_bytes,
            extra_seconds=self.command_overhead,
            label=label or "h2d",
        )
        # silent-fault surface: a bit flip on an H2D lands in the
        # device copy of the data
        cmd.sink = dst.backing
        return cmd

    def memcpy_d2h_async(
        self,
        dst: HostArray,
        src: DeviceArray,
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        poison_waits: Optional[Iterable[EventToken]] = None,
        rows: Optional[int] = None,
        row_bytes: Optional[int] = None,
        pinned: Optional[bool] = None,
        label: str = "",
    ) -> Command:
        """Asynchronous device-to-host copy (``cudaMemcpyAsync``)."""
        src._check_alive()
        self._check_copy(dst.shape, src.shape)
        t0 = self.host_now
        t = self._charge_async()
        if self._obs_on:
            self._trace_api(label or "d2h", t0, op="memcpy_d2h_async",
                            nbytes=nbytes_of(src.backing), stream=stream.name)
        cmd = self.device.submit_copy(
            "d2h",
            nbytes_of(src.backing),
            stream=stream,
            payload=_copy_payload(dst, src.backing),
            enqueue_time=t,
            waits=waits,
            records=records,
            poison_waits=poison_waits,
            pinned=self.is_pinned(dst) if pinned is None else pinned,
            rows=rows,
            row_bytes=row_bytes,
            extra_seconds=self.command_overhead,
            label=label or "d2h",
        )
        # silent-fault surface: a bit flip on a D2H lands in the host
        # destination
        cmd.sink = dst
        return cmd

    def memcpy_h2d(self, dst: DeviceArray, src: HostArray, **kw) -> Command:
        """Blocking host-to-device copy (``cudaMemcpy``)."""
        s = kw.pop("stream", None) or SimStream("sync-h2d")
        cmd = self.memcpy_h2d_async(dst, src, s, **kw)
        self._block_on(cmd)
        return cmd

    def memcpy_d2h(self, dst: HostArray, src: DeviceArray, **kw) -> Command:
        """Blocking device-to-host copy (``cudaMemcpy``)."""
        s = kw.pop("stream", None) or SimStream("sync-d2h")
        cmd = self.memcpy_d2h_async(dst, src, s, **kw)
        self._block_on(cmd)
        return cmd

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        cost_seconds: float,
        fn: Optional[Callable[[], None]],
        stream: SimStream,
        *,
        waits: Iterable[EventToken] = (),
        records: Iterable[EventToken] = (),
        poison_waits: Optional[Iterable[EventToken]] = None,
        nbytes: int = 0,
        label: str = "kernel",
    ) -> Command:
        """Launch a kernel asynchronously.

        Parameters
        ----------
        cost_seconds:
            Modelled execution time (see :mod:`repro.kernels.cost`);
            the profile's launch overhead is added on top.
        fn:
            Functional payload run when the kernel retires (``None`` in
            virtual mode).
        """
        t0 = self.host_now
        t = self._charge_async()
        if self._obs_on:
            self._trace_api(label or "kernel", t0, op="launch",
                            stream=stream.name, cost_seconds=cost_seconds)
        return self.device.submit_kernel(
            cost_seconds,
            stream=stream,
            payload=fn if not self.virtual else None,
            enqueue_time=t,
            waits=waits,
            records=records,
            poison_waits=poison_waits,
            nbytes=nbytes,
            extra_seconds=self.command_overhead,
            label=label,
        )

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _block_on(self, cmd: Command) -> None:
        t0 = self.host_now
        finish = self.device.wait(cmd)
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead
        if self._obs_on:
            self._trace_api("sync:command", t0, label=cmd.label)
        self._raise_pending_faults()

    def stream_synchronize(self, stream: SimStream) -> None:
        """Block until all work enqueued on ``stream`` completed."""
        self._check_open()
        tail = self.device.sim.stream_tail(stream)
        if tail is not None and not tail.done:
            self._block_on(tail)
        else:
            self.host_now += self.profile.sync_overhead
            self._raise_pending_faults()

    def event_synchronize(self, token: EventToken) -> None:
        """Block until ``token`` completes (``cudaEventSynchronize``)."""
        self._check_open()
        finish = self.device.sim.wait_event(token)
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead
        self._raise_pending_faults()

    def synchronize(self) -> None:
        """Block until the device is idle (``cudaDeviceSynchronize``).

        Any command that faulted since the last sync point is reported
        here as a typed :class:`~repro.gpu.errors.GpuError` subclass
        (asynchronous error reporting, as in CUDA).
        """
        self._check_open()
        t0 = self.host_now
        finish = self.device.wait_all()
        self.host_now = max(self.host_now, finish) + self.profile.sync_overhead
        if self._obs_on:
            self._trace_api("sync:device", t0)
        self._raise_pending_faults()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def timeline(self) -> Timeline:
        """Timeline of all retired commands."""
        return self.device.timeline()
