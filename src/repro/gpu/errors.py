"""Error types for the GPU host runtime."""

from __future__ import annotations

from repro.errors import ReproError
from repro.sim.memory import OutOfDeviceMemory

__all__ = ["GpuError", "InvalidValueError", "OutOfMemoryError"]


class GpuError(ReproError, RuntimeError):
    """Base class for host-runtime usage errors (``cudaError_t``-ish)."""


class InvalidValueError(GpuError):
    """A bad argument was passed to a runtime call (``cudaErrorInvalidValue``)."""


#: Device allocation failure.  Alias of the simulator's exception so
#: that ``except OutOfMemoryError`` works at every layer.
OutOfMemoryError = OutOfDeviceMemory
