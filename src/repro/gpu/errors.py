"""Error types for the GPU host runtime."""

from __future__ import annotations

from repro.errors import ReproError
from repro.sim.memory import OutOfDeviceMemory

__all__ = [
    "DeviceLostError",
    "GpuError",
    "InvalidValueError",
    "KernelFaultError",
    "OutOfMemoryError",
    "TransferError",
]


class GpuError(ReproError, RuntimeError):
    """Base class for host-runtime usage errors (``cudaError_t``-ish)."""


class InvalidValueError(GpuError):
    """A bad argument was passed to a runtime call (``cudaErrorInvalidValue``)."""


class _AsyncFaultError(GpuError):
    """Base for faults detected asynchronously and raised at sync points.

    Mirrors CUDA's deferred error reporting: the failing command was
    enqueued long before the ``cudaStreamSynchronize`` that reports it.

    Attributes
    ----------
    fault:
        The :class:`~repro.faults.plan.InjectedFault` descriptor of the
        first failing command, or ``None`` when raised without one.
    pending:
        Total faulted commands outstanding when the error was raised.
    """

    def __init__(self, message: str, fault=None, pending: int = 1) -> None:
        super().__init__(message)
        self.fault = fault
        self.pending = int(pending)


class TransferError(_AsyncFaultError):
    """An async H2D/D2H copy faulted (``cudaErrorECCUncorrectable``-ish)."""


class KernelFaultError(_AsyncFaultError):
    """A kernel faulted during execution (``cudaErrorLaunchFailure``-ish)."""


class DeviceLostError(_AsyncFaultError):
    """The device disappeared mid-run (``cudaErrorDeviceUnavailable``).

    Unlike transfer/kernel faults this is never retryable on the same
    runtime: every subsequent submission raises it too.
    """


#: Device allocation failure.  Alias of the simulator's exception so
#: that ``except OutOfMemoryError`` works at every layer.
OutOfMemoryError = OutOfDeviceMemory
