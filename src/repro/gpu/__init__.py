"""CUDA-like host runtime facade over the simulated GPU.

This is the call surface the paper's prototype programs against —
``cudaMalloc`` / ``cudaHostAlloc`` / ``cudaMemcpyAsync`` /
``cudaMemcpy2DAsync`` / streams / events / kernel launches — expressed
as a small Python API:

>>> from repro.gpu import Runtime
>>> from repro.sim import NVIDIA_K40M
>>> rt = Runtime(NVIDIA_K40M)
>>> d_a = rt.malloc((1024,), "float32", tag="A")
>>> s = rt.create_stream()

Host time is charged per API call (asynchronous enqueues are cheap,
synchronizations block), so issuing thousands of tiny copies has the
cost the paper measures on the AMD platform.
"""

from repro.gpu.errors import GpuError, InvalidValueError, OutOfMemoryError
from repro.gpu.darray import DeviceArray
from repro.gpu.runtime import Runtime

__all__ = [
    "DeviceArray",
    "GpuError",
    "InvalidValueError",
    "OutOfMemoryError",
    "Runtime",
]
