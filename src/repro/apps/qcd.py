"""Lattice QCD application driver (small/medium/large datasets).

The paper evaluates its prototype on a SciDAC Lattice QCD code with
``O(C n^4)`` problem sizes at ``n = 12`` (small), ``24`` (medium), and
``36`` (large), splitting one lattice dimension to cut the memory
footprint to ``O(C n^3)`` — a 79%+ saving for the large case — while
pipelining delivers ~1.5-1.6x over the Naive offload (Figures 3 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.apps.common import VersionSet, new_runtime
from repro.core.executor import RegionResult
from repro.core.region import TargetRegion
from repro.directives.clauses import Loop
from repro.kernels.qcd import DslashKernel, init_lattice, reference_dslash
from repro.sim.varray import VirtualArray

__all__ = ["QcdConfig", "DATASETS", "make_arrays", "make_region", "run_model", "run_all", "reference"]

#: The paper's dataset naming: problem size ``O(C n^4)``.
DATASETS = {"small": 12, "medium": 24, "large": 36}


@dataclass
class QcdConfig:
    """Lattice + pipeline parameters (``n^4`` lattice)."""

    n: int = 12
    chunk_size: int = 1
    num_streams: int = 3
    schedule: str = "static"
    halo_mode: str = "dedup"
    mem_limit: str = ""

    @classmethod
    def dataset(cls, name: str, **kw) -> "QcdConfig":
        """Build from a paper dataset name (small/medium/large)."""
        return cls(n=DATASETS[name], **kw)

    @property
    def dataset_name(self) -> str:
        """The paper's dataset label for this lattice size."""
        for name, n in DATASETS.items():
            if n == self.n:
                return f"qcd-{name}"
        return f"qcd-n{self.n}"


def make_arrays(cfg: QcdConfig, *, virtual: bool = False) -> Dict[str, np.ndarray]:
    """Host lattice fields; virtual mode carries shapes only."""
    n = cfg.n
    if virtual:
        return {
            "G": VirtualArray((n, 4, n, n, n, 3, 3), np.complex128),
            "psi": VirtualArray((n, n, n, n, 4, 3), np.complex128),
            "eta": VirtualArray((n, n, n, n, 4, 3), np.complex128),
        }
    g, psi, eta = init_lattice(n, n, n, n)
    return {"G": g, "psi": psi, "eta": eta}


def make_region(cfg: QcdConfig) -> TargetRegion:
    """Pipeline region over interior time slices.

    ``psi`` needs slices ``t-1..t+1`` (halo 1 both sides); the gauge
    field needs links at ``t-1`` and ``t`` (the backward temporal
    hop); ``eta`` stores only its own slice.
    """
    n = cfg.n
    mem = f"pipeline_mem_limit({cfg.mem_limit})" if cfg.mem_limit else ""
    pragma = f"""
        #pragma omp target \\
            pipeline({cfg.schedule}[{cfg.chunk_size},{cfg.num_streams}]) \\
            pipeline_map(to: G[k-1:2][0:4][0:{n}][0:{n}][0:{n}][0:3][0:3]) \\
            pipeline_map(to: psi[k-1:3][0:{n}][0:{n}][0:{n}][0:4][0:3]) \\
            pipeline_map(from: eta[k:1][0:{n}][0:{n}][0:{n}][0:4][0:3]) \\
            {mem}
    """
    return TargetRegion.parse(
        pragma, loop=Loop("k", 1, n - 1), halo_mode=cfg.halo_mode
    )


def reference(cfg: QcdConfig) -> np.ndarray:
    """Oracle: Dslash applied to all interior slices."""
    g, psi, eta = init_lattice(cfg.n, cfg.n, cfg.n, cfg.n)
    reference_dslash(g, psi, eta)
    return eta


def run_checked(
    model: str, cfg: QcdConfig, device="k40m", *, virtual: bool = False, obs=None
):
    """Run one model; returns ``(result, eta_or_None)``."""
    rt = new_runtime(device, virtual=virtual, obs=obs)
    arrays = make_arrays(cfg, virtual=virtual)
    region = make_region(cfg)
    kernel = DslashKernel(cfg.n, cfg.n, cfg.n)
    res = region.run(rt, arrays, kernel, model=model)
    return res, (None if virtual else arrays["eta"])


def run_model(
    model: str, cfg: QcdConfig, device="k40m", *, virtual: bool = False, obs=None
) -> RegionResult:
    """Run one model; returns the measured result."""
    return run_checked(model, cfg, device, virtual=virtual, obs=obs)[0]


def run_all(cfg: QcdConfig, device="k40m", *, virtual: bool = False) -> VersionSet:
    """All three models on fresh devices."""
    return VersionSet(
        app="qcd",
        dataset=cfg.dataset_name,
        device=str(device),
        naive=run_model("naive", cfg, device, virtual=virtual),
        pipelined=run_model("pipelined", cfg, device, virtual=virtual),
        buffer=run_model("pipelined-buffer", cfg, device, virtual=virtual),
    )
