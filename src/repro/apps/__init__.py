"""The paper's four evaluation applications, each in all three models.

Every module exposes a ``Config`` dataclass, ``run_model(model, cfg,
...)`` returning a :class:`~repro.core.executor.RegionResult`, and
``run_all`` returning a :class:`~repro.apps.common.VersionSet` with the
Naive / Pipelined / Pipelined-buffer trio the figures compare.

* :mod:`repro.apps.stencil` — Parboil stencil (iterated Jacobi sweeps)
* :mod:`repro.apps.conv3d` — Polybench 3-D convolution
* :mod:`repro.apps.matmul` — Polybench matrix multiplication
  (baseline / block-shared / pipeline-buffer)
* :mod:`repro.apps.qcd` — Lattice QCD (small/medium/large datasets)
"""

from repro.apps.common import VersionSet, new_runtime

__all__ = ["VersionSet", "new_runtime"]
