"""Polybench matrix-multiplication application driver.

Versions (paper Section V-E):

* ``baseline`` — naive offload + naive kernel,
* ``block_shared`` — naive offload + tiled kernel (~3x faster kernel),
* ``pipeline-buffer`` — the proposed runtime: the reduction dimension
  is partitioned into blocks; each chunk streams a **column band of A**
  (non-contiguous, pitched 2-D copies) and a row band of ``B`` through
  ring buffers while ``C`` stays resident and accumulates.

Because the full-footprint versions need ``3 n^2 * 8`` bytes, the two
largest paper sizes (20480, 24576) raise device OOM for them but run
under the ring-buffered version — reproduced by
:func:`run_model` returning ``None`` on OOM (Figures 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.apps.common import new_runtime
from repro.core.executor import RegionResult
from repro.core.memlimit import MemLimitError
from repro.core.region import TargetRegion
from repro.directives.clauses import Loop
from repro.gpu.errors import OutOfMemoryError
from repro.kernels.matmul import (
    MatmulChunkKernel,
    MatmulWholeKernel,
    init_matrices,
)
from repro.sim.varray import VirtualArray

__all__ = ["MatmulConfig", "MATMUL_MODELS", "make_arrays", "make_region", "run_model", "run_sweep"]

MATMUL_MODELS = ("baseline", "block_shared", "pipeline-buffer")


@dataclass
class MatmulConfig:
    """Problem + pipeline parameters.

    ``block`` is the reduction-block width (columns of A / rows of B
    per loop iteration).
    """

    n: int = 4096
    block: int = 512
    chunk_size: int = 1
    num_streams: int = 2
    schedule: str = "static"
    halo_mode: str = "dedup"
    mem_limit: str = ""

    def __post_init__(self) -> None:
        self.block = min(self.block, self.n)

    @property
    def nblocks(self) -> int:
        """Number of reduction blocks (ceil division)."""
        return -(-self.n // self.block)

    @property
    def dataset(self) -> str:
        """Human-readable dataset label."""
        return str(self.n)


def make_arrays(cfg: MatmulConfig, *, virtual: bool = False) -> Dict[str, np.ndarray]:
    """Host matrices; virtual mode carries shapes only."""
    if virtual:
        shape = (cfg.n, cfg.n)
        return {
            "A": VirtualArray(shape, np.float64),
            "B": VirtualArray(shape, np.float64),
            "C": VirtualArray(shape, np.float64),
        }
    a, b, c = init_matrices(cfg.n)
    return {"A": a, "B": b, "C": c}


def make_region(cfg: MatmulConfig) -> TargetRegion:
    """Pipeline region over reduction blocks ``kb``.

    ``A``'s split is its *second* dimension — the clause's bracket
    position selects it — producing non-contiguous transfers.
    """
    mem = f"pipeline_mem_limit({cfg.mem_limit})" if cfg.mem_limit else ""
    pragma = f"""
        #pragma omp target \\
            pipeline({cfg.schedule}[{cfg.chunk_size},{cfg.num_streams}]) \\
            pipeline_map(to: A[0:{cfg.n}][kb*{cfg.block}:{cfg.block}]) \\
            pipeline_map(to: B[kb*{cfg.block}:{cfg.block}][0:{cfg.n}]) \\
            map(tofrom: C) \\
            {mem}
    """
    return TargetRegion.parse(
        pragma, loop=Loop("kb", 0, cfg.nblocks), halo_mode=cfg.halo_mode
    )


def run_checked(
    model: str, cfg: MatmulConfig, device="k40m", *, virtual: bool = False, obs=None
):
    """Run one version; returns ``(result_or_None_on_OOM, C_or_None)``."""
    rt = new_runtime(device, virtual=virtual, obs=obs)
    arrays = make_arrays(cfg, virtual=virtual)
    region = make_region(cfg)
    try:
        if model == "pipeline-buffer":
            kernel = MatmulChunkKernel(cfg.n, cfg.block)
            res = region.run(rt, arrays, kernel)
        elif model in ("baseline", "block_shared"):
            kernel = MatmulWholeKernel(cfg.n, variant=model, trips=cfg.nblocks)
            res = region.run(rt, arrays, kernel, model="naive")
        else:
            raise ValueError(f"unknown matmul model {model!r}")
    except (OutOfMemoryError, MemLimitError):
        # allocation failed outright, or the memory-limit tuner proved
        # no pipeline setting can fit (e.g. the resident C alone
        # exceeds the card) — either way the version cannot run
        return None, None
    return res, (None if virtual else arrays["C"])


def run_model(
    model: str, cfg: MatmulConfig, device="k40m", *, virtual: bool = False, obs=None
) -> Optional[RegionResult]:
    """Run one version; ``None`` signals device OOM (as in Figure 9,
    where the two largest sizes have no baseline/block-shared bars)."""
    return run_checked(model, cfg, device, virtual=virtual, obs=obs)[0]


def run_sweep(
    sizes, device="k40m", *, virtual: bool = True, **cfg_kwargs
) -> Dict[int, Dict[str, Optional[RegionResult]]]:
    """The Figure 9/10 sweep: every version at every size."""
    out: Dict[int, Dict[str, Optional[RegionResult]]] = {}
    for n in sizes:
        cfg = MatmulConfig(n=n, **cfg_kwargs)
        out[n] = {
            m: run_model(m, cfg, device, virtual=virtual) for m in MATMUL_MODELS
        }
    return out
