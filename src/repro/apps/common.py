"""Shared scaffolding for the evaluation applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.executor import RegionResult
from repro.core.placement import resolve_profile_spec
from repro.gpu.runtime import Runtime
from repro.obs import Observability
from repro.sim.device import Device
from repro.sim.profiles import DeviceProfile

__all__ = ["MODELS", "VersionSet", "new_runtime", "resolve_profile"]

#: The paper's three execution models, in figure order.
MODELS = ("naive", "pipelined", "pipelined-buffer")


def resolve_profile(device) -> DeviceProfile:
    """Accept a profile object, a :class:`Runtime`/``Device``, or a short
    name (``"k40m"``/``"hd7970"``)."""
    return resolve_profile_spec(device, field="device")


def new_runtime(
    device="k40m", *, virtual: bool = False, obs: Optional[Observability] = None
) -> Runtime:
    """A fresh runtime on a fresh simulated device.

    Each measured version runs on its own device so timelines, clocks,
    and memory peaks never bleed between versions — the equivalent of
    the paper running each configuration as a separate process.  Pass
    ``obs`` to attach an :class:`~repro.obs.Observability` (tracer +
    metrics) to the runtime.
    """
    return Runtime(Device(resolve_profile(device)), virtual=virtual, obs=obs)


@dataclass
class VersionSet:
    """Results of one benchmark under the paper's three models."""

    app: str
    dataset: str
    device: str
    naive: RegionResult
    pipelined: RegionResult
    buffer: RegionResult

    @property
    def results(self) -> Dict[str, RegionResult]:
        """Model-name -> result mapping."""
        return {
            "naive": self.naive,
            "pipelined": self.pipelined,
            "pipelined-buffer": self.buffer,
        }

    def speedup(self, model: str) -> float:
        """Speedup of ``model`` over Naive (Figure 5's quantity)."""
        return self.naive.elapsed / self.results[model].elapsed

    def memory_saving(self) -> float:
        """Fractional peak-memory saving of Pipelined-buffer vs Naive
        (Figure 6's quantity)."""
        return 1.0 - self.buffer.memory_peak / self.naive.memory_peak

    def summary_row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.app:<10} {self.dataset:<10} "
            f"naive={self.naive.elapsed:9.4f}s  "
            f"pipelined={self.pipelined.elapsed:9.4f}s ({self.speedup('pipelined'):4.2f}x)  "
            f"buffer={self.buffer.elapsed:9.4f}s ({self.speedup('pipelined-buffer'):4.2f}x)  "
            f"mem {self.naive.memory_peak / 1e6:8.1f}->"
            f"{self.buffer.memory_peak / 1e6:8.1f} MB "
            f"(-{100 * self.memory_saving():.0f}%)"
        )
