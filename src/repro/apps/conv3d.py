"""Polybench 3-D convolution application driver.

Single-pass convolution of a large volume — the paper's default test
case occupies ~3.5 GB of device memory in the Naive and Pipelined
versions and ~93 MB under the proposed runtime (a 97% reduction,
Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.apps.common import VersionSet, new_runtime
from repro.core.executor import RegionResult
from repro.core.region import TargetRegion
from repro.directives.clauses import Loop
from repro.kernels.conv3d import Conv3dKernel, init_volume, reference_conv3d
from repro.sim.varray import VirtualArray

__all__ = ["Conv3dConfig", "make_arrays", "make_region", "run_model", "run_all", "reference"]


@dataclass
class Conv3dConfig:
    """Problem + pipeline parameters.

    The default ``768^3`` float32 volume gives the paper's ~3.5 GB
    full footprint (two arrays of 1.81 GB).
    """

    nz: int = 768
    ny: int = 768
    nx: int = 768
    chunk_size: int = 1
    num_streams: int = 3
    schedule: str = "static"
    halo_mode: str = "dedup"
    mem_limit: str = ""

    @property
    def dataset(self) -> str:
        """Human-readable dataset label."""
        return f"{self.nz}x{self.ny}x{self.nx}"


def make_arrays(cfg: Conv3dConfig, *, virtual: bool = False) -> Dict[str, np.ndarray]:
    """Host arrays; virtual mode carries shapes only."""
    shape = (cfg.nz, cfg.ny, cfg.nx)
    if virtual:
        return {"A": VirtualArray(shape, np.float32), "B": VirtualArray(shape, np.float32)}
    return {"A": init_volume(*shape), "B": np.zeros(shape, dtype=np.float32)}


def make_region(cfg: Conv3dConfig) -> TargetRegion:
    """Pipeline region over the outermost (z) dimension, halo 1."""
    mem = f"pipeline_mem_limit({cfg.mem_limit})" if cfg.mem_limit else ""
    pragma = f"""
        #pragma omp target \\
            pipeline({cfg.schedule}[{cfg.chunk_size},{cfg.num_streams}]) \\
            pipeline_map(to: A[k-1:3][0:{cfg.ny}][0:{cfg.nx}]) \\
            pipeline_map(from: B[k:1][0:{cfg.ny}][0:{cfg.nx}]) \\
            {mem}
    """
    return TargetRegion.parse(
        pragma, loop=Loop("k", 1, cfg.nz - 1), halo_mode=cfg.halo_mode
    )


def reference(cfg: Conv3dConfig) -> np.ndarray:
    """Oracle output volume."""
    a = init_volume(cfg.nz, cfg.ny, cfg.nx)
    b = np.zeros_like(a)
    reference_conv3d(a, b)
    return b


def run_checked(
    model: str, cfg: Conv3dConfig, device="k40m", *, virtual: bool = False, obs=None
):
    """Run one model; returns ``(result, output_volume_or_None)``."""
    rt = new_runtime(device, virtual=virtual, obs=obs)
    arrays = make_arrays(cfg, virtual=virtual)
    region = make_region(cfg)
    kernel = Conv3dKernel(cfg.ny, cfg.nx)
    res = region.run(rt, arrays, kernel, model=model)
    return res, (None if virtual else arrays["B"])


def run_model(
    model: str, cfg: Conv3dConfig, device="k40m", *, virtual: bool = False, obs=None
) -> RegionResult:
    """Run one model; returns the measured result."""
    return run_checked(model, cfg, device, virtual=virtual, obs=obs)[0]


def run_all(cfg: Conv3dConfig, device="k40m", *, virtual: bool = False) -> VersionSet:
    """All three models on fresh devices."""
    return VersionSet(
        app="3dconv",
        dataset=cfg.dataset,
        device=str(device),
        naive=run_model("naive", cfg, device, virtual=virtual),
        pipelined=run_model("pipelined", cfg, device, virtual=virtual),
        buffer=run_model("pipelined-buffer", cfg, device, virtual=virtual),
    )
