"""Parboil stencil application driver (iterated Jacobi sweeps).

The Parboil benchmark runs many Jacobi sweeps over a 3-D grid, swapping
``A0``/``Anext`` between sweeps.  Each sweep is one pipelined region —
its data streams through the device every iteration, which is what
makes the benchmark transfer-bound and pipelining profitable.

The paper's Figure 2 pragma is reproduced verbatim (with concrete
extents) by :func:`make_region`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.apps.common import VersionSet, new_runtime
from repro.core.executor import RegionResult
from repro.core.region import TargetRegion
from repro.directives.clauses import Loop
from repro.kernels.stencil3d import StencilKernel, init_grid, reference_sweep
from repro.sim.varray import VirtualArray

__all__ = ["StencilConfig", "make_arrays", "make_region", "run_model", "run_all", "reference"]


@dataclass
class StencilConfig:
    """Stencil problem + pipeline parameters.

    The default grid is Parboil's ``512 x 512 x 64`` configuration; the
    paper's results use fewer iterations than Parboil's 100 only to keep
    simulation wall-time low — per-sweep behaviour is identical and all
    reported quantities scale linearly in ``iters``.
    """

    nz: int = 64
    ny: int = 512
    nx: int = 512
    iters: int = 10
    chunk_size: int = 1
    num_streams: int = 2
    schedule: str = "static"
    halo_mode: str = "dedup"
    mem_limit: str = ""

    @property
    def dataset(self) -> str:
        """Human-readable dataset label."""
        return f"{self.nz}x{self.ny}x{self.nx}"


def make_arrays(cfg: StencilConfig, *, virtual: bool = False) -> Dict[str, np.ndarray]:
    """Host arrays; virtual mode carries shapes only."""
    if virtual:
        return {
            "A0": VirtualArray((cfg.nz, cfg.ny, cfg.nx), np.float32),
            "Anext": VirtualArray((cfg.nz, cfg.ny, cfg.nx), np.float32),
        }
    return {
        "A0": init_grid(cfg.nz, cfg.ny, cfg.nx),
        "Anext": np.zeros((cfg.nz, cfg.ny, cfg.nx), dtype=np.float32),
    }


def make_region(cfg: StencilConfig) -> TargetRegion:
    """The paper's Figure 2 pragma, bound to this configuration."""
    mem = f"pipeline_mem_limit({cfg.mem_limit})" if cfg.mem_limit else ""
    pragma = f"""
        #pragma omp target \\
            pipeline({cfg.schedule}[{cfg.chunk_size},{cfg.num_streams}]) \\
            pipeline_map(to: A0[k-1:3][0:{cfg.ny}][0:{cfg.nx}]) \\
            pipeline_map(from: Anext[k:1][0:{cfg.ny}][0:{cfg.nx}]) \\
            {mem}
    """
    return TargetRegion.parse(
        pragma, loop=Loop("k", 1, cfg.nz - 1), halo_mode=cfg.halo_mode
    )


def reference(cfg: StencilConfig) -> np.ndarray:
    """Oracle: ``iters`` sweeps in pure NumPy; returns the final A0."""
    a0 = init_grid(cfg.nz, cfg.ny, cfg.nx)
    anext = np.zeros_like(a0)
    for _ in range(cfg.iters):
        anext[:] = 0
        reference_sweep(a0, anext)
        a0, anext = anext, a0
    return a0


def run_model(
    model: str, cfg: StencilConfig, device="k40m", *, virtual: bool = False, obs=None
) -> RegionResult:
    """Run all sweeps under one model; returns the aggregate result.

    In real mode the returned result's ``arrays["A0"]`` counterpart (the
    caller's array dict) holds the final grid; use :func:`run_checked`
    for validation.
    """
    res, _ = run_checked(model, cfg, device, virtual=virtual, obs=obs)
    return res


def run_checked(
    model: str, cfg: StencilConfig, device="k40m", *, virtual: bool = False, obs=None
):
    """Run one model; returns ``(aggregate_result, final_grid)``."""
    rt = new_runtime(device, virtual=virtual, obs=obs)
    arrays = make_arrays(cfg, virtual=virtual)
    region = make_region(cfg)
    kernel = StencilKernel(cfg.ny, cfg.nx)
    results = []
    for _ in range(cfg.iters):
        if not virtual:
            arrays["Anext"].fill(0)
        results.append(region.run(rt, arrays, kernel, model=model))
        arrays["A0"], arrays["Anext"] = arrays["Anext"], arrays["A0"]
    agg = _aggregate(model, results, rt)
    return agg, (None if virtual else arrays["A0"])


def _aggregate(model: str, results, rt) -> RegionResult:
    """Fold per-sweep results into one (sums times, max memory)."""
    from repro.sim.trace import Timeline

    recs = [r for res in results for r in res.timeline.records]
    first = results[0]
    return RegionResult(
        model=model,
        elapsed=sum(r.elapsed for r in results),
        memory_peak=max(r.memory_peak for r in results),
        data_peak=max(r.data_peak for r in results),
        timeline=Timeline(recs),
        nchunks=sum(r.nchunks for r in results),
        chunk_size=first.chunk_size,
        num_streams=first.num_streams,
        t_begin=first.t_begin,
        commands=[c for res in results for c in res.commands],
        faults=sum(r.faults for r in results),
        retries=sum(r.retries for r in results),
    )


def run_all(cfg: StencilConfig, device="k40m", *, virtual: bool = False) -> VersionSet:
    """All three models on fresh devices."""
    return VersionSet(
        app="stencil",
        dataset=cfg.dataset,
        device=str(device),
        naive=run_model("naive", cfg, device, virtual=virtual),
        pipelined=run_model("pipelined", cfg, device, virtual=virtual),
        buffer=run_model("pipelined-buffer", cfg, device, virtual=virtual),
    )
