"""Exporters: Chrome trace-event JSON and plain-text profile reports.

Two consumers of recorded observability data:

* :func:`spans_to_chrome` / :func:`write_span_trace` — the Chrome
  ``trace_event`` format (complete ``"X"`` events), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  One thread row per
  span track: the host program-order track plus one row per device
  engine, so kernel/transfer overlap is directly visible — the view
  the paper gets from NVIDIA Visual Profiler.
* :func:`profile_report` — a terminal-friendly digest: span totals per
  category, per-engine busy/idle/utilization, the longest spans, and
  the full metrics snapshot.

:func:`overlap_from_events` recomputes the paper's transfer-overlap
fraction *from an exported trace*, so tests can prove the export
carries the same information as the in-memory timeline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.intervals import union_length
from repro.obs.io import atomic_write_json
from repro.obs.tracer import Span

__all__ = [
    "chrome_counter_events",
    "overlap_from_events",
    "profile_report",
    "spans_to_chrome",
    "write_span_trace",
]


def spans_to_chrome(spans: Sequence[Span], *, time_unit: float = 1e6) -> Dict:
    """Convert spans to Chrome trace-event JSON (dict form).

    Parameters
    ----------
    spans:
        Closed spans (open spans are skipped).
    time_unit:
        Multiplier from virtual seconds to trace microseconds (the
        format's native unit); the default maps 1 s -> 1e6 us.
    """
    closed = [s for s in spans if s.end is not None]
    tracks = sorted({s.track for s in closed}, key=lambda t: (t != "host", t))
    events: List[Dict] = []
    for tid, track in enumerate(tracks):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    tid_of = {t: i for i, t in enumerate(tracks)}
    slices: List[Dict] = []
    for s in closed:
        slices.append(
            {
                "name": s.name,
                "cat": s.category or "span",
                "ph": "X",
                "pid": 0,
                "tid": tid_of[s.track],
                "ts": s.start * time_unit,
                "dur": s.duration * time_unit,
                "args": dict(s.attrs),
            }
        )
    slices.sort(key=lambda e: (e["ts"], -e["dur"]))
    return {"traceEvents": events + slices, "displayTimeUnit": "ms"}


def write_span_trace(spans: Sequence[Span], path: str, *, time_unit: float = 1e6) -> None:
    """Write spans as a ``chrome://tracing`` JSON file (atomically)."""
    atomic_write_json(path, spans_to_chrome(spans, time_unit=time_unit))


def chrome_counter_events(
    frames: Sequence[Dict], *, time_unit: float = 1e6
) -> List[Dict]:
    """Telemetry frames as Chrome trace counter (``"C"``) events.

    One counter track per telemetry channel — utilization fractions,
    gauges, and per-window counter deltas from
    :meth:`repro.obs.TelemetrySampler.finish` frames — stamped at each
    window's start so they render alongside the ``"X"`` span events
    from :func:`spans_to_chrome` in ``chrome://tracing``/Perfetto.
    """
    events: List[Dict] = []
    for frame in frames:
        ts = frame["t0_s"] * time_unit
        for kind in ("util", "gauges", "counters"):
            for name in sorted(frame.get(kind, {})):
                events.append(
                    {
                        "name": f"telemetry:{name}",
                        "ph": "C",
                        "pid": 0,
                        "tid": 0,
                        "ts": ts,
                        "args": {"value": frame[kind][name]},
                    }
                )
        for tenant in sorted(frame.get("slo", {})):
            events.append(
                {
                    "name": f"slo:{tenant}",
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "ts": ts,
                    "args": {
                        "compliance": frame["slo"][tenant]["compliance"],
                        "budget": frame["slo"][tenant]["budget"],
                    },
                }
            )
    return events


def overlap_from_events(trace: Dict, *, time_unit: float = 1e6) -> float:
    """Transfer-overlap fraction recomputed from an exported trace.

    Considers the ``"X"`` events whose ``cat`` is ``h2d``/``d2h``
    (transfers) and ``kernel`` — i.e. the device-engine spans — and
    returns the fraction of transfer busy-time that lies under kernel
    execution, the same quantity as
    :attr:`repro.core.executor.RegionResult.overlap`.
    """
    kernels: List[Tuple[float, float]] = []
    transfers: List[Tuple[float, float]] = []
    for e in trace.get("traceEvents", ()):
        if e.get("ph") != "X":
            continue
        lo = e["ts"] / time_unit
        hi = lo + e["dur"] / time_unit
        if e.get("cat") == "kernel":
            kernels.append((lo, hi))
        elif e.get("cat") in ("h2d", "d2h"):
            transfers.append((lo, hi))
    if not transfers:
        return 0.0
    kernels.sort()
    hidden = total = 0.0
    for t_lo, t_hi in transfers:
        total += t_hi - t_lo
        pieces = [
            (max(k_lo, t_lo), min(k_hi, t_hi))
            for k_lo, k_hi in kernels
            if k_hi > t_lo and k_lo < t_hi
        ]
        hidden += union_length(pieces)
    return hidden / total if total else 0.0


# ----------------------------------------------------------------------
# text profile
# ----------------------------------------------------------------------
def _fmt_seconds(s: float) -> str:
    return f"{s * 1e3:10.3f} ms"


def _engine_rows(spans: Iterable[Span]) -> List[str]:
    device = [s for s in spans if s.track.startswith("engine:") and s.end is not None]
    if not device:
        return ["  (no device spans recorded)"]
    t0 = min(s.start for s in device)
    t1 = max(s.end for s in device)
    window = max(t1 - t0, 1e-15)
    rows = []
    for track in sorted({s.track for s in device}):
        busy = sum(s.duration for s in device if s.track == track)
        rows.append(
            f"  {track:<16} busy {_fmt_seconds(busy)}   "
            f"idle {_fmt_seconds(window - busy)}   util {busy / window:6.1%}"
        )
    return rows


def profile_report(obs, *, top: int = 8) -> str:
    """Render one run's observability data as a plain-text report.

    Parameters
    ----------
    obs:
        An :class:`repro.obs.Observability` (anything with ``tracer``
        and ``metrics`` attributes).
    top:
        How many longest spans to list.
    """
    spans = [s for s in obs.tracer.spans if s.end is not None]
    lines: List[str] = ["== span profile =="]
    if spans:
        by_cat: Dict[str, Tuple[int, float]] = {}
        for s in spans:
            n, t = by_cat.get(s.category or "span", (0, 0.0))
            by_cat[s.category or "span"] = (n + 1, t + s.duration)
        lines.append(f"  {'category':<14} {'spans':>6} {'total':>14}")
        for cat, (n, t) in sorted(by_cat.items(), key=lambda kv: -kv[1][1]):
            lines.append(f"  {cat:<14} {n:>6} {_fmt_seconds(t)}")
    else:
        lines.append("  (no spans recorded — was tracing enabled?)")

    lines.append("")
    lines.append("== engines ==")
    lines.extend(_engine_rows(spans))

    if spans:
        lines.append("")
        lines.append(f"== longest spans (top {top}) ==")
        for s in sorted(spans, key=lambda s: -s.duration)[:top]:
            lines.append(
                f"  {_fmt_seconds(s.duration)}  [{s.category or 'span':<8}] {s.name}"
            )

    snap = obs.metrics.snapshot()
    if snap:
        lines.append("")
        lines.append("== metrics ==")
        counters = snap.get("counters", {})
        if counters:
            lines.append("  counters:")
            for name, v in counters.items():
                lines.append(f"    {name:<28} {v:,.0f}" if float(v).is_integer()
                             else f"    {name:<28} {v:.6g}")
        gauges = snap.get("gauges", {})
        if gauges:
            lines.append("  gauges (value / high-water):")
            for name, g in gauges.items():
                lines.append(f"    {name:<28} {g['value']:.6g} / {g['high']:.6g}")
        hists = snap.get("histograms", {})
        if hists:
            lines.append("  histograms (count / total / mean / p95):")
            for name, h in hists.items():
                lines.append(
                    f"    {name:<28} {h['count']} / {h['total']:.6g} / "
                    f"{h['mean']:.6g} / {h['p95']:.6g}"
                )
    return "\n".join(lines)
