"""Interval arithmetic shared by the overlap/occupancy computations.

Both the in-memory timeline (:func:`repro.sim.trace.overlap_fraction`)
and the exported-trace recomputation
(:func:`repro.obs.export.overlap_from_events`) need the measure of a
union of half-open time intervals; this module is the single
implementation both build on.  It deliberately has no dependencies so
it can sit below :mod:`repro.sim` and :mod:`repro.obs` alike.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["union_length"]


def union_length(intervals: List[Tuple[float, float]]) -> float:
    """Total measure of the union of ``(lo, hi)`` intervals.

    Overlapping and touching intervals are merged; empty and inverted
    intervals (``hi <= lo``) measure nothing.  Empty input is ``0.0``.
    """
    intervals = sorted(iv for iv in intervals if iv[1] > iv[0])
    if not intervals:
        return 0.0
    total, (cur_lo, cur_hi) = 0.0, intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    return total + (cur_hi - cur_lo)
