"""Counters, gauges, and histograms for runtime-level metrics.

The registry is the quantitative half of :mod:`repro.obs`: where the
tracer answers *when*, metrics answer *how much* — bytes moved per
direction, engine utilization, slot-reuse stall time, allocator
high-water marks.  A :meth:`MetricsRegistry.snapshot` is a plain
JSON-safe dict, carried on
:attr:`repro.core.executor.RegionResult.metrics` for post-run
inspection.

Like the tracer, metrics are zero-cost when disabled: the
:data:`NULL_METRICS` registry hands out shared inert instruments.
"""

from __future__ import annotations

import math
from typing import Dict, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
]


class Counter:
    """A monotonically increasing total (bytes, calls, events)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value with a high-water mark.

    Plain ``set(v)`` keeps only the last value — which misreports
    bursty utilization when sampled (a queue that spikes to 40 and
    drains between samples reads as 0).  Passing the optional
    timestamp, ``set(v, t)``, additionally accumulates a
    **time-weighted average**: each value is weighted by how long it
    was held, so :attr:`twa` reports the true mean level.  Untimed
    calls keep the historical behaviour exactly and never enable the
    average.
    """

    __slots__ = ("name", "value", "high", "_t_first", "_t_last", "_area")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.high: float = -math.inf
        #: time-weighted accumulator state (None until a timed set)
        self._t_first: float = None
        self._t_last: float = None
        self._area: float = 0.0

    def set(self, v: float, t: float = None) -> None:
        """Record the current value (tracks the maximum seen).

        With a timestamp ``t`` (virtual seconds, non-decreasing across
        calls), also integrates the *previous* value over the elapsed
        interval for :attr:`twa`.
        """
        if t is not None:
            if self._t_first is None:
                self._t_first = t
            else:
                self._area += self.value * (t - self._t_last)
            self._t_last = t
        self.value = v
        if v > self.high:
            self.high = v

    @property
    def timed(self) -> bool:
        """Whether any timed ``set(v, t)`` call has been made."""
        return self._t_first is not None

    @property
    def twa(self) -> float:
        """Time-weighted average over the timed samples.

        Each value is weighted by the interval it was held (up to the
        last timed sample).  With fewer than two timed samples there
        is no interval yet, so the current value is returned.
        """
        if self._t_first is None or self._t_last == self._t_first:
            return float(self.value)
        return self._area / (self._t_last - self._t_first)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value}, high={self.high})"


class Histogram:
    """A distribution of observed values (durations, sizes).

    Observations are kept exactly — the workloads here retire at most
    tens of thousands of commands, so percentiles can be computed from
    the raw sample instead of fixed buckets.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, v: float) -> None:
        """Record one observation."""
        self.values.append(v)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100] (0.0 when empty).

        The rule, pinned so snapshots stay byte-stable: with ``n``
        sorted values the answer is element ``ceil(q/100 * n) - 1``
        (0-based) — **no interpolation**, the result is always an
        observed value; ``q=0`` is the minimum, ``q=100`` the maximum,
        a single sample answers every ``q``.  The product ``q/100 * n``
        is rounded to 9 decimals before ``ceil`` so float jitter
        (``0.7 * 10 == 7.000000000000001``) cannot shift the rank.
        """
        if not self.values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self.values)
        n = len(ordered)
        rank = min(n - 1, max(0, math.ceil(round(q / 100 * n, 9)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """JSON-safe digest of the distribution."""
        if not self.values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same instrument, so layers can
    contribute to shared metrics without coordination.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._hists: Dict[str, Histogram] = {}
        #: retired commands whose per-command metrics (bytes, transfer
        #: seconds, queue depths) have not been applied yet — the hot
        #: observer path appends here and the instruments catch up on
        #: first read (see :meth:`defer_command`)
        self._deferred: List[object] = []
        self._replay = None

    def set_command_replay(self, fn) -> None:
        """Install the ``(registry, cmd) -> None`` replayer that applies
        one retired command's metrics (see :meth:`defer_command`)."""
        self._replay = fn

    def defer_command(self, cmd: object) -> None:
        """Queue a retired command's metrics to be applied lazily.

        One list append on the retirement hot path; the installed
        replayer applies the bytes/seconds/queue-depth updates the
        first time any instrument or :meth:`snapshot` is read.  Because
        the backlog replays in retirement order before any read, every
        instrument shows exactly the state eager updates would have
        produced — including gauge high-water marks.
        """
        self._deferred.append(cmd)

    def _drain(self) -> None:
        replay = self._replay
        if replay is None:  # pragma: no cover - misconfiguration
            raise RuntimeError(
                "deferred command metrics recorded without a replayer "
                "(MetricsRegistry.set_command_replay)"
            )
        # copy-then-clear IN PLACE: replaying re-enters
        # counter()/histogram() below (the emptied list stops the
        # recursion), and observers hold a bound ``_deferred.append``,
        # so the list object must never be replaced
        backlog = self._deferred[:]
        self._deferred.clear()
        for cmd in backlog:
            replay(self, cmd)

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created empty on first use)."""
        if self._deferred:
            self._drain()
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        if self._deferred:
            self._drain()
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``."""
        if self._deferred:
            self._drain()
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dump of every instrument, sorted by name."""
        if self._deferred:
            self._drain()
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                # "twa" only when timed samples exist, so snapshots of
                # untimed gauges stay byte-identical to the seed form
                n: (
                    {"value": g.value, "high": g.high, "twa": g.twa}
                    if g.timed else {"value": g.value, "high": g.high}
                )
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {n: h.summary() for n, h in sorted(self._hists.items())},
        }

    def clear(self) -> None:
        """Drop every instrument (and any deferred backlog)."""
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()
        self._deferred.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v: float, t: float = None) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, v: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HIST = _NullHistogram("null")


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: hands out shared inert instruments."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HIST

    def defer_command(self, cmd: object) -> None:
        pass

    def set_command_replay(self, fn) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}


#: Process-wide disabled registry; the default for every runtime.
NULL_METRICS = NullMetricsRegistry()
