"""Deterministic critical-path and bottleneck-attribution analysis.

The paper's claims come down to *where time goes*: how much transfer
time hides under kernels, which engine saturates, where chunks stall on
ring-slot reuse.  This package answers that from a finished run's
retired commands, with no re-simulation:

* :func:`analyze_result` / :func:`analyze_commands` — full analysis of
  one region: critical path, per-chunk wait breakdown (sums exactly to
  wall time), engine occupancy, transfer overlap, what-if bounds.
* :mod:`~repro.obs.analyze.critpath` — the backward dependency walk.
* :mod:`~repro.obs.analyze.breakdown` — the wait taxonomy.
* :mod:`~repro.obs.analyze.whatif` — analytic bounds (perfect overlap,
  +1 DMA engine, deeper ring, chunk-size scaling).
* :mod:`~repro.obs.analyze.snapshot` — byte-stable JSON snapshots and
  the regression-gate diff behind ``repro analyze --baseline``.

Every emitted number is bit-deterministic for a given seed/config, so
analysis output itself is golden-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.analyze.breakdown import (
    WaitBreakdown,
    breakdown_from_path,
    categorize_segment,
)
from repro.obs.analyze.critpath import (
    CriticalPath,
    PathSegment,
    extract_critical_path,
)
from repro.obs.analyze.snapshot import (
    AnalysisDiff,
    diff_analyses,
    round_floats,
    write_analysis,
)
from repro.obs.analyze.whatif import engine_busy, what_if_bounds
from repro.obs.intervals import union_length
from repro.sim.engine import Command

__all__ = [
    "AnalysisDiff",
    "CriticalPath",
    "PathSegment",
    "RegionAnalysis",
    "WaitBreakdown",
    "analyze_commands",
    "analyze_result",
    "breakdown_from_path",
    "categorize_segment",
    "diff_analyses",
    "engine_busy",
    "extract_critical_path",
    "round_floats",
    "what_if_bounds",
    "write_analysis",
]


def _overlap(done: Sequence[Command]) -> float:
    """Fraction of transfer busy-time overlapped with kernel execution."""
    kernels = sorted(
        (c.start_time, c.finish_time) for c in done if c.kind == "kernel"
    )
    transfers = [c for c in done if c.kind in ("h2d", "d2h")]
    if not transfers:
        return 0.0
    hidden = total = 0.0
    for t in transfers:
        total += t.finish_time - t.start_time
        pieces = [
            (max(lo, t.start_time), min(hi, t.finish_time))
            for lo, hi in kernels
            if hi > t.start_time and lo < t.finish_time
        ]
        hidden += union_length(pieces)
    return hidden / total if total else 0.0


@dataclass
class RegionAnalysis:
    """Everything the analyzer derives from one region's execution."""

    model: str
    wall: float
    t0: float
    t_end: float
    path: CriticalPath
    breakdown: WaitBreakdown
    what_if: Dict[str, Dict[str, object]]
    engines: Dict[str, float]
    overlap: float
    nchunks: int = 0
    chunk_size: int = 0
    num_streams: int = 0
    ncommands: int = 0
    faults: int = 0
    retries: int = 0
    #: free-form labels merged into the snapshot (e.g. app/device name)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Device window: first command start to last finish."""
        return self.path.device_t1 - self.path.device_t0

    @property
    def causes(self) -> Dict[str, float]:
        """Seconds per wait-taxonomy category (sums to ``wall``)."""
        return self.breakdown.totals()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (floats rounded; byte-stable when dumped
        with ``sort_keys=True``)."""
        chunks: Dict[str, Dict[str, float]] = {}
        for chunk, row in self.breakdown.per_chunk.items():
            key = "region" if chunk is None else str(chunk)
            chunks[key] = {cat: row[cat] for cat in sorted(row)}
        path_rows: List[Dict[str, object]] = []
        for seg in self.path.segments:
            cmd = seg.cmd
            path_rows.append({
                "t0": seg.start,
                "t1": seg.end,
                "edge": seg.edge,
                "kind": cmd.kind if cmd is not None else "",
                "label": cmd.label if cmd is not None else "",
                "engine": cmd.engine if cmd is not None else "",
                "chunk": (
                    cmd.chunk if cmd is not None
                    else (seg.waiter.chunk if seg.waiter is not None else None)
                ),
            })
        d: Dict[str, object] = {
            "schema": 1,
            "model": self.model,
            "wall_s": self.wall,
            "makespan_s": self.makespan,
            "critical_path_length_s": self.path.length,
            "overlap": self.overlap,
            "nchunks": int(self.nchunks),
            "chunk_size": int(self.chunk_size),
            "num_streams": int(self.num_streams),
            "commands": int(self.ncommands),
            "faults": int(self.faults),
            "retries": int(self.retries),
            "engines_busy_s": {e: self.engines[e] for e in sorted(self.engines)},
            "causes": {c: v for c, v in sorted(self.causes.items())},
            "chunks": chunks,
            "critical_path": path_rows,
            "what_if": {
                name: {
                    "bound_s": wi["bound_s"],
                    "speedup": wi["speedup"],
                    "note": wi["note"],
                }
                for name, wi in sorted(self.what_if.items())
            },
        }
        for k, v in sorted(self.meta.items()):
            d[k] = v
        return round_floats(d)

    def report(self, *, top: int = 8) -> str:
        """Terminal-friendly rendering of the full analysis."""
        w = self.wall
        lines = [
            "== critical-path analysis ==",
            f"model            {self.model}",
            f"wall             {w * 1e3:.3f} ms "
            f"(makespan {self.makespan * 1e3:.3f} ms, "
            f"critical path {self.path.length * 1e3:.3f} ms)",
            f"chunks           {self.nchunks} (chunk_size={self.chunk_size}, "
            f"streams={self.num_streams})",
            f"transfer overlap {self.overlap:.1%}",
        ]
        for e in sorted(self.engines):
            b = self.engines[e]
            lines.append(
                f"engine {e:<10} busy {b * 1e3:9.3f} ms  ({b / w:6.1%} of wall)"
            )
        lines.append("")
        lines.append("== where the wall time went ==")
        causes = self.causes
        for cat in sorted(causes, key=lambda c: -causes[c]):
            lines.append(
                f"  {cat:<18} {causes[cat] * 1e3:>10.4f} ms  {causes[cat] / w:6.1%}"
            )
        lines.append(
            f"  {'total':<18} {sum(causes.values()) * 1e3:>10.4f} ms  (= wall)"
        )
        chunk_totals = self.breakdown.chunk_totals()
        ranked = sorted(
            chunk_totals.items(),
            key=lambda kv: (-kv[1], -1 if kv[0] is None else kv[0]),
        )[:top]
        lines.append("")
        lines.append(f"== top chunks on the critical path (top {len(ranked)}) ==")
        for chunk, total in ranked:
            row = self.breakdown.per_chunk[chunk]
            dominant = max(sorted(row), key=lambda c: row[c])
            name = "region" if chunk is None else f"chunk {chunk}"
            lines.append(
                f"  {name:<10} {total * 1e3:>10.4f} ms  "
                f"(mostly {dominant}: {row[dominant] * 1e3:.4f} ms)"
            )
        segs = sorted(self.path.segments, key=lambda s: -s.duration)[:top]
        lines.append("")
        lines.append(f"== longest critical-path segments (top {len(segs)}) ==")
        for seg in segs:
            what = seg.cmd.label or seg.cmd.kind if seg.cmd is not None else f"[{seg.edge}]"
            lines.append(
                f"  {seg.start * 1e3:>9.4f}..{seg.end * 1e3:<9.4f} "
                f"{seg.duration * 1e3:>9.4f} ms  {what}"
            )
        lines.append("")
        lines.append("== what-if bounds ==")
        for name in sorted(self.what_if):
            wi = self.what_if[name]
            lines.append(
                f"  {name:<20} {float(wi['bound_s']) * 1e3:>10.4f} ms  "
                f"(speedup {float(wi['speedup']):.2f}x) — {wi['note']}"
            )
        return "\n".join(lines)


def analyze_commands(
    commands: Sequence[Command],
    t0: float,
    t_end: float,
    *,
    model: str = "",
    nchunks: int = 0,
    chunk_size: int = 0,
    num_streams: int = 0,
    faults: int = 0,
    retries: int = 0,
    meta: Optional[Dict[str, object]] = None,
) -> RegionAnalysis:
    """Analyze an arbitrary command set over the window ``[t0, t_end]``."""
    done = [c for c in commands if c.finish_time is not None]
    path = extract_critical_path(done, t0, t_end)
    bd = breakdown_from_path(path)
    wall = t_end - t0
    return RegionAnalysis(
        model=model,
        wall=wall,
        t0=t0,
        t_end=t_end,
        path=path,
        breakdown=bd,
        what_if=what_if_bounds(done, wall, bd),
        engines=engine_busy(done),
        overlap=_overlap(done),
        nchunks=nchunks,
        chunk_size=chunk_size,
        num_streams=num_streams,
        ncommands=len(done),
        faults=faults,
        retries=retries,
        meta=dict(meta or {}),
    )


def analyze_result(result, *, meta: Optional[Dict[str, object]] = None) -> RegionAnalysis:
    """Analyze a :class:`~repro.core.executor.RegionResult`.

    The result must carry its retired commands (every result produced
    by ``region.run`` does); the analysis window is the result's own
    measurement window ``[t_begin, t_begin + elapsed]``.
    """
    if not result.commands:
        raise ValueError(
            "result carries no retired commands to analyze "
            "(was it produced by an older aggregation path?)"
        )
    return analyze_commands(
        result.commands,
        result.t_begin,
        result.t_begin + result.elapsed,
        model=result.model,
        nchunks=result.nchunks,
        chunk_size=result.chunk_size,
        num_streams=result.num_streams,
        faults=result.faults,
        retries=result.retries,
        meta=meta,
    )
