"""Per-chunk wait breakdown: wall time, attributed and exact.

Each :class:`~repro.obs.analyze.critpath.PathSegment` is assigned one
``(category, chunk)`` bucket.  Because the segments partition the
analysis window, the bucket totals sum to wall time exactly (up to
float summation error) — there is no unattributed remainder and no
double counting.

Category taxonomy:

- ``exec.h2d`` / ``exec.d2h`` / ``exec.kernel`` / ``exec.other`` —
  productive occupancy on the critical path (the work itself),
- ``queue.dma`` / ``queue.compute`` — time a chunk's command spent
  blocked behind *other* work occupying its engine (the blocker's
  execution is attributed to the waiting chunk: that time exists on
  the path only because of the contention),
- ``wait.slot_reuse`` — ring-buffer anti-dependency: a transfer or
  kernel gated on a previous lap's drain of the slot it reuses,
- ``wait.stream`` — in-order stream serialization across chunks,
- ``replay`` — fault-recovery replay commands,
- ``exec.verify`` — integrity verification (checksum / vote) on the
  dedicated verify stream when it lands on the critical path,
- ``api`` — host-side: API-call overhead, planning charges, backoff,
  lead-in/teardown.

The ``chunk`` key is the pipeline chunk index the time is charged to
(the *waiting* chunk for contention categories), or ``None`` for
region-level time (resident staging, host lead/tail, markers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.analyze.critpath import (
    EDGE_QUEUE_COMPUTE,
    EDGE_QUEUE_DMA,
    EDGE_SLOT,
    EDGE_STREAM,
    CriticalPath,
    PathSegment,
)

__all__ = ["WaitBreakdown", "breakdown_from_path", "categorize_segment"]

_EXEC_CAT = {"h2d": "exec.h2d", "d2h": "exec.d2h", "kernel": "exec.kernel"}
_CONTENTION = (EDGE_QUEUE_DMA, EDGE_QUEUE_COMPUTE, EDGE_SLOT)


def categorize_segment(seg: PathSegment) -> Tuple[str, Optional[int]]:
    """Map one path segment to its ``(category, chunk)`` bucket."""
    if seg.cmd is None:
        # pure wait or host gap: charged to whoever was waiting
        chunk = seg.waiter.chunk if seg.waiter is not None else None
        return seg.edge, chunk
    cmd = seg.cmd
    if cmd.label.startswith("replay:"):
        return "replay", cmd.chunk
    if cmd.label.startswith("verify:"):
        return "exec.verify", cmd.chunk
    if seg.edge in _CONTENTION and seg.waiter is not None:
        # the successor chunk was stuck behind this execution — charge
        # the slice to the waiter as contention, not to the executor
        return seg.edge, seg.waiter.chunk
    if (
        seg.edge == EDGE_STREAM
        and seg.waiter is not None
        and seg.waiter.chunk != cmd.chunk
    ):
        return EDGE_STREAM, seg.waiter.chunk
    return _EXEC_CAT.get(cmd.kind, "exec.other"), cmd.chunk


@dataclass
class WaitBreakdown:
    """Wall time bucketed by ``(chunk, category)``; sums to wall."""

    wall: float
    #: chunk index (or None for region-level) -> category -> seconds
    per_chunk: Dict[Optional[int], Dict[str, float]] = field(default_factory=dict)

    def add(self, chunk: Optional[int], category: str, seconds: float) -> None:
        """Accumulate one slice."""
        row = self.per_chunk.setdefault(chunk, {})
        row[category] = row.get(category, 0.0) + seconds

    def totals(self) -> Dict[str, float]:
        """Seconds per category across all chunks."""
        out: Dict[str, float] = {}
        for row in self.per_chunk.values():
            for cat, s in row.items():
                out[cat] = out.get(cat, 0.0) + s
        return out

    @property
    def total(self) -> float:
        """Sum over every bucket — equals ``wall`` by construction."""
        return sum(s for row in self.per_chunk.values() for s in row.values())

    def chunk_totals(self) -> Dict[Optional[int], float]:
        """Seconds charged to each chunk."""
        return {k: sum(row.values()) for k, row in self.per_chunk.items()}


def breakdown_from_path(path: CriticalPath) -> WaitBreakdown:
    """Bucket a critical path's segments into the wait taxonomy."""
    bd = WaitBreakdown(wall=path.wall)
    for seg in path.segments:
        cat, chunk = categorize_segment(seg)
        bd.add(chunk, cat, seg.duration)
    return bd
