"""Critical-path extraction over the retired command graph.

The simulator keeps, on every retired :class:`~repro.sim.engine.Command`,
enough dependency metadata to reconstruct *why* it started when it did:
``ready_time`` vs ``start_time`` separates engine queueing from
dependency waits, ``stream_pred`` is the implicit in-order stream edge,
``wait_toks`` are the explicit cross-stream event edges, and
``_poison_waits`` distinguishes true data dependencies from
ordering-only ring-slot-reuse guards.

:func:`extract_critical_path` walks backward from the last completion:
at each command it identifies the *binding* constraint (the edge that
resolved last) and follows it, emitting segments that **partition** the
analysis window ``[t0, t_end]`` exactly — every instant of wall time is
covered by exactly one segment, so any grouping of segments sums to
wall time by construction.  Everything is deterministic: ties break on
``(finish, start, seq)``.

Edge taxonomy (why a segment's successor had to wait):

- ``queue.dma`` / ``queue.compute`` — the engine was busy with earlier
  work (``ready_time < start_time``),
- ``wait.slot_reuse`` — an ordering-only ring-buffer anti-dependency,
- ``wait.stream`` — in-order stream serialization,
- ``wait.data`` — a true data dependency (e.g. kernel on its H2D),
- ``api`` — host-side: the command was enqueued late (API-call
  overhead, planning, backoff),
- ``end`` — the window's last command (no successor).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Command

__all__ = [
    "CriticalPath",
    "PathSegment",
    "EDGE_END",
    "EDGE_HOST",
    "EDGE_QUEUE_COMPUTE",
    "EDGE_QUEUE_DMA",
    "EDGE_SLOT",
    "EDGE_STREAM",
    "EDGE_DATA",
    "extract_critical_path",
]

#: tolerance for "same instant" comparisons of virtual timestamps
_EPS = 1e-12

EDGE_END = "end"
EDGE_QUEUE_DMA = "queue.dma"
EDGE_QUEUE_COMPUTE = "queue.compute"
EDGE_SLOT = "wait.slot_reuse"
EDGE_STREAM = "wait.stream"
EDGE_DATA = "wait.data"
EDGE_HOST = "api"


@dataclass(frozen=True)
class PathSegment:
    """One slice of the wall-time partition.

    ``cmd`` is the command executing during the slice (``None`` for a
    pure wait / host gap); ``edge`` is why the slice's *successor* on
    the path could not start earlier; ``waiter`` is that successor.
    """

    start: float
    end: float
    edge: str
    cmd: Optional[Command] = None
    waiter: Optional[Command] = None

    @property
    def duration(self) -> float:
        """Slice length in virtual seconds."""
        return self.end - self.start


@dataclass
class CriticalPath:
    """The backward-walk result: segments partitioning ``[t0, t_end]``."""

    segments: List[PathSegment]
    t0: float
    t_end: float
    #: device window: first command start / last command finish
    device_t0: float
    device_t1: float

    @property
    def wall(self) -> float:
        """The analysis window length (sum of all segment durations)."""
        return self.t_end - self.t0

    @property
    def length(self) -> float:
        """Path length clipped to the device window.

        Because the segments partition the window, this equals the
        timeline makespan (last finish minus first start).
        """
        lo, hi = self.device_t0, self.device_t1
        return sum(
            max(0.0, min(s.end, hi) - max(s.start, lo)) for s in self.segments
        )


def _queue_edge(engine: str) -> str:
    return EDGE_QUEUE_DMA if engine.startswith("dma") else EDGE_QUEUE_COMPUTE


def extract_critical_path(
    commands: Sequence[Command], t0: float, t_end: float
) -> CriticalPath:
    """Walk dependencies backward from the last completion in the window.

    Parameters
    ----------
    commands:
        Retired commands (e.g. :attr:`RegionResult.commands`).  Only
        finished ones participate.
    t0, t_end:
        The wall window to partition (the region's measurement window).
    """
    done = [c for c in commands if c.finish_time is not None]
    if not done:
        segs = (
            [PathSegment(t0, t_end, EDGE_HOST)] if t_end > t0 + _EPS else []
        )
        return CriticalPath(segs, t0, t_end, t0, t0)

    device_t0 = min(c.start_time for c in done)
    device_t1 = max(c.finish_time for c in done)

    # per-engine occupancy order, for "who held the engine until I
    # started" lookups; ties on finish break by (start, seq) so the
    # *latest* occupant ending at an instant wins
    by_engine: Dict[str, List[Command]] = {}
    for c in done:
        by_engine.setdefault(c.engine, []).append(c)
    fins_of: Dict[str, List[float]] = {}
    for eng, lst in by_engine.items():
        lst.sort(key=lambda c: (c.finish_time, c.start_time, c.seq))
        fins_of[eng] = [c.finish_time for c in lst]

    # global finish order, for host-gap continuation
    all_sorted = sorted(done, key=lambda c: (c.finish_time, c.start_time, c.seq))
    all_fins = [c.finish_time for c in all_sorted]

    def engine_pred(cur: Command) -> Optional[Command]:
        """The command that occupied ``cur``'s engine until ``cur`` started."""
        lst = by_engine[cur.engine]
        i = bisect_right(fins_of[cur.engine], cur.start_time + _EPS) - 1
        while i >= 0:
            cand = lst[i]
            if cand is not cur:
                # a queue wait means the engine was busy right up to
                # cur.start; anything finishing earlier is not the blocker
                if cand.finish_time < cur.start_time - 1e-9:
                    return None
                return cand
            i -= 1
        return None

    def dep_blocker(cur: Command) -> Tuple[Optional[Command], str]:
        """The dependency that resolved last (the binding constraint)."""
        cands = []
        sp = cur.stream_pred
        if sp is not None and sp.finish_time is not None:
            cands.append((sp.finish_time, 0, sp.seq, sp, EDGE_STREAM))
        poison = cur._poison_waits
        for tok in cur.wait_toks:
            rb = tok.recorded_by
            if rb is None or rb.finish_time is None:
                continue
            is_data = poison is None or id(tok) in poison
            cands.append(
                (rb.finish_time, 1, rb.seq, rb, EDGE_DATA if is_data else EDGE_SLOT)
            )
        if not cands:
            return None, EDGE_HOST
        fin, _, _, blocker, cause = max(cands, key=lambda c: c[:3])
        if fin <= cur.enqueue_time + _EPS:
            # every dependency resolved before the host even enqueued
            # the command: the binding constraint is the API call itself
            return None, EDGE_HOST
        return blocker, cause

    def global_pred(cur: Command) -> Optional[Command]:
        """Latest-finishing command at or before ``cur``'s start."""
        i = bisect_right(all_fins, cur.start_time + _EPS) - 1
        while i >= 0:
            cand = all_sorted[i]
            if cand is not cur:
                return cand
            i -= 1
        return None

    segments: List[PathSegment] = []  # built backward, reversed at the end
    cur = max(done, key=lambda c: (c.finish_time, c.seq))
    frontier = t_end
    if frontier > cur.finish_time + _EPS:
        # window tail past the last completion: host-side sync/teardown
        segments.append(PathSegment(cur.finish_time, frontier, EDGE_HOST))
        frontier = cur.finish_time

    edge = EDGE_END
    waiter: Optional[Command] = None
    visited = set()
    while cur is not None and frontier > t0:
        if id(cur) in visited:  # pragma: no cover - defensive
            break
        visited.add(id(cur))
        exec_lo = max(min(cur.start_time, frontier), t0)
        if frontier > exec_lo:
            segments.append(
                PathSegment(exec_lo, frontier, edge, cmd=cur, waiter=waiter)
            )
            frontier = exec_lo
        if frontier <= t0:
            break
        # why did cur start only at frontier?
        blocker: Optional[Command] = None
        cause = EDGE_HOST
        ready = cur.ready_time if cur.ready_time is not None else cur.start_time
        if cur.start_time > ready + _EPS:
            blocker = engine_pred(cur)
            if blocker is not None:
                cause = _queue_edge(cur.engine)
        if blocker is None:
            blocker, cause = dep_blocker(cur)
        if blocker is None:
            blocker = global_pred(cur)
            cause = EDGE_HOST
        if blocker is None:
            break
        gap_lo = max(min(blocker.finish_time, frontier), t0)
        if frontier > gap_lo:
            segments.append(PathSegment(gap_lo, frontier, cause, waiter=cur))
            frontier = gap_lo
        waiter = cur
        edge = cause
        cur = blocker
    if frontier > t0:
        # window head before the first path command: host lead-in
        segments.append(PathSegment(t0, frontier, EDGE_HOST, waiter=cur))
    segments.reverse()
    return CriticalPath(segments, t0, t_end, device_t0, device_t1)
