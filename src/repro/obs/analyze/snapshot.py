"""Byte-stable analysis snapshots and regression-gate diffs.

A snapshot is the JSON-safe dict form of a
:class:`~repro.obs.analyze.RegionAnalysis` with every float rounded to
12 decimal digits, serialized with sorted keys — bit-deterministic for
a given seed/config, so it can be checked into the repository as a
golden baseline.

:func:`diff_analyses` compares two snapshots and flags **regressions**:
the new wall time (or any cause category) growing by more than
``tolerance`` x the baseline wall.  The CLI's ``repro analyze
--baseline`` exits non-zero when any regression is flagged, which is
the CI perf gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs.io import atomic_write_text

__all__ = ["AnalysisDiff", "diff_analyses", "round_floats", "write_analysis"]

_DIGITS = 12


def round_floats(obj):
    """Recursively round floats to 12 digits (and kill ``-0.0``)."""
    if isinstance(obj, float):
        v = round(obj, _DIGITS)
        return 0.0 if v == 0 else v
    if isinstance(obj, dict):
        return {k: round_floats(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [round_floats(v) for v in obj]
    return obj


def write_analysis(snapshot: Dict, path: str) -> None:
    """Write a snapshot dict as deterministic JSON (atomically)."""
    import json

    atomic_write_text(
        path, json.dumps(round_floats(snapshot), indent=2, sort_keys=True) + "\n"
    )


@dataclass
class AnalysisDiff:
    """Outcome of comparing a new snapshot against a baseline."""

    lines: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed beyond tolerance."""
        return not self.regressions

    def report(self) -> str:
        """Human-readable diff table plus the verdict."""
        out = list(self.lines)
        if self.regressions:
            out.append("")
            out.append(f"REGRESSION ({len(self.regressions)}):")
            out.extend(f"  - {r}" for r in self.regressions)
        else:
            out.append("")
            out.append("no regression beyond tolerance")
        return "\n".join(out)


def diff_analyses(
    base: Dict, new: Dict, *, tolerance: float = 0.05
) -> AnalysisDiff:
    """Compare two snapshots; flag growth beyond ``tolerance`` x wall.

    Gated quantities: ``wall_s`` and every ``causes`` category.  A
    quantity regresses when it grows by more than ``tolerance`` times
    the *baseline wall* (an absolute yardstick, so a tiny category
    doubling from nothing does not trip the gate spuriously).
    """
    diff = AnalysisDiff()
    base_wall = float(base.get("wall_s", 0.0))
    new_wall = float(new.get("wall_s", 0.0))
    budget = tolerance * max(base_wall, 1e-12)

    def row(name: str, b: float, n: float) -> str:
        pct = f"{(n - b) / b:+.1%}" if b > 0 else ("  new" if n > 0 else "   --")
        return f"  {name:<18} {b * 1e3:>10.4f} -> {n * 1e3:>10.4f} ms  {pct}"

    diff.lines.append(
        f"baseline wall {base_wall * 1e3:.4f} ms, "
        f"tolerance {tolerance:.1%} ({budget * 1e3:.4f} ms)"
    )
    diff.lines.append(row("wall", base_wall, new_wall))
    if new_wall - base_wall > budget:
        diff.regressions.append(
            f"wall grew {(new_wall - base_wall) * 1e3:.4f} ms "
            f"({(new_wall / base_wall - 1):+.1%}) > tolerance"
        )
    base_c = base.get("causes", {}) or {}
    new_c = new.get("causes", {}) or {}
    for cat in sorted(set(base_c) | set(new_c)):
        b = float(base_c.get(cat, 0.0))
        n = float(new_c.get(cat, 0.0))
        diff.lines.append(row(cat, b, n))
        if n - b > budget:
            diff.regressions.append(
                f"{cat} grew {(n - b) * 1e3:.4f} ms > tolerance"
            )
    return diff
