"""Analytic what-if bounds: explaining tuning decisions.

Each entry is a deterministic, closed-form estimate of the wall time a
hypothetical resource/plan change could reach, computed from the same
command set the analyzer already holds — no re-simulation:

- ``perfect_overlap``: the busiest single engine's occupancy.  No
  schedule can finish before its most-loaded exclusive resource, so
  this is a true lower bound (and is provably ``<=`` measured wall).
- ``plus_one_dma_engine``: transfers rebalanced over one more DMA
  engine — limited by compute occupancy, the rebalanced transfer load,
  and the longest single transfer.
- ``plus_ring_slots``: a deeper ring buffer removes slot-reuse stalls;
  the wall minus the critical path's ``wait.slot_reuse`` time, floored
  at ``perfect_overlap``.
- ``chunks_2x`` / ``chunks_half``: doubling chunk size halves the
  API-call count (halving doubles it); the host-attributed ``api``
  share scales accordingly.  Estimates, not bounds — chunk size also
  moves overlap.

These are the quantities ``tune_plan`` trades off; surfacing them makes
its choices auditable ("speedup available from +1 DMA engine: 1.3x").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.obs.analyze.breakdown import WaitBreakdown
from repro.sim.engine import Command

__all__ = ["engine_busy", "what_if_bounds"]


def engine_busy(commands: Sequence[Command]) -> Dict[str, float]:
    """Busy seconds per engine over the finished commands."""
    busy: Dict[str, float] = {}
    for c in commands:
        if c.finish_time is None:
            continue
        busy[c.engine] = busy.get(c.engine, 0.0) + (c.finish_time - c.start_time)
    return busy


def what_if_bounds(
    commands: Sequence[Command],
    wall: float,
    breakdown: Optional[WaitBreakdown] = None,
) -> Dict[str, Dict[str, object]]:
    """Closed-form bounds/estimates keyed by scenario name."""
    done = [c for c in commands if c.finish_time is not None]
    busy = engine_busy(done)
    perfect = max(busy.values(), default=0.0)
    transfers = [c for c in done if c.kind in ("h2d", "d2h")]
    transfer_total = sum(c.finish_time - c.start_time for c in transfers)
    longest_transfer = max(
        (c.finish_time - c.start_time for c in transfers), default=0.0
    )
    compute_busy = max(
        (b for e, b in busy.items() if not e.startswith("dma")), default=0.0
    )
    n_dma = max(1, sum(1 for e in busy if e.startswith("dma")))

    totals = breakdown.totals() if breakdown is not None else {}
    slot_wait = totals.get("wait.slot_reuse", 0.0)
    api_time = totals.get("api", 0.0)

    def entry(bound: float, note: str) -> Dict[str, object]:
        bound = max(bound, 0.0)
        return {
            "bound_s": bound,
            "speedup": (wall / bound) if bound > 0 else 1.0,
            "note": note,
        }

    return {
        "perfect_overlap": entry(
            perfect,
            "busiest-engine occupancy; no schedule can beat its "
            "most-loaded exclusive resource",
        ),
        "plus_one_dma_engine": entry(
            max(compute_busy, transfer_total / (n_dma + 1), longest_transfer),
            f"transfers rebalanced over {n_dma + 1} DMA engines "
            f"(currently {n_dma})",
        ),
        "plus_ring_slots": entry(
            max(perfect, wall - slot_wait),
            "deeper ring buffer removes critical-path slot-reuse stalls",
        ),
        "chunks_2x": entry(
            max(perfect, wall - 0.5 * api_time),
            "doubling chunk size halves API-call count (estimate)",
        ),
        "chunks_half": entry(
            wall + api_time,
            "halving chunk size doubles API-call count (estimate)",
        ),
    }
