"""Continuous telemetry: virtual-time windows, SLOs, and exporters.

Everything else in :mod:`repro.obs` is post-hoc — spans, the analyzer,
the flight recorder all answer *what happened* after a run retires.
This module answers *what is happening*: a :class:`TelemetrySampler`
aggregates counters, gauge samples, histogram observations, and busy
intervals into fixed **virtual-time windows**, producing one JSON-safe
frame per window.  A serve stack threads the sampler through the
scheduler (``ServeConfig(telemetry=...)``) and the simulator's
retirement clock hook, so frames track rolling queue depth, device and
PCIe utilization, and per-tenant SLO compliance on the virtual clock —
the sensor layer a closed-loop autotuner needs.

Determinism rules (the same conventions as the PR-5 analyzer):

* Windows are fixed ``[i*w, (i+1)*w)`` intervals of virtual time; an
  event at time ``t`` lands in window ``int(t / w)``.  Two identical
  runs bucket identically.
* Timestamped channels (counters via :meth:`TelemetrySampler.inc`,
  histogram observations via :meth:`~TelemetrySampler.observe`, busy
  intervals via :meth:`~TelemetrySampler.add_interval`) are
  order-independent: frames are built from ``(t, value)`` pairs at
  :meth:`~TelemetrySampler.finish`, so *when* the host happened to
  call :meth:`~TelemetrySampler.advance` never changes a frame.
* Gauge callables are sampled once per window, at the moment the
  window closes.  The sampler's users only register host/scheduler
  state (queue depth, reservations, breaker state) that is constant
  while the simulator advances, so samples are identical whether a
  window closes from the simulator's retirement hook or from the
  scheduler loop.
* Frames are encoded byte-stably: floats rounded to 12 significant
  digits (``-0.0`` normalised to ``0.0``), keys sorted, compact
  separators — the same contract as analyzer snapshots.

The **SLO engine** (:class:`SLO`, tracked per tenant) follows the SRE
error-budget formulation: a tenant's request is *good* when it
completed ``ok`` within the objective's latency threshold; per-window
**burn rate** is ``(bad/total) / (1 - target)`` (how many times faster
than budgeted the error budget is being spent); the cumulative **error
budget** remaining after window ``i`` is
``1 - cum_bad_i / ((1 - target) * submitted)``, clamped to ``[0, 1]``
— monotone non-increasing across the window sequence, which the
property tests pin down.  A ``target`` of exactly ``1.0`` has no
budget: any bad request exhausts it and burn saturates at
:data:`BURN_SATURATED`.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.io import atomic_write_text
from repro.obs.intervals import union_length
from repro.obs.metrics import Histogram

__all__ = [
    "BURN_SATURATED",
    "SLO",
    "SLOTracker",
    "TELEMETRY_SCHEMA",
    "TelemetrySampler",
    "encode_frame",
    "prometheus_text",
    "read_telemetry_jsonl",
    "render_top",
    "telemetry_lines",
    "write_telemetry_jsonl",
]

#: schema tag stamped into the JSONL header line
TELEMETRY_SCHEMA = "repro/telemetry/v1"

#: burn-rate value reported when the objective leaves no error budget
#: (``target == 1.0``) and a bad request arrives anyway; finite so
#: frames stay strict-JSON
BURN_SATURATED = 1e12

#: float rounding (significant digits after the point) — mirrors the
#: analyzer snapshot convention so telemetry frames are byte-stable
_DIGITS = 12

#: ASCII sparkline ramp, low to high (10 levels, deterministic)
_RAMP = " .:-=+*#%@"


def _round(obj):
    """Round floats to :data:`_DIGITS` digits recursively (JSON-safe).

    Kills ``-0.0`` so sign-of-zero noise never flips a byte.  Local
    twin of ``repro.obs.analyze.snapshot.round_floats`` — duplicated
    here (it is four lines) so importing telemetry never drags the
    analyzer, and with it :mod:`repro.sim.engine`, into the eager
    import graph.
    """
    if isinstance(obj, float):
        v = round(obj, _DIGITS)
        return 0.0 if v == 0.0 else v
    if isinstance(obj, dict):
        return {k: _round(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round(v) for v in obj]
    return obj


#: one shared compact encoder (same idiom as the serve journal)
_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def encode_frame(frame: Dict) -> str:
    """Canonical one-line frame encoding (rounded, sorted, compact)."""
    return _ENCODE(_round(frame))


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLO:
    """One tenant class's service-level objective.

    Attributes
    ----------
    target:
        Availability objective in ``(0, 1]``: the fraction of the
        tenant's requests that must be *good*.  ``0.999`` means an
        error budget of 0.1% of submitted requests.
    latency_s:
        Optional latency threshold in virtual seconds.  When set, a
        request is good only if it completed ``ok`` *and* its
        submit-to-finish latency is within the threshold; without it,
        any ``ok`` completion is good (pure availability).
    """

    target: float = 0.999
    latency_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.target, (int, float)) or isinstance(
            self.target, bool
        ) or not 0.0 < float(self.target) <= 1.0:
            raise ValueError(
                f"slo target must be in (0, 1], got {self.target!r}"
            )
        if self.latency_s is not None and (
            not isinstance(self.latency_s, (int, float))
            or isinstance(self.latency_s, bool)
            or self.latency_s <= 0
        ):
            raise ValueError(
                f"slo latency_s must be > 0 seconds, got {self.latency_s!r}"
            )

    @classmethod
    def from_dict(cls, spec: Dict) -> "SLO":
        """Build from a workload-JSON ``slo`` object."""
        if not isinstance(spec, dict):
            raise ValueError(f"slo must be an object, got {spec!r}")
        unknown = sorted(set(spec) - {"target", "latency_s"})
        if unknown:
            raise ValueError(
                f"slo: unknown key(s) {', '.join(map(repr, unknown))}; "
                "known keys are latency_s, target"
            )
        return cls(
            target=float(spec.get("target", 0.999)),
            latency_s=spec.get("latency_s"),
        )

    def to_dict(self) -> Dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        d: Dict[str, object] = {"target": self.target}
        if self.latency_s is not None:
            d["latency_s"] = self.latency_s
        return d


class SLOTracker:
    """Rolling per-tenant SLO accounting over the sampler's windows.

    The scheduler feeds it one :meth:`submit` per submitted request and
    one :meth:`observe` per terminal outcome; :meth:`windows` and
    :meth:`report` compute compliance, burn rate, and the monotone
    error budget from those timestamped facts (order-independent, like
    every other telemetry channel).  Tenants without a declared SLO are
    ignored.
    """

    def __init__(self, slos: Dict[str, SLO], window: float) -> None:
        self.slos = dict(slos)
        self.window = window
        #: tenant -> total requests submitted (budget denominator)
        self._submitted: Dict[str, int] = {t: 0 for t in self.slos}
        #: tenant -> window index -> [good, bad]
        self._outcomes: Dict[str, Dict[int, List[int]]] = {
            t: {} for t in self.slos
        }

    def _index(self, t: float) -> int:
        return int(t / self.window)

    def submit(self, tenant: str, t: float) -> None:
        """Count one submitted request for ``tenant`` at time ``t``."""
        if tenant in self.slos:
            self._submitted[tenant] += 1

    def observe(
        self, tenant: str, t: float, *, ok: bool, latency_s: float
    ) -> None:
        """Record one terminal outcome at time ``t``.

        ``ok`` is whether the request completed successfully;
        ``latency_s`` its submit-to-finish virtual latency.  Goodness
        additionally applies the objective's latency threshold.
        """
        slo = self.slos.get(tenant)
        if slo is None:
            return
        good = ok and (slo.latency_s is None or latency_s <= slo.latency_s)
        cell = self._outcomes[tenant].setdefault(self._index(t), [0, 0])
        cell[0 if good else 1] += 1

    @property
    def max_index(self) -> int:
        """Largest window index any outcome landed in (-1 when none)."""
        return max(
            (i for per in self._outcomes.values() for i in per), default=-1
        )

    @staticmethod
    def _burn(bad: int, total: int, target: float) -> float:
        """Window burn rate: observed error rate over budgeted rate."""
        if total == 0 or bad == 0:
            return 0.0
        denom = 1.0 - target
        if denom <= 0.0:
            return BURN_SATURATED
        return (bad / total) / denom

    def windows(self, n: int) -> Dict[str, List[Dict]]:
        """Per-tenant window series covering windows ``0 .. n-1``.

        Each entry carries ``good``/``bad``/``total`` for the window,
        ``compliance`` (``1.0`` on idle windows: no traffic violates
        nothing), ``burn`` (see :meth:`_burn`), and ``budget`` — the
        cumulative error-budget fraction remaining *after* this
        window, computed against the tenant's total submissions, so it
        is monotone non-increasing across the series.
        """
        out: Dict[str, List[Dict]] = {}
        for tenant in sorted(self.slos):
            slo = self.slos[tenant]
            allowed = (1.0 - slo.target) * self._submitted[tenant]
            per = self._outcomes[tenant]
            cum_bad = 0
            series: List[Dict] = []
            for i in range(n):
                good, bad = per.get(i, (0, 0))
                total = good + bad
                cum_bad += bad
                if allowed > 0.0:
                    budget = max(0.0, 1.0 - cum_bad / allowed)
                else:
                    budget = 1.0 if cum_bad == 0 else 0.0
                series.append({
                    "good": good,
                    "bad": bad,
                    "total": total,
                    "compliance": good / total if total else 1.0,
                    "burn": self._burn(bad, total, slo.target),
                    "budget": budget,
                })
            out[tenant] = series
        return out

    def report(self, n: int) -> Dict[str, Dict]:
        """Whole-run digest per tenant (the ``report.slo`` payload)."""
        out: Dict[str, Dict] = {}
        for tenant, series in self.windows(n).items():
            slo = self.slos[tenant]
            good = sum(w["good"] for w in series)
            bad = sum(w["bad"] for w in series)
            total = good + bad
            breaches = sum(
                1 for w in series
                if w["total"] and w["compliance"] < slo.target
            )
            out[tenant] = {
                "target": slo.target,
                **(
                    {"latency_s": slo.latency_s}
                    if slo.latency_s is not None else {}
                ),
                "submitted": self._submitted[tenant],
                "good": good,
                "bad": bad,
                "total": total,
                "compliance": good / total if total else 1.0,
                "budget": series[-1]["budget"] if series else 1.0,
                "max_burn": max((w["burn"] for w in series), default=0.0),
                "breaches": breaches,
            }
        return out


# ----------------------------------------------------------------------
# the sampler
# ----------------------------------------------------------------------
class TelemetrySampler:
    """Windowed time-series aggregation on the virtual clock.

    Parameters
    ----------
    window:
        Window length in virtual seconds (> 0).
    slos:
        Optional per-tenant objectives; enables the :attr:`slo`
        tracker and the per-frame ``slo`` channel.
    on_window:
        Optional ``callable(index, t_end, gauges)`` fired when a
        window closes (the scheduler records a ``telemetry.window``
        flight-recorder event here).  Must be cheap and must not
        advance virtual time.

    The sampler is pure host-side bookkeeping: nothing here ever
    touches the simulator, so enabling telemetry never changes a
    measured result (the timing-neutrality the benchmark gate pins).
    """

    def __init__(
        self,
        window: float,
        *,
        slos: Optional[Dict[str, SLO]] = None,
        on_window: Optional[Callable[[int, float, Dict], None]] = None,
    ) -> None:
        if not window > 0.0:
            raise ValueError(f"telemetry window must be > 0, got {window}")
        self.window = float(window)
        self.on_window = on_window
        self.slo = SLOTracker(slos or {}, self.window)
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        #: window index -> {gauge name: sampled value}
        self._gauge_samples: Dict[int, Dict[str, float]] = {}
        #: counter name -> window index -> delta
        self._counters: Dict[str, Dict[int, float]] = {}
        #: histogram name -> window index -> observations
        self._hists: Dict[str, Dict[int, List[float]]] = {}
        #: channel -> list of (t0, t1) busy intervals
        self._intervals: Dict[str, List[Tuple[float, float]]] = {}
        #: first window not yet closed
        self._closed = 0
        #: fast-path guard for :meth:`advance` (entering this time
        #: means a window boundary has been crossed)
        self._next_edge = self.window
        self._frames: Optional[List[Dict]] = None
        #: host wall seconds spent in sampler work — window closes
        #: (gauge sampling + ``on_window``), the frame build at
        #: :meth:`finish`, and whatever callers add (the scheduler
        #: accumulates its per-request interval harvest here).  The
        #: :meth:`advance` fast path (one float compare per retired
        #: command) is deliberately untimed: two clock reads would
        #: cost more than the compare they measure.  This is the
        #: numerator of the overhead-bench gate.
        self.wall_s = 0.0

    # -- registration and recording ------------------------------------
    def _index(self, t: float) -> int:
        return int(t / self.window)

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge source sampled once per window at close.

        Only register host/scheduler state that cannot change while
        the simulator advances (see the module docstring) — that is
        what keeps frames independent of *when* windows close.
        """
        self._gauges.append((name, fn))

    def inc(self, name: str, t: float, n: float = 1) -> None:
        """Add ``n`` to windowed counter ``name`` at time ``t``."""
        per = self._counters.setdefault(name, {})
        i = self._index(t)
        per[i] = per.get(i, 0) + n

    def observe(self, name: str, t: float, v: float) -> None:
        """Record one histogram observation at time ``t``."""
        self._hists.setdefault(name, {}).setdefault(
            self._index(t), []
        ).append(v)

    def add_interval(self, channel: str, t0: float, t1: float) -> None:
        """Record a busy interval on ``channel`` (clipped per window).

        Overlapping intervals on one channel (several tenants sharing
        a DMA engine) are unioned, so a channel's per-window
        utilization never exceeds 1.
        """
        if t1 > t0:
            self._intervals.setdefault(channel, []).append((t0, t1))

    # -- window lifecycle ----------------------------------------------
    @property
    def windows_closed(self) -> int:
        """Windows closed so far by :meth:`advance`/:meth:`finish`."""
        return self._closed

    def advance(self, t: float) -> None:
        """Close every window the clock has moved past (``t`` in it).

        Cheap enough to sit on the simulator's per-retirement clock
        hook: the common case is one float compare.  Calls with an
        older ``t`` (several devices sharing one sampler) are no-ops —
        windows only ever close forward.
        """
        if t < self._next_edge:
            return
        t0 = time.perf_counter()
        idx = self._index(t)
        while self._closed < idx:
            self._close_one()
        self.wall_s += time.perf_counter() - t0

    def _close_one(self) -> None:
        i = self._closed
        sampled = {name: float(fn()) for name, fn in self._gauges}
        if sampled:
            self._gauge_samples[i] = sampled
        self._closed = i + 1
        self._next_edge = (i + 2) * self.window
        if self.on_window is not None:
            self.on_window(i, (i + 1) * self.window, sampled)

    def finish(self, t_end: float) -> List[Dict]:
        """Close out the run at virtual time ``t_end`` and build frames.

        The frame count covers ``[0, t_end]`` plus any window that
        received data (so nothing recorded is ever silently dropped);
        the final window is reported on its full fixed boundary even
        when the run ended inside it.  Idempotent: repeated calls
        return the same frame list.
        """
        if self._frames is not None:
            return self._frames
        t0 = time.perf_counter()
        n = max(
            self._index(t_end) + 1,
            self._closed,
            self.slo.max_index + 1,
            max((i for per in self._counters.values() for i in per),
                default=-1) + 1,
            max((i for per in self._hists.values() for i in per),
                default=-1) + 1,
            max((self._index(iv[1]) for ivs in self._intervals.values()
                 for iv in ivs), default=-1) + 1,
            1,
        )
        while self._closed < n:
            self._close_one()
        self._frames = self._build(n)
        self.wall_s += time.perf_counter() - t0
        return self._frames

    def frames(self) -> List[Dict]:
        """The built frames (:meth:`finish` must have run)."""
        if self._frames is None:
            raise RuntimeError("TelemetrySampler.finish() has not run")
        return self._frames

    # -- frame construction --------------------------------------------
    def _util_per_window(self, n: int) -> Dict[str, List[float]]:
        w = self.window
        out: Dict[str, List[float]] = {}
        for channel in sorted(self._intervals):
            clipped: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
            for a, b in self._intervals[channel]:
                for i in range(self._index(a), min(self._index(b), n - 1) + 1):
                    lo, hi = max(a, i * w), min(b, (i + 1) * w)
                    if hi > lo:
                        clipped[i].append((lo, hi))
            out[channel] = [
                min(1.0, union_length(ivs) / w) for ivs in clipped
            ]
        return out

    def _build(self, n: int) -> List[Dict]:
        util = self._util_per_window(n)
        slo_windows = self.slo.windows(n) if self.slo.slos else {}
        frames: List[Dict] = []
        for i in range(n):
            frame: Dict[str, object] = {
                "window": i,
                "t0_s": i * self.window,
                "t1_s": (i + 1) * self.window,
            }
            counters = {
                name: per[i]
                for name, per in sorted(self._counters.items())
                if i in per
            }
            if counters:
                frame["counters"] = counters
            gauges = self._gauge_samples.get(i)
            if gauges:
                frame["gauges"] = dict(sorted(gauges.items()))
            hists = {}
            for name, per in sorted(self._hists.items()):
                if i in per:
                    h = Histogram(name)
                    for v in per[i]:
                        h.observe(v)
                    hists[name] = h.summary()
            if hists:
                frame["hist"] = hists
            if util:
                frame["util"] = {ch: series[i] for ch, series in util.items()}
            if slo_windows:
                frame["slo"] = {
                    tenant: dict(series[i])
                    for tenant, series in slo_windows.items()
                }
            frames.append(_round(frame))
        return frames

    def slo_report(self) -> Dict[str, Dict]:
        """Whole-run per-tenant SLO digest (empty without SLOs)."""
        if not self.slo.slos:
            return {}
        return _round(self.slo.report(len(self.frames())))


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def telemetry_lines(frames: List[Dict], *, window: float) -> List[str]:
    """JSONL stream: one header line plus one canonical line per frame."""
    header = {
        "schema": TELEMETRY_SCHEMA,
        "window_s": window,
        "frames": len(frames),
    }
    return [encode_frame(header)] + [encode_frame(f) for f in frames]


def write_telemetry_jsonl(
    frames: List[Dict], path: str, *, window: float
) -> None:
    """Atomically write the telemetry JSONL stream to ``path``."""
    atomic_write_text(
        path, "\n".join(telemetry_lines(frames, window=window)) + "\n"
    )


def read_telemetry_jsonl(path: str) -> Tuple[Dict, List[Dict]]:
    """Parse a telemetry JSONL file back into ``(header, frames)``."""
    with open(path, encoding="utf-8") as fh:
        lines = [ln for ln in fh.read().split("\n") if ln]
    if not lines:
        raise ValueError(f"telemetry file {path!r} is empty")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"telemetry file {path!r} does not start with a "
            f"{TELEMETRY_SCHEMA} header"
        )
    return header, [json.loads(ln) for ln in lines[1:]]


def _metric_name(name: str, *, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}"


def _fmt(v: float) -> str:
    """Deterministic numeric text (canonical JSON float form)."""
    return json.dumps(_round(v))


def prometheus_text(frames: List[Dict], *, prefix: str = "repro") -> str:
    """Prometheus text exposition of a frame series.

    Counters are exposed as whole-run totals, gauges and utilization
    as their last-window values, and SLO channels as per-tenant
    labelled gauges.  Lines are sorted, so the dump is byte-stable.
    """
    totals: Dict[str, float] = {}
    for f in frames:
        for name, v in f.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + v
    last_gauges: Dict[str, float] = {}
    last_util: Dict[str, float] = {}
    last_slo: Dict[str, Dict] = {}
    for f in frames:
        last_gauges.update(f.get("gauges", {}))
        last_util.update(f.get("util", {}))
        for tenant, cell in f.get("slo", {}).items():
            last_slo[tenant] = cell
    lines: List[str] = []
    for name in sorted(totals):
        m = _metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {m} counter")
        lines.append(f"{m} {_fmt(totals[name])}")
    for name in sorted(last_gauges):
        m = _metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {m} gauge")
        lines.append(f"{m} {_fmt(last_gauges[name])}")
    if last_util:
        m = f"{prefix}_util"
        lines.append(f"# TYPE {m} gauge")
        for ch in sorted(last_util):
            lines.append(f'{m}{{channel="{ch}"}} {_fmt(last_util[ch])}')
    for field in ("compliance", "budget", "burn"):
        if not last_slo:
            break
        m = f"{prefix}_slo_{field}"
        lines.append(f"# TYPE {m} gauge")
        for tenant in sorted(last_slo):
            lines.append(
                f'{m}{{tenant="{tenant}"}} {_fmt(last_slo[tenant][field])}'
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the dashboard
# ----------------------------------------------------------------------
def _sparkline(series: List[float], width: int) -> str:
    """Fixed-ramp ASCII sparkline of ``series`` resampled to ``width``."""
    if not series:
        return ""
    if len(series) > width:
        # deterministic down-sample: max over equal index buckets (a
        # dashboard must not hide spikes)
        buckets: List[float] = []
        per = len(series) / width
        for b in range(width):
            lo, hi = int(b * per), max(int((b + 1) * per), int(b * per) + 1)
            buckets.append(max(series[lo:hi]))
        series = buckets
    lo, hi = min(series), max(series)
    span = hi - lo
    out = []
    for v in series:
        if span <= 0:
            out.append(_RAMP[0] if hi <= 0 else _RAMP[-1])
            continue
        level = int((v - lo) / span * (len(_RAMP) - 1))
        out.append(_RAMP[level])
    return "".join(out)


def render_top(frames: List[Dict], *, width: int = 48) -> str:
    """Deterministic ASCII dashboard of a telemetry frame series.

    One sparkline row per channel (utilization, gauges, counter
    rates), plus a per-tenant SLO table when the frames carry an
    ``slo`` channel — the ``repro top`` CLI surface.
    """
    if not frames:
        return "telemetry: no frames"
    w = frames[1]["t0_s"] - frames[0]["t0_s"] if len(frames) > 1 else (
        frames[0]["t1_s"] - frames[0]["t0_s"]
    )
    span = frames[-1]["t1_s"]
    lines = [
        f"telemetry        {len(frames)} window(s) x {w * 1e3:.3f} ms "
        f"(span {span * 1e3:.3f} ms)",
        f"{'channel':<28} {'min':>8} {'max':>8} {'last':>8}  trend",
    ]

    def series_of(kind: str, name: str) -> List[float]:
        return [float(f.get(kind, {}).get(name, 0.0)) for f in frames]

    names = {
        kind: sorted({n for f in frames for n in f.get(kind, {})})
        for kind in ("util", "gauges", "counters")
    }
    for kind, tag in (("util", "util"), ("gauges", "gauge"),
                      ("counters", "rate")):
        for name in names[kind]:
            s = series_of(kind, name)
            label = f"{tag} {name}"
            lines.append(
                f"{label:<28.28} {min(s):>8.3g} {max(s):>8.3g} "
                f"{s[-1]:>8.3g}  {_sparkline(s, width)}"
            )
    tenants = sorted({t for f in frames for t in f.get("slo", {})})
    if tenants:
        lines.append(
            f"{'slo tenant':<14} {'target':>8} {'compliance':>11} "
            f"{'budget':>7} {'burn':>8} {'breaches':>9}  trend"
        )
        for tenant in tenants:
            cells = [f.get("slo", {}).get(tenant) for f in frames]
            cells = [c for c in cells if c is not None]
            compliance = [c["compliance"] for c in cells]
            breaches = sum(
                1 for c in cells if c["total"] and c["compliance"] < 1.0
            )
            last = cells[-1]
            lines.append(
                f"{tenant:<14.14} "
                f"{'-':>8} "
                f"{last['compliance']:>10.2%} "
                f"{last['budget']:>6.0%} "
                f"{max(c['burn'] for c in cells):>8.3g} "
                f"{breaches:>9}  {_sparkline(compliance, width)}"
            )
    return "\n".join(lines)
