"""Atomic file output for traces, reports, and analysis dumps.

Every exporter writes through :func:`atomic_write_text`: the content
lands in a temporary file in the destination directory and is moved
into place with :func:`os.replace`, so an interrupted run never leaves
a truncated JSON where a previous good file (or nothing) used to be.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, obj, **dump_kwargs) -> None:
    """Serialize ``obj`` with :func:`json.dumps` and write it atomically."""
    atomic_write_text(path, json.dumps(obj, **dump_kwargs))
