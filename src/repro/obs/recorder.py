"""Bounded deterministic flight recorder.

A :class:`FlightRecorder` is a fixed-capacity ring of structured
events.  Hot paths (the region scheduler, the pipeline issuer) record
one small dict per interesting transition — admissions, chunk issues,
faults, replays, device loss, deadline cancellations — and on failure
the recorder *dumps*: the surviving window of events plus context is
packaged into a JSON-safe snapshot, optionally written to disk.

Design constraints:

* **Bounded.**  The ring holds ``capacity`` events; older ones fall
  off (the ``dropped`` counter says how many).  Recording never
  allocates beyond the ring, so it is safe to leave on in long runs.
* **Deterministic.**  Timestamps come from the injected ``clock``
  (virtual time), sequence numbers are monotone, and event fields are
  emitted in sorted key order — two identical runs produce identical
  dumps, so dumps are golden-testable like everything else here.
* **Zero virtual-time cost.**  ``record`` never touches the simulator;
  it is pure host-side bookkeeping, like the tracer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.obs.io import atomic_write_json

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-size ring of structured events with failure dumps."""

    __slots__ = ("capacity", "clock", "dropped", "dumps", "sink", "_ring", "_seq")

    def __init__(
        self,
        capacity: int = 256,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: virtual-clock callable; ``record`` falls back to it when no
        #: explicit timestamp is passed
        self.clock = clock
        self.dropped = 0
        #: every snapshot produced by :meth:`dump`, in order
        self.dumps: List[Dict] = []
        #: optional tee: called with each event dict *after* it enters
        #: the ring (the serve journal attaches here); exceptions
        #: propagate to the recording site on purpose — a host-crash
        #: injector kills the control plane through this hook
        self.sink: Optional[Callable[[Dict], None]] = None
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> List[Dict]:
        """The surviving event window, oldest first."""
        return list(self._ring)

    def record(self, kind: str, *, t: Optional[float] = None, **fields) -> None:
        """Append one event to the ring.

        ``t`` defaults to the injected clock (or 0.0 without one);
        ``fields`` with value ``None`` are skipped so events stay
        compact and stable.
        """
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        ev: Dict = {"seq": self._seq, "t": t, "kind": kind}
        for k in sorted(fields):
            if fields[k] is not None:
                ev[k] = fields[k]
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(ev)
        if self.sink is not None:
            self.sink(ev)

    def dump(
        self, reason: str, *, path: Optional[str] = None, **context
    ) -> Dict:
        """Package the surviving window into a snapshot.

        The snapshot carries the dump ``reason``, any ``context``
        key/values (``None`` values skipped), counters, and the event
        window.  It is kept in :attr:`dumps` and, when ``path`` is
        given, atomically written as JSON.
        """
        snap: Dict = {
            "reason": reason,
            "context": {
                k: context[k] for k in sorted(context) if context[k] is not None
            },
            "recorded": self._seq,
            "dropped": self.dropped,
            "events": self.events,
        }
        self.dumps.append(snap)
        if path is not None:
            atomic_write_json(path, snap, indent=2, sort_keys=True)
        return snap
