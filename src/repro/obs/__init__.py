"""Structured observability: span tracing, metrics, and exporters.

The paper's entire argument is a scheduling claim — chunked async
transfers overlap compute, a ring buffer caps memory — and its figures
presuppose a profiler that can *see* that schedule.  This subpackage
is that profiler for the simulated runtime:

* :class:`~repro.obs.tracer.Tracer` — nested spans with per-span
  attributes, recorded against virtual clocks at every layer: the
  simulator (one span per retired command, per-engine tracks, queue
  depth at dispatch), the host runtime (every API call, with bytes and
  stream), and the pipelined executor (per-chunk lifecycle:
  plan -> H2D -> kernel -> D2H -> slot-release, tagged with chunk id
  and ring-buffer slot).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms (bytes per direction, engine utilization, slot-reuse
  stall time, allocator high-water marks), snapshotted onto every
  :class:`~repro.core.executor.RegionResult`.
* :mod:`~repro.obs.export` — Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto) and a plain-text profile report,
  surfaced as the ``repro trace`` / ``repro profile`` CLI commands.
* :mod:`~repro.obs.analyze` — deterministic critical-path extraction,
  per-chunk wait breakdown (sums exactly to wall time), analytic
  what-if bounds, and the byte-stable snapshots behind the
  ``repro analyze`` perf-regression gate.
* :class:`~repro.obs.recorder.FlightRecorder` — bounded deterministic
  event ring dumped as structured JSON on scheduler failures.
* :mod:`~repro.obs.telemetry` — continuous telemetry: deterministic
  virtual-time-windowed frames (queue depth, utilization, PCIe
  occupancy) with a per-tenant SLO/error-budget engine, exported as
  JSONL, Prometheus text, Chrome counter events, and the ``repro top``
  ASCII dashboard.

Usage::

    from repro import NVIDIA_K40M, Runtime
    from repro.obs import Observability

    obs = Observability()
    rt = Runtime(NVIDIA_K40M, obs=obs)
    result = region.run(rt, arrays, kernel)
    print(obs.report())
    obs.write_chrome_trace("run.json")

Observability is **opt-in and zero-cost when off**: the default
runtime carries the no-op :data:`~repro.obs.tracer.NULL_TRACER` and
:data:`~repro.obs.metrics.NULL_METRICS`, and no instrument ever
advances virtual time, so enabling tracing never changes measured
results.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    chrome_counter_events,
    overlap_from_events,
    profile_report,
    spans_to_chrome,
    write_span_trace,
)
from repro.obs.intervals import union_length
from repro.obs.io import atomic_write_json, atomic_write_text
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.telemetry import (
    SLO,
    SLOTracker,
    TelemetrySampler,
    prometheus_text,
    read_telemetry_jsonl,
    render_top,
    write_telemetry_jsonl,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "AnalysisDiff",
    "Counter",
    "CriticalPath",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "OBS_NULL",
    "Observability",
    "RegionAnalysis",
    "SLO",
    "SLOTracker",
    "Span",
    "TelemetrySampler",
    "Tracer",
    "WaitBreakdown",
    "analyze_commands",
    "analyze_result",
    "atomic_write_json",
    "atomic_write_text",
    "chrome_counter_events",
    "diff_analyses",
    "extract_critical_path",
    "overlap_from_events",
    "profile_report",
    "prometheus_text",
    "read_telemetry_jsonl",
    "render_top",
    "spans_to_chrome",
    "union_length",
    "what_if_bounds",
    "write_analysis",
    "write_span_trace",
    "write_telemetry_jsonl",
]

#: names resolved lazily from :mod:`repro.obs.analyze` (PEP 562) so the
#: analyzer — which imports :mod:`repro.sim.engine` — never joins the
#: eager import graph of packages that only want the tracer/metrics
_ANALYZE_NAMES = frozenset(
    {
        "AnalysisDiff",
        "CriticalPath",
        "RegionAnalysis",
        "WaitBreakdown",
        "analyze_commands",
        "analyze_result",
        "diff_analyses",
        "extract_critical_path",
        "what_if_bounds",
        "write_analysis",
    }
)


def __getattr__(name: str):
    if name in _ANALYZE_NAMES:
        import repro.obs.analyze as _analyze

        return getattr(_analyze, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Observability:
    """A tracer + metrics pair threaded through one runtime.

    ``Observability()`` is fully enabled; pass ``tracer=NULL_TRACER``
    or ``metrics=NULL_METRICS`` to enable only one half.  The shared
    disabled instance is :data:`OBS_NULL`.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def enabled(self) -> bool:
        """Whether either half records anything."""
        return self.tracer.enabled or self.metrics.enabled

    def report(self, *, top: int = 8) -> str:
        """Plain-text profile of everything recorded so far."""
        return profile_report(self, top=top)

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON (dict form) of all recorded spans."""
        return spans_to_chrome(self.tracer.spans)

    def write_chrome_trace(self, path: str) -> None:
        """Write all recorded spans as ``chrome://tracing`` JSON."""
        write_span_trace(self.tracer.spans, path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state}, {len(self.tracer.spans)} spans)"


#: Shared disabled pair — the default for every :class:`repro.gpu.Runtime`.
OBS_NULL = Observability(NULL_TRACER, NULL_METRICS)
