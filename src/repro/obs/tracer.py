"""Span-based tracing: the profiler the paper's figures presuppose.

A :class:`Span` is one named interval of virtual time with attributes
(bytes, stream, chunk id, ring slot, ...).  Spans come from two
sources, mirroring how a real GPU profiler works:

* **host spans** — opened and closed in program order via
  :meth:`Tracer.span` (a context manager) or :meth:`Tracer.begin` /
  :meth:`Tracer.end`.  They nest: the region span contains chunk
  spans, which contain the per-phase enqueue spans, which contain the
  individual API-call spans.  Timestamps come from the tracer's
  ``clock`` (the runtime's host clock).
* **device spans** — emitted *complete* via :meth:`Tracer.emit` with
  explicit start/finish timestamps, because the simulator retires
  commands at virtual times unrelated to host call order.  The host
  runtime installs an observer on the simulator that emits one span
  per retired command, on a per-engine track, carrying the queue depth
  the engine saw when the command was dispatched.

Tracing is **zero-cost when disabled**: the default
:data:`NULL_TRACER` is a :class:`NullTracer` whose every operation is
a constant no-op, so instrumented code paths pay one attribute check
and nothing else.  Crucially no tracer ever charges virtual time, so
enabling tracing never changes measured results.

Tracing is also **cheap when enabled**: the hot emitters (per-API-call
and per-retired-command spans) go through :meth:`Tracer.defer` /
:meth:`Tracer.defer_command`, which record a compact tuple (or just
the retired :class:`~repro.sim.engine.Command` itself) and build the
:class:`Span` objects lazily, in recorded order, the first time
:attr:`Tracer.spans` is read.  Consumers — exporters, ``by_category``,
the analyzer — see exactly the spans an eager tracer would have built;
runs that never read their trace never pay for span construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One named interval of virtual time with attributes.

    Attributes
    ----------
    name:
        What the span covers (``"chunk:3"``, ``"h2d:A[4:7)"``, ...).
    category:
        Coarse classification used by exporters and reports
        (``"region"``, ``"chunk"``, ``"api"``, ``"h2d"``, ``"kernel"``).
    track:
        Which row the span renders on — ``"host"`` for program-order
        spans, ``"engine:dma0"``-style names for device spans.
    start, end:
        Virtual seconds.  ``end`` is ``None`` while the span is open.
    attrs:
        Free-form key/value metadata (must be JSON-safe for export).
    parent:
        Enclosing host span, or ``None`` at top level.
    """

    __slots__ = ("name", "category", "track", "start", "end", "attrs", "parent")

    def __init__(
        self,
        name: str,
        category: str = "",
        track: str = "host",
        start: float = 0.0,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}
        self.parent = parent

    @property
    def duration(self) -> float:
        """Span extent in virtual seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def depth(self) -> int:
        """Nesting depth (0 for top-level spans)."""
        d, p = 0, self.parent
        while p is not None:
            d, p = d + 1, p.parent
        return d

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.end is None else f"{self.duration:.3e}s"
        return f"Span({self.name!r}, {self.category!r}, {state})"


class _SpanCtx:
    """Context manager closing one host span (re-entrant per span)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer.end(self._span)
        return False


class Tracer:
    """Collects spans against a virtual clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current virtual time in
        seconds.  The host runtime installs its own host clock when an
        enabled tracer is attached; until then the clock reads 0.
    eager:
        When true, :meth:`defer` / :meth:`defer_command` build their
        :class:`Span` immediately instead of lazily.  The differential
        equivalence harness uses this to pin the lazy path against
        eager construction; production tracers leave it off.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        eager: bool = False,
    ) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        #: recorded entries in emission order: materialized ``Span``
        #: objects interleaved with deferred compact tuples and raw
        #: retired commands.  Read through :attr:`spans`, which
        #: inflates the deferred entries in place.
        self._spans: List[object] = []
        self._dirty = False
        self._eager = bool(eager)
        self._inflate_cmd: Optional[Callable[[object], Span]] = None
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install the virtual clock used for host spans."""
        self._clock = clock

    def set_command_inflater(self, fn: Callable[[object], Span]) -> None:
        """Install the ``Command -> Span`` builder for deferred
        retired-command entries (see :meth:`defer_command`).

        The host runtime installs its own builder so the tracer stays
        ignorant of command/attribute layout.
        """
        self._inflate_cmd = fn

    @property
    def current(self) -> Optional[Span]:
        """The innermost open host span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # lazy materialization
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """All closed spans, in emission order.

        Deferred entries (:meth:`defer` tuples, :meth:`defer_command`
        commands) are inflated into :class:`Span` objects in place on
        first read, so repeated reads are free and callers may treat
        the result as the tracer's live span list.
        """
        if self._dirty:
            self._materialize()
        return self._spans  # type: ignore[return-value]

    def _materialize(self) -> None:
        spans = self._spans
        inflate = self._inflate_cmd
        for i, entry in enumerate(spans):
            cls = entry.__class__
            if cls is tuple:
                name, category, track, start, end, attrs = entry
                spans[i] = Span(name, category, track, start=start, end=end,
                                attrs=attrs if attrs is not None else {})
            elif not isinstance(entry, Span):
                if inflate is None:  # pragma: no cover - misconfiguration
                    raise RuntimeError(
                        "deferred command span recorded without a command "
                        "inflater (Tracer.set_command_inflater)"
                    )
                spans[i] = inflate(entry)
        self._dirty = False

    # ------------------------------------------------------------------
    # deferred spans (hot path)
    # ------------------------------------------------------------------
    def defer(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        end: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a finished span as a compact tuple, built lazily.

        Semantically :meth:`emit`, minus the ``Span`` allocation and
        minus a return value; the caller owns ``attrs`` (the tracer
        keeps the dict as-is).  The hot emitters use this.
        """
        if self._eager:
            self._spans.append(
                Span(name, category, track, start=start, end=end,
                     attrs=attrs if attrs is not None else {})
            )
            return
        self._spans.append((name, category, track, start, end, attrs))
        self._dirty = True

    def defer_command(self, cmd: object) -> None:
        """Record a retired command whose span is built lazily.

        The cheapest possible observer hook: one list append per
        retired command.  The installed inflater (see
        :meth:`set_command_inflater`) turns the command into the exact
        span an eager observer would have emitted — which requires the
        command's metadata (timings, ``error``, ``queue_depth``) to
        still be intact when :attr:`spans` is first read; recycling
        retired commands before that point is a caller bug.
        """
        if self._eager:
            if self._inflate_cmd is None:  # pragma: no cover - misconfiguration
                raise RuntimeError(
                    "deferred command span recorded without a command "
                    "inflater (Tracer.set_command_inflater)"
                )
            self._spans.append(self._inflate_cmd(cmd))
            return
        self._spans.append(cmd)
        self._dirty = True

    # ------------------------------------------------------------------
    # host spans (program order, nested)
    # ------------------------------------------------------------------
    def begin(self, name: str, category: str = "", track: str = "host", **attrs) -> Span:
        """Open a nested host span at the current clock reading."""
        sp = Span(
            name,
            category,
            track,
            start=self._clock(),
            attrs=dict(attrs) if attrs else {},
            parent=self._stack[-1] if self._stack else None,
        )
        self._stack.append(sp)
        return sp

    def end(self, span: Span, **attrs) -> Span:
        """Close a host span (and any still-open children) at now."""
        now = self._clock()
        if attrs:
            span.attrs.update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
                self._spans.append(top)
            if top is span:
                break
        else:
            # span was not on the stack (double end): record it anyway
            if span.end is None:
                span.end = now
                self._spans.append(span)
        return span

    def span(self, name: str, category: str = "", track: str = "host", **attrs) -> _SpanCtx:
        """``with tracer.span("chunk:0", "chunk"):`` — begin/end pair."""
        return _SpanCtx(self, self.begin(name, category, track, **attrs))

    # ------------------------------------------------------------------
    # complete / instant spans (explicit timestamps)
    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        category: str = "",
        track: str = "host",
        *,
        start: float,
        end: float,
        **attrs,
    ) -> Span:
        """Record an already-finished span with explicit timestamps.

        Used for device-side work, whose start/finish times the
        simulator determines independently of host call order.
        """
        sp = Span(name, category, track, start=start, end=end,
                  attrs=dict(attrs) if attrs else {})
        self._spans.append(sp)
        return sp

    def instant(self, name: str, category: str = "", track: str = "host", **attrs) -> Span:
        """Record a zero-duration marker at the current clock reading."""
        now = self._clock()
        return self.emit(name, category, track, start=now, end=now, **attrs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def by_category(self, category: str) -> List[Span]:
        """All closed spans of one category."""
        return [s for s in self.spans if s.category == category]

    def by_track(self, track: str) -> List[Span]:
        """All closed spans on one track."""
        return [s for s in self.spans if s.track == track]

    def clear(self) -> None:
        """Drop all recorded spans (open spans stay open)."""
        self._spans.clear()
        self._dirty = False


class _NullSpan(Span):
    """Shared inert span returned by the null tracer."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", "", "")

    def set(self, **attrs) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class _NullCtx:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CTX = _NullCtx()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a constant no-op.

    Instrumented code guards with ``if tracer.enabled`` where it would
    otherwise build labels or attribute dicts; everything else can call
    straight through at negligible cost.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        # spans/_stack exist (empty) so read-only queries still work

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    def begin(self, name: str, category: str = "", track: str = "host", **attrs) -> Span:
        return _NULL_SPAN

    def end(self, span: Span, **attrs) -> Span:
        return _NULL_SPAN

    def span(self, name: str, category: str = "", track: str = "host", **attrs) -> _NullCtx:
        return _NULL_CTX

    def emit(self, name, category="", track="host", *, start, end, **attrs) -> Span:
        return _NULL_SPAN

    def instant(self, name, category="", track="host", **attrs) -> Span:
        return _NULL_SPAN

    def defer(self, name, category, track, start, end, attrs=None) -> None:
        pass

    def defer_command(self, cmd) -> None:
        pass

    def set_command_inflater(self, fn) -> None:
        pass


#: Process-wide disabled tracer; the default for every runtime.
NULL_TRACER = NullTracer()
