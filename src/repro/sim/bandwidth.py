"""Host<->device transfer cost model.

The model is the standard latency/saturating-bandwidth form used for
PCIe links.  Effective bandwidth for an ``n``-byte transfer is

.. math:: bw_{eff}(n) = bw_{peak} \\cdot \\frac{n}{n + n_{1/2}}

so the transfer time has the convenient closed form

.. math:: t(n) = t_{lat} + \\frac{n + n_{1/2}}{bw_{peak}}.

``n_half`` (the *half-saturation size*: the transfer size achieving
half of peak bandwidth) is the single knob that reproduces the paper's
central AMD observation: on the Radeon HD 7970 the Naive version moves
whole arrays at ~6 GB/s while the chunked Pipelined version achieves
only ~2 GB/s, making many-chunk pipelining a net loss (Figure 8).  The
K40m's small ``n_half`` makes it insensitive to chunk count, as the
paper finds.

2-D (pitched) copies — used for the matrix-multiplication column bands
— additionally pay a per-row cost, modelling the DMA engine's strided
descriptor processing (``cudaMemcpy2DAsync``).  The paper notes these
"take much longer" yet can be fully overlapped with compute-bound
kernels, which this model preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BandwidthShared", "LinkModel", "transfer_time_1d", "transfer_time_2d"]


@dataclass(frozen=True)
class LinkModel:
    """Cost parameters for one host<->device link direction.

    Attributes
    ----------
    latency:
        Fixed per-transfer setup time in seconds (driver + DMA start).
    bw_peak:
        Asymptotic bandwidth in bytes/second for pinned host memory.
    n_half:
        Transfer size (bytes) at which effective bandwidth is half of
        ``bw_peak``.
    row_latency:
        Additional per-row cost (seconds) for 2-D pitched copies.
    pageable_penalty:
        Multiplier (> 1) applied to the bandwidth term when the host
        buffer is pageable rather than pinned; models the staging copy
        through the driver's pinned bounce buffer.
    """

    latency: float
    bw_peak: float
    n_half: float
    row_latency: float = 0.0
    pageable_penalty: float = 1.8

    def effective_bandwidth(self, nbytes: int) -> float:
        """Effective bandwidth (B/s) for an ``nbytes`` transfer."""
        if nbytes <= 0:
            return 0.0
        return self.bw_peak * nbytes / (nbytes + self.n_half)


def transfer_time_1d(link: LinkModel, nbytes: int, *, pinned: bool = True) -> float:
    """Duration of a contiguous ``nbytes`` transfer.

    Parameters
    ----------
    link:
        Link cost parameters.
    nbytes:
        Bytes to move (>= 0; zero-byte transfers still pay latency).
    pinned:
        Whether the host buffer is page-locked (``cudaHostAlloc``).
    """
    if nbytes < 0:
        raise ValueError("negative transfer size")
    t = link.latency + (nbytes + link.n_half) / link.bw_peak
    if not pinned:
        t = link.latency + (nbytes + link.n_half) * link.pageable_penalty / link.bw_peak
    return t


class BandwidthShared:
    """A host link (PCIe root complex) shared by several devices.

    Each :class:`~repro.sim.device.Device` has its own simulator, so
    transfers on different devices cannot contend dynamically the way
    commands on one device's DMA engine do.  This models the shared
    link statically instead: while ``k`` devices are attached, every
    transfer's bandwidth term is stretched by ``k`` (the fair share of
    the root complex under saturation); the fixed setup latency is
    unaffected.  The model is deliberately pessimistic — it assumes the
    sharers transfer concurrently for the whole region, which is the
    regime sharded execution creates — so multi-device scaling curves
    stay honest instead of embarrassingly parallel.

    Attach/detach are refcount-free set operations keyed by the device
    object; :class:`~repro.core.multidevice.ShardedIssuer` attaches its
    member devices at ``open()`` and detaches them at
    ``finalize()``/``abort()``.
    """

    def __init__(self) -> None:
        self._attached: "set" = set()

    @property
    def sharers(self) -> int:
        """Devices currently attached (minimum 1: a link never speeds
        a transfer up)."""
        return max(1, len(self._attached))

    def attach(self, device) -> None:
        """Route ``device``'s transfers through this shared link."""
        self._attached.add(device)
        device.shared_link = self

    def detach(self, device) -> None:
        """Give ``device`` its private link back (idempotent)."""
        self._attached.discard(device)
        if getattr(device, "shared_link", None) is self:
            device.shared_link = None

    def contend(self, duration: float, latency: float) -> float:
        """Stretch a transfer's bandwidth term by the sharer count."""
        return latency + (duration - latency) * self.sharers


def transfer_time_2d(
    link: LinkModel,
    rows: int,
    row_bytes: int,
    *,
    pinned: bool = True,
) -> float:
    """Duration of a pitched (2-D) copy of ``rows`` rows of ``row_bytes``.

    The bandwidth term saturates per *row* (each row is an independent
    DMA burst), so narrow bands transfer far below peak — the behaviour
    the paper observes for non-contiguous matmul transfers.
    """
    if rows < 0 or row_bytes < 0:
        raise ValueError("negative 2-D copy extent")
    if rows == 0 or row_bytes == 0:
        return link.latency
    per_row = (row_bytes + link.n_half) / link.bw_peak
    if not pinned:
        per_row *= link.pageable_penalty
    return link.latency + rows * (link.row_latency + per_row)
