"""Stream identity objects for the simulator.

A :class:`SimStream` is just an identity used by the
:class:`~repro.sim.engine.Simulator` to enforce in-order execution of
the commands enqueued on it — exactly the guarantee a CUDA stream or an
OpenCL in-order command queue gives.  Cross-stream ordering is done
with :class:`~repro.sim.engine.EventToken` objects.
"""

from __future__ import annotations

import itertools

__all__ = ["SimStream", "reset_stream_ids"]

_ids = itertools.count()


def reset_stream_ids() -> None:
    """Restart the global stream-index counter.

    Auto-generated stream names (``"stream7"``) embed the process-wide
    creation index, so two otherwise-identical runs in one process get
    different names.  Differential harnesses (the engine equivalence
    suite, the engine benchmark) call this before each run to keep
    auto-named streams — and therefore trace bytes — deterministic.
    Never call it mid-run: distinct live streams must keep distinct
    indices.
    """
    global _ids
    _ids = itertools.count()


class SimStream:
    """An in-order command queue identity.

    Attributes
    ----------
    name:
        Debug label (``"stream3"`` by default).
    index:
        Globally unique creation index.
    """

    __slots__ = ("name", "index")

    def __init__(self, name: str = "") -> None:
        self.index = next(_ids)
        self.name = name or f"stream{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimStream({self.name!r})"
