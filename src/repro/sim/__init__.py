"""Deterministic discrete-event GPU simulator.

This subpackage is the hardware substrate for the reproduction: it stands
in for the NVIDIA Tesla K40m and AMD Radeon HD 7970 used in the paper.
It models the pieces of a GPU node that determine the paper's results:

* in-order **streams** feeding a small set of exclusive **engines**
  (DMA and compute),
* a **device memory allocator** with live/peak accounting and
  out-of-memory failures,
* a **transfer cost model** with per-call latency and size-dependent
  (saturating) bandwidth, for both contiguous (1-D) and pitched (2-D)
  copies, and
* a **host clock** charged per API call, so command streams issued from
  the host cannot start earlier than they were enqueued.

The simulator is *functional*: data-movement and kernel commands carry
payloads that really execute on NumPy arrays in dependency order, so a
pipelined execution can be validated bit-for-bit against a reference.
A metadata-only :class:`~repro.sim.varray.VirtualArray` backend lets
paper-scale workloads (multi-GB) run with identical timing/memory
accounting but no host RAM cost.
"""

from repro.sim.engine import (
    Command,
    Engine,
    EventToken,
    Simulator,
    active_kernel,
    engine_kernel,
    make_simulator,
)
from repro.sim.memory import AllocationRecord, MemoryAllocator, OutOfDeviceMemory
from repro.sim.varray import VirtualArray, as_backing, empty_like_backing, nbytes_of
from repro.sim.bandwidth import LinkModel, transfer_time_1d, transfer_time_2d
from repro.sim.profiles import (
    AMD_HD7970,
    DeviceProfile,
    NVIDIA_K40M,
    profile_by_name,
)
from repro.sim.device import Device
from repro.sim.trace import Timeline, TimelineRecord, time_distribution

__all__ = [
    "AMD_HD7970",
    "AllocationRecord",
    "Command",
    "Device",
    "DeviceProfile",
    "Engine",
    "EventToken",
    "LinkModel",
    "MemoryAllocator",
    "NVIDIA_K40M",
    "OutOfDeviceMemory",
    "Simulator",
    "Timeline",
    "TimelineRecord",
    "VirtualArray",
    "active_kernel",
    "as_backing",
    "engine_kernel",
    "make_simulator",
    "empty_like_backing",
    "nbytes_of",
    "profile_by_name",
    "time_distribution",
    "transfer_time_1d",
    "transfer_time_2d",
]
