"""Execution timeline capture and analysis.

Every command the simulator retires is recorded as a
:class:`TimelineRecord`.  The analysis helpers here answer the
questions the paper's figures ask of a profiler:

* :func:`time_distribution` — how much busy time went to HtoD, DtoH,
  and kernel work (Figure 3's stacked bars),
* :func:`overlap_fraction` — how much transfer time was hidden under
  compute,
* :func:`audit` — post-run invariant checks (in-order streams,
  exclusive engines, monotone clocks) used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.intervals import union_length

__all__ = [
    "TimelineRecord",
    "Timeline",
    "time_distribution",
    "overlap_fraction",
    "audit",
]


@dataclass(frozen=True)
class TimelineRecord:
    """One retired command.

    Attributes
    ----------
    kind:
        Command class (``"h2d"``, ``"d2h"``, ``"kernel"``, ...).
    label:
        Human-readable description.
    stream:
        Stream name, or ``""`` for stream-less commands.
    engine:
        Engine that executed the command.
    enqueue, start, finish:
        Virtual timestamps (seconds).
    nbytes:
        Bytes moved/touched.
    """

    kind: str
    label: str
    stream: str
    engine: str
    enqueue: float
    start: float
    finish: float
    nbytes: int

    @property
    def duration(self) -> float:
        """Command occupancy time."""
        return self.finish - self.start


class Timeline:
    """An ordered collection of :class:`TimelineRecord` with queries."""

    def __init__(self, records: Sequence[TimelineRecord]) -> None:
        self.records: List[TimelineRecord] = sorted(records, key=lambda r: (r.start, r.finish))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def by_kind(self, kind: str) -> List[TimelineRecord]:
        """All records of one kind."""
        return [r for r in self.records if r.kind == kind]

    def for_streams(self, prefix: str) -> "Timeline":
        """Sub-timeline of records whose stream name starts with ``prefix``.

        Multi-tenant runs name each region's streams with a per-request
        prefix (``t<id>.pipe<i>``), so this slices one tenant's commands
        out of a shared device timeline for attribution and busy-time
        conservation checks.
        """
        return Timeline([r for r in self.records if r.stream.startswith(prefix)])

    @property
    def makespan(self) -> float:
        """End-to-end virtual time (first start to last finish)."""
        if not self.records:
            return 0.0
        return max(r.finish for r in self.records) - min(r.start for r in self.records)

    @property
    def end(self) -> float:
        """Latest finish time."""
        return max((r.finish for r in self.records), default=0.0)

    def busy_time(self, kind: Optional[str] = None) -> float:
        """Total occupancy of all (or one kind of) commands."""
        return sum(r.duration for r in self.records if kind is None or r.kind == kind)

    def engine_utilization(self) -> Dict[str, float]:
        """Fraction of the makespan each engine spent busy."""
        span = self.makespan
        if span <= 0:
            return {}
        busy: Dict[str, float] = {}
        for r in self.records:
            busy[r.engine] = busy.get(r.engine, 0.0) + r.duration
        return {e: b / span for e, b in busy.items()}


def time_distribution(timeline: Timeline, kinds: Iterable[str] = ("h2d", "d2h", "kernel")) -> Dict[str, float]:
    """Busy seconds per command kind — the paper's Figure 3 breakdown."""
    return {k: timeline.busy_time(k) for k in kinds}


def overlap_fraction(timeline: Timeline) -> float:
    """Fraction of transfer busy-time overlapped with kernel execution.

    1.0 means every transferred byte moved while a kernel was running
    (perfect pipelining); 0.0 means fully synchronous behaviour.
    """
    kernels = [(r.start, r.finish) for r in timeline.records if r.kind == "kernel"]
    transfers = [r for r in timeline.records if r.kind in ("h2d", "d2h")]
    if not transfers:
        return 0.0
    kernel_ivs = sorted(kernels)
    hidden = 0.0
    total = 0.0
    for t in transfers:
        total += t.duration
        pieces = []
        for lo, hi in kernel_ivs:
            if hi <= t.start:
                continue
            if lo >= t.finish:
                break
            pieces.append((max(lo, t.start), min(hi, t.finish)))
        hidden += union_length(pieces)
    return hidden / total if total else 0.0


def audit(timeline: Timeline) -> None:
    """Validate simulator output invariants; raises ``AssertionError``.

    Checks: per-engine exclusivity (no two commands overlap on one
    engine), per-stream in-order execution, and that no command started
    before it was enqueued.
    """
    by_engine: Dict[str, List[TimelineRecord]] = {}
    by_stream: Dict[str, List[TimelineRecord]] = {}
    eps = 1e-12
    for r in timeline.records:
        if r.start < r.enqueue - eps:
            raise AssertionError(f"{r} started before enqueue")
        if r.finish < r.start - eps:
            raise AssertionError(f"{r} finished before start")
        by_engine.setdefault(r.engine, []).append(r)
        if r.stream:
            by_stream.setdefault(r.stream, []).append(r)
    for eng, recs in by_engine.items():
        recs.sort(key=lambda r: r.start)
        for a, b in zip(recs, recs[1:]):
            if b.start < a.finish - eps:
                raise AssertionError(f"engine {eng} overlap: {a} / {b}")
    for s, recs in by_stream.items():
        # enqueue order within a stream must match execution order
        in_enqueue_order = sorted(recs, key=lambda r: r.enqueue)
        in_exec_order = sorted(recs, key=lambda r: r.start)
        # ties in enqueue time are possible (same host call burst);
        # require only that finishes are monotone w.r.t. starts
        for a, b in zip(in_exec_order, in_exec_order[1:]):
            if b.start < a.finish - eps:
                raise AssertionError(f"stream {s} commands overlap: {a} / {b}")
        del in_enqueue_order
